"""Classic graph algorithms on the GraphBLAS substrate.

The paper's premise (Section II-H) is that one small set of algebraic
primitives serves a large family of sparse workloads.  HPCG is the
paper's subject; this module demonstrates the breadth with textbook
GraphBLAS formulations of BFS, SSSP, PageRank, triangle counting and
connected components — each a different semiring over the same opaque
containers.  They double as system tests of the substrate's generic
(non-plus-times) execution paths.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.graphblas import descriptor as desc_mod
from repro.graphblas import ops, semiring
from repro.graphblas.matrix import Matrix
from repro.graphblas.monoid import max_monoid, plus_monoid
from repro.graphblas.operations import (
    apply,
    assign,
    dot,
    ewise_add,
    ewise_mult,
    mxm,
    mxv,
    reduce,
    reduce_matrix,
    vxm,
    waxpby,
)
from repro.graphblas.vector import Vector
from repro.util.errors import DimensionMismatch, InvalidValue


def _check_square(A: Matrix) -> int:
    if A.nrows != A.ncols:
        raise InvalidValue(f"graph algorithms need a square matrix, got {A.shape}")
    return A.nrows


def bfs_levels(A: Matrix, source: int) -> np.ndarray:
    """BFS levels from ``source`` over the lor-land semiring.

    Edges follow rows→columns (``A[i, j]`` is an edge i→j).  Unreached
    vertices get level −1.
    """
    n = _check_square(A)
    if not 0 <= source < n:
        raise InvalidValue(f"source {source} out of range [0, {n})")
    levels = np.full(n, -1, dtype=np.int64)
    levels[source] = 0
    frontier = Vector.from_coo([source], [True], n, dtype=bool)
    visited = Vector.from_coo([source], [True], n, dtype=bool)
    depth = 0
    while frontier.nvals:
        depth += 1
        nxt = Vector.sparse(n, dtype=bool)
        vxm(nxt, visited, frontier, A, semiring=semiring.lor_land,
            desc=desc_mod.structural | desc_mod.invert_mask | desc_mod.replace)
        idx, _ = nxt.to_coo()
        if idx.size == 0:
            break
        levels[idx] = depth
        # visited |= nxt
        ewise_add(visited, None, visited.dup(), nxt, ops.lor)
        frontier = nxt
    return levels


def sssp(A: Matrix, source: int, max_hops: Optional[int] = None) -> np.ndarray:
    """Single-source shortest paths (Bellman-Ford) over min-plus.

    Returns distances; unreachable vertices get ``inf``.  Negative
    cycles are not detected (bounded relaxation).
    """
    n = _check_square(A)
    if not 0 <= source < n:
        raise InvalidValue(f"source {source} out of range [0, {n})")
    dist = Vector.dense(n, np.inf)
    dist.set_element(source, 0.0)
    hops = max_hops if max_hops is not None else n
    for _ in range(hops):
        prev = dist.to_dense(fill=np.inf)
        relaxed = Vector.dense(n, np.inf)
        vxm(relaxed, None, dist, A, semiring=semiring.min_plus)
        ewise_add(dist, None, dist.dup(), relaxed, ops.min_)
        if np.array_equal(dist.to_dense(fill=np.inf), prev):
            break
    return dist.to_dense(fill=np.inf)


def pagerank(
    A: Matrix,
    damping: float = 0.85,
    tolerance: float = 1e-8,
    max_iters: int = 100,
) -> Tuple[np.ndarray, int]:
    """PageRank by power iteration, all in GraphBLAS operations.

    ``A[i, j]`` is a link i→j.  Dangling vertices redistribute uniformly.
    Returns (ranks, iterations).
    """
    n = _check_square(A)
    if not 0 < damping < 1:
        raise InvalidValue(f"damping must be in (0, 1), got {damping}")
    # out-degree and the column-stochastic scaling 1/deg per source
    from repro.graphblas.matrix_ops import reduce_rows
    degree = Vector.sparse(n)
    reduce_rows(degree, A, plus_monoid)
    deg_dense = degree.to_dense(fill=0.0)
    dangling = deg_dense == 0.0
    inv_deg = np.where(dangling, 0.0, 1.0 / np.maximum(deg_dense, 1e-300))

    rank = Vector.dense(n, 1.0 / n)
    scaled = Vector.dense(n)
    nxt = Vector.dense(n)
    iterations = 0
    for k in range(1, max_iters + 1):
        iterations = k
        # scaled = rank / degree (0 on dangling)
        scaled_vals = rank.to_dense() * inv_deg
        assign(scaled, None, Vector.from_dense(scaled_vals))
        vxm(nxt, None, scaled, A, semiring=semiring.plus_times)
        dangling_mass = float(rank.to_dense()[dangling].sum())
        teleport = (1.0 - damping) / n + damping * dangling_mass / n
        waxpby(nxt, damping, nxt, 0.0, nxt)
        # nxt += teleport everywhere
        shift = Vector.dense(n, teleport)
        ewise_add(nxt, None, nxt.dup(), shift, ops.plus)
        delta = float(np.abs(nxt.to_dense() - rank.to_dense()).sum())
        assign(rank, None, nxt)
        if delta < tolerance:
            break
    return rank.to_dense(), iterations


def triangle_count(A: Matrix) -> int:
    """Number of triangles in an undirected graph (Burkhardt: tr(A³)/6
    computed as sum(A ⊙ A²)/6, masked to the stored pattern).
    """
    n = _check_square(A)
    AA = Matrix.identity(n)
    mxm(AA, A, A, A)          # A² masked by A's pattern
    from repro.graphblas.matrix_ops import ewise_mult_matrix
    C = Matrix.identity(n)
    ewise_mult_matrix(C, AA, A, ops.times)
    total = reduce_matrix(C, plus_monoid)
    count = int(round(float(total))) // 6
    return count


def connected_components(A: Matrix, max_iters: Optional[int] = None) -> np.ndarray:
    """Connected components by label propagation over max-second.

    Undirected graph assumed (symmetric pattern).  Returns component
    labels (the max vertex id in each component).
    """
    n = _check_square(A)
    labels = Vector.from_dense(np.arange(n, dtype=np.float64))
    limit = max_iters if max_iters is not None else n
    for _ in range(limit):
        prev = labels.to_dense()
        propagated = Vector.sparse(n)
        mxv(propagated, None, A, labels, semiring=semiring.max_second)
        ewise_add(labels, None, labels.dup(), propagated, ops.max_)
        if np.array_equal(labels.to_dense(), prev):
            break
    return labels.to_dense().astype(np.int64)
