"""Fused-kernel extensions (nonblocking ALP/GraphBLAS, paper ref. [32]).

Standard (blocking) GraphBLAS executes each primitive eagerly: the RBGS
colour step writes the masked ``mxv`` result to a workspace vector and
immediately re-reads it in the ``eWiseLambda`` — a full round trip
through memory for a value that is consumed once.  Mastoras et al.'s
nonblocking ALP fuses such producer-consumer pairs; the paper's Related
Work singles this out as the main shared-memory headroom.

:func:`fused_masked_mxv_lambda` is that fusion for the exact pattern
RBGS needs.  It is an *extension*: HPCG code using it is no longer
portable GraphBLAS, which is why the default smoother does not — it
exists for the ablation benchmark quantifying what fusion would buy.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.graphblas import backend
from repro.graphblas import descriptor as desc_mod
from repro.graphblas.matrix import Matrix
from repro.graphblas.operations import _mask_bool
from repro.graphblas.substrate.csr import CsrProvider
from repro.graphblas.vector import Vector
from repro.util.errors import InvalidValue


def fused_masked_mxv_lambda(
    fn: Callable[..., None],
    mask: Vector,
    A: Matrix,
    x: Vector,
    *vectors: Vector,
    desc=desc_mod.structural,
) -> None:
    """``t = (A x)[mask]; fn(rows, t, *vector_storages)`` without
    materialising ``t`` as a container.

    ``fn`` receives the masked row indices, the *local* product values
    (one per masked row, in row order), and the dense storage of each
    trailing vector; it must only write positions ``rows`` of those.
    Compared to the mxv + eWiseLambda pair this elides one vector write
    and one vector read per element (16 bytes/row), which is exactly
    the traffic the fusion ablation measures.
    """
    if mask is None:
        raise InvalidValue("fused step requires a mask (the colour vector)")
    sel = _mask_bool(mask, A.nrows, desc)
    rows = np.flatnonzero(sel)
    cacheable = desc.structural and not desc.invert_mask
    if cacheable:
        sub = A._rows_substructure(
            (id(mask), mask.version), rows, desc.transpose_matrix
        )
    else:
        base = A._transposed_csr() if desc.transpose_matrix else A._csr
        sub = CsrProvider(base[rows, :])
    t = sub.mxv(x._values)
    fn(rows, t, *(v._values for v in vectors))
    for v in vectors:
        v._bump()
    if backend.active():
        # the unfused pair costs the provider's full mxv traffic (tmp
        # write + read included) plus the lambda's rows*8*(k+1); the
        # provider prices what fusion elides in its format.
        flops, nbytes = sub.fused_mxv_traffic(len(vectors))
        backend.record(
            "fused_mxv_lambda", rows.size, sub.nnz, flops, nbytes,
            fmt=sub.name,
        )


class FusedRBGSSmoother:
    """RBGS built on the fused colour step (the [32] ablation subject).

    Produces bit-identical iterates to
    :class:`repro.hpcg.smoothers.RBGSSmoother`; only the memory traffic
    (and, on a real machine, the runtime) differs.
    """

    def __init__(self, A: Matrix, A_diag: Vector, colors):
        self.A = A
        self.A_diag = A_diag
        self.colors = list(colors)
        if not self.colors:
            raise InvalidValue("at least one colour mask is required")

    @property
    def n(self) -> int:
        return self.A.nrows

    @staticmethod
    def _pointwise(rows: np.ndarray, s: np.ndarray, z: np.ndarray,
                   r: np.ndarray, d: np.ndarray) -> None:
        dd = d[rows]
        z[rows] = (r[rows] - s + z[rows] * dd) / dd

    def _sweep(self, z: Vector, r: Vector, order) -> None:
        for k in order:
            fused_masked_mxv_lambda(
                self._pointwise, self.colors[k], self.A, z, z, r, self.A_diag
            )

    def forward(self, z: Vector, r: Vector) -> Vector:
        self._sweep(z, r, range(len(self.colors)))
        return z

    def backward(self, z: Vector, r: Vector) -> Vector:
        self._sweep(z, r, range(len(self.colors) - 1, -1, -1))
        return z

    def smooth(self, z: Vector, r: Vector, sweeps: int = 1) -> Vector:
        for _ in range(sweeps):
            self.forward(z, r)
            self.backward(z, r)
        return z
