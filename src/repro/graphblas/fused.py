"""Fused-kernel extensions (nonblocking ALP/GraphBLAS, paper ref. [32]).

Standard (blocking) GraphBLAS executes each primitive eagerly: the RBGS
colour step writes the masked ``mxv`` result to a workspace vector and
immediately re-reads it in the ``eWiseLambda`` — a full round trip
through memory for a value that is consumed once.  Mastoras et al.'s
nonblocking ALP fuses such producer-consumer pairs; the paper's Related
Work singles this out as the main shared-memory headroom.

:func:`fused_masked_mxv_lambda` is that fusion for the exact pattern
RBGS needs.  It is an *extension*: HPCG code using it is no longer
portable GraphBLAS — which is why it lives here, below the operations
API, and why the smoothers reach it only through the plan objects:

* :class:`ColorSweepPlan` — the default smoother's fast path since the
  fused-sweep PR: a whole forward-or-backward multi-colour sweep
  executed by the active provider's prebuilt
  :class:`~repro.graphblas.substrate.base.ColorSweep` (colour
  substructures, row partitions and diagonals hoisted to construction,
  products through the jit lane when numba is available), version-
  validated against the operator, masks and diagonal, and priced
  through the provider's fused-traffic hook so collected byte streams
  stay honest.  ``REPRO_FUSED=0`` (or any unsupported configuration —
  sparse vectors, non-float64 domains) makes the plan decline, and the
  smoother falls back to the reference masked-mxv + eWiseLambda
  transcription, bit for bit.
* :class:`JacobiSweepPlan` — the same fusion for the damped-Jacobi
  update (a full product, no mask).
* :func:`fused_spmv_waxpby` — CG's hot pair ``w = alpha*x + beta*(A z)``
  (the residual updates in ``pcg`` init and the V-cycle) in one pass,
  eliding the intermediate product vector's 16-byte-per-row round trip;
  through the jit lane it is a single compiled kernel, serial or
  ``prange``-parallel per the ``REPRO_THREADS`` policy.
"""

from __future__ import annotations

import os
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.graphblas import backend
from repro.graphblas import descriptor as desc_mod
from repro.graphblas.matrix import Matrix
from repro.graphblas.operations import _mask_bool
from repro.graphblas.substrate.base import ColorSweep
from repro.graphblas.substrate.csr import CsrProvider
from repro.graphblas.vector import Vector
from repro.util.errors import InvalidValue

#: Kill switch for the fused smoother fast path: ``REPRO_FUSED=0``
#: restores the reference transcription everywhere.
ENV_FUSED = "REPRO_FUSED"


def fused_enabled(default: bool = True) -> bool:
    """The ``REPRO_FUSED`` switch (on unless explicitly disabled)."""
    raw = os.environ.get(ENV_FUSED, "").strip().lower()
    if raw in ("0", "off", "no", "false"):
        return False
    if raw in ("1", "on", "yes", "true"):
        return True
    return default


def fused_masked_mxv_lambda(
    fn: Callable[..., None],
    mask: Vector,
    A: Matrix,
    x: Vector,
    *vectors: Vector,
    desc=desc_mod.structural,
) -> None:
    """``t = (A x)[mask]; fn(rows, t, *vector_storages)`` without
    materialising ``t`` as a container.

    ``fn`` receives the masked row indices, the *local* product values
    (one per masked row, in row order), and the dense storage of each
    trailing vector; it must only write positions ``rows`` of those.
    Compared to the mxv + eWiseLambda pair this elides one vector write
    and one vector read per element (16 bytes/row), which is exactly
    the traffic the fusion ablation measures.
    """
    if mask is None:
        raise InvalidValue("fused step requires a mask (the colour vector)")
    sel = _mask_bool(mask, A.nrows, desc)
    rows = np.flatnonzero(sel)
    cacheable = desc.structural and not desc.invert_mask
    if cacheable:
        sub = A._rows_substructure(
            (id(mask), mask.version), rows, desc.transpose_matrix
        )
    else:
        base = A._transposed_csr() if desc.transpose_matrix else A._csr
        sub = CsrProvider(base[rows, :])
    t = sub.mxv(x._values)
    fn(rows, t, *(v._values for v in vectors))
    for v in vectors:
        v._bump()
    if backend.active():
        # the unfused pair costs the provider's full mxv traffic (tmp
        # write + read included) plus the lambda's rows*8*(k+1); the
        # provider prices what fusion elides in its format.
        flops, nbytes = sub.fused_mxv_traffic(len(vectors))
        backend.record(
            "fused_mxv_lambda", rows.size, sub.nnz, flops, nbytes,
            fmt=sub.name,
        )


def fused_spmv_waxpby(w: Vector, alpha: float, x: Vector, beta: float,
                      A: Matrix, z: Vector) -> bool:
    """``w = alpha*x + beta*(A z)`` without materialising ``A z``.

    The fusion for CG's hot SpMV→waxpby pair.  Returns ``False`` when
    the call cannot be served bit-identically (kill switch, sparse or
    non-float64 operands, empty operator rows whose output presence the
    unfused pair would drop, or ``w`` aliasing the product input) and
    the caller falls back to the ``mxv`` + ``waxpby`` transcription.

    Bit-exactness: the product accumulates each row's partial products
    in ascending column order from ``+0.0`` — every provider's
    contract, so one CSR-order kernel serves all substrates — and
    ``fl(a)+fl(b)`` is commutative in IEEE-754 (signed zeros included),
    so ``alpha*x[i] + beta*acc`` matches both of ``waxpby``'s dense
    site orders.  The jit kernel writes one output element per row
    (``prange``-safe); the numpy fallback still elides the intermediate
    container, keeping the arithmetic of the unfused pair.
    """
    if not fused_enabled():      # the kill switch works per call
        return False
    if w is z:
        return False             # the product must read pre-update z
    if (A.dtype != np.float64 or w.dtype != np.float64
            or x.dtype != np.float64 or z.dtype != np.float64):
        return False
    if not (w.is_dense() and x.is_dense() and z.is_dense()):
        return False
    if w.size != A.nrows or z.size != A.ncols or x.size != w.size:
        return False
    prov = A.provider()
    if not bool((prov.row_nnz > 0).all()):
        return False
    from repro.graphblas.substrate import jit, threads

    wv, xv, zv = w._values, x._values, z._values
    flops, mxv_bytes = prov.mxv_traffic()
    if jit.available():
        jit.csr_mxv_waxpby(A._csr, zv, alpha, xv, beta, wv,
                           nthreads=threads.effective(mxv_bytes))
    else:
        s = prov.mxv(zv)
        np.multiply(xv, alpha, out=wv)
        wv += beta * s
    w._present.fill(True)
    w._bump()
    if backend.active():
        n = w.size
        # the unfused pair costs mxv traffic (tmp write+read included in
        # the provider's rows*16 term) plus waxpby's n*24; fusion elides
        # the intermediate's 16B/row round trip
        backend.record(
            "fused_spmv_waxpby", A.nrows, prov.nnz,
            flops + 3 * n, mxv_bytes + n * 8, fmt=prov.name,
        )
    return True


class ColorSweepPlan:
    """The fused smoother fast path: a provider sweep with caching.

    Binds an operator, its colour masks and its diagonal vector once;
    :meth:`run` executes a whole forward-or-backward sweep through the
    active provider's :class:`ColorSweep`, rebuilding it only when the
    operator, a mask or the diagonal changes (version counters — the
    same invalidation contract the masked-mxv substructure cache uses).

    :meth:`run` returns ``False`` when the fast path cannot serve the
    call bit-identically — non-dense vectors, a non-float64 domain, or
    a provider that opted out of the capability — and the caller is
    expected to fall back to the reference transcription.
    """

    def __init__(self, A: Matrix, colors: Sequence[Vector], diag: Vector,
                 level: Optional[int] = None):
        if not colors:
            raise InvalidValue("at least one colour mask is required")
        self.A = A
        self.colors: List[Vector] = list(colors)
        self.diag = diag
        #: owning MG level, when known — tags emitted events so byte
        #: streams recorded outside a ``labelled`` scope still carry
        #: the level attribution (an enclosing label always wins)
        self.level = level
        self._key = None
        self._sweep: Optional[ColorSweep] = None

    def _event_label(self) -> Optional[str]:
        return None if self.level is None else f"rbgs@L{self.level}"

    def _current_sweep(self) -> Optional[ColorSweep]:
        key = (
            self.A.version,
            self.A.substrate,   # set_substrate swaps providers silently
            self.diag.version,
            tuple(c.version for c in self.colors),
        )
        if key != self._key:
            self._key = key
            self._sweep = None
            if (self.A.dtype == np.float64
                    and self.diag.dtype == np.float64
                    and self.diag.is_dense()):
                rows = [np.flatnonzero(c._present) for c in self.colors]
                self._sweep = self.A.provider().gs_color_sweep(
                    rows, self.diag._values
                )
        return self._sweep

    def run(self, z: Vector, r: Vector, order) -> bool:
        """Execute one sweep over ``order``; False means "fall back"."""
        if not fused_enabled():      # the kill switch works per call
            return False
        if (z.dtype != np.float64 or r.dtype != np.float64
                or not z.is_dense() or not r.is_dense()):
            return False
        sweep = self._current_sweep()
        if sweep is None:
            return False
        zv, rv = z._values, r._values
        if backend.active():
            label = self._event_label()
            for k in order:
                sweep.step(k, zv, rv)
                flops, nbytes = sweep.traffic[k]
                backend.record(
                    "fused_mxv_lambda", sweep.rows[k].size, sweep.nnzs[k],
                    flops, nbytes, fmt=sweep.fmt, label=label,
                )
        else:
            sweep.run(zv, rv, order)
        z._bump()
        return True


class JacobiSweepPlan:
    """The fused damped-Jacobi update: ``z += omega * (r - A z) / d``.

    One full provider product straight into the pointwise update — no
    workspace container round trip — priced through the provider's
    fused-traffic hook.  Same decline-and-fall-back contract as
    :class:`ColorSweepPlan`.
    """

    def __init__(self, A: Matrix, diag: Vector, omega: float,
                 level: Optional[int] = None):
        self.A = A
        self.diag = diag
        self.omega = omega
        self.level = level    # same fallback-tag contract as ColorSweepPlan

    def run(self, z: Vector, r: Vector, sweeps: int) -> bool:
        if not fused_enabled():      # the kill switch works per call
            return False
        if (self.A.dtype != np.float64
                or z.dtype != np.float64 or r.dtype != np.float64
                or not z.is_dense() or not r.is_dense()
                or self.diag.dtype != np.float64
                or not self.diag.is_dense()):
            return False
        prov = self.A.provider()
        zv, rv, dv = z._values, r._values, self.diag._values
        omega = self.omega
        for _ in range(sweeps):
            s = prov.mxv(zv)
            zv += omega * (rv - s) / dv
            if backend.active():
                flops, nbytes = prov.fused_mxv_traffic(3)
                backend.record(
                    "fused_mxv_lambda", self.A.nrows, prov.nnz,
                    flops, nbytes, fmt=prov.name,
                    label=(None if self.level is None
                           else f"jacobi@L{self.level}"),
                )
        z._bump()
        return True


class FusedRBGSSmoother:
    """RBGS built on the fused colour step (the [32] ablation subject).

    Produces bit-identical iterates to
    :class:`repro.hpcg.smoothers.RBGSSmoother`; only the memory traffic
    (and, on a real machine, the runtime) differs.
    """

    def __init__(self, A: Matrix, A_diag: Vector, colors):
        self.A = A
        self.A_diag = A_diag
        self.colors = list(colors)
        if not self.colors:
            raise InvalidValue("at least one colour mask is required")

    @property
    def n(self) -> int:
        return self.A.nrows

    @staticmethod
    def _pointwise(rows: np.ndarray, s: np.ndarray, z: np.ndarray,
                   r: np.ndarray, d: np.ndarray) -> None:
        dd = d[rows]
        z[rows] = (r[rows] - s + z[rows] * dd) / dd

    def _sweep(self, z: Vector, r: Vector, order) -> None:
        for k in order:
            fused_masked_mxv_lambda(
                self._pointwise, self.colors[k], self.A, z, z, r, self.A_diag
            )

    def forward(self, z: Vector, r: Vector) -> Vector:
        self._sweep(z, r, range(len(self.colors)))
        return z

    def backward(self, z: Vector, r: Vector) -> Vector:
        self._sweep(z, r, range(len(self.colors) - 1, -1, -1))
        return z

    def smooth(self, z: Vector, r: Vector, sweeps: int = 1) -> Vector:
        for _ in range(sweeps):
            self.forward(z, r)
            self.backward(z, r)
        return z
