"""The optional numba-compiled kernel lane — serial and parallel.

The ROADMAP's substrate headroom — *"a numba/cython compiled lane
kernel for SELL-C-σ"* — realised as a soft dependency: when numba is
importable (and not disabled via ``REPRO_JIT=0``) the providers route
their hottest loops through ``@njit``-compiled kernels; otherwise every
call falls back to the pure-numpy implementations, bit for bit.  Numba
is never required — this module imports cleanly without it, and
:func:`available` is the single gate every caller checks.

The serial kernels match the fast paths the fused smoother sweep needs:

* :func:`csr_mxv` — the CSR product, accumulating each row's partial
  products left-to-right in ascending column order from ``+0.0`` —
  the exact loop of scipy's compiled ``csr_matvec``, so results are
  bit-identical to the reference;
* :func:`csr_gs_step` — one fused multi-colour Gauss-Seidel colour
  step (product + pointwise update) over a colour's row block, in two
  phases (all products from the pre-update ``z``, then all updates) so
  it is bit-identical to the masked-mxv + eWiseLambda transcription
  for *arbitrary* colour masks, proper colourings or not;
* :func:`sell_mxv` — the SELL-C-σ lane product over the provider's
  packed lane-major gather lists, one compiled pass instead of one
  vectorised numpy pass per lane;
* :func:`blocked_mxv` — the blocked-dense provider's mini-GEMVs,
  walking each block's column lanes in ascending order with the
  presence mask (the numpy masked-add, compiled);
* :func:`csr_mxv_waxpby` — CG's hot pair ``w = alpha*v + beta*(A z)``
  in one pass, eliding the intermediate vector's round trip.

Every kernel also has a ``numba.prange`` **parallel** variant, entered
by passing ``nthreads > 1`` to the wrapper.  Parallelism is always
over *rows* (for SELL, over permuted rows walking the row's CSR
entries; for blocked, over row blocks): each output element is written
by exactly one thread and each row's left-to-right accumulation is
unchanged, so the parallel lane is bit-identical to the serial lane at
any thread count.  The fused GS step parallelises each of its two
phases independently — the phase barrier preserves the
pre-update-``z`` semantics.  Thread counts come from
:mod:`repro.graphblas.substrate.threads` (the ``REPRO_THREADS``
resolution policy); this module only executes what it is told.

Compilation is lazy (first call; the parallel family compiles
separately so serial-only runs never pay for it) and per-dtype via
numba's dispatcher; callers gate on float64 data before entering.
``REPRO_JIT`` is read per call so tests can flip the lane on and off
without reimporting.
"""

from __future__ import annotations

import os

import numpy as np

#: Environment kill switch: ``0``/``off``/``no``/``false`` disables the
#: compiled lane even when numba is importable.
ENV_VAR = "REPRO_JIT"

try:  # pragma: no cover - exercised only where numba is installed
    import numba as _numba
except ImportError:  # the supported, tested-everywhere configuration
    _numba = None

_kernels = None
_kernels_par = None


def enabled() -> bool:
    """The ``REPRO_JIT`` switch (default on; numba presence is separate)."""
    return os.environ.get(ENV_VAR, "").strip().lower() not in (
        "0", "off", "no", "false"
    )


def available() -> bool:
    """True when the compiled lane can actually run: numba importable
    and ``REPRO_JIT`` not switched off."""
    return _numba is not None and enabled()


def parallel_available() -> bool:
    """True when the ``prange`` variants can run.  The same gate as
    :func:`available` — the ``REPRO_THREADS`` policy decides *whether*
    to use them (wrappers with ``nthreads <= 1`` stay serial)."""
    return available()


def _load():
    """Compile (once) and return the serial kernel namespace."""
    global _kernels
    if _kernels is None:  # pragma: no cover - requires numba
        njit = _numba.njit

        @njit(fastmath=False)
        def _csr_mxv(indptr, indices, data, x, out):
            for i in range(out.shape[0]):
                acc = 0.0
                for jj in range(indptr[i], indptr[i + 1]):
                    acc += data[jj] * x[indices[jj]]
                out[i] = acc

        @njit(fastmath=False)
        def _csr_gs_step(indptr, indices, data, rows, diag, z, r, work):
            nloc = rows.shape[0]
            # phase 1: every product reads the pre-update z (the masked
            # mxv semantics — mandatory for bit-exactness under masks
            # that are not independent sets)
            for i in range(nloc):
                acc = 0.0
                for jj in range(indptr[i], indptr[i + 1]):
                    acc += data[jj] * z[indices[jj]]
                work[i] = acc
            # phase 2: the Listing-3 pointwise update, same expression
            # shape as the vectorised lambda
            for i in range(nloc):
                row = rows[i]
                d = diag[i]
                z[row] = (r[row] - work[i] + z[row] * d) / d

        @njit(fastmath=False)
        def _sell_mxv(lane_rows, lane_entries, data, indices, x, acc):
            # lane-major order: per permuted row, partial products
            # accumulate in CSR entry order starting from +0.0
            for k in range(lane_rows.shape[0]):
                e = lane_entries[k]
                acc[lane_rows[k]] += data[e] * x[indices[e]]

        @njit(fastmath=False)
        def _blocked_mxv(colmap, data, present, widths, x, out):
            # ascending column lanes with the presence mask — the numpy
            # masked-add order, so padding cells never touch the sum
            nblocks, R, _ = data.shape
            nrows = out.shape[0]
            for b in range(nblocks):
                w = widths[b]
                for rl in range(R):
                    row = b * R + rl
                    if row >= nrows:
                        continue
                    acc = 0.0
                    for lane in range(w):
                        if present[b, rl, lane]:
                            acc += data[b, rl, lane] * x[colmap[b, lane]]
                    out[row] = acc

        @njit(fastmath=False)
        def _csr_mxv_waxpby(indptr, indices, data, z, alpha, v, beta, out):
            # w = alpha*v + beta*(A z): the row product accumulates
            # exactly as _csr_mxv, then the axpby lands in one store
            for i in range(out.shape[0]):
                acc = 0.0
                for jj in range(indptr[i], indptr[i + 1]):
                    acc += data[jj] * z[indices[jj]]
                out[i] = alpha * v[i] + beta * acc

        class _Kernels:
            csr_mxv = staticmethod(_csr_mxv)
            csr_gs_step = staticmethod(_csr_gs_step)
            sell_mxv = staticmethod(_sell_mxv)
            blocked_mxv = staticmethod(_blocked_mxv)
            csr_mxv_waxpby = staticmethod(_csr_mxv_waxpby)

        _kernels = _Kernels
    return _kernels


def _load_parallel():
    """Compile (once) and return the prange kernel namespace."""
    global _kernels_par
    if _kernels_par is None:  # pragma: no cover - requires numba
        njit = _numba.njit
        prange = _numba.prange

        @njit(fastmath=False, parallel=True)
        def _csr_mxv_par(indptr, indices, data, x, out):
            # rows are independent: one thread per row range, identical
            # per-row accumulation
            for i in prange(out.shape[0]):
                acc = 0.0
                for jj in range(indptr[i], indptr[i + 1]):
                    acc += data[jj] * x[indices[jj]]
                out[i] = acc

        @njit(fastmath=False, parallel=True)
        def _csr_gs_step_par(indptr, indices, data, rows, diag, z, r,
                             work):
            nloc = rows.shape[0]
            # each phase parallelises over its own disjoint writes; the
            # barrier between them preserves the pre-update-z reads
            for i in prange(nloc):
                acc = 0.0
                for jj in range(indptr[i], indptr[i + 1]):
                    acc += data[jj] * z[indices[jj]]
                work[i] = acc
            for i in prange(nloc):
                row = rows[i]
                d = diag[i]
                z[row] = (r[row] - work[i] + z[row] * d) / d

        @njit(fastmath=False, parallel=True)
        def _sell_mxv_par(perm, indptr, indices, data, x, out):
            # parallel over permuted rows, each walking its CSR entries
            # in ascending order — the exact per-row arithmetic of the
            # serial lane-major pass, reassociated across rows only
            for k in prange(perm.shape[0]):
                row = perm[k]
                acc = 0.0
                for jj in range(indptr[row], indptr[row + 1]):
                    acc += data[jj] * x[indices[jj]]
                out[row] = acc

        @njit(fastmath=False, parallel=True)
        def _blocked_mxv_par(colmap, data, present, widths, x, out):
            # row blocks are disjoint: one thread per block range
            nblocks, R, _ = data.shape
            nrows = out.shape[0]
            for b in prange(nblocks):
                w = widths[b]
                for rl in range(R):
                    row = b * R + rl
                    if row >= nrows:
                        continue
                    acc = 0.0
                    for lane in range(w):
                        if present[b, rl, lane]:
                            acc += data[b, rl, lane] * x[colmap[b, lane]]
                    out[row] = acc

        @njit(fastmath=False, parallel=True)
        def _csr_mxv_waxpby_par(indptr, indices, data, z, alpha, v, beta,
                                out):
            for i in prange(out.shape[0]):
                acc = 0.0
                for jj in range(indptr[i], indptr[i + 1]):
                    acc += data[jj] * z[indices[jj]]
                out[i] = alpha * v[i] + beta * acc

        class _ParKernels:
            csr_mxv = staticmethod(_csr_mxv_par)
            csr_gs_step = staticmethod(_csr_gs_step_par)
            sell_mxv = staticmethod(_sell_mxv_par)
            blocked_mxv = staticmethod(_blocked_mxv_par)
            csr_mxv_waxpby = staticmethod(_csr_mxv_waxpby_par)

        _kernels_par = _ParKernels
    return _kernels_par


def _set_threads(nthreads: int) -> None:  # pragma: no cover - numba
    """Pin numba's team size for the next parallel kernel call,
    clamped to the layer's launch-time maximum."""
    limit = getattr(_numba.config, "NUMBA_NUM_THREADS", nthreads)
    _numba.set_num_threads(max(1, min(nthreads, limit)))


def csr_mxv(csr, x: np.ndarray,
            nthreads: int = 1) -> np.ndarray:  # pragma: no cover - numba
    """``csr @ x`` through the compiled lane (caller gates dtypes)."""
    out = np.empty(csr.shape[0], dtype=np.float64)
    if nthreads > 1:
        _set_threads(nthreads)
        _load_parallel().csr_mxv(csr.indptr, csr.indices, csr.data, x, out)
    else:
        _load().csr_mxv(csr.indptr, csr.indices, csr.data, x, out)
    return out


def csr_gs_step(csr, rows: np.ndarray, diag: np.ndarray, z: np.ndarray,
                r: np.ndarray, work: np.ndarray,
                nthreads: int = 1) -> None:  # pragma: no cover
    """One fused colour step over the row block ``csr`` (= A[rows, :])."""
    if nthreads > 1:
        _set_threads(nthreads)
        _load_parallel().csr_gs_step(csr.indptr, csr.indices, csr.data,
                                     rows, diag, z, r, work)
    else:
        _load().csr_gs_step(csr.indptr, csr.indices, csr.data, rows, diag,
                            z, r, work)


def sell_mxv(lane_rows: np.ndarray, lane_entries: np.ndarray,
             data: np.ndarray, indices: np.ndarray, x: np.ndarray,
             perm: np.ndarray, nrows: int) -> np.ndarray:  # pragma: no cover
    """The SELL-C-σ lane product over packed lane-major gather lists."""
    acc = np.zeros(nrows, dtype=np.float64)
    _load().sell_mxv(lane_rows, lane_entries, data, indices, x, acc)
    y = np.empty(nrows, dtype=np.float64)
    y[perm] = acc
    return y


def sell_mxv_par(csr, perm: np.ndarray, x: np.ndarray,
                 nthreads: int) -> np.ndarray:  # pragma: no cover - numba
    """The SELL-C-σ product, parallel over permuted rows.

    Each permuted row accumulates its CSR entries in ascending column
    order — the identical per-row arithmetic of the lane-major pass —
    and writes its own output element, so any thread count matches the
    serial lane bit for bit.
    """
    out = np.empty(csr.shape[0], dtype=np.float64)
    _set_threads(nthreads)
    _load_parallel().sell_mxv(perm, csr.indptr, csr.indices, csr.data,
                              x, out)
    return out


def blocked_mxv(colmap: np.ndarray, data: np.ndarray, present: np.ndarray,
                widths: np.ndarray, x: np.ndarray, nrows: int,
                nthreads: int = 1) -> np.ndarray:  # pragma: no cover
    """The blocked-dense mini-GEMVs through the compiled lane."""
    out = np.empty(nrows, dtype=np.float64)
    if nthreads > 1:
        _set_threads(nthreads)
        _load_parallel().blocked_mxv(colmap, data, present, widths, x, out)
    else:
        _load().blocked_mxv(colmap, data, present, widths, x, out)
    return out


def csr_mxv_waxpby(csr, z: np.ndarray, alpha: float, v: np.ndarray,
                   beta: float, out: np.ndarray,
                   nthreads: int = 1) -> None:  # pragma: no cover - numba
    """``out = alpha*v + beta*(csr @ z)`` in one compiled pass."""
    if nthreads > 1:
        _set_threads(nthreads)
        _load_parallel().csr_mxv_waxpby(csr.indptr, csr.indices, csr.data,
                                        z, alpha, v, beta, out)
    else:
        _load().csr_mxv_waxpby(csr.indptr, csr.indices, csr.data,
                               z, alpha, v, beta, out)
