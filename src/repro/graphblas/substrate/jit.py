"""The optional numba-compiled kernel lane.

The ROADMAP's substrate headroom — *"a numba/cython compiled lane
kernel for SELL-C-σ"* — realised as a soft dependency: when numba is
importable (and not disabled via ``REPRO_JIT=0``) the providers route
their hottest loops through ``@njit``-compiled kernels; otherwise every
call falls back to the pure-numpy implementations, bit for bit.  Numba
is never required — this module imports cleanly without it, and
:func:`available` is the single gate every caller checks.

Three kernels, matching the fast paths the fused smoother sweep needs:

* :func:`csr_mxv` — the CSR product, accumulating each row's partial
  products left-to-right in ascending column order from ``+0.0`` —
  the exact loop of scipy's compiled ``csr_matvec``, so results are
  bit-identical to the reference;
* :func:`csr_gs_step` — one fused multi-colour Gauss-Seidel colour
  step (product + pointwise update) over a colour's row block, in two
  phases (all products from the pre-update ``z``, then all updates) so
  it is bit-identical to the masked-mxv + eWiseLambda transcription
  for *arbitrary* colour masks, proper colourings or not;
* :func:`sell_mxv` — the SELL-C-σ lane product over the provider's
  packed lane-major gather lists, one compiled pass instead of one
  vectorised numpy pass per lane.

Compilation is lazy (first call) and per-dtype via numba's dispatcher;
callers gate on float64 data before entering, matching the dtypes the
kernels are exercised with.  ``REPRO_JIT`` is read per call so tests
can flip the lane on and off without reimporting.
"""

from __future__ import annotations

import os

import numpy as np

#: Environment kill switch: ``0``/``off``/``no``/``false`` disables the
#: compiled lane even when numba is importable.
ENV_VAR = "REPRO_JIT"

try:  # pragma: no cover - exercised only where numba is installed
    import numba as _numba
except ImportError:  # the supported, tested-everywhere configuration
    _numba = None

_kernels = None


def enabled() -> bool:
    """The ``REPRO_JIT`` switch (default on; numba presence is separate)."""
    return os.environ.get(ENV_VAR, "").strip().lower() not in (
        "0", "off", "no", "false"
    )


def available() -> bool:
    """True when the compiled lane can actually run: numba importable
    and ``REPRO_JIT`` not switched off."""
    return _numba is not None and enabled()


def _load():
    """Compile (once) and return the kernel namespace."""
    global _kernels
    if _kernels is None:  # pragma: no cover - requires numba
        njit = _numba.njit

        @njit(fastmath=False)
        def _csr_mxv(indptr, indices, data, x, out):
            for i in range(out.shape[0]):
                acc = 0.0
                for jj in range(indptr[i], indptr[i + 1]):
                    acc += data[jj] * x[indices[jj]]
                out[i] = acc

        @njit(fastmath=False)
        def _csr_gs_step(indptr, indices, data, rows, diag, z, r, work):
            nloc = rows.shape[0]
            # phase 1: every product reads the pre-update z (the masked
            # mxv semantics — mandatory for bit-exactness under masks
            # that are not independent sets)
            for i in range(nloc):
                acc = 0.0
                for jj in range(indptr[i], indptr[i + 1]):
                    acc += data[jj] * z[indices[jj]]
                work[i] = acc
            # phase 2: the Listing-3 pointwise update, same expression
            # shape as the vectorised lambda
            for i in range(nloc):
                row = rows[i]
                d = diag[i]
                z[row] = (r[row] - work[i] + z[row] * d) / d

        @njit(fastmath=False)
        def _sell_mxv(lane_rows, lane_entries, data, indices, x, acc):
            # lane-major order: per permuted row, partial products
            # accumulate in CSR entry order starting from +0.0
            for k in range(lane_rows.shape[0]):
                e = lane_entries[k]
                acc[lane_rows[k]] += data[e] * x[indices[e]]

        class _Kernels:
            csr_mxv = staticmethod(_csr_mxv)
            csr_gs_step = staticmethod(_csr_gs_step)
            sell_mxv = staticmethod(_sell_mxv)

        _kernels = _Kernels
    return _kernels


def csr_mxv(csr, x: np.ndarray) -> np.ndarray:  # pragma: no cover - numba
    """``csr @ x`` through the compiled lane (caller gates dtypes)."""
    out = np.empty(csr.shape[0], dtype=np.float64)
    _load().csr_mxv(csr.indptr, csr.indices, csr.data, x, out)
    return out


def csr_gs_step(csr, rows: np.ndarray, diag: np.ndarray, z: np.ndarray,
                r: np.ndarray, work: np.ndarray) -> None:  # pragma: no cover
    """One fused colour step over the row block ``csr`` (= A[rows, :])."""
    _load().csr_gs_step(csr.indptr, csr.indices, csr.data, rows, diag,
                        z, r, work)


def sell_mxv(lane_rows: np.ndarray, lane_entries: np.ndarray,
             data: np.ndarray, indices: np.ndarray, x: np.ndarray,
             perm: np.ndarray, nrows: int) -> np.ndarray:  # pragma: no cover
    """The SELL-C-σ lane product over packed lane-major gather lists."""
    acc = np.zeros(nrows, dtype=np.float64)
    _load().sell_mxv(lane_rows, lane_entries, data, indices, x, acc)
    y = np.empty(nrows, dtype=np.float64)
    y[perm] = acc
    return y
