"""Provider registry, forcing, and the per-matrix selection heuristic.

Selection order, mirroring how ALP picks a backend:

1. an explicit request (``Matrix(..., substrate="sellcs")`` or
   ``Matrix.set_substrate``) always wins — algorithm studies need to
   pin a format.  The request may also be the selection *mode*
   ``"model"``, pinning this matrix to model-driven selection;
2. the ``REPRO_SUBSTRATE`` environment variable forces every
   *unpinned* matrix onto one provider — the CI lever proving the
   algorithm layer is substrate-independent — or, with
   ``REPRO_SUBSTRATE=model``, onto model-driven selection;
3. otherwise :func:`choose` inspects the matrix structure.

**Model-driven selection** (``"model"``, either as a pin, as a
``selection="model"`` argument to :func:`resolve`/:func:`make`, or via
the environment force) prices every registered provider with the
measured per-format byte rates of the cached
:class:`repro.tune.MachineProfile` and picks the cheapest
structurally-safe one.  When no profile is cached (or it is stale or
schema-incompatible) the mode falls back to the structure heuristic
below, silently — an uncalibrated machine behaves exactly as before.

The heuristic reads three signals from :class:`MatrixProfile` (size,
row-length coefficient of variation, density):

* small matrices stay on CSR — the coarse MG levels and test matrices
  never amortise a format conversion (``AUTO_MIN_SIZE`` rows);
* near-constant row lengths with substantial rows (the 27-point
  stencil: cv ≈ 0.2, ~27 nnz/row) take the dense-blocked provider,
  whose per-block ``x`` reuse is built for exactly that shape;
* moderately varying rows take SELL-C-σ, whose sorted slices keep
  vector lanes busy without ELLPACK's worst-case padding;
* heavy skew (power-law-ish, cv > 2) falls back to CSR, where padding
  cannot explode.
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Tuple, Type

import scipy.sparse as sp

from repro.graphblas.substrate.base import KernelProvider, MatrixProfile
from repro.graphblas.substrate.blocked import BlockedDenseProvider
from repro.graphblas.substrate.csr import CsrProvider
from repro.graphblas.substrate.sellcs import SellCSigmaProvider
from repro.util.errors import InvalidValue

ENV_VAR = "REPRO_SUBSTRATE"

#: the selection-mode sentinel: not a provider, a way of choosing one
MODEL = "model"

#: below this many rows auto-selection always stays on CSR
AUTO_MIN_SIZE = 32768

_REGISTRY: Dict[str, Type[KernelProvider]] = {}


def register(cls: Type[KernelProvider],
             replace: bool = False) -> Type[KernelProvider]:
    """Add a provider class under ``cls.name`` (usable as a decorator).

    Name collisions raise — silently shadowing a built-in (especially
    ``csr``, the bit-exactness reference) would reroute every fallback
    path through foreign code.  Pass ``replace=True`` to do it on
    purpose.
    """
    if not cls.name or cls.name == "abstract":
        raise InvalidValue("provider classes must define a unique name")
    if cls.name.lower() in (MODEL, "auto"):
        raise InvalidValue(
            f"{cls.name!r} is a reserved selection-mode name"
        )
    existing = _REGISTRY.get(cls.name)
    if existing is not None and existing is not cls and not replace:
        raise InvalidValue(
            f"substrate {cls.name!r} is already registered "
            f"({existing.__name__}); pass replace=True to override"
        )
    _REGISTRY[cls.name] = cls
    return cls


def available() -> Tuple[str, ...]:
    """Registered provider names, registration order."""
    return tuple(_REGISTRY)


def get(name: str) -> Type[KernelProvider]:
    """The provider class registered under ``name``."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise InvalidValue(
            f"unknown substrate {name!r}; available: {', '.join(_REGISTRY)}"
        ) from None


def forced() -> Optional[str]:
    """The ``REPRO_SUBSTRATE`` override, validated; None when unset/auto.

    Besides a provider name, the value may be :data:`MODEL` — the
    model-driven selection mode, returned as the literal ``"model"``.
    """
    name = os.environ.get(ENV_VAR, "").strip()
    if name.lower() in ("", "auto"):
        return None
    if name.lower() == MODEL:
        return MODEL
    get(name)  # raise on typos rather than silently ignoring the force
    return name


def validate_request(name: str) -> str:
    """Check a pin string: a registered provider name or ``"model"``."""
    if name != MODEL:
        get(name)
    return name


def choose(csr: sp.csr_matrix) -> str:
    """Pick a provider name from the matrix structure (rule order matters).

    Besides the row-length *distribution*, the gates bound the *maximum*
    row length relative to the mean: one outlier megarow barely moves
    the cv of a large matrix, but blocked-dense pads every block to the
    global maximum width (memory explodes) and SELL-C-σ pays one lane
    pass per entry of its widest row (mxv degenerates to a scalar loop).
    """
    p = MatrixProfile.from_csr(csr)
    if p.nrows < AUTO_MIN_SIZE or p.nnz == 0:
        return CsrProvider.name
    if p.density > 0.25:
        return BlockedDenseProvider.name
    if (p.cv_row_nnz <= 0.25 and p.mean_row_nnz >= 8.0
            and p.max_row_nnz <= 2.0 * p.mean_row_nnz):
        return BlockedDenseProvider.name
    if p.cv_row_nnz <= 2.0 and p.max_row_nnz <= 16.0 * p.mean_row_nnz:
        return SellCSigmaProvider.name
    return CsrProvider.name


def choose_model(csr: sp.csr_matrix, profile=None) -> str:
    """Pick a provider by predicted cost under a measured profile.

    ``profile`` defaults to the cached :func:`repro.tune.current_profile`;
    with none available this degrades to :func:`choose` — model mode on
    an uncalibrated machine is exactly the heuristic, no warnings.
    """
    from repro.tune import cache as tune_cache
    from repro.tune import select as tune_select

    if profile is None:
        profile = tune_cache.current_profile()
    if profile is None:
        return choose(csr)
    p = MatrixProfile.from_csr(csr)
    return tune_select.choose_model(p, profile, available(),
                                    min_size=AUTO_MIN_SIZE)


def _decided(csr: sp.csr_matrix, request: Optional[str],
             selection: Optional[str], chosen: str, reason: str) -> str:
    """Report one selection decision to the observability layer.

    ``reason`` names the rung of the selection ladder that fired:
    ``pin`` (explicit request), ``env`` (``REPRO_SUBSTRATE`` force),
    ``model`` (profile-priced) or ``heuristic`` (structure rules).
    Free when observability is off: one lazy import + one stack read.
    """
    from repro import obs

    if obs.enabled():
        obs.record_selection(
            nrows=int(csr.shape[0]), ncols=int(csr.shape[1]),
            nnz=int(csr.nnz), request=request, selection=selection,
            chosen=chosen, reason=reason,
        )
    return chosen


def resolve(csr: sp.csr_matrix, request: Optional[str] = None,
            selection: Optional[str] = None) -> str:
    """Apply the selection order: explicit > environment force > automatic.

    ``request`` is a provider name (or ``"model"``, equivalent to
    ``selection="model"``); ``selection`` picks the automatic mode —
    ``"heuristic"`` (default), ``"model"``, or ``None``/``"auto"``.

    When observability is enabled every call records its decision —
    which provider was chosen and *why* — on the run manifest (see
    :func:`repro.obs.record_selection`).
    """
    if request == MODEL:
        request, selection = None, MODEL
    if request is not None:
        get(request)
        return _decided(csr, request, selection, request, "pin")
    if selection not in (None, "auto", "heuristic", MODEL):
        raise InvalidValue(
            f"unknown selection mode {selection!r}; expected "
            f"'heuristic' or 'model'"
        )
    # an explicit selection mode is a pin: it beats the env force,
    # exactly as an explicit provider request does
    if selection == MODEL:
        return _decided(csr, request, selection, choose_model(csr), "model")
    if selection == "heuristic":
        return _decided(csr, request, selection, choose(csr), "heuristic")
    env = forced()
    if env == MODEL:
        return _decided(csr, request, selection, choose_model(csr), "model")
    if env is not None:
        return _decided(csr, request, selection, env, "env")
    return _decided(csr, request, selection, choose(csr), "heuristic")


def make(csr: sp.csr_matrix, request: Optional[str] = None,
         selection: Optional[str] = None) -> KernelProvider:
    """Build the provider :func:`resolve` selects for ``csr``."""
    return get(resolve(csr, request, selection))(csr)


register(CsrProvider)
register(SellCSigmaProvider)
register(BlockedDenseProvider)
