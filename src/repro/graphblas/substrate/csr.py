"""The CSR reference provider — the seed implementation, plus fast lanes.

Compressed Sparse Row via scipy is the format the paper names for
reference HPCG (Section III-B) and the bit-exactness yardstick every
other provider is measured against: ``csr_matvec`` accumulates each
row's partial products left-to-right in ascending column order from
``+0.0``.

Two accelerations ride on top without changing a single bit of output:

* with numba importable, ``mxv`` runs the compiled lane's CSR kernel
  (:mod:`repro.graphblas.substrate.jit`) — the identical sequential
  accumulation loop, minus scipy's per-call dispatch;
* :meth:`gs_color_sweep` returns :class:`CsrColorSweep`, whose colour
  step calls scipy's ``csr_matvec`` C kernel directly into a
  preallocated workspace (or, jitted, fuses product and pointwise
  update into one compiled pass).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.graphblas.substrate import jit, threads
from repro.graphblas.substrate.base import ColorSweep, KernelProvider

try:  # scipy's compiled SpMV entry point: zero-copy, no wrapper layers.
    from scipy.sparse import _sparsetools as _sp_tools

    _csr_matvec = _sp_tools.csr_matvec
except (ImportError, AttributeError):  # pragma: no cover - old scipy
    _csr_matvec = None


class CsrProvider(KernelProvider):
    """scipy CSR: one indptr/indices/data triplet, no padding."""

    name = "csr"

    def _build(self) -> None:
        # the canonical CSR *is* the structure
        pass

    def mxv(self, x: np.ndarray) -> np.ndarray:
        csr = self._csr
        if (jit.available() and csr.dtype == np.float64
                and x.dtype == np.float64):
            return jit.csr_mxv(csr, x,
                               nthreads=threads.effective(
                                   self.mxv_traffic()[1]))
        return csr @ x

    def gs_color_sweep(self, color_rows: Sequence[np.ndarray],
                       diag: np.ndarray) -> Optional[ColorSweep]:
        return CsrColorSweep(self, color_rows, diag)

    def stored_entries(self) -> int:
        return self.nnz

    def mxv_traffic(self) -> Tuple[int, int]:
        # 8B value + 4B column index + ~4B amortised indptr/gather per
        # entry, plus read+write of the output row (the seed formula,
        # kept verbatim so CSR-run byte streams match the original
        # perf-model calibration).
        nnz, rows = self.nnz, self.nrows
        return 2 * nnz, nnz * 16 + rows * 16


class CsrColorSweep(ColorSweep):
    """The CSR fused sweep: raw C kernels over per-colour row blocks.

    The generic sweep's substructure ``mxv`` would pay scipy's
    ``__matmul__`` dispatch per colour step; this one holds the blocks'
    raw CSR arrays and a per-colour product workspace, and calls the
    ``csr_matvec`` C routine (or the jit lane's fully fused colour
    step) directly — the same accumulation loop either way.
    """

    def __init__(self, provider: CsrProvider,
                 color_rows: Sequence[np.ndarray], diag: np.ndarray):
        super().__init__(provider, color_rows, diag)
        self._blocks = [sub.csr for sub in self.subs]
        self._work = [np.empty(r.size, dtype=np.float64) for r in self.rows]

    def step(self, k: int, z: np.ndarray, r: np.ndarray) -> None:
        block = self._blocks[k]
        rows = self.rows[k]
        d = self.diags[k]
        work = self._work[k]
        if jit.available():
            jit.csr_gs_step(block, rows, d, z, r, work,
                            nthreads=threads.effective(
                                self.subs[k].mxv_traffic()[1]))
            return
        if _csr_matvec is not None:
            work.fill(0.0)  # csr_matvec accumulates onto its output
            _csr_matvec(block.shape[0], block.shape[1], block.indptr,
                        block.indices, block.data, z, work)
            s = work
        else:  # pragma: no cover - scipy without the private entry point
            s = block @ z
        z[rows] = (r[rows] - s + z[rows] * d) / d
