"""The CSR reference provider — the seed implementation, unchanged.

Compressed Sparse Row via scipy is the format the paper names for
reference HPCG (Section III-B) and the bit-exactness yardstick every
other provider is measured against: ``csr_matvec`` accumulates each
row's partial products left-to-right in ascending column order from
``+0.0``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.graphblas.substrate.base import KernelProvider


class CsrProvider(KernelProvider):
    """scipy CSR: one indptr/indices/data triplet, no padding."""

    name = "csr"

    def _build(self) -> None:
        # the canonical CSR *is* the structure
        pass

    def mxv(self, x: np.ndarray) -> np.ndarray:
        return self._csr @ x

    def stored_entries(self) -> int:
        return self.nnz

    def mxv_traffic(self) -> Tuple[int, int]:
        # 8B value + 4B column index + ~4B amortised indptr/gather per
        # entry, plus read+write of the output row (the seed formula,
        # kept verbatim so CSR-run byte streams match the original
        # perf-model calibration).
        nnz, rows = self.nnz, self.nrows
        return 2 * nnz, nnz * 16 + rows * 16
