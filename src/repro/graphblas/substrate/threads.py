"""``REPRO_THREADS``: resolution of the shared-memory parallel lane.

Every fast lane so far (``REPRO_JIT``, ``REPRO_FUSED``) is
single-threaded; this module owns the toggle that arms the *parallel*
variants of those lanes and the policy that sizes them:

* ``REPRO_THREADS=0`` (or ``off``/``no``/``false``) — kill switch: the
  parallel lane is disabled everywhere, serial kernels run bit-for-bit
  as before;
* ``REPRO_THREADS=1`` — explicitly serial (same kernels as ``0``; the
  distinction only matters to manifests, which record what was asked);
* ``REPRO_THREADS=N`` — exactly ``N`` threads wherever a parallel
  kernel exists;
* ``REPRO_THREADS=auto`` (or unset) — profile-driven: the cached
  :class:`~repro.tune.profile.MachineProfile`'s measured
  ``half_sat_threads`` (the thread count reaching half the saturated
  parallel SpMV rate) sizes the lane, and matrices too small to
  amortise fork/join overhead stay serial.  Without a cached profile
  the answer is 1 — **zero behaviour change by default**.

Like the other switches, the environment is read per call so tests can
flip the lane without reimporting.

Bit-exactness is a property of the kernels, not of this policy: every
parallel variant partitions *rows* across threads and keeps each row's
left-to-right accumulation (each output element is written by exactly
one thread with unchanged per-row arithmetic), so any resolved count
produces byte-identical results.  :class:`ChunkedSpmv` is the
numba-free embodiment used by the tune probe and the hybrid dist
executors: contiguous row blocks of a CSR matrix dispatched to a
``ThreadPoolExecutor`` (scipy's compiled ``csr_matvec`` releases the
GIL), each block writing its own disjoint output slice.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor, wait
from typing import List, Optional

import numpy as np
import scipy.sparse as sp

from repro.util.errors import DimensionMismatch, InvalidValue

#: The environment toggle: ``0`` / ``1`` / ``N`` / ``auto`` (default).
ENV_VAR = "REPRO_THREADS"

#: Values meaning "parallel lane off" (mirrors the other kill switches).
_OFF = ("0", "off", "no", "false")

#: Values meaning "size from the machine profile".
_AUTO = ("", "auto")

#: In ``auto`` mode, operators streaming fewer bytes than this stay
#: serial — fork/join overhead never amortises on tiny colour blocks.
#: An explicit ``REPRO_THREADS=N`` is always honoured.
AUTO_MIN_BYTES = 1 << 20


def raw() -> str:
    return os.environ.get(ENV_VAR, "").strip().lower()


def enabled() -> bool:
    """False only under the kill switch (``REPRO_THREADS=0``)."""
    return raw() not in _OFF


def requested() -> Optional[int]:
    """The explicit thread count, or ``None`` for auto.

    The kill switch and ``1`` both resolve to an explicit 1; malformed
    values raise :class:`InvalidValue` (manifest capture catches it).
    """
    value = raw()
    if value in _AUTO:
        return None
    if value in _OFF:
        return 1
    try:
        count = int(value)
    except ValueError:
        raise InvalidValue(
            f"{ENV_VAR} must be 0, 1, a thread count or 'auto', "
            f"got {value!r}"
        ) from None
    if count < 1:
        raise InvalidValue(
            f"{ENV_VAR} thread count must be >= 1, got {count}"
        )
    return count


def resolve() -> int:
    """The effective thread count of the parallel lane.

    Explicit requests win verbatim; ``auto`` consults the cached
    machine profile's thread-sweep fit (and demotes to 1 when the
    measured scaling shows no win, or when no profile is cached).
    """
    explicit = requested()
    if explicit is not None:
        return explicit
    from repro.tune import cache as tune_cache  # lazy: tune imports us

    profile = tune_cache.current_profile()
    if profile is None:
        return 1
    half_sat = getattr(profile, "half_sat_threads", 1)
    if half_sat <= 1:
        return 1
    # only parallelise when the measured sweep says the fitted count
    # actually beats one thread on the probed kernel
    rates = getattr(profile, "thread_rates", {}).get("spmv", {})
    serial = rates.get("1")
    fitted = rates.get(str(half_sat))
    if serial and fitted and fitted <= serial:
        return 1
    return max(1, min(int(half_sat), os.cpu_count() or 1))


def effective(nbytes: Optional[float] = None) -> int:
    """Per-matrix thread count: :func:`resolve`, with the auto policy
    demoting operators too small to amortise fork/join."""
    count = resolve()
    if count <= 1:
        return 1
    if (nbytes is not None and nbytes < AUTO_MIN_BYTES
            and requested() is None):
        return 1
    return count


def lane_name(nbytes: Optional[float] = None) -> str:
    """Which kernel lane a float64 hot loop runs on right now:
    ``numpy`` / ``jit`` / ``jit-parallel`` — the span attribute
    ``obs diff`` uses to attribute serial-vs-parallel movement."""
    from repro.graphblas.substrate import jit  # avoid import cycle

    if not jit.available():
        return "numpy"
    if jit.parallel_available() and effective(nbytes) > 1:
        return "jit-parallel"
    return "jit"


class ChunkedSpmv:
    """``csr @ x`` over contiguous row chunks on a thread pool.

    Row slicing keeps every row's entries in ascending column order, so
    each chunk accumulates exactly as the whole matrix does and the
    result is bit-identical to ``csr @ x`` for any chunk count.  With
    one thread the kernel runs inline (no pool, no overhead) — the
    serial baseline the tune probe and hybrid calibration compare
    against.
    """

    def __init__(self, csr: sp.csr_matrix, nthreads: int):
        if nthreads < 1:
            raise InvalidValue(f"need >= 1 thread, got {nthreads}")
        csr = csr.tocsr()
        if not csr.has_sorted_indices:
            csr = csr.copy()
            csr.sort_indices()
        self.csr = csr
        self.n = csr.shape[0]
        self.nthreads = min(nthreads, max(self.n, 1))
        bounds = np.linspace(0, self.n, self.nthreads + 1).astype(np.int64)
        self._spans = [(int(lo), int(hi))
                       for lo, hi in zip(bounds[:-1], bounds[1:])
                       if hi > lo]
        self._blocks: List[sp.csr_matrix] = [
            csr[lo:hi, :] for lo, hi in self._spans
        ]
        self._pool = (ThreadPoolExecutor(max_workers=len(self._spans))
                      if len(self._spans) > 1 else None)

    def _run_block(self, block: sp.csr_matrix, x: np.ndarray,
                   out: np.ndarray) -> None:
        # the same compiled accumulation loop the CSR provider uses
        try:
            from scipy.sparse import _sparsetools

            out.fill(0.0)  # csr_matvec accumulates onto its output
            _sparsetools.csr_matvec(
                block.shape[0], block.shape[1], block.indptr,
                block.indices, block.data, x, out)
        except (ImportError, AttributeError):  # pragma: no cover
            out[:] = block @ x

    def __call__(self, x: np.ndarray,
                 out: Optional[np.ndarray] = None) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        # csr_matvec trusts its operand sizes (it would read out of
        # bounds), so the bounds live here
        if x.shape[0] != self.csr.shape[1]:
            raise DimensionMismatch(
                f"vector size {x.shape[0]} != matrix columns "
                f"{self.csr.shape[1]}"
            )
        if out is None:
            out = np.empty(self.n, dtype=np.float64)
        elif out.shape[0] != self.n:
            raise DimensionMismatch(
                f"output size {out.shape[0]} != matrix rows {self.n}"
            )
        if self._pool is None:
            if self._blocks:
                self._run_block(self._blocks[0], x, out)
            return out
        futures = [
            self._pool.submit(self._run_block, block, x, out[lo:hi])
            for (lo, hi), block in zip(self._spans, self._blocks)
        ]
        wait(futures)
        for future in futures:
            future.result()   # re-raise any worker exception
        return out

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ChunkedSpmv":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
