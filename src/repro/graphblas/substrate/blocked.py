"""Dense-blocked rows: the stencil-shaped BCSR-style provider.

HPCG's 27-point operator has near-constant row lengths whose column
patterns overlap heavily between neighbouring rows (nine contiguous
runs that shift by one per row along the x line).  Blocking ``R``
consecutive rows and storing them *dense* over the union of their
column windows turns the product into per-block dense mini-GEMVs: the
``x`` gather happens once per block column and is reused by all ``R``
rows — the reuse hand-tuned stencil kernels exploit, and the
"dense-blocked CSR" substrate the paper's Section III-B contrasts with
plain CSR.

Layout: block ``b`` owns rows ``[b*R, (b+1)*R)``; ``colmap[b]`` holds
the sorted union of their columns (padded to the widest block for
vectorisation); ``data[b]`` is the dense ``R × width`` value block and
``present[b]`` marks which cells are stored entries.  ``mxv`` walks the
column lanes in ascending order and accumulates with a masked add, so
each row sums its entries in CSR order starting from ``+0.0`` —
bit-identical to the reference (a plain dense dot over the block would
add explicit zeros and flip signed zeros).

Traffic prices the physical dense blocks: every cell of every block
streams its 8-byte value, stored zeros included — the format's padding
cost — while column indices and ``x`` gathers are paid once per block
column instead of once per entry — the format's payoff.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
import scipy.sparse as sp

from repro.graphblas.substrate import jit, threads
from repro.graphblas.substrate.base import KernelProvider


class BlockedDenseProvider(KernelProvider):
    """Dense row-blocks over compressed column windows (default R=4)."""

    name = "blocked"

    def __init__(self, csr: sp.csr_matrix, block_rows: int = 4):
        if block_rows < 1:
            raise ValueError("block height must be >= 1")
        self.block_rows = block_rows
        super().__init__(csr)

    def _build(self) -> None:
        n, R = self.nrows, self.block_rows
        csr = self._csr
        nblocks = -(-n // R) if n else 0
        self._nblocks = nblocks
        widths = np.zeros(nblocks, dtype=np.int64)
        block_cols = []
        for b in range(nblocks):
            lo, hi = csr.indptr[b * R], csr.indptr[min((b + 1) * R, n)]
            cols = np.unique(csr.indices[lo:hi])
            block_cols.append(cols)
            widths[b] = cols.size
        W = int(widths.max()) if nblocks else 0
        self._widths = widths
        self._colmap = np.zeros((nblocks, W), dtype=np.int64)
        self._data = np.zeros((nblocks, R, W), dtype=csr.dtype)
        self._present = np.zeros((nblocks, R, W), dtype=bool)
        for b in range(nblocks):
            cols = block_cols[b]
            self._colmap[b, : cols.size] = cols
            r0, r1 = b * R, min((b + 1) * R, n)
            lo, hi = csr.indptr[r0], csr.indptr[r1]
            local_row = np.repeat(
                np.arange(r1 - r0), np.diff(csr.indptr[r0 : r1 + 1])
            )
            lane = np.searchsorted(cols, csr.indices[lo:hi])
            self._data[b, local_row, lane] = csr.data[lo:hi]
            self._present[b, local_row, lane] = True

    def mxv(self, x: np.ndarray) -> np.ndarray:
        csr = self._csr
        if csr.dtype == bool or x.dtype == bool:
            return csr @ x
        out_dtype = np.result_type(csr.dtype, x.dtype)
        if self._nblocks == 0:
            return np.zeros(self.nrows, dtype=out_dtype)
        if (jit.available() and csr.dtype == np.float64
                and x.dtype == np.float64):
            # the compiled mini-GEMV lane: same ascending column lanes
            # with the presence mask, minus the per-lane numpy dispatch
            return jit.blocked_mxv(
                self._colmap, self._data, self._present, self._widths,
                x, self.nrows,
                nthreads=threads.effective(self.mxv_traffic()[1]))
        xs = x[self._colmap]                      # (nblocks, W): one gather
        acc = np.zeros((self._nblocks, self.block_rows), dtype=out_dtype)
        for lane in range(self._colmap.shape[1]):
            prod = self._data[:, :, lane] * xs[:, lane, None]
            np.add(acc, prod, out=acc, where=self._present[:, :, lane])
        return acc.reshape(-1)[: self.nrows].astype(out_dtype, copy=False)

    def extract_rows(self, rows: np.ndarray) -> "BlockedDenseProvider":
        # keep the parent's block height so the substructure's traffic
        # pricing describes the same format variant
        return type(self)(self._csr[rows, :], block_rows=self.block_rows)

    def stored_entries(self) -> int:
        # dense cells of every block, stored zeros included
        return int((self._widths * self.block_rows).sum())

    # gs_color_sweep: the inherited ColorSweep already serves this
    # format — each colour's substructure re-blocks that colour's rows
    # via extract_rows (same block height), so the per-colour dense
    # mini-GEMVs and their padding pricing describe what the sweep
    # actually streams.

    def mxv_traffic(self) -> Tuple[int, int]:
        cells = self.stored_entries()
        ncols_total = int(self._widths.sum())
        # 8B per dense cell; 4B column index + 8B x gather once per
        # block column (shared by the R rows); output read + write
        return (
            2 * self.nnz,
            cells * 8 + ncols_total * 12 + self.nrows * 16,
        )
