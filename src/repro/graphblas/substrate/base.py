"""The kernel-provider interface and the per-matrix structure profile.

The paper's central architectural claim (Section III) is that an
ALP/GraphBLAS program names *what* to compute while the library is free
to choose *how*: the storage format and the kernel implementation — the
"substrate" — are selected per container, per matrix structure, without
the algorithm changing.  This package realises that split for the
reproduction: :class:`KernelProvider` is the contract a storage format
implements, and :class:`~repro.graphblas.matrix.Matrix` delegates its
hot paths (mxv, masked mxv, the transpose descriptor, the fused RBGS
product) to whichever provider is active.

Contract — **bit-exactness**.  Every provider must produce results
bit-identical to the scipy CSR reference (:class:`CsrProvider`): per
output row, partial products are accumulated left-to-right in ascending
column order starting from ``+0.0``, exactly as scipy's compiled
``csr_matvec`` does.  Formats that pad (SELL-C-σ slices, dense row
blocks) therefore *mask* their padding out of the accumulation instead
of adding ``0.0`` terms, which would flip signed zeros.  The property
suite in ``tests/test_substrate.py`` enforces this on random and
stencil matrices, and the tier-1 CI runs the whole suite with each
provider forced.

Cold paths (element access, ewise matrix algebra, select, mxm, I/O)
run on the canonical CSR every provider wraps — the format choice is an
acceleration decision for the bandwidth-bound kernels, not a second
source of truth.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import ClassVar, List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp


@dataclass(frozen=True)
class MatrixProfile:
    """Structure statistics driving per-matrix format selection.

    These are the quantities the auto-selection heuristic reads: size,
    density, and the shape of the row-length distribution (its mean and
    coefficient of variation).  A 27-point stencil row block has
    ``cv ≈ 0.2`` (fixed-length interior rows, shorter boundary rows); a
    power-law graph has ``cv >> 1``.
    """

    nrows: int
    ncols: int
    nnz: int
    mean_row_nnz: float
    max_row_nnz: int
    cv_row_nnz: float     # std/mean of the row-length distribution
    density: float        # nnz / (nrows * ncols)

    @classmethod
    def from_csr(cls, csr: sp.csr_matrix) -> "MatrixProfile":
        row_nnz = np.diff(csr.indptr)
        nnz = int(csr.nnz)
        nrows, ncols = csr.shape
        mean = float(row_nnz.mean()) if nrows else 0.0
        cv = float(row_nnz.std() / mean) if mean > 0 else 0.0
        return cls(
            nrows=nrows,
            ncols=ncols,
            nnz=nnz,
            mean_row_nnz=mean,
            max_row_nnz=int(row_nnz.max()) if nrows else 0,
            cv_row_nnz=cv,
            density=nnz / (nrows * ncols) if nrows and ncols else 0.0,
        )


class KernelProvider(abc.ABC):
    """One storage format + kernel implementation behind a ``Matrix``.

    A provider is built from (and keeps) a canonical sorted-index CSR;
    subclasses add their own acceleration structure in :meth:`_build`.
    The hot-path surface a provider serves:

    * :meth:`mxv` — the full dense-input plus-times product;
    * :meth:`extract_rows` — a same-format provider over a row subset,
      which is how masked mxv, the transpose-mxv descriptor (a provider
      over the transposed CSR) and the fused RBGS colour step execute;
    * :meth:`mxv_traffic` — the (flops, bytes) price of one product *in
      this format*, fed to :class:`repro.graphblas.backend.PerfEvent`
      so the performance model charges each substrate its own traffic
      (padding included).

    Reductions and elementwise matrix algebra read the canonical
    storage via :meth:`reduce_values` / :attr:`csr`.
    """

    #: registry key and the ``PerfEvent.fmt`` tag
    name: ClassVar[str] = "abstract"

    def __init__(self, csr: sp.csr_matrix):
        csr = csr.tocsr()
        if not csr.has_canonical_format:
            # one value per coordinate: duplicate column entries would be
            # summed by csr_matvec but last-write-win in a dense block
            csr = csr.copy()
            csr.sum_duplicates()
        self._csr = csr
        self._row_nnz = np.diff(csr.indptr)
        self._build()

    # --- structure ---------------------------------------------------------
    @abc.abstractmethod
    def _build(self) -> None:
        """Construct the format's acceleration structure from ``self._csr``."""

    @property
    def csr(self) -> sp.csr_matrix:
        """The canonical CSR this provider wraps (cold-path source of truth)."""
        return self._csr

    @property
    def shape(self) -> Tuple[int, int]:
        return self._csr.shape

    @property
    def nrows(self) -> int:
        return self._csr.shape[0]

    @property
    def ncols(self) -> int:
        return self._csr.shape[1]

    @property
    def nnz(self) -> int:
        return int(self._csr.nnz)

    @property
    def dtype(self) -> np.dtype:
        return self._csr.dtype

    @property
    def row_nnz(self) -> np.ndarray:
        """Stored entries per row (drives output-presence semantics)."""
        return self._row_nnz

    def profile(self) -> MatrixProfile:
        return MatrixProfile.from_csr(self._csr)

    # --- hot paths ---------------------------------------------------------
    @abc.abstractmethod
    def mxv(self, x: np.ndarray) -> np.ndarray:
        """``A @ x`` for dense ``x``, bit-identical to the CSR reference."""

    def extract_rows(self, rows: np.ndarray) -> "KernelProvider":
        """A same-format provider over ``A[rows, :]`` (masked-mxv path)."""
        return type(self)(self._csr[rows, :])

    # --- cold paths --------------------------------------------------------
    def reduce_values(self) -> np.ndarray:
        """All stored values, for monoid reductions over the matrix."""
        return self._csr.data

    # --- perf pricing ------------------------------------------------------
    @abc.abstractmethod
    def stored_entries(self) -> int:
        """Entries the format physically stores, padding included."""

    @abc.abstractmethod
    def mxv_traffic(self) -> Tuple[int, int]:
        """(flops, bytes) for one full :meth:`mxv` in this format.

        Flops count real multiply-adds only (padding is masked, never
        computed); bytes count the format's actual stored stream plus
        the gather/output vector traffic, so a padded format is priced
        for the padding it streams.
        """

    # --- fused smoother sweeps ---------------------------------------------
    def gs_color_sweep(self, color_rows: Sequence[np.ndarray],
                       diag: np.ndarray) -> Optional["ColorSweep"]:
        """An optional capability: a prebuilt fused multi-colour
        Gauss-Seidel sweep over this operator (see :class:`ColorSweep`).

        The base implementation serves every format through its own
        :meth:`extract_rows` substructures and :meth:`mxv` kernel, so a
        provider gets the fast path for free; formats with a sharper
        fused kernel (CSR's compiled colour step) override.  Return
        ``None`` to opt out — callers fall back to the reference
        masked-mxv + eWiseLambda transcription.
        """
        return ColorSweep(self, color_rows, diag)

    def fused_mxv_traffic(self, nvec: int) -> Tuple[int, int]:
        """(flops, bytes) for the fused product+lambda step over ``nvec``
        consumer vectors (:func:`repro.graphblas.fused`).

        Relative to :meth:`mxv_traffic`, fusion elides the tmp vector's
        round trip (16 B/row) and streams the input gather register-
        resident (4 B/entry — the seed model's CSR numbers, applied
        uniformly), then adds the lambda's own vector traffic.
        """
        flops, nbytes = self.mxv_traffic()
        rows = self.nrows
        return (
            flops + 4 * rows,
            nbytes - rows * 16 - self.nnz * 4 + rows * 8 * (nvec + 1),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(shape={self.shape}, nnz={self.nnz}, "
            f"stored={self.stored_entries()})"
        )


class ColorSweep:
    """A fused multi-colour Gauss-Seidel sweep, prebuilt for one provider.

    This is the hot path of the paper's centrepiece loop with every
    per-call cost hoisted to construction time: the per-colour row
    partitions (contiguous ``int64``), the gathered per-colour
    diagonals, one same-format substructure per colour (the provider's
    own :meth:`~KernelProvider.extract_rows`), and the per-colour
    ``(flops, bytes)`` price from the provider's fused-traffic hook.
    One :meth:`step` is then a direct gather/scatter:

    1. ``s = (A z)[rows_k]`` — the colour block's product, through the
       provider's kernel (compiled when the jit lane is available);
    2. ``z[rows_k] = (r[rows_k] - s + z[rows_k] * d) / d`` — the
       Listing-3 pointwise update, vectorised over the colour.

    **Bit-exactness**: both phases are exactly what the reference
    masked-mxv + eWiseLambda transcription executes — same substructure
    kernel, same per-row accumulation order from ``+0.0``, same update
    expression, all products read the pre-update ``z`` — so iterates
    are bit-identical (signed zeros included) for any provider, any
    colour masks, forward or backward order.
    """

    def __init__(self, provider: KernelProvider,
                 color_rows: Sequence[np.ndarray], diag: np.ndarray):
        self.fmt = provider.name
        self.rows: List[np.ndarray] = [
            np.ascontiguousarray(r, dtype=np.int64) for r in color_rows
        ]
        self.diags: List[np.ndarray] = [
            np.ascontiguousarray(diag[r]) for r in self.rows
        ]
        self.subs: List[KernelProvider] = [
            provider.extract_rows(r) for r in self.rows
        ]
        self.nnzs: List[int] = [s.nnz for s in self.subs]
        #: per-colour (flops, bytes) — what the perf layer records per step
        self.traffic: List[Tuple[int, int]] = [
            s.fused_mxv_traffic(3) for s in self.subs
        ]

    @property
    def ncolors(self) -> int:
        return len(self.rows)

    def step(self, k: int, z: np.ndarray, r: np.ndarray) -> None:
        """One colour's fused product + pointwise update, in place."""
        rows = self.rows[k]
        d = self.diags[k]
        s = self.subs[k].mxv(z)
        z[rows] = (r[rows] - s + z[rows] * d) / d

    def run(self, z: np.ndarray, r: np.ndarray, order) -> None:
        """A whole forward or backward sweep (``order`` = colour ids)."""
        for k in order:
            self.step(k, z, r)
