"""The kernel-provider interface and the per-matrix structure profile.

The paper's central architectural claim (Section III) is that an
ALP/GraphBLAS program names *what* to compute while the library is free
to choose *how*: the storage format and the kernel implementation — the
"substrate" — are selected per container, per matrix structure, without
the algorithm changing.  This package realises that split for the
reproduction: :class:`KernelProvider` is the contract a storage format
implements, and :class:`~repro.graphblas.matrix.Matrix` delegates its
hot paths (mxv, masked mxv, the transpose descriptor, the fused RBGS
product) to whichever provider is active.

Contract — **bit-exactness**.  Every provider must produce results
bit-identical to the scipy CSR reference (:class:`CsrProvider`): per
output row, partial products are accumulated left-to-right in ascending
column order starting from ``+0.0``, exactly as scipy's compiled
``csr_matvec`` does.  Formats that pad (SELL-C-σ slices, dense row
blocks) therefore *mask* their padding out of the accumulation instead
of adding ``0.0`` terms, which would flip signed zeros.  The property
suite in ``tests/test_substrate.py`` enforces this on random and
stencil matrices, and the tier-1 CI runs the whole suite with each
provider forced.

Cold paths (element access, ewise matrix algebra, select, mxm, I/O)
run on the canonical CSR every provider wraps — the format choice is an
acceleration decision for the bandwidth-bound kernels, not a second
source of truth.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import ClassVar, Tuple

import numpy as np
import scipy.sparse as sp


@dataclass(frozen=True)
class MatrixProfile:
    """Structure statistics driving per-matrix format selection.

    These are the quantities the auto-selection heuristic reads: size,
    density, and the shape of the row-length distribution (its mean and
    coefficient of variation).  A 27-point stencil row block has
    ``cv ≈ 0.2`` (fixed-length interior rows, shorter boundary rows); a
    power-law graph has ``cv >> 1``.
    """

    nrows: int
    ncols: int
    nnz: int
    mean_row_nnz: float
    max_row_nnz: int
    cv_row_nnz: float     # std/mean of the row-length distribution
    density: float        # nnz / (nrows * ncols)

    @classmethod
    def from_csr(cls, csr: sp.csr_matrix) -> "MatrixProfile":
        row_nnz = np.diff(csr.indptr)
        nnz = int(csr.nnz)
        nrows, ncols = csr.shape
        mean = float(row_nnz.mean()) if nrows else 0.0
        cv = float(row_nnz.std() / mean) if mean > 0 else 0.0
        return cls(
            nrows=nrows,
            ncols=ncols,
            nnz=nnz,
            mean_row_nnz=mean,
            max_row_nnz=int(row_nnz.max()) if nrows else 0,
            cv_row_nnz=cv,
            density=nnz / (nrows * ncols) if nrows and ncols else 0.0,
        )


class KernelProvider(abc.ABC):
    """One storage format + kernel implementation behind a ``Matrix``.

    A provider is built from (and keeps) a canonical sorted-index CSR;
    subclasses add their own acceleration structure in :meth:`_build`.
    The hot-path surface a provider serves:

    * :meth:`mxv` — the full dense-input plus-times product;
    * :meth:`extract_rows` — a same-format provider over a row subset,
      which is how masked mxv, the transpose-mxv descriptor (a provider
      over the transposed CSR) and the fused RBGS colour step execute;
    * :meth:`mxv_traffic` — the (flops, bytes) price of one product *in
      this format*, fed to :class:`repro.graphblas.backend.PerfEvent`
      so the performance model charges each substrate its own traffic
      (padding included).

    Reductions and elementwise matrix algebra read the canonical
    storage via :meth:`reduce_values` / :attr:`csr`.
    """

    #: registry key and the ``PerfEvent.fmt`` tag
    name: ClassVar[str] = "abstract"

    def __init__(self, csr: sp.csr_matrix):
        csr = csr.tocsr()
        if not csr.has_canonical_format:
            # one value per coordinate: duplicate column entries would be
            # summed by csr_matvec but last-write-win in a dense block
            csr = csr.copy()
            csr.sum_duplicates()
        self._csr = csr
        self._row_nnz = np.diff(csr.indptr)
        self._build()

    # --- structure ---------------------------------------------------------
    @abc.abstractmethod
    def _build(self) -> None:
        """Construct the format's acceleration structure from ``self._csr``."""

    @property
    def csr(self) -> sp.csr_matrix:
        """The canonical CSR this provider wraps (cold-path source of truth)."""
        return self._csr

    @property
    def shape(self) -> Tuple[int, int]:
        return self._csr.shape

    @property
    def nrows(self) -> int:
        return self._csr.shape[0]

    @property
    def ncols(self) -> int:
        return self._csr.shape[1]

    @property
    def nnz(self) -> int:
        return int(self._csr.nnz)

    @property
    def dtype(self) -> np.dtype:
        return self._csr.dtype

    @property
    def row_nnz(self) -> np.ndarray:
        """Stored entries per row (drives output-presence semantics)."""
        return self._row_nnz

    def profile(self) -> MatrixProfile:
        return MatrixProfile.from_csr(self._csr)

    # --- hot paths ---------------------------------------------------------
    @abc.abstractmethod
    def mxv(self, x: np.ndarray) -> np.ndarray:
        """``A @ x`` for dense ``x``, bit-identical to the CSR reference."""

    def extract_rows(self, rows: np.ndarray) -> "KernelProvider":
        """A same-format provider over ``A[rows, :]`` (masked-mxv path)."""
        return type(self)(self._csr[rows, :])

    # --- cold paths --------------------------------------------------------
    def reduce_values(self) -> np.ndarray:
        """All stored values, for monoid reductions over the matrix."""
        return self._csr.data

    # --- perf pricing ------------------------------------------------------
    @abc.abstractmethod
    def stored_entries(self) -> int:
        """Entries the format physically stores, padding included."""

    @abc.abstractmethod
    def mxv_traffic(self) -> Tuple[int, int]:
        """(flops, bytes) for one full :meth:`mxv` in this format.

        Flops count real multiply-adds only (padding is masked, never
        computed); bytes count the format's actual stored stream plus
        the gather/output vector traffic, so a padded format is priced
        for the padding it streams.
        """

    def fused_mxv_traffic(self, nvec: int) -> Tuple[int, int]:
        """(flops, bytes) for the fused product+lambda step over ``nvec``
        consumer vectors (:func:`repro.graphblas.fused`).

        Relative to :meth:`mxv_traffic`, fusion elides the tmp vector's
        round trip (16 B/row) and streams the input gather register-
        resident (4 B/entry — the seed model's CSR numbers, applied
        uniformly), then adds the lambda's own vector traffic.
        """
        flops, nbytes = self.mxv_traffic()
        rows = self.nrows
        return (
            flops + 4 * rows,
            nbytes - rows * 16 - self.nnz * 4 + rows * 8 * (nvec + 1),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(shape={self.shape}, nnz={self.nnz}, "
            f"stored={self.stored_entries()})"
        )
