"""``repro.graphblas.substrate`` — pluggable storage formats & kernels.

The substrate layer is the reproduction of the paper's key freedom: the
algorithm (``repro.hpcg``) names GraphBLAS operations; *this* package
decides how each matrix stores its entries and which kernel executes
them, per matrix, with an explicit override and a CI-enforced
bit-exactness contract across formats.

Public surface:

* :class:`KernelProvider` / :class:`MatrixProfile` — the format
  contract and the structure statistics selection reads;
* :class:`CsrProvider`, :class:`SellCSigmaProvider`,
  :class:`BlockedDenseProvider` — the three built-in formats;
* :func:`register` / :func:`available` / :func:`get` — the registry;
* :func:`choose` / :func:`choose_model` / :func:`resolve` /
  :func:`make` — per-matrix auto-selection (``REPRO_SUBSTRATE`` forces
  every unpinned matrix; ``REPRO_SUBSTRATE=model`` or
  ``selection="model"`` prices candidates with the measured
  :mod:`repro.tune` machine profile, falling back to the structure
  heuristic when none is cached);
* :class:`ColorSweep` — the fused multi-colour Gauss-Seidel sweep
  capability every provider serves (the smoother fast path);
* :mod:`~repro.graphblas.substrate.jit` — the optional numba-compiled
  kernel lane that transparently accelerates the providers
  (``REPRO_JIT=0`` disables; numba absent means pure numpy, bit for
  bit).
"""

from repro.graphblas.substrate import jit
from repro.graphblas.substrate.base import (
    ColorSweep,
    KernelProvider,
    MatrixProfile,
)
from repro.graphblas.substrate.blocked import BlockedDenseProvider
from repro.graphblas.substrate.csr import CsrProvider
from repro.graphblas.substrate.registry import (
    AUTO_MIN_SIZE,
    ENV_VAR,
    MODEL,
    available,
    choose,
    choose_model,
    forced,
    get,
    make,
    register,
    resolve,
    validate_request,
)
from repro.graphblas.substrate.sellcs import SellCSigmaProvider

__all__ = [
    "KernelProvider",
    "MatrixProfile",
    "ColorSweep",
    "jit",
    "CsrProvider",
    "SellCSigmaProvider",
    "BlockedDenseProvider",
    "register",
    "available",
    "get",
    "choose",
    "choose_model",
    "resolve",
    "make",
    "forced",
    "validate_request",
    "ENV_VAR",
    "MODEL",
    "AUTO_MIN_SIZE",
]
