"""SELL-C-σ: sliced ELLPACK with row sorting, the vector-friendly format.

SELL-C-σ (Kreutzer et al.) groups rows into slices of ``C``; within a
sorting window of ``σ`` rows, rows are ordered by descending length so
each slice packs similar-length rows and pads only to its own widest
row.  A vector unit then processes one slice lane-by-lane with unit
stride — the row-balanced layout the paper's ALP backends select for
matrices whose row lengths vary moderately.

This simulation keeps the structure as *lane gather lists*: for lane
``l``, the permuted rows still live at entry offset ``l`` of their CSR
row, so one ``mxv`` is ``max_row_nnz`` vectorised gather-multiply-add
passes.  Accumulation per row runs lane 0, 1, 2, … — the CSR entry
order — starting from ``+0.0``, and padding lanes are simply absent
from the lane lists, so results are bit-identical to
:class:`~repro.graphblas.substrate.csr.CsrProvider` (adding a padded
``0.0`` instead could turn a ``-0.0`` partial sum into ``+0.0``).

Traffic is priced from the *physical* SELL layout: every padded slice
entry streams a value and a column index even though it is masked out
of the arithmetic.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np
import scipy.sparse as sp

from repro.graphblas.substrate import jit, threads
from repro.graphblas.substrate.base import KernelProvider


class SellCSigmaProvider(KernelProvider):
    """SELL-C-σ slices (default C=32, σ=128)."""

    name = "sellcs"

    def __init__(self, csr: sp.csr_matrix, chunk: int = 32, sigma: int = 128):
        if chunk < 1 or sigma < 1:
            raise ValueError("SELL-C-σ needs chunk >= 1 and sigma >= 1")
        self.chunk = chunk
        self.sigma = max(sigma, chunk)
        super().__init__(csr)

    def _build(self) -> None:
        n = self.nrows
        row_nnz = self._row_nnz.astype(np.int64)
        # σ-window descending-length sort (stable: equal-length rows keep
        # their natural order, matching the published format).
        perm = np.arange(n, dtype=np.int64)
        for lo in range(0, n, self.sigma):
            hi = min(lo + self.sigma, n)
            order = np.argsort(-row_nnz[lo:hi], kind="stable")
            perm[lo:hi] = lo + order
        self._perm = perm
        permuted_nnz = row_nnz[perm]
        # physical slice widths -> padded storage volume
        padded = 0
        for lo in range(0, n, self.chunk):
            hi = min(lo + self.chunk, n)
            width = int(permuted_nnz[lo:hi].max()) if hi > lo else 0
            padded += (hi - lo) * width
        self._padded_entries = padded
        # lane gather lists: positions (in permuted order) and CSR entry
        # offsets of every row long enough to reach lane l.  Built in one
        # O(nnz log nnz) pass (stable sort of each entry by its lane)
        # instead of one full row scan per lane, which degenerates when a
        # single row is very wide.
        maxw = int(row_nnz.max()) if n else 0
        self._lane_rows: List[np.ndarray] = []
        self._lane_entries: List[np.ndarray] = []
        # packed lane-major copies of the same lists: what the jit
        # lane's single compiled pass walks
        self._lane_rows_flat = np.empty(0, dtype=np.int64)
        self._lane_entries_flat = np.empty(0, dtype=np.int64)
        if maxw:
            indptr = self._csr.indptr.astype(np.int64)
            starts = indptr[perm]
            total = int(permuted_nnz.sum())
            rows_rep = np.repeat(np.arange(n, dtype=np.int64), permuted_nnz)
            row_start = np.repeat(
                np.cumsum(permuted_nnz) - permuted_nnz, permuted_nnz)
            lane = np.arange(total, dtype=np.int64) - row_start
            entry = np.repeat(starts, permuted_nnz) + lane
            order = np.argsort(lane, kind="stable")
            bounds = np.searchsorted(lane[order], np.arange(maxw + 1))
            self._lane_rows_flat = np.ascontiguousarray(rows_rep[order])
            self._lane_entries_flat = np.ascontiguousarray(entry[order])
            for l in range(maxw):
                lo, hi = bounds[l], bounds[l + 1]
                self._lane_rows.append(self._lane_rows_flat[lo:hi])
                self._lane_entries.append(self._lane_entries_flat[lo:hi])

    def mxv(self, x: np.ndarray) -> np.ndarray:
        csr = self._csr
        if csr.dtype == bool or x.dtype == bool:
            # scipy's boolean upcast rules are the reference; lane
            # accumulation over np.bool_ would OR instead
            return csr @ x
        if (jit.available() and csr.dtype == np.float64
                and x.dtype == np.float64):
            nthreads = threads.effective(self.mxv_traffic()[1])
            if nthreads > 1 and jit.parallel_available():
                # parallel over permuted rows, each accumulating its
                # CSR entries ascending — per-row arithmetic identical
                # to the lane-major pass, so bits match at any count
                return jit.sell_mxv_par(csr, self._perm, x, nthreads)
            # the compiled lane: one pass over the packed lane-major
            # lists — the identical accumulation order, no per-lane
            # numpy dispatch
            return jit.sell_mxv(self._lane_rows_flat,
                                self._lane_entries_flat,
                                csr.data, csr.indices, x,
                                self._perm, self.nrows)
        out_dtype = np.result_type(csr.dtype, x.dtype)
        acc = np.zeros(self.nrows, dtype=out_dtype)
        data, indices = csr.data, csr.indices
        for rows_l, entries_l in zip(self._lane_rows, self._lane_entries):
            acc[rows_l] += data[entries_l] * x[indices[entries_l]]
        y = np.empty(self.nrows, dtype=out_dtype)
        y[self._perm] = acc
        return y

    def extract_rows(self, rows: np.ndarray) -> "SellCSigmaProvider":
        # keep the parent's slice parameters so the substructure's
        # padding/traffic pricing describes the same format variant
        return type(self)(self._csr[rows, :], chunk=self.chunk,
                          sigma=self.sigma)

    # gs_color_sweep: the inherited ColorSweep already serves this
    # format — each colour's substructure keeps the parent's (C, σ)
    # via extract_rows, and its products run the lane kernel above
    # (jit-compiled when the numba lane is available).

    def stored_entries(self) -> int:
        return self._padded_entries

    def mxv_traffic(self) -> Tuple[int, int]:
        # per padded entry: 8B value + 4B column (no indptr stream);
        # per real entry: 8B x gather; per row: output read + write
        return (
            2 * self.nnz,
            self._padded_entries * 12 + self.nnz * 8 + self.nrows * 16,
        )
