"""Container import/export: MatrixMarket-style text I/O and generators.

These utilities live at the I/O boundary, where GraphBLAS permits
non-opaque data exchange (``GrB_Matrix_build`` / ``extractTuples``).
Ingestion and export run inside ``io/*`` observability spans carrying
the container shape, so slow file I/O is attributable in trace diffs
and flamegraphs next to the kernels it feeds.
"""

from __future__ import annotations

import io as _io
from pathlib import Path
from typing import Optional, Tuple, Union

import numpy as np

from repro import obs
from repro.graphblas.matrix import Matrix
from repro.graphblas.vector import Vector
from repro.util.errors import InvalidValue


def mmwrite(target: Union[str, Path, _io.TextIOBase], A: Matrix, comment: str = "") -> None:
    """Write a matrix in MatrixMarket coordinate format (1-based)."""
    with obs.span("io/mmwrite", "io",
                  {"nrows": A.nrows, "ncols": A.ncols, "nnz": A.nvals}):
        rows, cols, vals = A.to_coo()
        lines = ["%%MatrixMarket matrix coordinate real general"]
        if comment:
            lines.extend(f"% {line}" for line in comment.splitlines())
        lines.append(f"{A.nrows} {A.ncols} {A.nvals}")
        lines.extend(
            f"{r + 1} {c + 1} {v:.17g}" for r, c, v in zip(rows, cols, vals)
        )
        text = "\n".join(lines) + "\n"
        if isinstance(target, (str, Path)):
            Path(target).write_text(text)
        else:
            target.write(text)


def mmread(source: Union[str, Path, _io.TextIOBase]) -> Matrix:
    """Read a MatrixMarket coordinate file written by :func:`mmwrite`."""
    with obs.span("io/mmread", "io") as span:
        if isinstance(source, (str, Path)):
            text = Path(source).read_text()
        else:
            text = source.read()
        lines = [ln for ln in text.splitlines() if ln.strip()]
        if not lines or not lines[0].startswith("%%MatrixMarket"):
            raise InvalidValue("not a MatrixMarket file")
        body = [ln for ln in lines[1:] if not ln.startswith("%")]
        nrows, ncols, nnz = (int(tok) for tok in body[0].split())
        if len(body) - 1 != nnz:
            raise InvalidValue(
                f"expected {nnz} entries, found {len(body) - 1}"
            )
        if span is not None:
            span.set(nrows=nrows, ncols=ncols, nnz=nnz)
        rows = np.empty(nnz, dtype=np.int64)
        cols = np.empty(nnz, dtype=np.int64)
        vals = np.empty(nnz, dtype=np.float64)
        for k, ln in enumerate(body[1:]):
            r, c, v = ln.split()
            rows[k], cols[k], vals[k] = int(r) - 1, int(c) - 1, float(v)
        return Matrix.from_coo(rows, cols, vals, nrows, ncols)


def random_matrix(
    nrows: int,
    ncols: int,
    density: float,
    rng: Optional[np.random.Generator] = None,
    dtype=np.float64,
) -> Matrix:
    """A uniformly random sparse matrix (for tests and examples)."""
    if not 0 <= density <= 1:
        raise InvalidValue(f"density must be in [0, 1], got {density}")
    rng = rng or np.random.default_rng()
    nnz = int(round(density * nrows * ncols))
    flat = rng.choice(nrows * ncols, size=nnz, replace=False) if nnz else np.empty(0, dtype=np.int64)
    rows, cols = np.divmod(flat, ncols)
    vals = rng.standard_normal(nnz).astype(dtype)
    return Matrix.from_coo(rows, cols, vals, nrows, ncols)


def random_vector(
    size: int,
    density: float,
    rng: Optional[np.random.Generator] = None,
    dtype=np.float64,
) -> Vector:
    """A uniformly random sparse vector."""
    if not 0 <= density <= 1:
        raise InvalidValue(f"density must be in [0, 1], got {density}")
    rng = rng or np.random.default_rng()
    nnz = int(round(density * size))
    idx = rng.choice(size, size=nnz, replace=False) if nnz else np.empty(0, dtype=np.int64)
    vals = rng.standard_normal(nnz).astype(dtype)
    return Vector.from_coo(idx, vals, size, dtype=dtype)
