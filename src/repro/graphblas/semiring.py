"""Semirings: an additive monoid combined with a multiplicative operator.

The semiring is the algebraic structure GraphBLAS attaches to ``mxv`` /
``vxm`` / ``mxm`` and to ``dot``.  HPCG only needs the conventional
arithmetic semiring (plus-times over FP64), but the substrate supports
the usual alternative semirings so it stands alone as a GraphBLAS
implementation (and the test suite uses them to validate the generic
execution paths).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graphblas import monoid as _monoid
from repro.graphblas import ops
from repro.graphblas.monoid import Monoid
from repro.graphblas.ops import BinaryOp


@dataclass(frozen=True)
class Semiring:
    """``(add, mul)`` pair; ``add`` must be a monoid."""

    add: Monoid
    mul: BinaryOp

    @property
    def name(self) -> str:
        return f"{self.add.op.name}_{self.mul.name}"

    @property
    def is_plus_times(self) -> bool:
        """True for the conventional arithmetic semiring.

        This is the condition for dispatching to the fast scipy CSR
        product inside ``mxv``/``mxm``.
        """
        return self.add.op.name == "plus" and self.mul.name == "times"


# --- predefined semirings ---------------------------------------------------
plus_times = Semiring(_monoid.plus_monoid, ops.times)
plus_first = Semiring(_monoid.plus_monoid, ops.first)
plus_second = Semiring(_monoid.plus_monoid, ops.second)
min_plus = Semiring(_monoid.min_monoid, ops.plus)
max_plus = Semiring(_monoid.max_monoid, ops.plus)
max_times = Semiring(_monoid.max_monoid, ops.times)
min_times = Semiring(_monoid.min_monoid, ops.times)
lor_land = Semiring(_monoid.lor_monoid, ops.land)
min_first = Semiring(_monoid.min_monoid, ops.first)
min_second = Semiring(_monoid.min_monoid, ops.second)
max_first = Semiring(_monoid.max_monoid, ops.first)
max_second = Semiring(_monoid.max_monoid, ops.second)
