"""Unary and binary operators.

Operators carry an optional numpy ufunc so that container operations can
run vectorised; arbitrary Python callables are accepted as a fallback and
are exercised by the test suite to keep the slow path honest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

import numpy as np

from repro.util.errors import InvalidValue


@dataclass(frozen=True)
class UnaryOp:
    """An elementwise function of one argument, ``z = f(x)``."""

    name: str
    fn: Callable
    ufunc: Optional[np.ufunc] = None

    def __call__(self, x):
        if self.ufunc is not None:
            return self.ufunc(x)
        return self.fn(x)

    def vectorized(self, x: np.ndarray) -> np.ndarray:
        """Apply to a numpy array, vectorising the Python fallback."""
        if self.ufunc is not None:
            return self.ufunc(x)
        return np.frompyfunc(self.fn, 1, 1)(x).astype(x.dtype, copy=False)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"UnaryOp({self.name})"


@dataclass(frozen=True)
class BinaryOp:
    """An elementwise function of two arguments, ``z = f(x, y)``."""

    name: str
    fn: Callable
    ufunc: Optional[np.ufunc] = None
    commutative: bool = False
    associative: bool = False

    def __call__(self, x, y):
        if self.ufunc is not None:
            return self.ufunc(x, y)
        return self.fn(x, y)

    def vectorized(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        if self.ufunc is not None:
            return self.ufunc(x, y)
        out_dtype = np.result_type(x, y)
        return np.frompyfunc(self.fn, 2, 1)(x, y).astype(out_dtype, copy=False)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BinaryOp({self.name})"


def _first(x, y):
    return x


def _second(x, y):
    return y


# --- predefined unary operators -------------------------------------------
identity = UnaryOp("identity", lambda x: x, ufunc=np.positive)
ainv = UnaryOp("ainv", lambda x: -x, ufunc=np.negative)
minv = UnaryOp("minv", lambda x: 1.0 / x, ufunc=np.reciprocal)
abs_ = UnaryOp("abs", abs, ufunc=np.abs)
lnot = UnaryOp("lnot", lambda x: not x, ufunc=np.logical_not)
sqrt = UnaryOp("sqrt", lambda x: x ** 0.5, ufunc=np.sqrt)
one = UnaryOp("one", lambda x: type(x)(1) if not isinstance(x, bool) else True,
              ufunc=None)

# --- predefined binary operators -------------------------------------------
plus = BinaryOp("plus", lambda x, y: x + y, ufunc=np.add,
                commutative=True, associative=True)
minus = BinaryOp("minus", lambda x, y: x - y, ufunc=np.subtract)
times = BinaryOp("times", lambda x, y: x * y, ufunc=np.multiply,
                 commutative=True, associative=True)
div = BinaryOp("div", lambda x, y: x / y, ufunc=np.divide)
min_ = BinaryOp("min", min, ufunc=np.minimum, commutative=True, associative=True)
max_ = BinaryOp("max", max, ufunc=np.maximum, commutative=True, associative=True)
first = BinaryOp("first", _first, ufunc=None, associative=True)
second = BinaryOp("second", _second, ufunc=None, associative=True)
land = BinaryOp("land", lambda x, y: bool(x) and bool(y), ufunc=np.logical_and,
                commutative=True, associative=True)
lor = BinaryOp("lor", lambda x, y: bool(x) or bool(y), ufunc=np.logical_or,
               commutative=True, associative=True)
lxor = BinaryOp("lxor", lambda x, y: bool(x) != bool(y), ufunc=np.logical_xor,
                commutative=True, associative=True)
eq = BinaryOp("eq", lambda x, y: x == y, ufunc=np.equal, commutative=True)
ne = BinaryOp("ne", lambda x, y: x != y, ufunc=np.not_equal, commutative=True)
pow_ = BinaryOp("pow", lambda x, y: x ** y, ufunc=np.power)

_REGISTRY: Dict[str, object] = {
    op.name: op
    for op in (
        identity, ainv, minv, abs_, lnot, sqrt, one,
        plus, minus, times, div, min_, max_, first, second,
        land, lor, lxor, eq, ne, pow_,
    )
}


def lookup(name: str):
    """Find a predefined operator by name (``'plus'``, ``'times'``, ...)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise InvalidValue(f"unknown operator {name!r}") from None
