"""GraphBLAS operations over the opaque containers.

This module is the public computational API: ``mxv``, ``vxm``, ``mxm``,
elementwise operations, ``apply``, ``assign``, ``extract``, reductions,
``dot``, and the ALP-style ``ewise_lambda`` escape hatch.

Conventions (following the C API and ALP):

* the output container comes first, then the mask (or ``None``);
* operations *overwrite* masked positions of the output and leave
  unmasked positions untouched, unless ``desc.replace`` clears the
  output first or an ``accum`` binary operator merges old and new;
* entry presence follows GraphBLAS semantics: an output entry exists
  only where the operation produced a value (e.g. an ``mxv`` row with an
  empty pattern/argument intersection yields *no* entry, not a zero).

Performance notes: the conventional arithmetic semiring over dense
vectors dispatches to compiled CSR kernels; everything else runs a fully
general gather/segment-reduce path.  Both paths are cross-checked in the
test suite.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Tuple, Union

import numpy as np
import scipy.sparse as sp

from repro.graphblas import backend
from repro.graphblas import descriptor as desc_mod
from repro.graphblas.descriptor import Descriptor
from repro.graphblas.matrix import Matrix
from repro.graphblas.monoid import Monoid
from repro.graphblas.ops import BinaryOp, UnaryOp
from repro.graphblas.semiring import Semiring, plus_times
from repro.graphblas.vector import Vector
from repro.util.errors import DimensionMismatch, InvalidValue, OutputAliasing

__all__ = [
    "mxv",
    "vxm",
    "mxm",
    "ewise_add",
    "ewise_mult",
    "apply",
    "apply_bind_first",
    "apply_bind_second",
    "assign",
    "extract",
    "reduce",
    "reduce_matrix",
    "dot",
    "norm2",
    "waxpby",
    "ewise_lambda",
    "diag",
]


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------

def _mask_bool(mask: Optional[Vector], size: int, desc: Descriptor) -> Optional[np.ndarray]:
    """Resolve a mask vector to a boolean selection array (or None)."""
    if mask is None:
        if desc.invert_mask:
            raise InvalidValue("invert_mask descriptor requires a mask")
        return None
    if mask.size != size:
        raise DimensionMismatch(
            f"mask size {mask.size} != expected {size}"
        )
    if desc.structural:
        sel = mask._present.copy()
    else:
        sel = mask._present & mask._values.astype(bool)
    if desc.invert_mask:
        sel = ~sel
    return sel


def _ranges(counts: np.ndarray) -> np.ndarray:
    """``concatenate([arange(c) for c in counts])`` without Python loops."""
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    ends = np.cumsum(counts)
    starts = ends - counts
    return np.arange(total, dtype=np.int64) - np.repeat(starts, counts)


def _gather_rows(
    csr: sp.csr_matrix, rows: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Concatenate the patterns of ``rows``: (ptr, col_indices, values)."""
    indptr = csr.indptr
    counts = (indptr[rows + 1] - indptr[rows]).astype(np.int64)
    flat = np.repeat(indptr[rows].astype(np.int64), counts) + _ranges(counts)
    ptr = np.concatenate(([0], np.cumsum(counts)))
    return ptr, csr.indices[flat], csr.data[flat]


def _filter_segments(
    ptr: np.ndarray, keep: np.ndarray
) -> np.ndarray:
    """New segment pointers after dropping entries where ``keep`` is False."""
    csum = np.concatenate(([0], np.cumsum(keep, dtype=np.int64)))
    return csum[ptr]


def _writeback(
    w: Vector,
    rows: np.ndarray,
    values: np.ndarray,
    present: np.ndarray,
    accum: Optional[BinaryOp],
    desc: Descriptor,
) -> None:
    """Merge computed (rows, values, present) into ``w`` per the spec."""
    if desc.replace:
        w._values.fill(0)
        w._present.fill(False)
    if accum is None:
        w._values[rows] = np.where(present, values, 0).astype(w.dtype, copy=False)
        w._present[rows] = present
    else:
        old_present = w._present[rows]
        both = old_present & present
        only_new = present & ~old_present
        merged = values.astype(w.dtype, copy=True)
        if both.any():
            merged[both] = accum.vectorized(
                w._values[rows][both], values[both]
            ).astype(w.dtype, copy=False)
        sel = both | only_new
        idx = rows[sel]
        w._values[idx] = merged[sel]
        w._present[idx] = True
    w._bump()


def _check_vector_sizes(*pairs) -> None:
    for got, want, what in pairs:
        if got != want:
            raise DimensionMismatch(f"{what}: size {got}, expected {want}")


# ---------------------------------------------------------------------------
# matrix-vector products
# ---------------------------------------------------------------------------

def mxv(
    w: Vector,
    mask: Optional[Vector],
    A: Matrix,
    u: Vector,
    semiring: Semiring = plus_times,
    desc: Descriptor = desc_mod.default,
    accum: Optional[BinaryOp] = None,
) -> Vector:
    """``w<mask> = A (+.x) u`` under an arbitrary semiring.

    With ``desc.transpose_matrix`` computes ``A' u``.  With a mask, only
    masked rows are computed (the paper's RBGS relies on this to touch an
    eighth of the rows per colour).
    """
    if w is u:
        raise OutputAliasing("mxv output must not alias the input vector")
    csr_shape = (A.ncols, A.nrows) if desc.transpose_matrix else (A.nrows, A.ncols)
    _check_vector_sizes(
        (w.size, csr_shape[0], "mxv output"),
        (u.size, csr_shape[1], "mxv input"),
    )
    sel = _mask_bool(mask, csr_shape[0], desc)
    if sel is None:
        rows = np.arange(csr_shape[0], dtype=np.int64)
    else:
        rows = np.flatnonzero(sel)

    u_dense = u.is_dense()
    if semiring.is_plus_times and u_dense:
        values, present, nnz, flops, nbytes, fmt = _mxv_fast(
            A, u, rows, sel is not None, mask, desc
        )
    else:
        values, present, nnz = _mxv_generic(A, u, rows, semiring, desc)
        flops = 2 * nnz
        nbytes = nnz * 16 + rows.size * 16
        fmt = "csr"
    if backend.active():
        backend.record("mxv", rows.size, nnz, flops, nbytes, fmt=fmt)
    values = values.astype(w.dtype, copy=False)
    _writeback(w, rows, values, present, accum, desc)
    return w


def _mxv_fast(
    A: Matrix,
    u: Vector,
    rows: np.ndarray,
    masked: bool,
    mask: Optional[Vector],
    desc: Descriptor,
) -> Tuple[np.ndarray, np.ndarray, int, int, int, str]:
    """plus-times with dense input: the active substrate provider's kernel.

    Returns ``(values, present, nnz, flops, bytes, fmt)`` — traffic
    priced by the provider's own format model, so a SELL-C-σ run and a
    CSR run of the same algorithm emit different byte streams.
    """
    if not masked:
        prov = A.provider(desc.transpose_matrix)
        y = prov.mxv(u._values)
        flops, nbytes = prov.mxv_traffic()
        return y, prov.row_nnz > 0, prov.nnz, flops, nbytes, prov.name
    # Masked: invert_mask and value-masks change the row set per call, so
    # only structural non-inverted masks hit the substructure cache;
    # transient row subsets run on the reference CSR path.
    cacheable = desc.structural and not desc.invert_mask and mask is not None
    if cacheable:
        sub = A._rows_substructure(
            (id(mask), mask.version), rows, desc.transpose_matrix
        )
        y = sub.mxv(u._values)
        flops, nbytes = sub.mxv_traffic()
        return y, sub.row_nnz > 0, sub.nnz, flops, nbytes, sub.name
    base = A._transposed_csr() if desc.transpose_matrix else A._csr
    sub = base[rows, :]
    y = sub @ u._values
    row_nnz = np.diff(sub.indptr)
    nnz = int(sub.nnz)
    return y, row_nnz > 0, nnz, 2 * nnz, nnz * 16 + rows.size * 16, "csr"


def _mxv_generic(
    A: Matrix,
    u: Vector,
    rows: np.ndarray,
    semiring: Semiring,
    desc: Descriptor,
) -> Tuple[np.ndarray, np.ndarray, int]:
    """Arbitrary semiring and/or sparse input: gather + segment reduce."""
    csr = A._transposed_csr() if desc.transpose_matrix else A._csr
    ptr, cols, vals = _gather_rows(csr, rows)
    keep = u._present[cols]
    if not keep.all():
        ptr = _filter_segments(ptr, keep)
        cols = cols[keep]
        vals = vals[keep]
    products = semiring.mul.vectorized(vals, u._values[cols])
    reduced = semiring.add.segment_reduce(products, ptr)
    present = np.diff(ptr) > 0
    return np.asarray(reduced), present, int(cols.size)


def vxm(
    w: Vector,
    mask: Optional[Vector],
    u: Vector,
    A: Matrix,
    semiring: Semiring = plus_times,
    desc: Descriptor = desc_mod.default,
    accum: Optional[BinaryOp] = None,
) -> Vector:
    """``w<mask> = u (+.x) A`` — mxv on the transposed operand."""
    flipped = desc.with_(transpose_matrix=not desc.transpose_matrix)
    return mxv(w, mask, A, u, semiring=semiring, desc=flipped, accum=accum)


def mxm(
    C: Matrix,
    mask: Optional[Matrix],
    A: Matrix,
    B: Matrix,
    semiring: Semiring = plus_times,
    desc: Descriptor = desc_mod.default,
) -> Matrix:
    """``C<mask> = A (+.x) B``.

    The paper needs mxm only for applying permutations ``P' A P``
    (Section III-A), which is plus-times; the generic-semiring path is
    provided for completeness and exercised on small matrices in tests.
    """
    a = A._transposed_csr() if desc.transpose_matrix else A._csr
    b = B._csr
    if a.shape[1] != b.shape[0]:
        raise DimensionMismatch(
            f"mxm inner dimensions differ: {a.shape} x {b.shape}"
        )
    if semiring.is_plus_times:
        prod = (a @ b).tocsr()
        prod.sort_indices()
        # scipy may keep explicit zeros from cancellation; GraphBLAS keeps
        # them too (they are stored values), so no pruning here.
    else:
        prod = _mxm_generic(a, b, semiring)
    if mask is not None:
        if mask.shape != (a.shape[0], b.shape[1]):
            raise DimensionMismatch("mxm mask shape mismatch")
        pattern = mask._csr.copy()
        pattern.data = np.ones_like(pattern.data)
        prod = prod.multiply(pattern).tocsr()
    if backend.active():
        backend.record("mxm", prod.shape[0], int(prod.nnz), 2 * int(prod.nnz), int(prod.nnz) * 32)
    C._csr = prod
    C._invalidate()
    return C


def _mxm_generic(a: sp.csr_matrix, b: sp.csr_matrix, semiring: Semiring) -> sp.csr_matrix:
    """Column-at-a-time generic product (small-matrix fallback)."""
    bc = b.tocsc()
    n_out_rows, n_out_cols = a.shape[0], b.shape[1]
    out_rows, out_cols, out_vals = [], [], []
    av = Vector.sparse(a.shape[1], dtype=np.result_type(a.dtype, b.dtype))
    amat = Matrix(a)
    for j in range(n_out_cols):
        lo, hi = bc.indptr[j], bc.indptr[j + 1]
        av.clear()
        if hi > lo:
            av._values[bc.indices[lo:hi]] = bc.data[lo:hi]
            av._present[bc.indices[lo:hi]] = True
            av._bump()
        rows = np.arange(n_out_rows, dtype=np.int64)
        vals, present, _ = _mxv_generic(amat, av, rows, semiring, desc_mod.default)
        nz = np.flatnonzero(present)
        out_rows.append(nz)
        out_cols.append(np.full(nz.size, j, dtype=np.int64))
        out_vals.append(np.asarray(vals)[nz])
    r = np.concatenate(out_rows) if out_rows else np.empty(0, dtype=np.int64)
    c = np.concatenate(out_cols) if out_cols else np.empty(0, dtype=np.int64)
    v = np.concatenate(out_vals) if out_vals else np.empty(0)
    return sp.csr_matrix((v, (r, c)), shape=(n_out_rows, n_out_cols))


# ---------------------------------------------------------------------------
# elementwise operations
# ---------------------------------------------------------------------------

def ewise_add(
    w: Vector,
    mask: Optional[Vector],
    u: Vector,
    v: Vector,
    op: BinaryOp,
    desc: Descriptor = desc_mod.default,
    accum: Optional[BinaryOp] = None,
) -> Vector:
    """Union elementwise: ``op`` where both present, copy where one is."""
    _check_vector_sizes((u.size, w.size, "ewise_add u"), (v.size, w.size, "ewise_add v"))
    sel = _mask_bool(mask, w.size, desc)
    both = u._present & v._present
    only_u = u._present & ~v._present
    only_v = v._present & ~u._present
    out_vals = np.zeros(w.size, dtype=np.result_type(u.dtype, v.dtype))
    if both.any():
        out_vals[both] = op.vectorized(u._values[both], v._values[both])
    out_vals[only_u] = u._values[only_u]
    out_vals[only_v] = v._values[only_v]
    out_present = u._present | v._present
    rows = np.arange(w.size) if sel is None else np.flatnonzero(sel)
    if backend.active():
        backend.record("ewise_add", rows.size, 0, int(both.sum()), rows.size * 24)
    _writeback(w, rows, out_vals[rows], out_present[rows], accum, desc)
    return w


def ewise_mult(
    w: Vector,
    mask: Optional[Vector],
    u: Vector,
    v: Vector,
    op: BinaryOp,
    desc: Descriptor = desc_mod.default,
    accum: Optional[BinaryOp] = None,
) -> Vector:
    """Intersection elementwise: entries exist only where both exist."""
    _check_vector_sizes((u.size, w.size, "ewise_mult u"), (v.size, w.size, "ewise_mult v"))
    sel = _mask_bool(mask, w.size, desc)
    both = u._present & v._present
    out_vals = np.zeros(w.size, dtype=np.result_type(u.dtype, v.dtype))
    if both.any():
        out_vals[both] = op.vectorized(u._values[both], v._values[both])
    rows = np.arange(w.size) if sel is None else np.flatnonzero(sel)
    if backend.active():
        backend.record("ewise_mult", rows.size, 0, int(both.sum()), rows.size * 24)
    _writeback(w, rows, out_vals[rows], both[rows], accum, desc)
    return w


def apply(
    w: Vector,
    mask: Optional[Vector],
    op: UnaryOp,
    u: Vector,
    desc: Descriptor = desc_mod.default,
    accum: Optional[BinaryOp] = None,
) -> Vector:
    """``w<mask> = op(u)`` elementwise over u's pattern."""
    _check_vector_sizes((u.size, w.size, "apply input"))
    sel = _mask_bool(mask, w.size, desc)
    out_vals = np.zeros(w.size, dtype=u.dtype)
    if u._present.any():
        out_vals[u._present] = op.vectorized(u._values[u._present])
    rows = np.arange(w.size) if sel is None else np.flatnonzero(sel)
    if backend.active():
        backend.record("apply", rows.size, 0, rows.size, rows.size * 16)
    _writeback(w, rows, out_vals[rows], u._present[rows], accum, desc)
    return w


def apply_bind_first(
    w: Vector,
    mask: Optional[Vector],
    op: BinaryOp,
    scalar,
    u: Vector,
    desc: Descriptor = desc_mod.default,
    accum: Optional[BinaryOp] = None,
) -> Vector:
    """``w<mask> = op(scalar, u)`` elementwise (GrB_apply, BinaryOp1st).

    E.g. ``apply_bind_first(w, None, ops.minus, 1.0, u)`` computes
    ``1 - u`` over u's pattern.
    """
    _check_vector_sizes((u.size, w.size, "apply input"))
    sel = _mask_bool(mask, w.size, desc)
    out_vals = np.zeros(w.size, dtype=np.result_type(type(scalar), u.dtype))
    if u._present.any():
        vals = u._values[u._present]
        out_vals[u._present] = op.vectorized(
            np.full(vals.shape, scalar, dtype=out_vals.dtype), vals
        )
    rows = np.arange(w.size) if sel is None else np.flatnonzero(sel)
    if backend.active():
        backend.record("apply", rows.size, 0, rows.size, rows.size * 16)
    _writeback(w, rows, out_vals[rows], u._present[rows], accum, desc)
    return w


def apply_bind_second(
    w: Vector,
    mask: Optional[Vector],
    op: BinaryOp,
    u: Vector,
    scalar,
    desc: Descriptor = desc_mod.default,
    accum: Optional[BinaryOp] = None,
) -> Vector:
    """``w<mask> = op(u, scalar)`` elementwise (GrB_apply, BinaryOp2nd).

    E.g. ``apply_bind_second(w, None, ops.times, u, 0.5)`` halves ``u``.
    """
    _check_vector_sizes((u.size, w.size, "apply input"))
    sel = _mask_bool(mask, w.size, desc)
    out_vals = np.zeros(w.size, dtype=np.result_type(u.dtype, type(scalar)))
    if u._present.any():
        vals = u._values[u._present]
        out_vals[u._present] = op.vectorized(
            vals, np.full(vals.shape, scalar, dtype=out_vals.dtype)
        )
    rows = np.arange(w.size) if sel is None else np.flatnonzero(sel)
    if backend.active():
        backend.record("apply", rows.size, 0, rows.size, rows.size * 16)
    _writeback(w, rows, out_vals[rows], u._present[rows], accum, desc)
    return w


def assign(
    w: Vector,
    mask: Optional[Vector],
    value: Union[Vector, int, float, bool],
    desc: Descriptor = desc_mod.default,
    accum: Optional[BinaryOp] = None,
) -> Vector:
    """``w<mask> = value`` for a scalar or a whole vector."""
    sel = _mask_bool(mask, w.size, desc)
    rows = np.arange(w.size) if sel is None else np.flatnonzero(sel)
    if isinstance(value, Vector):
        _check_vector_sizes((value.size, w.size, "assign input"))
        vals = value._values[rows]
        present = value._present[rows]
    else:
        vals = np.full(rows.size, value, dtype=w.dtype)
        present = np.ones(rows.size, dtype=bool)
    if backend.active():
        backend.record("assign", rows.size, 0, 0, rows.size * 16)
    _writeback(w, rows, vals, present, accum, desc)
    return w


def extract(
    w: Vector,
    mask: Optional[Vector],
    u: Vector,
    indices: Sequence[int],
    desc: Descriptor = desc_mod.default,
) -> Vector:
    """``w<mask> = u[indices]`` (subvector extraction)."""
    idx = np.asarray(indices, dtype=np.int64)
    if idx.shape[0] != w.size:
        raise DimensionMismatch(
            f"extract output size {w.size} != number of indices {idx.shape[0]}"
        )
    if idx.size and (idx.min() < 0 or idx.max() >= u.size):
        raise InvalidValue("extract index out of range")
    sel = _mask_bool(mask, w.size, desc)
    rows = np.arange(w.size) if sel is None else np.flatnonzero(sel)
    vals = u._values[idx[rows]]
    present = u._present[idx[rows]]
    if backend.active():
        backend.record("extract", rows.size, 0, 0, rows.size * 16)
    _writeback(w, rows, vals, present, None, desc)
    return w


# ---------------------------------------------------------------------------
# reductions and products
# ---------------------------------------------------------------------------

def reduce(u: Vector, monoid: Monoid):
    """Fold all stored entries of ``u`` with the monoid."""
    vals = u._values[u._present] if not u.is_dense() else u._values
    if backend.active():
        backend.record("reduce", 1, 0, int(vals.size), int(vals.size) * 8)
    return monoid.reduce(vals)


def reduce_matrix(A: Matrix, monoid: Monoid):
    """Fold all stored entries of ``A``.

    A cold path: reads the canonical CSR value stream directly (every
    provider's ``reduce_values`` is that same stream) rather than
    forcing the acceleration structure to materialise — hence the event
    is tagged ``fmt="csr"``, the format that actually executed it.
    """
    if backend.active():
        backend.record("reduce", 1, A.nvals, A.nvals, A.nvals * 8,
                       fmt="csr")
    return monoid.reduce(A._csr.data)


def dot(u: Vector, v: Vector, semiring: Semiring = plus_times):
    """``u' (+.x) v`` — returns a scalar; identity when no intersection."""
    _check_vector_sizes((v.size, u.size, "dot input"))
    if semiring.is_plus_times and u.is_dense() and v.is_dense():
        if backend.active():
            backend.record("dot", 1, 0, 2 * u.size, u.size * 16)
        return float(np.dot(u._values, v._values))
    both = u._present & v._present
    products = semiring.mul.vectorized(u._values[both], v._values[both])
    if backend.active():
        backend.record("dot", 1, 0, 2 * int(both.sum()), int(both.sum()) * 16)
    return semiring.add.reduce(products)


def norm2(u: Vector) -> float:
    """Euclidean norm of the stored entries (HPCG's residual metric)."""
    return float(np.sqrt(dot(u, u)))


def waxpby(
    w: Vector,
    alpha: float,
    x: Vector,
    beta: float,
    y: Vector,
) -> Vector:
    """``w = alpha*x + beta*y`` over the union pattern.

    One of HPCG's three CG kernels (Section II-C).  Expressible as two
    ``apply`` + one ``ewise_add``; provided fused because ALP programs
    use a single eWiseApply for it and it is hot in CG.  Aliasing with
    ``x`` or ``y`` is explicitly supported (CG updates in place).
    """
    _check_vector_sizes((x.size, w.size, "waxpby x"), (y.size, w.size, "waxpby y"))
    if x.is_dense() and y.is_dense():
        if w is x:
            w._values *= alpha
            w._values += beta * y._values
        elif w is y:
            w._values *= beta
            w._values += alpha * x._values
        else:
            np.multiply(x._values, alpha, out=w._values, casting="unsafe")
            w._values += beta * y._values
        w._present.fill(True)
    else:
        both = x._present & y._present
        vals = np.zeros(w.size, dtype=np.result_type(x.dtype, y.dtype))
        vals[both] = alpha * x._values[both] + beta * y._values[both]
        only_x = x._present & ~y._present
        only_y = y._present & ~x._present
        vals[only_x] = alpha * x._values[only_x]
        vals[only_y] = beta * y._values[only_y]
        w._values[:] = vals
        w._present[:] = x._present | y._present
    if backend.active():
        backend.record("waxpby", w.size, 0, 3 * w.size, w.size * 24)
    w._bump()
    return w


def ewise_lambda(
    fn: Callable[..., None],
    mask: Optional[Vector],
    *vectors: Vector,
    desc: Descriptor = desc_mod.structural,
) -> None:
    """ALP/GraphBLAS ``eWiseLambda``: run ``fn`` elementwise over a mask.

    ``fn(idx, *arrays)`` receives the selected index array and the dense
    value storage of each vector; it must only read/write positions
    ``idx`` (this is the documented contract of ALP's eWiseLambda, which
    likewise exposes element references).  The structure of the vectors
    is not changed.  All vectors must contain every masked index.

    This is the primitive Listing 3 of the paper uses for the RBGS
    pointwise update; the lambda runs vectorised over the whole colour.
    """
    if not vectors:
        raise InvalidValue("ewise_lambda needs at least one vector")
    size = vectors[0].size
    for v in vectors[1:]:
        _check_vector_sizes((v.size, size, "ewise_lambda vector"))
    sel = _mask_bool(mask, size, desc)
    idx = np.arange(size, dtype=np.int64) if sel is None else np.flatnonzero(sel)
    for v in vectors:
        if not v._present[idx].all():
            raise InvalidValue(
                "ewise_lambda requires all vectors present at masked indices"
            )
    fn(idx, *(v._values for v in vectors))
    for v in vectors:
        v._bump()
    if backend.active():
        backend.record(
            "ewise_lambda", idx.size, 0, 4 * idx.size, idx.size * 8 * (len(vectors) + 1)
        )


def diag(A: Matrix) -> Vector:
    """Extract the main diagonal of ``A`` as a vector.

    HPCG-on-GraphBLAS stores this once at generation time because
    GraphBLAS gives no constant-time element access (paper §III-A).
    """
    return A.diag()
