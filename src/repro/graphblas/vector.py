"""The opaque GraphBLAS vector container.

Storage strategy: a dense value array plus a dense boolean presence mask.
That is one legal GraphBLAS representation (implementations are free to
choose, which is the point of opaqueness); for HPCG all vectors are in
fact dense, so this choice gives numpy-speed kernels while still
supporting sparse semantics (absent entries) for the general API.

Mutation bumps a version counter.  Operations that cache derived data
keyed on a container (e.g. :class:`~repro.graphblas.matrix.Matrix`'s
per-mask row submatrices for RBGS colour masks) validate against the
version, so stale caches are impossible by construction.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

import numpy as np

from repro.graphblas import types as gbtypes
from repro.graphblas.ops import BinaryOp
from repro.util.errors import DimensionMismatch, InvalidValue


class Vector:
    """A length-``n`` vector over one of the predefined domains.

    Do not touch attributes with a leading underscore from application
    code; they are backend storage.  The test suite enforces that the
    HPCG layer (``repro.hpcg``) never does.
    """

    __slots__ = ("_values", "_present", "_version")

    def __init__(self, size: int, dtype=gbtypes.FP64):
        if size < 0:
            raise InvalidValue(f"vector size must be non-negative, got {size}")
        dt = gbtypes.as_dtype(dtype)
        self._values = np.zeros(size, dtype=dt)
        self._present = np.zeros(size, dtype=bool)
        self._version = 0

    # --- constructors ------------------------------------------------------
    @classmethod
    def sparse(cls, size: int, dtype=gbtypes.FP64) -> "Vector":
        """An empty (all-absent) vector."""
        return cls(size, dtype)

    @classmethod
    def dense(cls, size: int, fill=0, dtype=gbtypes.FP64) -> "Vector":
        """A fully-present vector with every entry equal to ``fill``."""
        v = cls(size, dtype)
        v._values.fill(fill)
        v._present.fill(True)
        return v

    @classmethod
    def from_dense(cls, array: Iterable, dtype=None) -> "Vector":
        """A fully-present vector copying ``array``."""
        arr = np.asarray(array)
        dt = gbtypes.as_dtype(dtype if dtype is not None else arr.dtype)
        if arr.ndim != 1:
            raise InvalidValue(f"expected 1-D data, got shape {arr.shape}")
        v = cls(arr.shape[0], dt)
        v._values[:] = arr
        v._present.fill(True)
        return v

    @classmethod
    def from_coo(
        cls,
        indices: Iterable[int],
        values: Iterable,
        size: int,
        dtype=gbtypes.FP64,
        dup_op: Optional[BinaryOp] = None,
    ) -> "Vector":
        """Build from (index, value) pairs; ``dup_op`` combines duplicates.

        Without ``dup_op`` duplicate indices raise, matching
        ``GrB_Vector_build``'s default behaviour.
        """
        v = cls(size, dtype)
        v.build(indices, values, dup_op=dup_op)
        return v

    # --- basic properties ---------------------------------------------------
    @property
    def size(self) -> int:
        return self._values.shape[0]

    @property
    def dtype(self) -> np.dtype:
        return self._values.dtype

    @property
    def nvals(self) -> int:
        """Number of stored (present) entries."""
        return int(self._present.sum())

    @property
    def version(self) -> int:
        """Mutation counter (used for cache validation)."""
        return self._version

    def is_dense(self) -> bool:
        return bool(self._present.all())

    def _bump(self) -> None:
        self._version += 1

    # --- element access ------------------------------------------------------
    def extract_element(self, index: int):
        """Value at ``index``; ``None`` when absent (GrB_NO_VALUE)."""
        if not 0 <= index < self.size:
            raise InvalidValue(f"index {index} out of range [0, {self.size})")
        if not self._present[index]:
            return None
        return self._values[index].item()

    def set_element(self, index: int, value) -> None:
        if not 0 <= index < self.size:
            raise InvalidValue(f"index {index} out of range [0, {self.size})")
        self._values[index] = value
        self._present[index] = True
        self._bump()

    def remove_element(self, index: int) -> None:
        if not 0 <= index < self.size:
            raise InvalidValue(f"index {index} out of range [0, {self.size})")
        self._present[index] = False
        self._values[index] = 0
        self._bump()

    # --- whole-container operations ------------------------------------------
    def clear(self) -> None:
        """Remove all entries (size is unchanged)."""
        self._values.fill(0)
        self._present.fill(False)
        self._bump()

    def fill(self, value) -> None:
        """Make the vector dense with every entry equal to ``value``.

        Equivalent to ``assign(v, None, value)``; provided as a method
        because HPCG zeroes work vectors constantly (``zc <- 0``).
        """
        self._values.fill(value)
        self._present.fill(True)
        self._bump()

    def build(
        self,
        indices: Iterable[int],
        values: Iterable,
        dup_op: Optional[BinaryOp] = None,
    ) -> None:
        """Populate an empty vector from coordinates."""
        if self.nvals:
            raise InvalidValue("build requires an empty vector; call clear() first")
        idx = np.asarray(indices, dtype=np.int64)
        vals = np.asarray(values)
        if idx.shape != vals.shape:
            raise DimensionMismatch(
                f"indices shape {idx.shape} != values shape {vals.shape}"
            )
        if idx.size and (idx.min() < 0 or idx.max() >= self.size):
            raise InvalidValue("build index out of range")
        unique, first_pos, counts = np.unique(idx, return_index=True, return_counts=True)
        if (counts > 1).any():
            if dup_op is None:
                raise InvalidValue("duplicate indices and no dup_op given")
            order = np.argsort(idx, kind="stable")
            sorted_idx = idx[order]
            sorted_vals = vals[order]
            boundaries = np.flatnonzero(np.diff(sorted_idx)) + 1
            starts = np.concatenate(([0], boundaries))
            ends = np.concatenate((boundaries, [idx.size]))
            for u, s, e in zip(sorted_idx[starts], starts, ends):
                acc = sorted_vals[s]
                for k in range(s + 1, e):
                    acc = dup_op(acc, sorted_vals[k])
                self._values[u] = acc
                self._present[u] = True
        else:
            self._values[idx] = vals
            self._present[idx] = True
        self._bump()

    def dup(self) -> "Vector":
        """Deep copy."""
        v = Vector(self.size, self.dtype)
        v._values[:] = self._values
        v._present[:] = self._present
        return v

    def resize(self, size: int) -> None:
        """Change the dimension (GrB_Vector_resize).

        Growing adds absent entries; shrinking discards entries past the
        new end.
        """
        if size < 0:
            raise InvalidValue(f"size must be non-negative, got {size}")
        old = self.size
        if size == old:
            return
        values = np.zeros(size, dtype=self.dtype)
        present = np.zeros(size, dtype=bool)
        keep = min(size, old)
        values[:keep] = self._values[:keep]
        present[:keep] = self._present[:keep]
        self._values = values
        self._present = present
        self._bump()

    # --- export ---------------------------------------------------------------
    def to_coo(self) -> Tuple[np.ndarray, np.ndarray]:
        """(indices, values) of the stored entries, index-sorted."""
        idx = np.flatnonzero(self._present)
        return idx, self._values[idx].copy()

    def to_dense(self, fill=0) -> np.ndarray:
        """Dense copy with absent entries set to ``fill``."""
        out = self._values.copy()
        if not self.is_dense():
            out[~self._present] = fill
        return out

    # --- dunder helpers ---------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Vector(size={self.size}, nvals={self.nvals}, dtype={self.dtype})"

    def __eq__(self, other) -> bool:
        """Structural and value equality (same size, pattern, values)."""
        if not isinstance(other, Vector):
            return NotImplemented
        return (
            self.size == other.size
            and bool(np.array_equal(self._present, other._present))
            and bool(
                np.array_equal(
                    self._values[self._present], other._values[other._present]
                )
            )
        )

    __hash__ = None  # mutable container
