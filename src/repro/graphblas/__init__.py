"""A from-scratch GraphBLAS implementation (the paper's ALP/GraphBLAS role).

The public surface follows the GraphBLAS C specification shaped by
ALP/GraphBLAS conventions: opaque :class:`Vector`/:class:`Matrix`
containers, algebraic :class:`BinaryOp`/:class:`Monoid`/:class:`Semiring`
objects, :class:`Descriptor` execution modifiers, and free-function
operations (:func:`mxv`, :func:`ewise_lambda`, ...).

>>> from repro import graphblas as grb
>>> A = grb.Matrix.from_dense([[2.0, 0.0], [1.0, 3.0]])
>>> x = grb.Vector.from_dense([1.0, 1.0])
>>> y = grb.Vector.dense(2)
>>> _ = grb.mxv(y, None, A, x)
>>> y.to_dense().tolist()
[2.0, 4.0]
"""

from repro.graphblas import descriptor as descriptors
from repro.graphblas import types
from repro.graphblas.descriptor import Descriptor
from repro.graphblas.matrix import Matrix
from repro.graphblas.monoid import (
    Monoid,
    land_monoid,
    lor_monoid,
    lxor_monoid,
    max_monoid,
    min_monoid,
    plus_monoid,
    times_monoid,
)
from repro.graphblas.operations import (
    apply,
    apply_bind_first,
    apply_bind_second,
    assign,
    diag,
    dot,
    ewise_add,
    ewise_lambda,
    ewise_mult,
    extract,
    mxm,
    mxv,
    norm2,
    reduce,
    reduce_matrix,
    vxm,
    waxpby,
)
from repro.graphblas.ops import BinaryOp, UnaryOp, lookup
from repro.graphblas import ops
from repro.graphblas.semiring import (
    Semiring,
    lor_land,
    max_first,
    max_plus,
    max_second,
    max_times,
    min_first,
    min_plus,
    min_second,
    min_times,
    plus_first,
    plus_second,
    plus_times,
)
from repro.graphblas import algorithms
from repro.graphblas import substrate
from repro.graphblas.pipeline import Pipeline, PipelineStats
from repro.graphblas.vector import Vector
from repro.graphblas import backend
from repro.graphblas import io
from repro.graphblas import select as selectops
from repro.graphblas.select import IndexUnaryOp, select, select_vector
from repro.graphblas.matrix_ops import (
    apply_matrix,
    assign_submatrix,
    ewise_add_matrix,
    ewise_mult_matrix,
    extract_submatrix,
    kronecker,
    reduce_cols,
    reduce_rows,
    transpose_into,
)

__all__ = [
    "Vector",
    "Matrix",
    "BinaryOp",
    "UnaryOp",
    "Monoid",
    "Semiring",
    "Descriptor",
    "descriptors",
    "types",
    "ops",
    "backend",
    "io",
    "lookup",
    # monoids
    "plus_monoid",
    "times_monoid",
    "min_monoid",
    "max_monoid",
    "lor_monoid",
    "land_monoid",
    "lxor_monoid",
    # semirings
    "plus_times",
    "plus_first",
    "plus_second",
    "min_plus",
    "max_plus",
    "max_times",
    "min_times",
    "min_first",
    "min_second",
    "max_first",
    "max_second",
    "lor_land",
    "algorithms",
    "substrate",
    "Pipeline",
    "PipelineStats",
    # operations
    "mxv",
    "vxm",
    "mxm",
    "ewise_add",
    "ewise_mult",
    "apply",
    "apply_bind_first",
    "apply_bind_second",
    "assign",
    "extract",
    "reduce",
    "reduce_matrix",
    "dot",
    "norm2",
    "waxpby",
    "ewise_lambda",
    "diag",
    # select / index-unary
    "IndexUnaryOp",
    "select",
    "select_vector",
    "selectops",
    # matrix-level operations
    "ewise_add_matrix",
    "ewise_mult_matrix",
    "apply_matrix",
    "transpose_into",
    "reduce_rows",
    "reduce_cols",
    "extract_submatrix",
    "assign_submatrix",
    "kronecker",
]
