"""Execution-backend hooks: operation instrumentation.

Every GraphBLAS operation emits a :class:`PerfEvent` describing the work
it performed (rows touched, nonzeroes processed, flops, bytes moved).
By default events are dropped.  The performance layer
(:mod:`repro.perf`) installs a collector to aggregate them, which is how
the modelled thread/node scaling figures consume the *actual* op stream
of a run instead of hand-written formulas.

This mirrors the role of ALP/GraphBLAS "backends": the algorithm code is
identical regardless of whether events are collected, just as ALP
programs are identical across its sequential/OpenMP/hybrid backends.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class PerfEvent:
    """One executed GraphBLAS operation, in machine-independent units."""

    op: str          # operation name, e.g. "mxv", "dot", "ewise_lambda"
    rows: int        # output rows / elements produced
    nnz: int         # stored entries processed (0 for dense-only ops)
    flops: int       # floating-point operations
    bytes: int       # bytes read + written (useful-traffic lower bound)
    label: str = ""  # optional caller-provided tag (e.g. "rbgs", "restrict")
    fmt: str = ""    # storage format that executed it ("csr", "sellcs", ...)


_collector: Optional[Callable[[PerfEvent], None]] = None
_label_stack: List[str] = []


def record(op: str, rows: int, nnz: int, flops: int, nbytes: int,
           fmt: str = "", label: Optional[str] = None) -> None:
    """Emit an event to the installed collector (no-op when absent).

    ``fmt`` names the substrate provider that executed the operation;
    matrix-touching ops pass it so the perf layer can price and break
    down a run per storage format, not just per kernel.

    ``label`` is a *fallback* tag: an enclosing :func:`labelled` scope
    always wins (so kernel attribution streams are unchanged), but an
    emitter that knows its own identity — e.g. a fused sweep that knows
    its owning MG level — can tag events that would otherwise go out
    blank.
    """
    if _collector is not None:
        if _label_stack:
            label = _label_stack[-1]
        _collector(PerfEvent(op, rows, nnz, flops, nbytes, label or "", fmt))


def active() -> bool:
    """True when a collector is installed (lets hot paths skip counting)."""
    return _collector is not None


@contextmanager
def collect(fn: Callable[[PerfEvent], None]) -> Iterator[None]:
    """Install ``fn`` as the event collector for the dynamic extent."""
    global _collector
    prev = _collector
    _collector = fn
    try:
        yield
    finally:
        _collector = prev


@contextmanager
def labelled(label: str) -> Iterator[None]:
    """Tag all events emitted in the dynamic extent with ``label``.

    The HPCG driver wraps each kernel invocation (``rbgs``, ``restrict``,
    ``spmv``, ...) so breakdown figures can attribute op events to
    kernels without the GraphBLAS layer knowing about HPCG.
    """
    _label_stack.append(label)
    try:
        yield
    finally:
        _label_stack.pop()


class EventLog:
    """A simple list-backed collector with aggregate helpers."""

    def __init__(self) -> None:
        self.events: List[PerfEvent] = []

    def __call__(self, event: PerfEvent) -> None:
        self.events.append(event)

    def total(self, field: str, op: Optional[str] = None,
              label: Optional[str] = None, fmt: Optional[str] = None) -> int:
        return sum(
            getattr(e, field, 0)
            for e in self.events
            if (op is None or e.op == op)
            and (label is None or e.label == label)
            and (fmt is None or e.fmt == fmt)
        )

    def count(self, op: Optional[str] = None) -> int:
        return sum(1 for e in self.events if op is None or e.op == op)

    def by_format(self, field: str = "bytes") -> Dict[str, int]:
        """Aggregate ``field`` per substrate format (fmt-less ops under '').

        Tolerates events that do not carry the requested field — a
        third-party provider emitting reduced events (say, bytes but no
        flops) contributes 0 to that rollup instead of blowing it up.
        """
        out: Dict[str, int] = {}
        for e in self.events:
            fmt = getattr(e, "fmt", "")
            out[fmt] = out.get(fmt, 0) + getattr(e, field, 0)
        return out

    def clear(self) -> None:
        self.events.clear()
