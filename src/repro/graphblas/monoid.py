"""Monoids: an associative, commutative binary operator plus its identity.

Monoids drive reductions (``reduce``, and the additive part of a
semiring).  The identity element is what a reduction of an empty set
returns, and what masked/absent positions contribute.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.graphblas import ops
from repro.graphblas.ops import BinaryOp
from repro.util.errors import InvalidValue


@dataclass(frozen=True)
class Monoid:
    """An associative binary operator with identity (and optional ufunc)."""

    op: BinaryOp
    identity: object

    def __post_init__(self):
        if not self.op.associative:
            raise InvalidValue(
                f"monoid requires an associative operator, got {self.op.name!r}"
            )

    @property
    def name(self) -> str:
        return f"{self.op.name}_monoid"

    @property
    def ufunc(self) -> Optional[np.ufunc]:
        return self.op.ufunc

    def __call__(self, x, y):
        return self.op(x, y)

    def reduce(self, values: np.ndarray):
        """Reduce a 1-D array; returns the identity when empty."""
        if values.size == 0:
            return self.identity
        if self.op.ufunc is not None:
            return self.op.ufunc.reduce(values)
        acc = values[0]
        for v in values[1:]:
            acc = self.op.fn(acc, v)
        return acc

    def segment_reduce(self, values: np.ndarray, indptr: np.ndarray) -> np.ndarray:
        """Reduce consecutive segments ``values[indptr[i]:indptr[i+1]]``.

        Empty segments yield the identity.  This is the workhorse of the
        generic (non-plus-times) sparse matrix-vector product.
        """
        nseg = len(indptr) - 1
        out = np.full(nseg, self.identity, dtype=values.dtype if values.size else None)
        if values.size == 0:
            return out
        starts = indptr[:-1]
        nonempty = indptr[1:] > starts
        if self.op.ufunc is not None:
            # ufunc.reduceat misbehaves for empty segments (it returns
            # values[start] of the *next* segment); restrict to non-empty
            # segments and fill the rest with the identity.
            idx = starts[nonempty]
            if idx.size:
                reduced = self.op.ufunc.reduceat(values, idx)
                out[nonempty] = reduced
            return out
        for i in range(nseg):
            lo, hi = indptr[i], indptr[i + 1]
            if hi > lo:
                acc = values[lo]
                for j in range(lo + 1, hi):
                    acc = self.op.fn(acc, values[j])
                out[i] = acc
        return out


# --- predefined monoids -----------------------------------------------------
plus_monoid = Monoid(ops.plus, 0)
times_monoid = Monoid(ops.times, 1)
min_monoid = Monoid(ops.min_, np.inf)
max_monoid = Monoid(ops.max_, -np.inf)
lor_monoid = Monoid(ops.lor, False)
land_monoid = Monoid(ops.land, True)
lxor_monoid = Monoid(ops.lxor, False)
