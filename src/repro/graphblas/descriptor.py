"""Descriptors: per-call execution modifiers.

The paper relies on two of these (Section IV):

* ``structural`` — the mask's *structure* (which entries exist) is used
  and the stored values are ignored.  ALP uses it on the colour masks of
  RBGS so the boolean payloads are never read.
* ``transpose_matrix`` — the matrix operand is used transposed, which is
  how refinement reuses the restriction matrix without materialising its
  transpose.

``invert_mask`` (complement) and ``replace`` (clear output first) round
out the GraphBLAS descriptor set.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as _dc_replace


@dataclass(frozen=True)
class Descriptor:
    """Immutable bundle of operation modifiers."""

    transpose_matrix: bool = False
    structural: bool = False
    invert_mask: bool = False
    replace: bool = False

    def __or__(self, other: "Descriptor") -> "Descriptor":
        """Combine two descriptors (union of the set flags)."""
        return Descriptor(
            transpose_matrix=self.transpose_matrix or other.transpose_matrix,
            structural=self.structural or other.structural,
            invert_mask=self.invert_mask or other.invert_mask,
            replace=self.replace or other.replace,
        )

    def with_(self, **kwargs) -> "Descriptor":
        return _dc_replace(self, **kwargs)


default = Descriptor()
structural = Descriptor(structural=True)
transpose_matrix = Descriptor(transpose_matrix=True)
invert_mask = Descriptor(invert_mask=True)
replace = Descriptor(replace=True)
structural_transpose = structural | transpose_matrix
