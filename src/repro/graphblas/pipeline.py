"""A nonblocking-execution pipeline (paper §VII-A / ref. [32]).

Standard GraphBLAS semantics are *blocking*: each primitive completes
before the next starts, so a producer-consumer pair like RBGS's masked
``mxv`` followed by the ``eWiseLambda`` consuming its result makes a
full round trip through memory.  Mastoras et al.'s nonblocking ALP
defers execution, analyses the accumulated operation sequence, and
fuses such pairs.

This module implements that design in miniature, as an explicit
builder (deferral is visible in the API rather than ambient, which
keeps the eager operations' semantics untouched):

>>> import numpy as np
>>> from repro import graphblas as grb
>>> from repro.graphblas.pipeline import Pipeline
>>> A = grb.Matrix.from_dense([[2.0, 1.0], [1.0, 3.0]])
>>> x = grb.Vector.from_dense([1.0, 1.0])
>>> mask = grb.Vector.from_coo([0, 1], [True, True], 2, dtype=bool)
>>> tmp = grb.Vector.dense(2)
>>> def double(idx, xv, tv):
...     xv[idx] = 2.0 * tv[idx]
>>> pipe = Pipeline()
>>> pipe.mxv(tmp, mask, A, x).ewise_lambda(double, mask, x, tmp)
Pipeline(2 stages)
>>> stats = pipe.execute()
>>> stats.fused_pairs
1
>>> x.to_dense().tolist()
[6.0, 8.0]

``execute()`` walks the recorded stages; whenever a masked ``mxv``'s
output vector is consumed by the immediately following
``ewise_lambda`` under the same mask (and by nothing afterwards), the
pair dispatches to the fused kernel of :mod:`repro.graphblas.fused`,
eliding the intermediate's memory round trip; everything else runs
eagerly in order.  Results are bit-identical either way (tested).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.graphblas import descriptor as desc_mod
from repro.graphblas import operations as ops_mod
from repro.graphblas.fused import fused_masked_mxv_lambda
from repro.graphblas.matrix import Matrix
from repro.graphblas.semiring import Semiring, plus_times
from repro.graphblas.vector import Vector
from repro.util.errors import InvalidValue


@dataclass
class _Stage:
    kind: str            # "mxv" | "ewise_lambda"
    args: tuple
    kwargs: dict


@dataclass
class PipelineStats:
    """What ``execute`` did."""

    stages: int = 0
    fused_pairs: int = 0
    eager_stages: int = 0


class Pipeline:
    """Deferred GraphBLAS call sequence with producer-consumer fusion."""

    def __init__(self) -> None:
        self._stages: List[_Stage] = []
        self._executed = False

    # --- recording -----------------------------------------------------------
    def mxv(self, w: Vector, mask: Optional[Vector], A: Matrix, u: Vector,
            semiring: Semiring = plus_times,
            desc=desc_mod.structural) -> "Pipeline":
        self._check_open()
        self._stages.append(_Stage(
            "mxv", (w, mask, A, u),
            {"semiring": semiring, "desc": desc},
        ))
        return self

    def ewise_lambda(self, fn: Callable[..., None], mask: Optional[Vector],
                     *vectors: Vector,
                     desc=desc_mod.structural) -> "Pipeline":
        self._check_open()
        self._stages.append(_Stage(
            "ewise_lambda", (fn, mask, *vectors), {"desc": desc},
        ))
        return self

    def _check_open(self) -> None:
        if self._executed:
            raise InvalidValue("pipeline already executed; build a new one")

    # --- fusion analysis + execution -------------------------------------------
    @staticmethod
    def _fusable(producer: _Stage, consumer: _Stage) -> bool:
        """The mxv -> ewise_lambda pattern the fused kernel covers."""
        if producer.kind != "mxv" or consumer.kind != "ewise_lambda":
            return False
        w, p_mask, _A, _u = producer.args
        _fn, c_mask, *vectors = consumer.args
        if p_mask is None or c_mask is not p_mask:
            return False
        if not producer.kwargs["semiring"].is_plus_times:
            return False
        if not producer.kwargs["desc"].structural:
            return False
        if producer.kwargs["desc"].invert_mask:
            return False
        # the produced vector must be consumed here (anywhere in the
        # lambda's operand list) — it becomes the fused kernel's local
        # product and must not be needed as a container afterwards.
        # Identity, not equality: Vector.__eq__ compares values.
        return any(v is w for v in vectors)

    def execute(self) -> PipelineStats:
        """Run the recorded stages, fusing where legal."""
        self._check_open()
        self._executed = True
        stats = PipelineStats(stages=len(self._stages))
        i = 0
        while i < len(self._stages):
            stage = self._stages[i]
            nxt = self._stages[i + 1] if i + 1 < len(self._stages) else None
            if nxt is not None and self._fusable(stage, nxt):
                w, mask, A, u = stage.args
                fn, _mask, *vectors = nxt.args
                position = next(k for k, v in enumerate(vectors) if v is w)
                others = [v for v in vectors if v is not w]
                # The fused kernel hands the product as a compact array
                # aligned with idx; the consumer lambda indexed the tmp
                # storage by idx, so wrap it to translate.
                fused_masked_mxv_lambda(
                    _make_adapter(fn, position), mask, A, u, *others,
                    desc=stage.kwargs["desc"],
                )
                stats.fused_pairs += 1
                i += 2
                continue
            # eager fallback
            if stage.kind == "mxv":
                w, mask, A, u = stage.args
                ops_mod.mxv(w, mask, A, u, **stage.kwargs)
            else:
                fn, mask, *vectors = stage.args
                ops_mod.ewise_lambda(fn, mask, *vectors,
                                     desc=stage.kwargs["desc"])
            stats.eager_stages += 1
            i += 1
        return stats

    def __repr__(self) -> str:
        return f"Pipeline({len(self._stages)} stages)"


class PipelinedRBGSSmoother:
    """RBGS built on :class:`Pipeline` — each colour step is recorded as
    the blocking two-call sequence and the pipeline's fusion analysis
    recovers the fused kernel automatically.

    This is the "humble programmer" version of
    :class:`repro.graphblas.fused.FusedRBGSSmoother`: the algorithm is
    written against standard primitives (as Listing 3 would be) and the
    *framework* finds the fusion — precisely the separation of concerns
    the paper's §VII-A advocates.  Iterates are bit-identical to the
    blocking smoother; tests assert every colour step fused.
    """

    def __init__(self, A: Matrix, A_diag: Vector, colors) -> None:
        self.A = A
        self.A_diag = A_diag
        self.colors = list(colors)
        if not self.colors:
            raise InvalidValue("at least one colour mask is required")
        self._tmp = Vector.dense(A.nrows)
        self.last_stats: Optional[PipelineStats] = None

    @property
    def n(self) -> int:
        return self.A.nrows

    @staticmethod
    def _pointwise(idx, z, r, tmp, d) -> None:
        dd = d[idx]
        z[idx] = (r[idx] - tmp[idx] + z[idx] * dd) / dd

    def _sweep(self, z: Vector, r: Vector, order) -> None:
        fused = 0
        stages = 0
        for k in order:
            mask = self.colors[k]
            pipe = Pipeline()
            pipe.mxv(self._tmp, mask, self.A, z)
            pipe.ewise_lambda(self._pointwise, mask, z, r, self._tmp,
                              self.A_diag)
            stats = pipe.execute()
            fused += stats.fused_pairs
            stages += stats.stages
        self.last_stats = PipelineStats(stages=stages, fused_pairs=fused,
                                        eager_stages=stages - 2 * fused)

    def forward(self, z: Vector, r: Vector) -> Vector:
        self._sweep(z, r, range(len(self.colors)))
        return z

    def backward(self, z: Vector, r: Vector) -> Vector:
        self._sweep(z, r, range(len(self.colors) - 1, -1, -1))
        return z

    def smooth(self, z: Vector, r: Vector, sweeps: int = 1) -> Vector:
        for _ in range(sweeps):
            self.forward(z, r)
            self.backward(z, r)
        return z


def _make_adapter(fn: Callable[..., None], position: int):
    """Adapt a tmp-indexing lambda to the fused kernel's compact product.

    The original lambda reads ``tmp[idx]`` from full-size storage; the
    fused kernel provides the product already gathered (one value per
    masked row).  The adapter scatters it into a full-size scratch view
    only logically: it builds a tiny proxy exposing ``[idx]`` as the
    compact array.
    """
    class _CompactAsFull:
        __slots__ = ("compact",)

        def __init__(self, compact):
            self.compact = compact

        def __getitem__(self, key):
            # the lambda always indexes with the masked idx array; the
            # compact product is aligned with it by construction
            return self.compact

        def __setitem__(self, key, value):
            raise InvalidValue(
                "the fused product is read-only inside the lambda"
            )

    def adapted(idx, product, *storages):
        args = list(storages)
        args.insert(position, _CompactAsFull(product))
        fn(idx, *args)

    return adapted
