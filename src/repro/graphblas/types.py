"""Domain (dtype) handling for GraphBLAS containers and operators.

GraphBLAS predefines a small set of scalar domains.  We map them onto
numpy dtypes and provide the promotion rules used when an operation mixes
domains (the C spec promotes per usual arithmetic conversions; we follow
numpy's ``result_type`` which matches for the types we support).
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.util.errors import DomainMismatch

# The GraphBLAS predefined types (GrB_BOOL .. GrB_FP64) as numpy dtypes.
BOOL = np.dtype(np.bool_)
INT8 = np.dtype(np.int8)
INT16 = np.dtype(np.int16)
INT32 = np.dtype(np.int32)
INT64 = np.dtype(np.int64)
UINT8 = np.dtype(np.uint8)
UINT16 = np.dtype(np.uint16)
UINT32 = np.dtype(np.uint32)
UINT64 = np.dtype(np.uint64)
FP32 = np.dtype(np.float32)
FP64 = np.dtype(np.float64)

PREDEFINED = (
    BOOL,
    INT8,
    INT16,
    INT32,
    INT64,
    UINT8,
    UINT16,
    UINT32,
    UINT64,
    FP32,
    FP64,
)

DTypeLike = Union[np.dtype, type, str]


def as_dtype(dtype: DTypeLike) -> np.dtype:
    """Normalise a user-provided dtype to one of the predefined domains.

    Raises :class:`DomainMismatch` for unsupported domains (complex,
    object, strings) because GraphBLAS semantics are only defined for the
    predefined scalar types.
    """
    dt = np.dtype(dtype)
    if dt not in PREDEFINED:
        raise DomainMismatch(
            f"unsupported GraphBLAS domain {dt!r}; expected one of "
            f"{[str(d) for d in PREDEFINED]}"
        )
    return dt


def promote(*dtypes: DTypeLike) -> np.dtype:
    """Common result domain for a mixed-domain operation."""
    dts = [as_dtype(d) for d in dtypes]
    return as_dtype(np.result_type(*dts))


def zero_of(dtype: DTypeLike):
    """The scalar zero of a domain (used for sparse "absent" fills)."""
    return as_dtype(dtype).type(0)
