"""Matrix-level GraphBLAS operations beyond ``mxm``.

Completes the spec surface for matrices: elementwise union and
intersection, unary apply, transpose-into, row/column reduction to a
vector, and submatrix extract/assign.  HPCG itself only needs ``mxm``
(for permutation sandwiches) and the restriction matrix, but a
GraphBLAS substrate that cannot do elementwise matrix algebra would not
be credible as a standalone library — and the test suite uses these
operations to cross-validate the vector paths.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np
import scipy.sparse as sp

from repro.graphblas import backend
from repro.graphblas import descriptor as desc_mod
from repro.graphblas.descriptor import Descriptor
from repro.graphblas.matrix import Matrix
from repro.graphblas.monoid import Monoid
from repro.graphblas.ops import BinaryOp, UnaryOp
from repro.graphblas.vector import Vector
from repro.util.errors import DimensionMismatch, InvalidValue

__all__ = [
    "ewise_add_matrix",
    "ewise_mult_matrix",
    "apply_matrix",
    "transpose_into",
    "reduce_rows",
    "reduce_cols",
    "extract_submatrix",
    "assign_submatrix",
    "kronecker",
]


def _coo_of(A: Matrix, transpose: bool):
    base = A._transposed_csr() if transpose else A._csr
    coo = base.tocoo()
    return coo.row.astype(np.int64), coo.col.astype(np.int64), coo.data


def ewise_add_matrix(
    C: Matrix,
    A: Matrix,
    B: Matrix,
    op: BinaryOp,
    desc: Descriptor = desc_mod.default,
) -> Matrix:
    """Union elementwise over matrices: ``op`` where both, copy where one."""
    a_shape = (A.ncols, A.nrows) if desc.transpose_matrix else A.shape
    if a_shape != B.shape:
        raise DimensionMismatch(f"ewise_add_matrix: {a_shape} vs {B.shape}")
    ar, ac, av = _coo_of(A, desc.transpose_matrix)
    br, bc, bv = _coo_of(B, False)
    ncols = B.ncols
    a_keys = ar * ncols + ac
    b_keys = br * ncols + bc
    both_keys, a_pos, b_pos = np.intersect1d(
        a_keys, b_keys, assume_unique=True, return_indices=True
    )
    only_a = np.setdiff1d(np.arange(a_keys.size), a_pos, assume_unique=True)
    only_b = np.setdiff1d(np.arange(b_keys.size), b_pos, assume_unique=True)
    out_keys = np.concatenate((both_keys, a_keys[only_a], b_keys[only_b]))
    merged = (
        op.vectorized(av[a_pos], bv[b_pos])
        if both_keys.size
        else np.empty(0, dtype=np.result_type(av.dtype, bv.dtype))
    )
    out_vals = np.concatenate((merged, av[only_a], bv[only_b]))
    rows, cols = np.divmod(out_keys, ncols)
    out = sp.csr_matrix((out_vals, (rows, cols)), shape=B.shape)
    out.sort_indices()
    if backend.active():
        backend.record("ewise_add_matrix", B.nrows, int(out.nnz),
                       int(both_keys.size), int(out.nnz) * 16)
    C._csr = out
    C._invalidate()
    return C


def ewise_mult_matrix(
    C: Matrix,
    A: Matrix,
    B: Matrix,
    op: BinaryOp,
    desc: Descriptor = desc_mod.default,
) -> Matrix:
    """Intersection elementwise over matrices."""
    a_shape = (A.ncols, A.nrows) if desc.transpose_matrix else A.shape
    if a_shape != B.shape:
        raise DimensionMismatch(f"ewise_mult_matrix: {a_shape} vs {B.shape}")
    ar, ac, av = _coo_of(A, desc.transpose_matrix)
    br, bc, bv = _coo_of(B, False)
    ncols = B.ncols
    a_keys = ar * ncols + ac
    b_keys = br * ncols + bc
    both_keys, a_pos, b_pos = np.intersect1d(
        a_keys, b_keys, assume_unique=True, return_indices=True
    )
    vals = (
        op.vectorized(av[a_pos], bv[b_pos])
        if both_keys.size
        else np.empty(0, dtype=np.result_type(av.dtype, bv.dtype))
    )
    rows, cols = np.divmod(both_keys, ncols)
    out = sp.csr_matrix((vals, (rows, cols)), shape=B.shape)
    out.sort_indices()
    if backend.active():
        backend.record("ewise_mult_matrix", B.nrows, int(out.nnz),
                       int(both_keys.size), int(out.nnz) * 16)
    C._csr = out
    C._invalidate()
    return C


def apply_matrix(C: Matrix, op: UnaryOp, A: Matrix,
                 desc: Descriptor = desc_mod.default) -> Matrix:
    """``C = op(A)`` elementwise over A's pattern."""
    base = A._transposed_csr() if desc.transpose_matrix else A._csr
    out = base.copy()
    out.data = op.vectorized(out.data)
    if backend.active():
        backend.record("apply_matrix", out.shape[0], int(out.nnz),
                       int(out.nnz), int(out.nnz) * 16)
    C._csr = out
    C._invalidate()
    return C


def transpose_into(C: Matrix, A: Matrix) -> Matrix:
    """``C = A'`` (GrB_transpose).  Prefer the descriptor for products."""
    out = A._transposed_csr().copy()
    if backend.active():
        backend.record("transpose", out.shape[0], int(out.nnz), 0,
                       int(out.nnz) * 16)
    C._csr = out
    C._invalidate()
    return C


def reduce_rows(w: Vector, A: Matrix, monoid: Monoid,
                desc: Descriptor = desc_mod.default) -> Vector:
    """``w[i] = fold(A[i, :])`` — matrix-to-vector reduction.

    With the transpose descriptor this reduces columns instead.  Rows
    with no entries produce no output entry (GraphBLAS semantics).
    """
    base = A._transposed_csr() if desc.transpose_matrix else A._csr
    if w.size != base.shape[0]:
        raise DimensionMismatch(
            f"reduce_rows output size {w.size} != rows {base.shape[0]}"
        )
    reduced = monoid.segment_reduce(base.data, base.indptr.astype(np.int64))
    present = np.diff(base.indptr) > 0
    w._values[:] = 0
    w._values[present] = np.asarray(reduced)[present]
    w._present[:] = present
    w._bump()
    if backend.active():
        backend.record("reduce_rows", base.shape[0], int(base.nnz),
                       int(base.nnz), int(base.nnz) * 12)
    return w


def reduce_cols(w: Vector, A: Matrix, monoid: Monoid) -> Vector:
    """``w[j] = fold(A[:, j])`` — convenience for the transpose form."""
    return reduce_rows(w, A, monoid, desc=desc_mod.transpose_matrix)


def kronecker(C: Matrix, A: Matrix, B: Matrix, op: BinaryOp) -> Matrix:
    """``C = A ⊗ B`` under ``op`` (GrB_kronecker).

    The conventional (times) Kronecker product generalised: entry
    ``C[i*bm + k, j*bn + l] = op(A[i, j], B[k, l])`` over the pattern
    product.  Useful for building structured operators — e.g. a 3D
    stencil is a Kronecker sum of 1D stencils.
    """
    ar, ac, av = _coo_of(A, False)
    br, bc, bv = _coo_of(B, False)
    bm, bn = B.shape
    rows = (ar[:, None] * bm + br[None, :]).ravel()
    cols = (ac[:, None] * bn + bc[None, :]).ravel()
    vals = op.vectorized(
        np.repeat(av, bv.size), np.tile(bv, av.size)
    )
    out = sp.csr_matrix(
        (vals, (rows, cols)), shape=(A.nrows * bm, A.ncols * bn)
    )
    out.sort_indices()
    if backend.active():
        backend.record("kronecker", out.shape[0], int(out.nnz),
                       int(out.nnz), int(out.nnz) * 16)
    C._csr = out
    C._invalidate()
    return C


def extract_submatrix(
    C: Matrix,
    A: Matrix,
    rows: Sequence[int],
    cols: Optional[Sequence[int]] = None,
) -> Matrix:
    """``C = A[rows, cols]`` (GrB_Matrix_extract)."""
    r = np.asarray(rows, dtype=np.int64)
    c = np.arange(A.ncols, dtype=np.int64) if cols is None else np.asarray(
        cols, dtype=np.int64
    )
    if r.size and (r.min() < 0 or r.max() >= A.nrows):
        raise InvalidValue("row index out of range")
    if c.size and (c.min() < 0 or c.max() >= A.ncols):
        raise InvalidValue("column index out of range")
    out = A._csr[r, :][:, c].tocsr()
    out.sort_indices()
    if backend.active():
        backend.record("extract_matrix", r.size, int(out.nnz), 0,
                       int(out.nnz) * 16)
    C._csr = out
    C._invalidate()
    return C


def assign_submatrix(
    C: Matrix,
    A: Matrix,
    rows: Sequence[int],
    cols: Sequence[int],
) -> Matrix:
    """``C[rows, cols] = A`` (GrB_Matrix_assign), pattern-replacing.

    The targeted block's old entries are removed; A's entries take
    their place.  Entries of C outside the block are untouched.
    """
    r = np.asarray(rows, dtype=np.int64)
    c = np.asarray(cols, dtype=np.int64)
    if (r.size, c.size) != A.shape:
        raise DimensionMismatch(
            f"assign block {r.size}x{c.size} != source {A.shape}"
        )
    if r.size and (r.min() < 0 or r.max() >= C.nrows):
        raise InvalidValue("row index out of range")
    if c.size and (c.min() < 0 or c.max() >= C.ncols):
        raise InvalidValue("column index out of range")
    base = C._csr.tocoo()
    in_rows = np.isin(base.row, r)
    in_cols = np.isin(base.col, c)
    keep = ~(in_rows & in_cols)
    src = A._csr.tocoo()
    new_rows = np.concatenate((base.row[keep], r[src.row]))
    new_cols = np.concatenate((base.col[keep], c[src.col]))
    new_vals = np.concatenate((base.data[keep], src.data))
    out = sp.csr_matrix((new_vals, (new_rows, new_cols)), shape=C.shape)
    out.sort_indices()
    if backend.active():
        backend.record("assign_matrix", r.size, int(src.nnz), 0,
                       int(src.nnz) * 16)
    C._csr = out
    C._invalidate()
    return C
