"""The opaque GraphBLAS matrix container.

A ``Matrix`` holds a canonical Compressed Sparse Row copy of its
entries (the source of truth for element access, I/O and the cold-path
operations) and delegates its *hot* paths — ``mxv``, masked ``mxv``,
the ``transpose_matrix`` descriptor, the fused RBGS product — to a
:mod:`repro.graphblas.substrate` kernel provider selected per matrix:

* the substrate is chosen at construction by the registry's structure
  heuristic, forced globally via ``REPRO_SUBSTRATE``, or pinned
  explicitly (``Matrix(csr, substrate="sellcs")`` /
  :meth:`set_substrate`) — the paper's per-container format freedom;
* every provider is bit-identical to the CSR reference, so the choice
  is invisible to algorithm code (Section III-B's claim, enforced by
  the substrate equivalence suite).

Two backend caches matter for performance and are part of the
reproduction's story:

* a lazily-built provider over the transposed CSR, so the
  ``transpose_matrix`` descriptor (used by refinement to reuse the
  restriction matrix) costs one conversion, not one per call; and
* per-mask row substructures keyed by ``(id(mask), mask.version)``,
  kept in a bounded LRU.  The RBGS smoother issues a masked ``mxv`` per
  colour per sweep with the *same* eight colour masks every time;
  caching the extracted row structure turns the steady-state masked
  mxv into a plain product on an eighth of the rows — exactly the work
  the paper's complexity analysis assigns to it (Section III-A) — while
  the LRU bound keeps long many-mask runs (deep MG hierarchies,
  parameter sweeps) from growing memory without bound.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.graphblas import types as gbtypes
from repro.graphblas import substrate as substrate_mod
from repro.graphblas.ops import BinaryOp
from repro.graphblas.substrate.base import KernelProvider
from repro.graphblas.vector import Vector
from repro.util.errors import DimensionMismatch, InvalidValue

_MASK_CACHE_LIMIT = 32


class Matrix:
    """An ``nrows x ncols`` sparse matrix over a predefined domain."""

    __slots__ = (
        "_csr", "_csr_t", "_mask_cache", "_version",
        "_substrate_request", "_substrate", "_provider", "_provider_t",
    )

    def __init__(self, csr: sp.csr_matrix, substrate: Optional[str] = None):
        if not sp.issparse(csr):
            raise InvalidValue("Matrix wraps a scipy sparse matrix; use from_* constructors")
        csr = csr.tocsr()
        # canonicalise: sorted indices AND one value per coordinate
        # (GraphBLAS semantics; also what every substrate provider
        # assumes — a dense block cannot represent duplicates).  Copy
        # first: sum_duplicates would change the caller's nnz in place.
        if not csr.has_canonical_format:
            csr = csr.copy()
            csr.sum_duplicates()
        csr.sort_indices()
        gbtypes.as_dtype(csr.dtype)
        if substrate is not None:
            substrate_mod.validate_request(substrate)  # eager typo check
        self._csr = csr
        self._csr_t: Optional[sp.csr_matrix] = None
        # LRU of (id(mask), version, transpose) -> (rows, substructure)
        self._mask_cache: "OrderedDict[Tuple, Tuple[np.ndarray, KernelProvider]]" = OrderedDict()
        self._version = 0
        self._substrate_request = substrate
        self._substrate: Optional[str] = None       # resolved lazily
        self._provider: Optional[KernelProvider] = None
        self._provider_t: Optional[KernelProvider] = None

    # --- constructors -----------------------------------------------------
    @classmethod
    def from_coo(
        cls,
        rows: Iterable[int],
        cols: Iterable[int],
        values: Iterable,
        nrows: int,
        ncols: int,
        dtype=None,
        dup_op: Optional[BinaryOp] = None,
        substrate: Optional[str] = None,
    ) -> "Matrix":
        """Build from coordinates; ``dup_op`` combines duplicates.

        Only ``plus``-like (ufunc-backed) dup_ops get the fast path; any
        other associative op is honoured through a sorted segmented pass.
        """
        r = np.asarray(rows, dtype=np.int64)
        c = np.asarray(cols, dtype=np.int64)
        v = np.asarray(values)
        if dtype is not None:
            v = v.astype(gbtypes.as_dtype(dtype))
        if not (r.shape == c.shape == v.shape):
            raise DimensionMismatch("rows, cols, values must have equal length")
        if r.size:
            if r.min() < 0 or r.max() >= nrows or c.min() < 0 or c.max() >= ncols:
                raise InvalidValue("coordinate out of range")
        key = r * ncols + c
        has_dups = np.unique(key).size != key.size
        if has_dups and dup_op is None:
            raise InvalidValue("duplicate coordinates and no dup_op given")
        if has_dups and not (dup_op.ufunc is np.add):
            order = np.argsort(key, kind="stable")
            key_s, r_s, c_s, v_s = key[order], r[order], c[order], v[order]
            boundaries = np.flatnonzero(np.diff(key_s)) + 1
            starts = np.concatenate(([0], boundaries))
            ends = np.concatenate((boundaries, [key_s.size]))
            out_vals = np.empty(starts.size, dtype=v.dtype)
            for i, (s, e) in enumerate(zip(starts, ends)):
                acc = v_s[s]
                for k in range(s + 1, e):
                    acc = dup_op(acc, v_s[k])
                out_vals[i] = acc
            coo = sp.coo_matrix((out_vals, (r_s[starts], c_s[starts])), shape=(nrows, ncols))
        else:
            # scipy's duplicate handling sums entries, matching plus.
            coo = sp.coo_matrix((v, (r, c)), shape=(nrows, ncols))
        return cls(coo.tocsr(), substrate=substrate)

    @classmethod
    def from_dense(cls, array, dtype=None, substrate: Optional[str] = None) -> "Matrix":
        """Build from a 2-D array; zeros become absent entries."""
        arr = np.asarray(array)
        if dtype is not None:
            arr = arr.astype(gbtypes.as_dtype(dtype))
        if arr.ndim != 2:
            raise InvalidValue(f"expected 2-D data, got shape {arr.shape}")
        return cls(sp.csr_matrix(arr), substrate=substrate)

    @classmethod
    def from_scipy(cls, matrix: sp.spmatrix, substrate: Optional[str] = None) -> "Matrix":
        """Wrap (a CSR copy of) an existing scipy sparse matrix."""
        return cls(sp.csr_matrix(matrix, copy=True), substrate=substrate)

    @classmethod
    def identity(cls, n: int, dtype=gbtypes.FP64, substrate: Optional[str] = None) -> "Matrix":
        return cls(sp.identity(n, dtype=gbtypes.as_dtype(dtype), format="csr"),
                   substrate=substrate)

    # --- properties ----------------------------------------------------------
    @property
    def nrows(self) -> int:
        return self._csr.shape[0]

    @property
    def ncols(self) -> int:
        return self._csr.shape[1]

    @property
    def shape(self) -> Tuple[int, int]:
        return self._csr.shape

    @property
    def nvals(self) -> int:
        return int(self._csr.nnz)

    @property
    def dtype(self) -> np.dtype:
        return self._csr.dtype

    @property
    def version(self) -> int:
        return self._version

    # --- substrate ---------------------------------------------------------
    @property
    def substrate(self) -> str:
        """The active provider name (explicit pin > env force > heuristic)."""
        if self._substrate is None:
            self._substrate = substrate_mod.resolve(
                self._csr, self._substrate_request
            )
        return self._substrate

    def set_substrate(self, name: Optional[str]) -> "Matrix":
        """Pin this matrix to a provider (``None`` returns it to auto;
        ``"model"`` pins it to profile-driven selection)."""
        if name is not None:
            substrate_mod.validate_request(name)
        self._substrate_request = name
        self._substrate = None
        self._provider = None
        self._provider_t = None
        self._mask_cache.clear()
        return self

    def provider(self, transpose: bool = False) -> KernelProvider:
        """The active kernel provider (built lazily; transposed on demand)."""
        if transpose:
            if self._provider_t is None:
                self._provider_t = substrate_mod.get(self.substrate)(
                    self._transposed_csr()
                )
            return self._provider_t
        if self._provider is None:
            self._provider = substrate_mod.get(self.substrate)(self._csr)
        return self._provider

    # --- element access ---------------------------------------------------------
    def extract_element(self, i: int, j: int):
        """Value at ``(i, j)``; ``None`` when absent.

        Note: GraphBLAS does *not* promise constant time here — this is
        why HPCG-on-GraphBLAS keeps the diagonal of A in a separate
        vector (paper Section III-A).
        """
        if not (0 <= i < self.nrows and 0 <= j < self.ncols):
            raise InvalidValue(f"index ({i}, {j}) out of range for {self.shape}")
        lo, hi = self._csr.indptr[i], self._csr.indptr[i + 1]
        pos = np.searchsorted(self._csr.indices[lo:hi], j)
        if pos < hi - lo and self._csr.indices[lo + pos] == j:
            return self._csr.data[lo + pos].item()
        return None

    def set_element(self, i: int, j: int, value) -> None:
        if not (0 <= i < self.nrows and 0 <= j < self.ncols):
            raise InvalidValue(f"index ({i}, {j}) out of range for {self.shape}")
        # lil-free update: rebuild the row only when the pattern changes.
        lo, hi = self._csr.indptr[i], self._csr.indptr[i + 1]
        pos = np.searchsorted(self._csr.indices[lo:hi], j)
        if pos < hi - lo and self._csr.indices[lo + pos] == j:
            self._csr.data[lo + pos] = value
        else:
            coo = self._csr.tocoo()
            rows = np.append(coo.row, i)
            cols = np.append(coo.col, j)
            vals = np.append(coo.data, value)
            self._csr = sp.csr_matrix(
                (vals, (rows, cols)), shape=self.shape
            )
            self._csr.sort_indices()
        self._invalidate()

    def _invalidate(self) -> None:
        self._csr_t = None
        self._mask_cache.clear()
        self._version += 1
        # re-resolve on next use: the structure (and with it the
        # heuristic's choice) may have changed
        self._substrate = None
        self._provider = None
        self._provider_t = None

    # --- whole-container helpers ---------------------------------------------
    def dup(self) -> "Matrix":
        return Matrix(self._csr.copy(), substrate=self._substrate_request)

    def resize(self, nrows: int, ncols: int) -> None:
        """Change the dimensions (GrB_Matrix_resize).

        Growing adds empty space; shrinking drops entries outside the
        new bounds.
        """
        if nrows < 0 or ncols < 0:
            raise InvalidValue(f"bad dimensions ({nrows}, {ncols})")
        if (nrows, ncols) == self.shape:
            return
        coo = self._csr.tocoo()
        keep = (coo.row < nrows) & (coo.col < ncols)
        self._csr = sp.csr_matrix(
            (coo.data[keep], (coo.row[keep], coo.col[keep])),
            shape=(nrows, ncols),
        )
        self._csr.sort_indices()
        self._invalidate()

    def transpose(self) -> "Matrix":
        """A materialised transpose (prefer the transpose descriptor)."""
        return Matrix(self._csr.T.tocsr(), substrate=self._substrate_request)

    def diag(self) -> Vector:
        """The main diagonal as a vector (absent where not stored)."""
        n = min(self.nrows, self.ncols)
        out = Vector.sparse(n, dtype=self.dtype)
        d = self._csr.diagonal()
        # Presence: (i, i) stored in the pattern.  scipy's diagonal() cannot
        # distinguish stored zeros from absent; recover presence from indptr.
        present = np.zeros(n, dtype=bool)
        indptr, indices = self._csr.indptr, self._csr.indices
        for i in range(n):
            lo, hi = indptr[i], indptr[i + 1]
            pos = np.searchsorted(indices[lo:hi], i)
            present[i] = pos < hi - lo and indices[lo + pos] == i
        out._values[:n] = d
        out._present[:] = present
        out._bump()
        return out

    def to_coo(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        coo = self._csr.tocoo()
        return coo.row.copy(), coo.col.copy(), coo.data.copy()

    def to_scipy(self, copy: bool = True) -> sp.csr_matrix:
        """Export the CSR storage.  This is an I/O-level escape hatch.

        Application code built "on GraphBLAS" (the ``repro.hpcg`` layer)
        must not use it; the Ref implementation (``repro.ref``) does, on
        purpose — that contrast is the subject of the paper.
        """
        return self._csr.copy() if copy else self._csr

    # --- backend caches ----------------------------------------------------------
    def _transposed_csr(self) -> sp.csr_matrix:
        if self._csr_t is None:
            self._csr_t = self._csr.T.tocsr()
            self._csr_t.sort_indices()
        return self._csr_t

    def _rows_substructure(
        self, mask_key: Tuple, rows: np.ndarray, transpose: bool = False
    ) -> KernelProvider:
        """Active-provider structure over ``A[rows, :]``, LRU-cached per
        mask identity+version.

        With ``transpose=True`` the extraction applies to the transposed
        operand (the ``transpose_matrix`` descriptor path).
        """
        key = (*mask_key, transpose)
        hit = self._mask_cache.get(key)
        if hit is not None and np.array_equal(hit[0], rows):
            self._mask_cache.move_to_end(key)
            return hit[1]
        sub = self.provider(transpose).extract_rows(rows)
        while len(self._mask_cache) >= _MASK_CACHE_LIMIT:
            self._mask_cache.popitem(last=False)
        self._mask_cache[key] = (rows.copy(), sub)
        return sub

    def _rows_submatrix(
        self, mask_key: Tuple, rows: np.ndarray, transpose: bool = False
    ) -> sp.csr_matrix:
        """Row extraction ``A[rows, :]`` as CSR, via the substructure cache."""
        return self._rows_substructure(mask_key, rows, transpose).csr

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Matrix(shape={self.shape}, nvals={self.nvals}, "
            f"dtype={self.dtype}, substrate={self.substrate!r})"
        )
