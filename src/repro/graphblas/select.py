"""Index-unary operators and ``select`` (GrB_select / GrB_apply-indexop).

An :class:`IndexUnaryOp` sees ``(value, row, col, thunk)`` and returns a
value (for ``apply``) or a boolean (for ``select``, which keeps only the
entries where the predicate holds).  These are the GraphBLAS 2.0
additions that express structural filters — ``tril``/``triu`` (which the
reference SYMGS needs), diagonal extraction, and value thresholds —
without touching storage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np
import scipy.sparse as sp

from repro.graphblas import backend
from repro.graphblas.matrix import Matrix
from repro.graphblas.vector import Vector
from repro.util.errors import InvalidValue


@dataclass(frozen=True)
class IndexUnaryOp:
    """``f(value, row, col, thunk)`` applied per stored entry.

    ``fn`` must be vectorised: it receives numpy arrays for values/rows/
    cols and a scalar thunk, and returns an array.
    """

    name: str
    fn: Callable

    def __call__(self, values, rows, cols, thunk):
        return self.fn(values, rows, cols, thunk)


# --- predefined index-unary predicates (GraphBLAS 2.0 names) ---------------
tril = IndexUnaryOp("tril", lambda v, i, j, k: j <= i + k)
triu = IndexUnaryOp("triu", lambda v, i, j, k: j >= i + k)
diag = IndexUnaryOp("diag", lambda v, i, j, k: j == i + k)
offdiag = IndexUnaryOp("offdiag", lambda v, i, j, k: j != i + k)
rowindex = IndexUnaryOp("rowindex", lambda v, i, j, k: i + k)
colindex = IndexUnaryOp("colindex", lambda v, i, j, k: j + k)
valueeq = IndexUnaryOp("valueeq", lambda v, i, j, k: v == k)
valuene = IndexUnaryOp("valuene", lambda v, i, j, k: v != k)
valuegt = IndexUnaryOp("valuegt", lambda v, i, j, k: v > k)
valuelt = IndexUnaryOp("valuelt", lambda v, i, j, k: v < k)


def select(C: Matrix, op: IndexUnaryOp, A: Matrix, thunk=0) -> Matrix:
    """``C = A where op(a_ij, i, j, thunk)`` — keep matching entries.

    The predicate must return booleans; entries where it is False are
    dropped from the pattern (not stored as zeros).
    """
    coo = A._csr.tocoo()
    keep = np.asarray(op(coo.data, coo.row, coo.col, thunk))
    if keep.dtype != np.bool_:
        raise InvalidValue(
            f"select needs a boolean predicate; {op.name!r} returned "
            f"{keep.dtype}"
        )
    out = sp.csr_matrix(
        (coo.data[keep], (coo.row[keep], coo.col[keep])), shape=A.shape
    )
    out.sort_indices()
    if backend.active():
        backend.record("select", A.nrows, A.nvals, 0, A.nvals * 16)
    C._csr = out
    C._invalidate()
    return C


def select_vector(w: Vector, op: IndexUnaryOp, u: Vector, thunk=0) -> Vector:
    """Vector flavour: predicate sees ``(value, index, index, thunk)``."""
    idx, vals = u.to_coo()
    keep = np.asarray(op(vals, idx, idx, thunk))
    if keep.dtype != np.bool_:
        raise InvalidValue(
            f"select needs a boolean predicate; {op.name!r} returned "
            f"{keep.dtype}"
        )
    w.clear()
    kept = idx[keep]
    w._values[kept] = vals[keep]
    w._present[kept] = True
    w._bump()
    if backend.active():
        backend.record("select", u.size, u.nvals, 0, u.nvals * 16)
    return w


def apply_indexop(C: Matrix, op: IndexUnaryOp, A: Matrix, thunk=0) -> Matrix:
    """``C = op(a_ij, i, j, thunk)`` over A's pattern (value transform)."""
    coo = A._csr.tocoo()
    new_vals = np.asarray(op(coo.data, coo.row, coo.col, thunk))
    out = sp.csr_matrix((new_vals, (coo.row, coo.col)), shape=A.shape)
    out.sort_indices()
    if backend.active():
        backend.record("apply", A.nrows, A.nvals, A.nvals, A.nvals * 16)
    C._csr = out
    C._invalidate()
    return C
