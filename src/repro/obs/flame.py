"""Flamegraph export: span stacks in Brendan Gregg's folded format.

Each recorded span knows its parent, so the trace is a forest; this
module collapses it into the classic ``root;child;leaf count`` lines
that ``flamegraph.pl``, speedscope, and most profiler UIs ingest
directly.  Counts are **self time in integer microseconds** — the time
a stack spent in its leaf frame itself — on either clock:

* ``clock="wall"`` — where the machine's time went;
* ``clock="modelled"`` — where the BSP cost model's time went (a
  simulated 64-node run's flamegraph, from a laptop).

No SVG toolchain is required to *look* at a profile:
:func:`render_top` draws a ranked terminal view with unicode bars
(``python -m repro.obs flame trace.json --top 20``), and
:func:`parse_folded` reads folded lines back, so the format
round-trips — the property the tests pin.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Sequence

from repro.util.errors import InvalidValue

CLOCKS = ("wall", "modelled")


def _clock_field(clock: str) -> str:
    if clock not in CLOCKS:
        raise InvalidValue(f"unknown clock {clock!r}; expected one of {CLOCKS}")
    return f"{clock}_seconds"


def folded_stacks(spans: Sequence[Dict[str, Any]],
                  clock: str = "wall") -> Dict[str, int]:
    """Collapse spans into ``{stack: self_microseconds}``.

    The stack is the ``;``-joined chain of span names from the root
    down; a span whose parent was dropped (bounded tracer) roots its
    own stack.  Self time is the span's clock minus its direct
    children's, clamped at zero, rounded to whole microseconds;
    stacks that round to zero are omitted (folded counts are
    conventionally positive integers).
    """
    field = _clock_field(clock)
    spans = [s for s in spans
             if not (s.get("args") or {}).get("instant")]
    by_id = {s.get("id"): s for s in spans if s.get("id") is not None}
    child_total: Dict[Any, float] = {}
    for span in spans:
        parent = span.get("parent_id")
        if parent is not None:
            child_total[parent] = (child_total.get(parent, 0.0)
                                   + float(span.get(field, 0.0)))

    def stack_of(span: Dict[str, Any]) -> str:
        names: List[str] = []
        seen = set()
        node = span
        while node is not None:
            names.append(str(node.get("name", "")).replace(";", ","))
            node_id = node.get("id")
            if node_id in seen:   # defensive: a cyclic parent link
                break
            seen.add(node_id)
            node = by_id.get(node.get("parent_id"))
        return ";".join(reversed(names))

    out: Dict[str, int] = {}
    for span in spans:
        own = float(span.get(field, 0.0)) - child_total.get(span.get("id"), 0.0)
        micros = int(round(max(own, 0.0) * 1e6))
        if micros <= 0:
            continue
        stack = stack_of(span)
        out[stack] = out.get(stack, 0) + micros
    return out


def folded_lines(stacks: Dict[str, int]) -> List[str]:
    """Folded-format lines (``stack count``), deterministically sorted."""
    return [f"{stack} {count}" for stack, count in sorted(stacks.items())]


def parse_folded(lines: Iterable[str]) -> Dict[str, int]:
    """Read folded lines back into ``{stack: count}`` (the round trip)."""
    out: Dict[str, int] = {}
    for i, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        stack, _, count = line.rpartition(" ")
        if not stack or not count.lstrip("-").isdigit():
            raise InvalidValue(f"line {i}: not folded format: {line!r}")
        out[stack] = out.get(stack, 0) + int(count)
    return out


def render_top(stacks: Dict[str, int], top: int = 20,
               width: int = 40, clock: str = "wall") -> str:
    """A terminal flame view: top stacks by self time, with bars.

    Each line shows the share of total self time, the self time in
    seconds, a proportional bar, and the full stack (deep frames
    leftmost-trimmed to keep the leaf visible).
    """
    _clock_field(clock)   # validate
    total = sum(stacks.values())
    if not total:
        return f"(no {clock} self time recorded)"
    ranked = sorted(stacks.items(), key=lambda kv: (-kv[1], kv[0]))
    shown = ranked[:top] if top else ranked
    peak = shown[0][1]
    lines = [f"top {len(shown)} of {len(ranked)} stacks by {clock} self "
             f"time (total {total / 1e6:.4f}s)"]
    for stack, micros in shown:
        share = micros / total
        bar = "█" * max(int(round(width * micros / peak)), 1)
        label = stack if len(stack) <= 60 else "…" + stack[-59:]
        lines.append(f"{share:>6.1%} {micros / 1e6:>10.4f}s "
                     f"{bar:<{width}} {label}")
    rest = total - sum(m for _, m in shown)
    if rest > 0:
        lines.append(f"{rest / total:>6.1%} {rest / 1e6:>10.4f}s "
                     f"{'':<{width}} ({len(ranked) - len(shown)} more)")
    return "\n".join(lines)
