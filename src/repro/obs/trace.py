"""Structured spans: the tracing half of :mod:`repro.obs`.

A :class:`Tracer` records nestable, thread-safe spans.  Each span
carries *two* clocks:

* **wall-clock** seconds, measured with ``time.perf_counter`` around
  the ``with`` body — what a native run reports; and
* **modelled** seconds, accumulated via :meth:`SpanHandle.tick` — what
  the BSP-priced simulated runs report.

Both fields are always present, so a simulated 64-node run and a
native run emit the *same trace shape*: the consumer decides which
clock to read.  Export formats:

* :meth:`Tracer.as_dicts` — plain JSON-able span list (machine use);
* :meth:`Tracer.chrome_trace` — Chrome/Perfetto ``trace_event``
  format (open ``chrome://tracing`` or https://ui.perfetto.dev and
  drop the file in).  Wall-clock microseconds drive ``ts``/``dur``;
  the modelled clock and every span attribute ride in ``args``.

Recording is bounded: past ``max_spans`` new spans are counted as
dropped instead of stored, so a long test suite under ``REPRO_TRACE=1``
cannot grow without bound.  The tracer itself never touches the
numerics — spans observe, they do not participate.

Two live consumers can watch the tracer while it records:

* **sinks** (:meth:`Tracer.add_sink`) receive every *finished*
  :class:`SpanRecord` — including spans the bounded store dropped — so
  a streaming writer (:mod:`repro.obs.stream`) can persist a trace
  incrementally while the run is still going;
* the **active-stack table** (:meth:`Tracer.active_stack`) exposes each
  thread's currently-open span names as an immutable tuple, which is
  what the sampling profiler (:mod:`repro.obs.profiler`) reads from its
  own thread to attribute wall-clock samples to the innermost span.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

#: Default bound on stored spans (drops are counted, not silent).
MAX_SPANS = 200_000


@dataclass
class SpanRecord:
    """One finished span."""

    id: int
    parent_id: Optional[int]
    name: str
    category: str
    thread: int
    start: float                 # seconds since the tracer's epoch
    wall_seconds: float
    modelled_seconds: float
    args: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "id": self.id,
            "parent_id": self.parent_id,
            "name": self.name,
            "category": self.category,
            "thread": self.thread,
            "start": self.start,
            "wall_seconds": self.wall_seconds,
            "modelled_seconds": self.modelled_seconds,
            "args": dict(self.args),
        }


class SpanHandle:
    """The live side of a span: a context manager with attribute taps.

    ``set(**attrs)`` attaches key/value arguments; ``tick(seconds)``
    accumulates modelled (BSP-priced) time.  Both are valid only while
    the span is open.
    """

    __slots__ = ("_tracer", "name", "category", "_args", "_modelled",
                 "_t0", "_id", "_parent_id", "_closed")

    def __init__(self, tracer: "Tracer", name: str, category: str,
                 args: Optional[Dict[str, Any]]):
        self._tracer = tracer
        self.name = name
        self.category = category
        self._args = dict(args) if args else {}
        self._modelled = 0.0
        self._t0 = 0.0
        self._id = -1
        self._parent_id: Optional[int] = None
        self._closed = False

    def set(self, **attrs: Any) -> "SpanHandle":
        self._args.update(attrs)
        return self

    def tick(self, seconds: float) -> "SpanHandle":
        """Add ``seconds`` of modelled (non-wall-clock) time."""
        if seconds < 0:
            raise ValueError(f"negative modelled tick: {seconds}")
        self._modelled += seconds
        return self

    def __enter__(self) -> "SpanHandle":
        self._tracer._open(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._tracer._close(self)
        return False


class _NullSpan:
    """The disabled-path span: accepts everything, records nothing.

    A single shared instance is returned by :func:`repro.obs.span`
    whenever tracing is off, so the instrumented hot paths pay one
    global read and nothing else.
    """

    __slots__ = ()

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    def tick(self, seconds: float) -> "_NullSpan":
        return self

    def __enter__(self) -> None:
        # yields None so call sites can gate attribute work on the
        # handle: ``with obs.span(...) as sp: ... if sp is not None``
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_SPAN = _NullSpan()


class Tracer:
    """Thread-safe span recorder with per-thread nesting."""

    def __init__(self, max_spans: int = MAX_SPANS):
        self.max_spans = max_spans
        self.spans: List[SpanRecord] = []
        self.dropped = 0
        self.sink_errors = 0
        self.epoch = time.perf_counter()
        self.epoch_unix = time.time()
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._tls = threading.local()
        self._sinks: List[Any] = []
        # thread ident -> tuple of open span names (root first); tuples
        # are replaced wholesale so cross-thread reads need no lock
        self._active: Dict[int, tuple] = {}

    # --- recording -----------------------------------------------------------
    def _stack(self) -> List[SpanHandle]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def span(self, name: str, category: str = "",
             args: Optional[Dict[str, Any]] = None) -> SpanHandle:
        return SpanHandle(self, name, category, args)

    def _open(self, handle: SpanHandle) -> None:
        stack = self._stack()
        handle._parent_id = stack[-1]._id if stack else None
        handle._id = next(self._ids)
        stack.append(handle)
        self._active[threading.get_ident()] = tuple(h.name for h in stack)
        handle._t0 = time.perf_counter()

    def _close(self, handle: SpanHandle) -> None:
        t1 = time.perf_counter()
        if handle._closed:
            return
        handle._closed = True
        stack = self._stack()
        if stack and stack[-1] is handle:
            stack.pop()
        else:  # out-of-order exit: drop down to (and including) handle
            while stack:
                top = stack.pop()
                if top is handle:
                    break
        tid = threading.get_ident()
        if stack:
            self._active[tid] = tuple(h.name for h in stack)
        else:
            self._active.pop(tid, None)
        record = SpanRecord(
            id=handle._id,
            parent_id=handle._parent_id,
            name=handle.name,
            category=handle.category,
            thread=tid,
            start=handle._t0 - self.epoch,
            wall_seconds=t1 - handle._t0,
            modelled_seconds=handle._modelled,
            args=handle._args,
        )
        with self._lock:
            if len(self.spans) >= self.max_spans:
                self.dropped += 1
            else:
                self.spans.append(record)
        self._emit(record)

    def event(self, name: str, category: str = "",
              args: Optional[Dict[str, Any]] = None) -> None:
        """Record an instant (zero-duration) span."""
        now = time.perf_counter()
        record = SpanRecord(
            id=next(self._ids),
            parent_id=None,
            name=name,
            category=category,
            thread=threading.get_ident(),
            start=now - self.epoch,
            wall_seconds=0.0,
            modelled_seconds=0.0,
            args=dict(args) if args else {},
        )
        record.args.setdefault("instant", True)
        with self._lock:
            if len(self.spans) >= self.max_spans:
                self.dropped += 1
            else:
                self.spans.append(record)
        self._emit(record)

    # --- live consumers ------------------------------------------------------
    def add_sink(self, sink: Any) -> Any:
        """Register a callable receiving every finished :class:`SpanRecord`.

        Sinks see spans the bounded store dropped too (that is the
        point: a streaming sink is not limited by ``max_spans``).  A
        sink raising :class:`OSError` is counted in ``sink_errors`` and
        never propagates into the instrumented code.
        """
        self._sinks.append(sink)
        return sink

    def remove_sink(self, sink: Any) -> None:
        try:
            self._sinks.remove(sink)
        except ValueError:
            pass

    def _emit(self, record: SpanRecord) -> None:
        for sink in self._sinks:
            try:
                sink(record)
            except OSError:
                self.sink_errors += 1

    def active_stack(self, thread: int) -> tuple:
        """The open span names of ``thread`` (root first), or ``()``.

        Safe to call from any thread: the table maps thread idents to
        immutable tuples that are swapped atomically on open/close.
        """
        return self._active.get(thread, ())

    def active_threads(self) -> List[int]:
        """Thread idents that currently have at least one open span."""
        return list(self._active)

    # --- queries -------------------------------------------------------------
    def find(self, name: Optional[str] = None,
             category: Optional[str] = None) -> List[SpanRecord]:
        with self._lock:
            return [
                s for s in self.spans
                if (name is None or s.name == name)
                and (category is None or s.category == category)
            ]

    def children_of(self, span: SpanRecord) -> List[SpanRecord]:
        with self._lock:
            return [s for s in self.spans if s.parent_id == span.id]

    def clear(self) -> None:
        with self._lock:
            self.spans.clear()
            self.dropped = 0

    # --- export --------------------------------------------------------------
    def as_dicts(self) -> List[Dict[str, Any]]:
        with self._lock:
            return [s.as_dict() for s in self.spans]

    def chrome_trace(self, run_id: str = "") -> Dict[str, Any]:
        """The trace in Chrome/Perfetto ``trace_event`` JSON format.

        Spans become complete ("X") events, instants become "i"
        events; ``ts``/``dur`` are wall-clock microseconds since the
        tracer epoch, and each event's ``args`` carries the modelled
        seconds next to the span attributes.
        """
        pid = os.getpid()
        events: List[Dict[str, Any]] = [{
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": f"repro run {run_id}" if run_id else "repro"},
        }]
        with self._lock:
            spans = list(self.spans)
        tids: Dict[int, int] = {}
        for s in spans:
            tid = tids.setdefault(s.thread, len(tids))
            args = dict(s.args)
            args["modelled_seconds"] = s.modelled_seconds
            if s.parent_id is not None:
                args["parent_id"] = s.parent_id
            event = {
                "name": s.name,
                "cat": s.category or "repro",
                "pid": pid,
                "tid": tid,
                "ts": s.start * 1e6,
                "args": args,
            }
            if args.pop("instant", None):
                event["ph"] = "i"
                event["s"] = "t"
            else:
                event["ph"] = "X"
                event["dur"] = s.wall_seconds * 1e6
            events.append(event)
        for thread, tid in tids.items():
            events.append({
                "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
                "args": {"name": f"thread-{thread}"},
            })
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {
                "run_id": run_id,
                "epoch_unix": self.epoch_unix,
                "dropped_spans": self.dropped,
            },
        }
