"""Live telemetry runtime: the transport the metrics layer was missing.

PR 6 rendered hardened Prometheus text and PR 7 hardened it further —
but only into files, after the run.  This module serves and pushes the
same registry *while the run is executing*:

* :class:`LiveServer` — a zero-dependency stdlib
  ``ThreadingHTTPServer`` on a daemon thread exposing

  ========== =================================================== =========
  endpoint   payload                                             content
  ========== =================================================== =========
  /metrics   Prometheus text exposition of the live registry     text 0.0.4
  /healthz   liveness: run id, uptime, span/drop counts          JSON
  /manifest  the run-provenance manifest, built fresh            JSON
  /progress  live solve progress: CG iteration/residual,         JSON
             MG level visits, dist supersteps
  ========== =================================================== =========

  started in-process by the driver (``--serve-metrics PORT``) or
  standalone over finished artifacts (``python -m repro.obs serve``);

* :class:`MetricsPusher` — pushgateway-style HTTP ``PUT`` of the
  exposition text with bounded retry + exponential backoff, for
  environments where scraping in is impossible but pushing out is not;

* :class:`TextfileCollector` — the node-exporter textfile-collector
  pattern: atomically replace a ``.prom`` file on disk that an
  external agent scrapes on its own schedule.

Everything here observes and exports; nothing touches the numerics.
The server records its own behaviour into the registry it serves
(``obs_http_requests_total``, ``obs_scrape_seconds``,
``obs_push_total`` …) so the telemetry pipeline is itself observable.
"""

from __future__ import annotations

import json
import os
import random
import threading
import time
import urllib.error
import urllib.parse
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, List, Optional

from repro.obs.metrics import Counter, Gauge, MetricsRegistry
from repro.util.errors import InvalidValue

#: Content type of the Prometheus text exposition format.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Default bind host — loopback; live telemetry is diagnostic, not public.
DEFAULT_HOST = "127.0.0.1"


# ---------------------------------------------------------------------------
# progress: the /progress document, read out of the metrics registry
# ---------------------------------------------------------------------------

def _gauge_value(registry: MetricsRegistry, name: str) -> Optional[float]:
    metric = registry.get(name)
    if isinstance(metric, Gauge):
        return metric.value()
    return None


def _counter_samples(registry: MetricsRegistry,
                     name: str) -> Dict[str, float]:
    """Label-set -> value for a labelled counter (compact string keys)."""
    metric = registry.get(name)
    if not isinstance(metric, Counter):
        return {}
    out: Dict[str, float] = {}
    for labels in metric.labels():
        key = ",".join(f"{k}={v}" for k, v in sorted(labels.items())) or ""
        out[key] = metric.value(**labels)
    return out


def progress_snapshot(registry: MetricsRegistry) -> Dict[str, Any]:
    """The live solve-progress document behind ``/progress``.

    Reads only gauges and counters the instrumented layers keep
    current: the CG loop's iteration/residual gauges, the per-MG-level
    visit counters, and the dist engine's superstep/progress gauges.
    Sections whose producers never ran are ``None``/empty — a serial
    solve has no ``dist`` numbers and vice versa.
    """
    iters = registry.get("cg_iterations_total")
    supersteps = registry.get("dist_supersteps_total")
    return {
        "updated_unix": time.time(),
        "cg": {
            "iteration": _gauge_value(registry, "cg_iteration"),
            "residual": _gauge_value(registry, "cg_residual_last"),
            "iterations_total": (iters.value() if isinstance(iters, Counter)
                                 else None),
        },
        "mg": {
            "level_visits": _counter_samples(registry,
                                             "mg_level_visits_total"),
        },
        "dist": {
            "iteration": _gauge_value(registry, "dist_cg_iteration"),
            "residual": _gauge_value(registry, "dist_cg_residual_last"),
            "supersteps": (supersteps.value()
                           if isinstance(supersteps, Counter) else None),
        },
    }


# ---------------------------------------------------------------------------
# telemetry sources: what the server reads on each request
# ---------------------------------------------------------------------------

class TelemetrySource:
    """The server's read side: four callables, one per endpoint.

    ``registry`` (optional) is where the server accounts for its own
    requests; :func:`context_source` points it at the live run's
    registry so self-observability shows up in ``/metrics`` itself.
    """

    def __init__(self,
                 metrics_text: Callable[[], str],
                 manifest: Callable[[], Dict[str, Any]],
                 progress: Callable[[], Dict[str, Any]],
                 health: Callable[[], Dict[str, Any]],
                 registry: Optional[MetricsRegistry] = None):
        self.metrics_text = metrics_text
        self.manifest = manifest
        self.progress = progress
        self.health = health
        self.registry = registry


def context_source(ctx) -> TelemetrySource:
    """A source reading a live :class:`~repro.obs.context.RunContext`."""
    started = time.time()

    def metrics_text() -> str:
        ctx.sync_self_metrics()
        return ctx.metrics.to_prometheus()

    def health() -> Dict[str, Any]:
        return {
            "status": "ok",
            "run_id": ctx.run_id,
            "name": ctx.name,
            "uptime_seconds": time.time() - started,
            "spans": len(ctx.tracer.spans),
            "dropped_spans": ctx.tracer.dropped,
            "metrics": len(ctx.metrics.names()),
        }

    return TelemetrySource(
        metrics_text=metrics_text,
        manifest=ctx.build_manifest,
        progress=lambda: progress_snapshot(ctx.metrics),
        health=health,
        registry=ctx.metrics,
    )


def file_source(metrics: Optional[str] = None,
                manifest: Optional[str] = None) -> TelemetrySource:
    """A source re-reading finished artifacts on every request.

    Backs ``python -m repro.obs serve``: point a Prometheus scraper at
    a run's ``--metrics-json`` artifact (and ``/manifest`` at its
    manifest) without keeping the producing process alive.  Files are
    re-read per request, so overwriting the artifact updates the
    endpoints without a restart.
    """
    started = time.time()

    def load_registry() -> MetricsRegistry:
        if metrics is None:
            return MetricsRegistry()
        with open(metrics, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
        return MetricsRegistry.from_snapshot(payload.get("metrics", payload))

    def manifest_doc() -> Dict[str, Any]:
        if manifest is None:
            raise InvalidValue("no manifest file behind this server")
        with open(manifest, "r", encoding="utf-8") as fh:
            return json.load(fh)

    def health() -> Dict[str, Any]:
        return {
            "status": "ok",
            "mode": "files",
            "metrics_file": metrics,
            "manifest_file": manifest,
            "uptime_seconds": time.time() - started,
        }

    return TelemetrySource(
        metrics_text=lambda: load_registry().to_prometheus(),
        manifest=manifest_doc,
        progress=lambda: progress_snapshot(load_registry()),
        health=health,
    )


# ---------------------------------------------------------------------------
# the HTTP server
# ---------------------------------------------------------------------------

class _TelemetryHandler(BaseHTTPRequestHandler):
    server_version = "repro-obs-live/1"

    def do_GET(self) -> None:             # noqa: N802 (stdlib API name)
        source: TelemetrySource = self.server.source   # type: ignore
        path = urllib.parse.urlparse(self.path).path.rstrip("/") or "/"
        t0 = time.perf_counter()
        status = 200
        try:
            if path == "/metrics":
                body = source.metrics_text().encode("utf-8")
                ctype = PROMETHEUS_CONTENT_TYPE
            elif path == "/healthz":
                body = _json_body(source.health())
                ctype = "application/json"
            elif path == "/manifest":
                body = _json_body(source.manifest())
                ctype = "application/json"
            elif path == "/progress":
                body = _json_body(source.progress())
                ctype = "application/json"
            else:
                status = 404
                body = _json_body({"error": f"unknown endpoint {path!r}",
                                   "endpoints": ["/metrics", "/healthz",
                                                 "/manifest", "/progress"]})
                ctype = "application/json"
        except Exception as exc:           # a broken provider is a 500, not a crash
            status = 500
            body = _json_body({"error": str(exc)})
            ctype = "application/json"
        self.send_response(status)
        self.send_header("Content-Type", ctype)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        try:
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            pass
        if source.registry is not None:
            source.registry.counter(
                "obs_http_requests_total",
                "live-telemetry HTTP requests served",
            ).inc(endpoint=path, status=str(status))
            source.registry.histogram(
                "obs_scrape_seconds",
                "seconds spent rendering a live-telemetry response",
            ).observe(time.perf_counter() - t0, endpoint=path)

    def log_message(self, format: str, *args: Any) -> None:
        pass                               # diagnostics server: no stderr chatter


def _json_body(doc: Dict[str, Any]) -> bytes:
    return (json.dumps(doc, indent=2, sort_keys=True, default=str)
            + "\n").encode("utf-8")


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True


class LiveServer:
    """The live telemetry endpoint: bind, serve on a daemon thread, stop.

    ``port=0`` binds an ephemeral port; read the resolved one from
    ``.port`` (or ``.url``).  Usable as a context manager.
    """

    def __init__(self, source: TelemetrySource,
                 host: str = DEFAULT_HOST, port: int = 0):
        self.source = source
        self._httpd = _Server((host, port), _TelemetryHandler)
        self._httpd.source = source        # type: ignore[attr-defined]
        self.host, self.port = self._httpd.server_address[:2]
        self._thread: Optional[threading.Thread] = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "LiveServer":
        if self._thread is not None:
            raise InvalidValue("server already started")
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-obs-live", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._httpd.shutdown()
        self._thread.join(timeout=5.0)
        self._httpd.server_close()
        self._thread = None

    def __enter__(self) -> "LiveServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False


# ---------------------------------------------------------------------------
# push transports
# ---------------------------------------------------------------------------

class MetricsPusher:
    """Pushgateway-style push of the exposition text, with bounded retry.

    ``push()`` renders the text from ``source`` (a callable returning
    exposition text — e.g. ``context_source(ctx).metrics_text``) and
    ``PUT``s it to ``<url>/metrics/job/<job>``.  Transient failures
    retry up to ``retries`` times with *full-jitter* exponential
    backoff starting at ``backoff`` seconds (each delay is a uniform
    draw from ``[0, backoff * 2**attempt]``, so a fleet of pushers
    never thunders in lockstep; ``jitter=False`` restores the
    deterministic delays), and the whole retry loop is capped at
    ``max_elapsed`` wall-clock seconds — a dead pushgateway can stall
    the exit path no longer than that, whatever ``retries`` says.
    Exhaustion returns ``False`` rather than raising, because a
    telemetry push must never take the solve down with it.  Outcomes
    land in the optional ``registry``
    (``obs_push_total{outcome=...}``, ``obs_push_seconds``).
    """

    def __init__(self, url: str, job: str = "repro",
                 source: Optional[Callable[[], str]] = None,
                 timeout: float = 5.0, retries: int = 3,
                 backoff: float = 0.2, jitter: bool = True,
                 max_elapsed: float = 60.0,
                 registry: Optional[MetricsRegistry] = None):
        if retries < 0:
            raise InvalidValue(f"retries must be >= 0, got {retries}")
        if backoff < 0:
            raise InvalidValue(f"backoff must be >= 0, got {backoff}")
        if max_elapsed <= 0:
            raise InvalidValue(
                f"max_elapsed must be positive, got {max_elapsed}")
        self.url = url.rstrip("/")
        self.job = job
        self.source = source
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.jitter = jitter
        self.max_elapsed = max_elapsed
        self.registry = registry
        self.pushes = 0
        self.failures = 0
        self.last_error: Optional[str] = None
        # injectable clock/sleep/randomness — tests monkeypatch these
        # instead of slowing the suite down with real sleeps
        self._monotonic = time.monotonic
        self._sleep = time.sleep
        self._random = random.random

    @property
    def target(self) -> str:
        return f"{self.url}/metrics/job/{urllib.parse.quote(self.job)}"

    def _retry_delay(self, attempt: int) -> float:
        delay = self.backoff * (2 ** attempt)
        if self.jitter:
            delay *= self._random()
        return delay

    def push(self, text: Optional[str] = None) -> bool:
        if text is None:
            if self.source is None:
                raise InvalidValue("no text given and no source configured")
            text = self.source()
        t0 = time.perf_counter()
        started = self._monotonic()
        ok = False
        for attempt in range(self.retries + 1):
            try:
                request = urllib.request.Request(
                    self.target, data=text.encode("utf-8"), method="PUT",
                    headers={"Content-Type": PROMETHEUS_CONTENT_TYPE})
                with urllib.request.urlopen(request, timeout=self.timeout):
                    pass
                ok = True
                break
            except (urllib.error.URLError, OSError) as exc:
                self.last_error = str(exc)
                if attempt >= self.retries:
                    break
                remaining = self.max_elapsed - (self._monotonic() - started)
                if remaining <= 0:
                    break              # wall-clock budget exhausted
                self._sleep(min(self._retry_delay(attempt), remaining))
        self.pushes += 1
        if not ok:
            self.failures += 1
        if self.registry is not None:
            self.registry.counter(
                "obs_push_total", "metrics pushes by outcome",
            ).inc(outcome="ok" if ok else "error")
            self.registry.histogram(
                "obs_push_seconds", "seconds per metrics push "
                "(including retries)",
            ).observe(time.perf_counter() - t0)
        return ok


class PeriodicPusher:
    """In-run metric pushes on a timer: a daemon thread calling
    ``pusher.push()`` every ``interval`` seconds until stopped.

    ``stop()`` (or leaving the context manager) shuts the thread down
    promptly — the wait is interruptible, not a sleep — and, with
    ``final_push=True``, sends one last push so the gateway holds the
    run's final state.  Push failures are already non-raising
    (:meth:`MetricsPusher.push` returns ``False``), so a dead gateway
    degrades to periodic no-ops rather than killing the solve.
    """

    def __init__(self, pusher: MetricsPusher, interval: float,
                 final_push: bool = True):
        if interval <= 0:
            raise InvalidValue(
                f"push interval must be positive, got {interval}")
        self.pusher = pusher
        self.interval = interval
        self.final_push = final_push
        self.ticks = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            self.ticks += 1
            self.pusher.push()

    def start(self) -> "PeriodicPusher":
        if self._thread is not None:
            raise InvalidValue("periodic pusher already started")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="repro-obs-push", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=self.interval + 10.0)
        self._thread = None
        if self.final_push:
            self.pusher.push()

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def __enter__(self) -> "PeriodicPusher":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False


class TextfileCollector:
    """Atomic ``.prom`` file drops for a node-exporter-style collector.

    ``write()`` renders the exposition text and atomically replaces
    ``path`` (write-temp-then-rename), so a scraper never reads a
    half-written exposition.
    """

    def __init__(self, path: str,
                 source: Callable[[], str],
                 registry: Optional[MetricsRegistry] = None):
        self.path = path
        self.source = source
        self.registry = registry
        self.writes = 0

    def write(self) -> str:
        text = self.source()
        t0 = time.perf_counter()
        tmp = f"{self.path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(text)
        os.replace(tmp, self.path)
        self.writes += 1
        if self.registry is not None:
            self.registry.counter(
                "obs_textfile_writes_total",
                "atomic textfile-collector exposition writes",
            ).inc()
            self.registry.histogram(
                "obs_push_seconds", "seconds per metrics push "
                "(including retries)",
            ).observe(time.perf_counter() - t0)
        return self.path
