"""Sampling wall-clock profiler: where the interpreter actually is.

Spans answer "which phase is slow"; this module answers "which *code*
inside the phase".  A background thread wakes at a configurable rate,
snapshots every thread's Python frame via ``sys._current_frames()``,
and attributes each sample to the innermost **active span** of the
sampled thread (read from the tracer's lock-free active-stack table),
so a sample lands as::

    hpcg/solve;cg/iteration;mg/L0;matrix.py:mxv;csr.py:mxv

— the span chain first, the Python frames below it.  The output is the
same folded-stack dict the existing renderers consume:
:meth:`SamplingProfiler.folded_stacks` scales sample counts to
microseconds (one sample ≈ one period), so ``obs flame`` / ``obs top``
/ ``flamegraph.pl`` render a sampled profile exactly like a span trace.

The profiler is observational and GIL-bounded: sampling at the default
rate costs one ``sys._current_frames()`` call and a few dict updates
per period.  Self-observability rides along — tick and sample counts,
plus **overruns** (ticks the sampler missed because a sample took
longer than the period) so a too-ambitious rate is visible in the
metrics instead of silently lying about coverage.
"""

from __future__ import annotations

import os
import sys
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.trace import Tracer
from repro.util.errors import InvalidValue

#: Default sampling rate (samples per second).
DEFAULT_HZ = 100.0

#: Python frames kept per sample (innermost retained when deeper).
MAX_FRAME_DEPTH = 30


def frame_label(frame) -> str:
    """``file.py:function`` for one frame, folded-format safe."""
    code = frame.f_code
    label = f"{os.path.basename(code.co_filename)}:{code.co_name}"
    return label.replace(";", ",").replace(" ", "_")


def _frame_chain(frame, max_depth: int) -> List[str]:
    """Frame labels root-first, keeping the innermost when too deep."""
    labels: List[str] = []
    while frame is not None:
        labels.append(frame_label(frame))
        frame = frame.f_back
    labels.reverse()
    if len(labels) > max_depth:
        labels = labels[-max_depth:]
    return labels


class SamplingProfiler:
    """Background sampler producing folded stacks.

    Parameters
    ----------
    hz:
        Sampling rate.  100 Hz resolves anything above ~10 ms of self
        time over a seconds-long run at negligible cost.
    tracer:
        When given, samples are prefixed with the sampled thread's open
        span chain, and *only* threads with an open span are sampled
        (the solver, not the HTTP server parked in ``poll``).  Without
        a tracer every thread is sampled, span-less.
    registry:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`; when
        given the profiler keeps ``obs_profiler_samples_total`` /
        ``obs_profiler_ticks_total`` / ``obs_profiler_overruns_total``
        counters live for the ``/metrics`` endpoint.
    all_threads:
        Sample span-less threads even when a tracer is attached.
    """

    def __init__(self, hz: float = DEFAULT_HZ,
                 tracer: Optional[Tracer] = None,
                 registry: Optional[Any] = None,
                 max_depth: int = MAX_FRAME_DEPTH,
                 all_threads: bool = False):
        if not hz > 0:
            raise InvalidValue(f"sampling rate must be > 0 Hz, got {hz}")
        self.hz = float(hz)
        self.period = 1.0 / self.hz
        self.tracer = tracer
        self.max_depth = max_depth
        self.all_threads = all_threads
        self.ticks = 0
        self.overruns = 0
        self.sample_count = 0
        self._samples: Dict[str, int] = {}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._m_samples = self._m_ticks = self._m_overruns = None
        if registry is not None:
            self._m_samples = registry.counter(
                "obs_profiler_samples_total",
                "stack samples collected by the wall-clock profiler")
            self._m_ticks = registry.counter(
                "obs_profiler_ticks_total",
                "profiler wakeups (one per sampling period)")
            self._m_overruns = registry.counter(
                "obs_profiler_overruns_total",
                "sampling periods missed because a tick overran")

    # --- lifecycle -----------------------------------------------------------
    def start(self) -> "SamplingProfiler":
        if self._thread is not None:
            raise InvalidValue("profiler already started")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="repro-obs-profiler", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> "SamplingProfiler":
        if self._thread is None:
            return self
        self._stop.set()
        self._thread.join(timeout=max(self.period * 20, 2.0))
        self._thread = None
        return self

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False

    # --- the sampling loop ---------------------------------------------------
    def _loop(self) -> None:
        next_tick = time.perf_counter() + self.period
        while not self._stop.wait(
                max(next_tick - time.perf_counter(), 0.0)):
            self._sample_once()
            self.ticks += 1
            if self._m_ticks is not None:
                self._m_ticks.inc()
            next_tick += self.period
            now = time.perf_counter()
            if now > next_tick:       # fell behind: count + skip ahead
                missed = int((now - next_tick) / self.period) + 1
                self.overruns += missed
                if self._m_overruns is not None:
                    self._m_overruns.inc(missed)
                next_tick += missed * self.period

    def _sample_once(self) -> None:
        own = threading.get_ident()
        frames = sys._current_frames()
        collected = 0
        with self._lock:
            for tid, frame in frames.items():
                if tid == own:
                    continue
                if self.tracer is not None:
                    span_stack: Tuple[str, ...] = self.tracer.active_stack(tid)
                    if not span_stack and not self.all_threads:
                        continue
                else:
                    span_stack = ()
                parts = [name.replace(";", ",") for name in span_stack]
                parts.extend(_frame_chain(frame, self.max_depth))
                stack = ";".join(parts) or "(unknown)"
                self._samples[stack] = self._samples.get(stack, 0) + 1
                collected += 1
        del frames
        self.sample_count += collected
        if collected and self._m_samples is not None:
            self._m_samples.inc(collected)

    # --- output --------------------------------------------------------------
    def raw_samples(self) -> Dict[str, int]:
        """``{stack: sample_count}`` — the unscaled tally."""
        with self._lock:
            return dict(self._samples)

    def folded_stacks(self) -> Dict[str, int]:
        """``{stack: microseconds}`` — one sample ≈ one period.

        Directly consumable by :func:`repro.obs.flame.folded_lines`,
        :func:`repro.obs.flame.render_top` and ``flamegraph.pl``, and
        commensurable with span-trace folded output (both count
        integer microseconds of self time).
        """
        period_us = max(int(round(self.period * 1e6)), 1)
        with self._lock:
            return {stack: count * period_us
                    for stack, count in self._samples.items()}

    def summary(self) -> str:
        return (f"{self.sample_count} samples over {self.ticks} ticks "
                f"@ {self.hz:g} Hz ({self.overruns} overruns)")
