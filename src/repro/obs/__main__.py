"""CLI for observability artifacts: ``python -m repro.obs``.

Subcommands:

``validate [--trace T] [--metrics M] [--manifest MF]``
    Validate written artifacts against their schemas (the CI gate);
    exits non-zero with a message on the first invalid file.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.obs import export
from repro.util.errors import InvalidValue


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="observability artifact tooling",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    val = sub.add_parser("validate",
                         help="validate artifacts against their schemas")
    val.add_argument("--trace", help="Chrome trace_event JSON to validate")
    val.add_argument("--metrics", help="metrics snapshot JSON to validate")
    val.add_argument("--manifest", help="run manifest JSON to validate")
    args = parser.parse_args(argv)

    checks = [(args.trace, "trace"), (args.metrics, "metrics"),
              (args.manifest, "manifest")]
    checks = [(path, kind) for path, kind in checks if path]
    if not checks:
        print("nothing to validate: pass --trace/--metrics/--manifest",
              file=sys.stderr)
        return 2
    for path, kind in checks:
        try:
            export.validate_file(path, kind)
        except (InvalidValue, OSError, ValueError) as exc:
            print(f"INVALID {kind} {path}: {exc}", file=sys.stderr)
            return 1
        print(f"ok: {kind} {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
