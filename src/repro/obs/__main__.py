"""CLI for observability artifacts: ``python -m repro.obs``.

Subcommands:

``validate [PATH...] [--trace T] [--metrics M] [--manifest MF]``
    Validate artifacts against their schemas (the CI gate).  Positional
    paths may be files (kind sniffed from content) or directories
    (every ``*.json`` and ``*.jsonl`` inside, non-recursive); every
    file is reported pass/fail individually and the exit status is 1
    if *any* failed.  JSONL trace *streams* are first-class: a stream
    without its clean end marker (killed run) and a trace truncated by
    ``max_spans`` validate with a printed **warning**, not a failure.

``serve [--port N] [--host H] [--metrics M.json] [--manifest MF.json]``
    Serve finished artifacts over the live-telemetry endpoints
    (``/metrics`` Prometheus text, ``/healthz``, ``/manifest``,
    ``/progress``), re-reading the files per request.  The in-process
    variant for *running* solves is the driver's
    ``--serve-metrics PORT``.

``push (--url URL [--job J] | --textfile OUT.prom) --metrics M.json``
    One-shot push of a metrics artifact: pushgateway-style HTTP PUT
    with bounded retry/backoff, or an atomic textfile-collector drop.

``diff OLD NEW [--by name|level|category] [--top N] [--json PATH]``
    Per-key wall/modelled self-time deltas between two traces, ranked
    by movement under a noise threshold, with an attribution verdict
    per row (execution vs model).  ``--json`` also writes the
    machine-readable diff.

``flame TRACE [--clock wall|modelled] [--out PATH] [--top N]``
    Collapse the span forest into Brendan-Gregg folded format
    (``name;name;name count``, counts in self-microseconds).  Default
    prints folded lines (pipe into ``flamegraph.pl``); ``--top N``
    renders a terminal view instead.

``top TRACE [--by ...] [--clock ...] [--top N]``
    The single-trace profile: keys ranked by self time.

``diff-manifest OLD NEW [--json PATH]``
    Structural diff of two run manifests — toggles, environment,
    seeds, config, tune profile, versions, and per-matrix substrate
    decisions with their reasons.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional, Tuple

from repro.obs import analyze, export, flame, manifest_diff
from repro.util.errors import InvalidValue


def _expand_paths(paths: List[str]) -> List[str]:
    """Files stay files; directories contribute ``*.json`` + ``*.jsonl``."""
    out: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            entries = sorted(
                os.path.join(path, name) for name in os.listdir(path)
                if name.endswith(".json") or name.endswith(".jsonl")
            )
            out.extend(entries)
        else:
            out.append(path)
    return out


def _cmd_validate(args) -> int:
    checks: List[Tuple[str, str]] = []
    for path, kind in ((args.trace, "trace"), (args.metrics, "metrics"),
                       (args.manifest, "manifest")):
        if path:
            checks.append((path, kind))
    checks.extend((path, "auto") for path in _expand_paths(args.paths))
    if not checks:
        print("nothing to validate: pass paths (files or directories) "
              "and/or --trace/--metrics/--manifest", file=sys.stderr)
        return 2
    failures = 0
    for path, kind in checks:
        try:
            kind, warnings = export.validate_file_report(path, kind)
        except (InvalidValue, OSError, ValueError) as exc:
            print(f"INVALID {kind} {path}: {exc}", file=sys.stderr)
            failures += 1
            continue
        print(f"ok: {kind} {path}")
        for warning in warnings:
            print(f"  warning: {warning}")
    if failures:
        print(f"{failures} of {len(checks)} file(s) invalid",
              file=sys.stderr)
        return 1
    return 0


def _cmd_diff(args) -> int:
    diff = analyze.diff_traces(
        args.old, args.new, by=args.by,
        rel_threshold=args.threshold, abs_floor=args.abs_floor,
    )
    print(f"trace diff ({args.old} -> {args.new}, by {diff.by}):")
    print(analyze.format_table(diff, top=args.top,
                               significant_only=args.significant_only))
    print(f"attribution: {analyze.summarize(diff)}")
    if args.json:
        export.write_json(args.json, diff.as_dict())
        print(f"machine-readable diff -> {args.json}")
    return 0


def _cmd_flame(args) -> int:
    spans = analyze.load_spans(args.trace)
    stacks = flame.folded_stacks(spans, clock=args.clock)
    if args.top:
        print(flame.render_top(stacks, top=args.top, clock=args.clock))
        return 0
    lines = flame.folded_lines(stacks)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write("\n".join(lines) + ("\n" if lines else ""))
        print(f"{len(lines)} folded stacks -> {args.out}")
    else:
        for line in lines:
            print(line)
    return 0


def _cmd_top(args) -> int:
    spans = analyze.load_spans(args.trace)
    stats = sorted(
        analyze.aggregate(spans, by=args.by).values(),
        key=lambda s: (-(s.wall_self if args.clock == "wall"
                         else s.modelled_self), s.key),
    )
    shown = stats[:args.top] if args.top else stats
    field = "wall_self" if args.clock == "wall" else "modelled_self"
    total = sum(getattr(s, field) for s in stats) or 1.0
    width = max([len(s.key) for s in shown] + [12])
    print(f"{args.trace}: top {len(shown)} of {len(stats)} keys "
          f"by {args.clock} self time (by {args.by})")
    print(f"{'key':<{width}}  {'calls':>7}  {'self (s)':>10}  "
          f"{'share':>6}  {'total (s)':>10}")
    for s in shown:
        own = getattr(s, field)
        tot = s.wall if args.clock == "wall" else s.modelled
        print(f"{s.key:<{width}}  {s.count:>7}  {own:>10.4f}  "
              f"{own / total:>6.1%}  {tot:>10.4f}")
    return 0


def _cmd_diff_manifest(args) -> int:
    diff = manifest_diff.diff_manifests(args.old, args.new)
    print(manifest_diff.format_manifest_diff(diff))
    if args.json:
        export.write_json(args.json, diff)
        print(f"machine-readable diff -> {args.json}")
    return 0


def _cmd_serve(args) -> int:
    from repro.obs import live

    source = live.file_source(metrics=args.metrics, manifest=args.manifest)
    server = live.LiveServer(source, host=args.host, port=args.port)
    with server:
        print(f"serving telemetry on {server.url} "
              f"(/metrics /healthz /manifest /progress; Ctrl-C stops)")
        if args.once:        # test/CI hook: bind, report, exit cleanly
            return 0
        import time
        try:
            while True:
                time.sleep(3600)
        except KeyboardInterrupt:
            print("stopped")
    return 0


def _cmd_push(args) -> int:
    from repro.obs import live
    from repro.obs.metrics import MetricsRegistry

    if not args.url and not args.textfile:
        print("push needs --url or --textfile", file=sys.stderr)
        return 2
    with open(args.metrics, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    registry = MetricsRegistry.from_snapshot(
        payload.get("metrics", payload))
    text = registry.to_prometheus()
    if args.textfile:
        collector = live.TextfileCollector(args.textfile, lambda: text)
        print(f"exposition -> {collector.write()} "
              f"({len(text.splitlines())} lines)")
        return 0
    pusher = live.MetricsPusher(args.url, job=args.job,
                                retries=args.retries,
                                backoff=args.backoff)
    if pusher.push(text):
        print(f"pushed {len(text.splitlines())} lines -> {pusher.target}")
        return 0
    print(f"push failed after {args.retries + 1} attempt(s): "
          f"{pusher.last_error}", file=sys.stderr)
    return 1


def _add_clock(parser) -> None:
    parser.add_argument("--clock", choices=list(flame.CLOCKS),
                        default="wall",
                        help="which span clock to read (default wall)")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="observability artifact tooling",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    val = sub.add_parser("validate",
                         help="validate artifacts against their schemas")
    val.add_argument("paths", nargs="*",
                     help="artifact files or directories of *.json "
                          "(kind sniffed from content)")
    val.add_argument("--trace", help="Chrome trace_event JSON to validate")
    val.add_argument("--metrics", help="metrics snapshot JSON to validate")
    val.add_argument("--manifest", help="run manifest JSON to validate")
    val.set_defaults(fn=_cmd_validate)

    diff = sub.add_parser("diff", help="per-span deltas between two traces")
    diff.add_argument("old", help="baseline trace.json")
    diff.add_argument("new", help="fresh trace.json")
    diff.add_argument("--by", choices=list(analyze.GROUP_BYS),
                      default="name",
                      help="aggregation altitude (default name)")
    diff.add_argument("--top", type=int, default=20,
                      help="rows to print (0 = all, default 20)")
    diff.add_argument("--threshold", type=float,
                      default=analyze.REL_THRESHOLD,
                      help="relative noise threshold "
                           f"(default {analyze.REL_THRESHOLD})")
    diff.add_argument("--abs-floor", type=float, default=analyze.ABS_FLOOR,
                      help="absolute noise floor in seconds "
                           f"(default {analyze.ABS_FLOOR})")
    diff.add_argument("--significant-only", action="store_true",
                      help="print only rows that clear the threshold")
    diff.add_argument("--json", metavar="PATH",
                      help="also write the machine-readable diff")
    diff.set_defaults(fn=_cmd_diff)

    fl = sub.add_parser("flame",
                        help="folded flamegraph export / terminal view")
    fl.add_argument("trace", help="trace.json to collapse")
    _add_clock(fl)
    fl.add_argument("--out", metavar="PATH",
                    help="write folded lines here instead of stdout")
    fl.add_argument("--top", type=int, default=0,
                    help="render a terminal top-N view instead of "
                         "folded lines")
    fl.set_defaults(fn=_cmd_flame)

    top = sub.add_parser("top", help="single-trace self-time profile")
    top.add_argument("trace", help="trace.json to profile")
    top.add_argument("--by", choices=list(analyze.GROUP_BYS),
                     default="name",
                     help="aggregation altitude (default name)")
    _add_clock(top)
    top.add_argument("--top", type=int, default=15,
                     help="rows to print (0 = all, default 15)")
    top.set_defaults(fn=_cmd_top)

    dm = sub.add_parser("diff-manifest",
                        help="structural diff of two run manifests")
    dm.add_argument("old", help="baseline manifest.json")
    dm.add_argument("new", help="fresh manifest.json")
    dm.add_argument("--json", metavar="PATH",
                    help="also write the machine-readable diff")
    dm.set_defaults(fn=_cmd_diff_manifest)

    srv = sub.add_parser("serve",
                         help="serve artifacts over the live-telemetry "
                              "endpoints (/metrics etc.)")
    srv.add_argument("--host", default="127.0.0.1",
                     help="bind host (default 127.0.0.1)")
    srv.add_argument("--port", type=int, default=0,
                     help="bind port (default 0 = ephemeral, printed)")
    srv.add_argument("--metrics", metavar="PATH",
                     help="metrics snapshot JSON behind /metrics and "
                          "/progress (re-read per request)")
    srv.add_argument("--manifest", metavar="PATH",
                     help="run manifest JSON behind /manifest")
    srv.add_argument("--once", action="store_true",
                     help="bind, print the URL, exit (smoke-test hook)")
    srv.set_defaults(fn=_cmd_serve)

    push = sub.add_parser("push",
                          help="push a metrics artifact: pushgateway "
                               "HTTP or textfile collector")
    push.add_argument("--metrics", metavar="PATH", required=True,
                      help="metrics snapshot JSON to push")
    push.add_argument("--url", metavar="URL",
                      help="pushgateway base URL (PUT "
                           "<url>/metrics/job/<job>)")
    push.add_argument("--job", default="repro",
                      help="pushgateway job label (default repro)")
    push.add_argument("--retries", type=int, default=3,
                      help="bounded retry count (default 3)")
    push.add_argument("--backoff", type=float, default=0.2,
                      help="initial backoff seconds, doubled per retry "
                           "(default 0.2)")
    push.add_argument("--textfile", metavar="PATH",
                      help="write an atomic textfile-collector .prom "
                           "file instead of pushing over HTTP")
    push.set_defaults(fn=_cmd_push)

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except (InvalidValue, OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
