"""Manifest diffing: "why is this run different", as one command.

A run manifest (:mod:`repro.obs.manifest`) records everything a run's
configuration resolved to — toggles, environment, tune profile, seeds,
driver config, versions, and every substrate-selection decision with
its reason.  :func:`diff_manifests` compares two of them structurally:

* per-section key diffs (added / removed / changed) over ``toggles``,
  ``environment``, ``seeds``, ``config``, ``tune_profile``, ``python``
  and the package version — identity fields (``run_id``,
  ``created_at``) are ignored, they differ by construction;
* a decision diff: substrate selections are keyed by the matrix they
  describe (shape + nnz + request), so a forced-substrate run against
  a default run reports *which matrices* changed format **and why**
  (``heuristic -> env``), not just that something did.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

#: Sections compared key-by-key.  ``tune_profile`` may be None (no
#: cached profile); ``python`` nests interpreter/platform identity.
SECTIONS = ("toggles", "environment", "seeds", "config", "tune_profile",
            "python")

#: Top-level scalars worth flagging (identity fields excluded).
SCALARS = ("schema_version", "package_version")

#: Per-decision fields that identify *which matrix* was resolved.
DECISION_KEY_FIELDS = ("nrows", "ncols", "nnz", "request", "selection")


def load_manifest(source: Any) -> Dict[str, Any]:
    """A manifest dict from a path or an already-loaded dict."""
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as fh:
            return json.load(fh)
    return dict(source)


def _section_diff(old: Optional[Dict[str, Any]],
                  new: Optional[Dict[str, Any]]) -> Dict[str, Any]:
    old = old or {}
    new = new or {}
    added = {k: new[k] for k in sorted(set(new) - set(old))}
    removed = {k: old[k] for k in sorted(set(old) - set(new))}
    changed = {
        k: {"old": old[k], "new": new[k]}
        for k in sorted(set(old) & set(new))
        if old[k] != new[k]
    }
    return {"added": added, "removed": removed, "changed": changed}


def _decision_key(decision: Dict[str, Any]) -> Tuple:
    return tuple(decision.get(f) for f in DECISION_KEY_FIELDS)


def _decision_outcomes(decisions: List[Dict[str, Any]]
                       ) -> Dict[Tuple, Dict[str, int]]:
    """Per matrix key, how often each ``chosen (reason)`` outcome fired.

    The same matrix resolves repeatedly (every kernel call re-asks the
    registry), so outcomes are multisets, not single values.
    """
    out: Dict[Tuple, Dict[str, int]] = {}
    for decision in decisions:
        key = _decision_key(decision)
        outcome = (f"{decision.get('chosen', '?')} "
                   f"({decision.get('reason', '?')})")
        bucket = out.setdefault(key, {})
        bucket[outcome] = bucket.get(outcome, 0) + 1
    return out


def _decision_diff(old: List[Dict[str, Any]],
                   new: List[Dict[str, Any]]) -> Dict[str, Any]:
    old_outcomes = _decision_outcomes(old)
    new_outcomes = _decision_outcomes(new)
    changed = []
    for key in sorted(set(old_outcomes) | set(new_outcomes),
                      key=lambda k: tuple(str(f) for f in k)):
        before = old_outcomes.get(key)
        after = new_outcomes.get(key)
        if before == after:
            continue
        matrix = dict(zip(DECISION_KEY_FIELDS, key))
        changed.append({
            "matrix": matrix,
            "old": before,
            "new": after,
        })
    return {
        "old_count": len(old),
        "new_count": len(new),
        "changed": changed,
    }


def diff_manifests(old: Any, new: Any) -> Dict[str, Any]:
    """Structural diff of two manifests (paths or dicts)."""
    old_m = load_manifest(old)
    new_m = load_manifest(new)
    sections = {}
    for section in SECTIONS:
        diff = _section_diff(
            _as_dict(old_m.get(section)), _as_dict(new_m.get(section)))
        if diff["added"] or diff["removed"] or diff["changed"]:
            sections[section] = diff
    scalars = {
        name: {"old": old_m.get(name), "new": new_m.get(name)}
        for name in SCALARS
        if old_m.get(name) != new_m.get(name)
    }
    decisions = _decision_diff(
        list(old_m.get("substrate_decisions") or []),
        list(new_m.get("substrate_decisions") or []),
    )
    identical = not sections and not scalars and not decisions["changed"]
    return {
        "identical": identical,
        "old_run_id": old_m.get("run_id"),
        "new_run_id": new_m.get("run_id"),
        "scalars": scalars,
        "sections": sections,
        "decisions": decisions,
    }


def _as_dict(value: Any) -> Optional[Dict[str, Any]]:
    return value if isinstance(value, dict) else None


def format_manifest_diff(diff: Dict[str, Any]) -> str:
    """The diff as indented human-readable text."""
    lines = [f"manifest diff: {diff.get('old_run_id')} -> "
             f"{diff.get('new_run_id')}"]
    if diff["identical"]:
        lines.append("  identical configuration "
                     "(identity fields excluded)")
        return "\n".join(lines)
    for name, change in diff["scalars"].items():
        lines.append(f"  {name}: {change['old']!r} -> {change['new']!r}")
    for section, body in diff["sections"].items():
        lines.append(f"  {section}:")
        for key, value in body["added"].items():
            lines.append(f"    + {key} = {value!r}")
        for key, value in body["removed"].items():
            lines.append(f"    - {key} = {value!r}")
        for key, change in body["changed"].items():
            lines.append(f"    ~ {key}: {change['old']!r} -> "
                         f"{change['new']!r}")
    decisions = diff["decisions"]
    if decisions["changed"]:
        lines.append(f"  substrate decisions "
                     f"({decisions['old_count']} -> "
                     f"{decisions['new_count']} recorded):")
        for change in decisions["changed"]:
            matrix = change["matrix"]
            shape = (f"{matrix.get('nrows')}x{matrix.get('ncols')} "
                     f"nnz={matrix.get('nnz')}")
            if matrix.get("request") is not None:
                shape += f" request={matrix['request']}"
            lines.append(f"    ~ {shape}: {_outcomes(change['old'])} -> "
                         f"{_outcomes(change['new'])}")
    return "\n".join(lines)


def _outcomes(bucket: Optional[Dict[str, int]]) -> str:
    if not bucket:
        return "(absent)"
    return ", ".join(f"{outcome} x{count}" if count > 1 else outcome
                     for outcome, count in sorted(bucket.items()))
