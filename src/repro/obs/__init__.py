"""repro.obs — unified tracing, metrics and run provenance.

The paper's claims are attribution claims: where time goes across CG,
multigrid levels, halo exchange and kernel formats.  This package is
the one layer every piece of that evidence flows through:

* **structured spans** (:mod:`repro.obs.trace`) — nestable,
  thread-safe, near-zero-cost when disabled, carrying *both*
  wall-clock and modelled BSP time, exported as Chrome/Perfetto
  ``trace_event`` JSON;
* a **metrics registry** (:mod:`repro.obs.metrics`) — labelled
  counters/gauges/histograms/series with JSON snapshots and Prometheus
  text exposition;
* a **run manifest** (:mod:`repro.obs.manifest`) — every ``REPRO_*``
  toggle, the resolved switch states, the active tune profile,
  per-matrix substrate-selection decisions *with reasons*, seeds and
  versions, in one reproducibility document.

Tracing is **off by default**; enable it with ``REPRO_TRACE=1`` (any
instrumented call then lazily creates a process-wide context) or
explicitly::

    import repro.obs as obs

    with obs.run(name="solve") as ctx:
        result = run_hpcg(nx=16, max_iters=50)
    obs.export.write_trace("trace.json", ctx)
    obs.export.write_metrics("metrics.json", ctx)
    obs.export.write_manifest("manifest.json", ctx.build_manifest())

Instrumented seams: the HPCG driver (phases), the CG loop (per
iteration + residual series), multigrid (per level), smoothers (per
sweep, fused or reference), the simulated dist engine (per superstep,
with exposed-vs-hidden comm), the substrate registry (selection
decisions), the tune micro-benchmark probes, MatrixMarket I/O and the
dist partitioners.  Spans observe — they never change the numerics,
and residual histories are byte-identical traced or untraced.

The **live side** (:mod:`repro.obs.live`, :mod:`repro.obs.stream`,
:mod:`repro.obs.profiler`) observes runs *while they execute*: a
zero-dependency HTTP endpoint serving ``/metrics`` (Prometheus text),
``/healthz``, ``/manifest`` and ``/progress``; push transports
(pushgateway-style HTTP and an atomic textfile collector); a streaming
JSONL trace sink whose partial output survives a killed run; and a
sampling wall-clock profiler that attributes stacks to the innermost
active span and emits ``obs flame``-compatible folded output.

The **consumer side** (``python -m repro.obs diff|flame|top|
diff-manifest``) turns those artifacts into answers:
:mod:`repro.obs.analyze` diffs two traces per span name / MG level /
category with noise thresholds and execution-vs-model attribution,
:mod:`repro.obs.flame` collapses span stacks into folded flamegraph
format (either clock), and :mod:`repro.obs.manifest_diff` explains
"why is this run different" from two manifests.
"""

from repro.obs import (
    analyze,
    export,
    flame,
    live,
    manifest,
    manifest_diff,
    metrics,
    profiler,
    stream,
    trace,
)
from repro.obs.analyze import SpanStats, TraceDiff, diff_traces
from repro.obs.flame import folded_stacks, parse_folded
from repro.obs.live import (
    LiveServer,
    MetricsPusher,
    PeriodicPusher,
    TextfileCollector,
    context_source,
    file_source,
    progress_snapshot,
)
from repro.obs.manifest_diff import diff_manifests
from repro.obs.profiler import SamplingProfiler
from repro.obs.stream import StreamingSink, load_stream_spans, read_stream
from repro.obs.context import (
    ENV_TRACE,
    RunContext,
    activate,
    current,
    deactivate,
    disabled,
    enabled,
    event,
    manifest_recorder,
    metrics as metrics_registry,
    record_selection,
    reset,
    run,
    span,
    trace_env_enabled,
)
from repro.obs.manifest import ManifestRecorder, build_manifest, validate_manifest
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Series,
)
from repro.obs.trace import NULL_SPAN, SpanHandle, SpanRecord, Tracer

__all__ = [
    "ENV_TRACE",
    "NULL_SPAN",
    "Counter",
    "Gauge",
    "Histogram",
    "LiveServer",
    "ManifestRecorder",
    "MetricsPusher",
    "MetricsRegistry",
    "PeriodicPusher",
    "RunContext",
    "SamplingProfiler",
    "Series",
    "SpanHandle",
    "SpanRecord",
    "SpanStats",
    "StreamingSink",
    "TextfileCollector",
    "TraceDiff",
    "Tracer",
    "activate",
    "analyze",
    "build_manifest",
    "context_source",
    "current",
    "deactivate",
    "diff_manifests",
    "diff_traces",
    "disabled",
    "enabled",
    "event",
    "export",
    "file_source",
    "flame",
    "folded_stacks",
    "live",
    "load_stream_spans",
    "manifest",
    "manifest_diff",
    "manifest_recorder",
    "metrics",
    "metrics_registry",
    "parse_folded",
    "profiler",
    "progress_snapshot",
    "read_stream",
    "record_selection",
    "reset",
    "run",
    "span",
    "stream",
    "trace",
    "trace_env_enabled",
    "validate_manifest",
]
