"""Trace analysis: loading, aggregation, and trace *diffing*.

PR 6 made every run emit a ``trace.json``; this module is the consumer
side.  The model is a two-step pipeline:

1. :func:`aggregate` rolls a flat span list up into per-key
   :class:`SpanStats` — total and **self** time on *both* clocks
   (wall-clock and modelled BSP seconds), plus call counts.  Keys are
   span names by default; ``by="level"`` rolls up per MG level and
   ``by="category"`` per instrumentation category, so "which level
   regressed" and "which subsystem regressed" are the same query at a
   different altitude.
2. :func:`diff_traces` compares two aggregations under a noise
   threshold and ranks the result by self-time movement — the quantity
   a leaf kernel actually owns, so a slower ``smoother/rbgs_sweep``
   outranks the ``mg/L0`` parent that merely contains it.

Because every span carries both clocks, each delta is *attributed*:
wall moved while modelled stayed flat means the execution changed
(kernel, machine, noise), modelled moved while wall stayed flat means
the cost model or communication plan changed, and both moving together
points at a real algorithmic change.  That attribution line is what
``check_trend.py --triage`` attaches to a CI perf failure.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.util.errors import InvalidValue

#: Relative change below this fraction of the old value is noise.
#: Wall clocks on repeated identical runs routinely wander by double-
#: digit percents on small spans; real regressions (a disabled fused
#: lane, a changed partition) move integer factors.
REL_THRESHOLD = 0.25

#: Absolute seconds below this are noise regardless of the ratio.
#: Millisecond-scale spans (a per-level SpMV over a few dozen calls)
#: wobble by whole milliseconds between identical runs under scheduler
#: jitter; the regressions this differ exists for move tens of them.
ABS_FLOOR = 5e-3

#: Aggregation altitudes accepted by :func:`aggregate` and the CLI.
GROUP_BYS = ("name", "level", "category")

_LEVEL_RE = re.compile(r"(?:^|/)L(\d+)(?:/|$)")


# ---------------------------------------------------------------------------
# loading
# ---------------------------------------------------------------------------

def load_spans(source: Any) -> List[Dict[str, Any]]:
    """Span dicts from a trace file path, payload dict, or span list.

    Accepts the artifacts :mod:`repro.obs.export` writes (Chrome
    ``trace_event`` JSON with the plain span list under
    ``otherData.spans``), a JSONL trace *stream* from
    :mod:`repro.obs.stream` (partial traces of killed runs included),
    a bare ``{"spans": [...]}`` wrapper, or an already-loaded span
    list.  A Chrome trace written by other tooling (no
    ``otherData.spans``) is reconstructed from its "X" events —
    parent links and modelled seconds ride in each event's ``args``.
    """
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as fh:
            text = fh.read()
        try:
            source = json.loads(text)
        except json.JSONDecodeError:
            # not one JSON document: try the JSONL trace-stream format
            from repro.obs import stream as stream_mod
            source = stream_mod.parse_stream_text(text)[1]
    if isinstance(source, dict) and source.get("kind"):
        # a header-only stream file parses as a single JSON object
        from repro.obs import stream as stream_mod
        if source.get("kind") == stream_mod.STREAM_KIND:
            source = []
    if isinstance(source, list):
        spans = source
    elif isinstance(source, dict):
        other = source.get("otherData")
        if isinstance(other, dict) and isinstance(other.get("spans"), list):
            spans = other["spans"]
        elif isinstance(source.get("spans"), list):
            spans = source["spans"]
        elif isinstance(source.get("traceEvents"), list):
            spans = _spans_from_events(source["traceEvents"])
        else:
            raise InvalidValue(
                "trace carries neither otherData.spans, spans, nor "
                "traceEvents"
            )
    else:
        raise InvalidValue(f"cannot load spans from {type(source).__name__}")
    for i, span in enumerate(spans):
        if not isinstance(span, dict) or "name" not in span:
            raise InvalidValue(f"span[{i}] is not a span object")
    return spans


def _spans_from_events(events: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Rebuild a span list from Chrome "X" events (best effort)."""
    spans = []
    for ev in events:
        if ev.get("ph") != "X":
            continue
        args = dict(ev.get("args", {}))
        spans.append({
            "id": args.pop("id", None),
            "parent_id": args.pop("parent_id", None),
            "name": ev.get("name", ""),
            "category": ev.get("cat", ""),
            "thread": ev.get("tid", 0),
            "start": float(ev.get("ts", 0.0)) / 1e6,
            "wall_seconds": float(ev.get("dur", 0.0)) / 1e6,
            "modelled_seconds": float(args.pop("modelled_seconds", 0.0)),
            "args": args,
        })
    return spans


# ---------------------------------------------------------------------------
# aggregation
# ---------------------------------------------------------------------------

@dataclass
class SpanStats:
    """Aggregated totals for one key (span name / level / category)."""

    key: str
    count: int = 0
    wall: float = 0.0
    modelled: float = 0.0
    wall_self: float = 0.0
    modelled_self: float = 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "key": self.key,
            "count": self.count,
            "wall_seconds": self.wall,
            "modelled_seconds": self.modelled,
            "wall_self_seconds": self.wall_self,
            "modelled_self_seconds": self.modelled_self,
        }


def span_key(span: Dict[str, Any], by: str = "name") -> str:
    """The aggregation key of one span at altitude ``by``."""
    if by == "name":
        return str(span.get("name", ""))
    if by == "category":
        return str(span.get("category", "")) or "(uncategorised)"
    if by == "level":
        level = (span.get("args") or {}).get("level")
        if level is None:
            match = _LEVEL_RE.search(str(span.get("name", "")))
            if match:
                level = match.group(1)
        return f"L{level}" if level is not None else "(no level)"
    raise InvalidValue(f"unknown grouping {by!r}; expected one of {GROUP_BYS}")


def aggregate(spans: Sequence[Dict[str, Any]],
              by: str = "name") -> Dict[str, SpanStats]:
    """Per-key totals, counts and self times over a span list.

    Self time is each span's own clock minus the sum over its direct
    children (clamped at zero: concurrent child threads can overlap
    the parent), summed into the span's key — the flamegraph notion of
    "time in this frame itself".  Instant events carry no duration and
    are skipped.
    """
    spans = [s for s in spans
             if not (s.get("args") or {}).get("instant")]
    child_wall: Dict[Any, float] = {}
    child_modelled: Dict[Any, float] = {}
    for span in spans:
        parent = span.get("parent_id")
        if parent is not None:
            child_wall[parent] = (child_wall.get(parent, 0.0)
                                  + float(span.get("wall_seconds", 0.0)))
            child_modelled[parent] = (
                child_modelled.get(parent, 0.0)
                + float(span.get("modelled_seconds", 0.0)))
    out: Dict[str, SpanStats] = {}
    for span in spans:
        key = span_key(span, by)
        stats = out.get(key)
        if stats is None:
            stats = out[key] = SpanStats(key)
        wall = float(span.get("wall_seconds", 0.0))
        modelled = float(span.get("modelled_seconds", 0.0))
        sid = span.get("id")
        stats.count += 1
        stats.wall += wall
        stats.modelled += modelled
        stats.wall_self += max(wall - child_wall.get(sid, 0.0), 0.0)
        stats.modelled_self += max(
            modelled - child_modelled.get(sid, 0.0), 0.0)
    return out


# ---------------------------------------------------------------------------
# diffing
# ---------------------------------------------------------------------------

@dataclass
class DiffRow:
    """One key's movement between an old and a new trace."""

    key: str
    old: Optional[SpanStats]
    new: Optional[SpanStats]
    significant: bool = False
    verdict: str = "flat"

    @property
    def status(self) -> str:
        if self.old is None:
            return "added"
        if self.new is None:
            return "removed"
        return "common"

    def _pair(self, attr: str) -> Tuple[float, float]:
        return (getattr(self.old, attr) if self.old else 0.0,
                getattr(self.new, attr) if self.new else 0.0)

    def delta(self, attr: str = "wall_self") -> float:
        old, new = self._pair(attr)
        return new - old

    def ratio(self, attr: str = "wall_self") -> Optional[float]:
        old, new = self._pair(attr)
        return new / old if old > 0 else None

    def as_dict(self) -> Dict[str, Any]:
        return {
            "key": self.key,
            "status": self.status,
            "significant": self.significant,
            "verdict": self.verdict,
            "old": self.old.as_dict() if self.old else None,
            "new": self.new.as_dict() if self.new else None,
            "wall_delta": self.delta("wall"),
            "wall_self_delta": self.delta("wall_self"),
            "modelled_delta": self.delta("modelled"),
            "modelled_self_delta": self.delta("modelled_self"),
        }


@dataclass
class TraceDiff:
    """The ranked result of diffing two traces."""

    rows: List[DiffRow]
    by: str
    rel_threshold: float
    abs_floor: float
    old_total_wall: float = 0.0
    new_total_wall: float = 0.0

    def significant_rows(self) -> List[DiffRow]:
        return [row for row in self.rows if row.significant]

    def as_dict(self) -> Dict[str, Any]:
        return {
            "by": self.by,
            "rel_threshold": self.rel_threshold,
            "abs_floor": self.abs_floor,
            "old_total_wall_seconds": self.old_total_wall,
            "new_total_wall_seconds": self.new_total_wall,
            "significant": len(self.significant_rows()),
            "rows": [row.as_dict() for row in self.rows],
        }


def _moved(old: float, new: float, rel: float, floor: float) -> bool:
    """Is ``old -> new`` a real move under the noise thresholds?"""
    delta = abs(new - old)
    if delta <= floor:
        return False
    base = max(old, floor)
    return delta / base > rel


def _verdict(row: DiffRow, rel: float, floor: float) -> str:
    """Attribute a row's movement to execution, model, or both.

    Wall and modelled clocks answer different questions: wall is what
    the machine did, modelled is what the BSP cost model priced.  Only
    one moving localises the cause.
    """
    wall_moved = _moved(*row._pair("wall_self"), rel=rel, floor=floor) or \
        _moved(*row._pair("wall"), rel=rel, floor=floor)
    model_moved = _moved(*row._pair("modelled_self"), rel=rel, floor=floor) or \
        _moved(*row._pair("modelled"), rel=rel, floor=floor)
    if wall_moved and model_moved:
        return "both"
    if wall_moved:
        return "execution"
    if model_moved:
        return "model"
    return "flat"


def diff_traces(
    old: Any,
    new: Any,
    by: str = "name",
    rel_threshold: float = REL_THRESHOLD,
    abs_floor: float = ABS_FLOOR,
) -> TraceDiff:
    """Diff two traces (paths, payloads, span lists, or aggregations).

    Rows cover the union of keys, ranked by absolute **self-time**
    movement (wall clock first, modelled as tiebreak), so the kernels
    that own the regression outrank the phases that merely contain
    them.  A row is *significant* when either clock's movement clears
    both the relative threshold and the absolute floor, or when the
    key appeared/disappeared with more than floor seconds of self time.
    """
    old_stats = old if _is_aggregation(old) else aggregate(load_spans(old), by)
    new_stats = new if _is_aggregation(new) else aggregate(load_spans(new), by)
    rows: List[DiffRow] = []
    for key in sorted(set(old_stats) | set(new_stats)):
        row = DiffRow(key=key, old=old_stats.get(key), new=new_stats.get(key))
        row.verdict = _verdict(row, rel_threshold, abs_floor)
        if row.status in ("added", "removed"):
            present = row.new if row.old is None else row.old
            row.significant = (present.wall_self > abs_floor
                               or present.modelled_self > abs_floor)
            row.verdict = row.status
        else:
            row.significant = row.verdict != "flat"
        rows.append(row)
    rows.sort(key=lambda r: (abs(r.delta("wall_self")),
                             abs(r.delta("modelled_self")),
                             r.key), reverse=True)
    return TraceDiff(
        rows=rows, by=by, rel_threshold=rel_threshold, abs_floor=abs_floor,
        old_total_wall=sum(s.wall_self for s in old_stats.values()),
        new_total_wall=sum(s.wall_self for s in new_stats.values()),
    )


def _is_aggregation(obj: Any) -> bool:
    return (isinstance(obj, dict) and obj
            and all(isinstance(v, SpanStats) for v in obj.values()))


# ---------------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------------

def _fmt_delta(old: float, new: float) -> str:
    delta = new - old
    if old > 0:
        return f"{delta / old:+8.1%}"
    return "    new " if new > 0 else "   flat "


def format_table(diff: TraceDiff, top: int = 20,
                 significant_only: bool = False) -> str:
    """The diff as a ranked human-readable table.

    One line per key: self-time old -> new on both clocks, the relative
    movement, and the attribution verdict ("execution" = wall moved but
    the model stayed flat, so the run changed, not the plan).
    """
    rows = diff.significant_rows() if significant_only else diff.rows
    rows = rows[:top] if top else rows
    width = max([len(r.key) for r in rows] + [12])
    header = (f"{'span':<{width}}  {'calls':>11}  "
              f"{'wall self (s)':>21} {'Δwall':>8}  "
              f"{'modelled self (s)':>21} {'Δmodel':>8}  verdict")
    lines = [header, "-" * len(header)]
    for row in rows:
        o_count = row.old.count if row.old else 0
        n_count = row.new.count if row.new else 0
        ow, nw = row._pair("wall_self")
        om, nm = row._pair("modelled_self")
        marker = "*" if row.significant else " "
        lines.append(
            f"{row.key:<{width}}  {o_count:>5}>{n_count:<5}  "
            f"{ow:>10.4f}>{nw:<10.4f} {_fmt_delta(ow, nw)}  "
            f"{om:>10.4f}>{nm:<10.4f} {_fmt_delta(om, nm)}  "
            f"{marker}{row.verdict}"
        )
    sig = len(diff.significant_rows())
    lines.append(
        f"total wall self: {diff.old_total_wall:.4f}s -> "
        f"{diff.new_total_wall:.4f}s "
        f"({_fmt_delta(diff.old_total_wall, diff.new_total_wall).strip()}); "
        f"{sig} significant delta{'s' if sig != 1 else ''} "
        f"(rel>{diff.rel_threshold:.0%}, abs>{diff.abs_floor:g}s)"
    )
    return "\n".join(lines)


def summarize(diff: TraceDiff, top: int = 3) -> str:
    """A one-paragraph attribution: the headline movers, in words."""
    sig = diff.significant_rows()
    if not sig:
        return (f"no significant per-{diff.by} deltas "
                f"(rel>{diff.rel_threshold:.0%}, "
                f"abs>{diff.abs_floor:g}s)")
    parts = []
    for row in sig[:top]:
        ow, nw = row._pair("wall_self")
        verdict = {
            "execution": "execution not model",
            "model": "model not execution",
            "both": "execution and model",
        }.get(row.verdict, row.verdict)
        parts.append(f"`{row.key}` {_fmt_delta(ow, nw).strip()} wall "
                     f"({verdict})")
    more = len(sig) - top
    tail = f" (+{more} more)" if more > 0 else ""
    return "; ".join(parts) + tail
