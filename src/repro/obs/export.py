"""Artifact writers and schema validators for :mod:`repro.obs`.

Three artifacts, one writer and one validator each:

* **trace** — Chrome/Perfetto ``trace_event`` JSON (plus a plain span
  list under ``otherData`` consumers can ignore);
* **metrics** — a registry snapshot wrapped with run identity;
* **manifest** — the run-provenance document.

The validators are deliberately strict about the keys tooling relies
on and silent about extras, so artifacts can grow without breaking old
readers.  ``python -m repro.obs validate`` (see ``__main__``) runs
them from the command line — the CI leg's schema gate.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

from repro.obs import stream as stream_mod
from repro.obs.context import RunContext
from repro.obs.manifest import validate_manifest  # re-exported
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.util.errors import InvalidValue

#: Metrics-artifact schema version.
METRICS_SCHEMA_VERSION = 1

_VALID_PHASES = ("X", "i", "M", "B", "E", "C")


def write_json(path: str, payload: Dict[str, Any]) -> str:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True, default=str)
        fh.write("\n")
    return path


# --- trace -------------------------------------------------------------------

def trace_payload(tracer: Tracer, run_id: str = "") -> Dict[str, Any]:
    """The Chrome ``trace_event`` document (spans list included)."""
    payload = tracer.chrome_trace(run_id=run_id)
    payload["otherData"]["spans"] = tracer.as_dicts()
    return payload


def write_trace(path: str, ctx: RunContext) -> str:
    return write_json(path, trace_payload(ctx.tracer, run_id=ctx.run_id))


def validate_chrome_trace(payload: Dict[str, Any]) -> None:
    """Raise unless ``payload`` is a loadable Chrome trace document."""
    if not isinstance(payload, dict):
        raise InvalidValue("trace must be a JSON object")
    events = payload.get("traceEvents")
    if not isinstance(events, list) or not events:
        raise InvalidValue("trace needs a non-empty traceEvents list")
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            raise InvalidValue(f"traceEvents[{i}] is not an object")
        for key in ("name", "ph", "pid", "tid"):
            if key not in ev:
                raise InvalidValue(f"traceEvents[{i}] missing {key!r}")
        ph = ev["ph"]
        if ph not in _VALID_PHASES:
            raise InvalidValue(f"traceEvents[{i}] has unknown phase {ph!r}")
        if ph in ("X", "i") and "ts" not in ev:
            raise InvalidValue(f"traceEvents[{i}] missing 'ts'")
        if ph == "X":
            if "dur" not in ev:
                raise InvalidValue(f"traceEvents[{i}] missing 'dur'")
            args = ev.get("args", {})
            if "modelled_seconds" not in args:
                raise InvalidValue(
                    f"traceEvents[{i}] span lacks args.modelled_seconds"
                )


# --- metrics -----------------------------------------------------------------

def metrics_payload(registry: MetricsRegistry,
                    run_id: str = "") -> Dict[str, Any]:
    return {
        "schema_version": METRICS_SCHEMA_VERSION,
        "run_id": run_id,
        "metrics": registry.snapshot(),
    }


def write_metrics(path: str, ctx: RunContext) -> str:
    ctx.sync_self_metrics()
    return write_json(path, metrics_payload(ctx.metrics, run_id=ctx.run_id))


def write_prometheus(path: str, registry: MetricsRegistry) -> str:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(registry.to_prometheus())
    return path


def validate_metrics_snapshot(payload: Dict[str, Any]) -> None:
    """Raise unless ``payload`` is a valid metrics artifact."""
    if not isinstance(payload, dict):
        raise InvalidValue("metrics artifact must be a JSON object")
    if payload.get("schema_version") != METRICS_SCHEMA_VERSION:
        raise InvalidValue(
            f"metrics schema {payload.get('schema_version')!r} != "
            f"supported {METRICS_SCHEMA_VERSION}"
        )
    metrics = payload.get("metrics")
    if not isinstance(metrics, dict):
        raise InvalidValue("metrics artifact needs a 'metrics' object")
    # the decisive check: the snapshot must reconstruct losslessly
    rebuilt = MetricsRegistry.from_snapshot(metrics)
    if rebuilt.snapshot() != metrics:
        raise InvalidValue("metrics snapshot does not round-trip")


# --- manifest ----------------------------------------------------------------

def write_manifest(path: str, manifest: Dict[str, Any]) -> str:
    validate_manifest(manifest)
    return write_json(path, manifest)


# --- file-level validation (the CI gate) ------------------------------------

def sniff_kind(payload: Dict[str, Any]) -> str:
    """Which artifact kind a loaded JSON document looks like.

    Used by ``python -m repro.obs validate`` when paths are given
    without ``--trace/--metrics/--manifest`` tags: traces carry
    ``traceEvents``, metrics carry a ``metrics`` object with a schema
    version, manifests carry the required provenance keys, and a
    trace-stream *header* line carries its ``kind`` discriminator.
    """
    if not isinstance(payload, dict):
        raise InvalidValue("artifact must be a JSON object")
    if payload.get("kind") == stream_mod.STREAM_KIND:
        return "trace-stream"
    if "traceEvents" in payload:
        return "trace"
    if "metrics" in payload and "schema_version" in payload:
        return "metrics"
    if "toggles" in payload and "substrate_decisions" in payload:
        return "manifest"
    raise InvalidValue(
        "unrecognised artifact: expected a trace (traceEvents), "
        "metrics snapshot (schema_version + metrics), manifest "
        "(toggles + substrate_decisions), or trace stream (kind header)"
    )


def validate_file(path: str, kind: str = "auto") -> str:
    """Validate a written artifact; returns the (possibly sniffed) kind.

    ``kind`` is ``trace``/``metrics``/``manifest``/``trace-stream``,
    or ``auto`` to sniff it from the document's shape.
    """
    return validate_file_report(path, kind)[0]


def validate_file_report(path: str,
                         kind: str = "auto") -> Tuple[str, List[str]]:
    """:func:`validate_file` plus non-fatal warnings.

    Warnings never fail validation — they flag *legitimate but
    degraded* artifacts: a trace truncated by the bounded tracer
    (``max_spans``), or a streamed trace without its clean end marker
    (killed or still-running run).  ``obs validate`` prints them.
    """
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    try:
        payload = json.loads(text)
    except json.JSONDecodeError:
        # not one JSON document: the only multi-line artifact we write
        # is the JSONL trace stream
        if kind not in ("auto", "trace-stream"):
            raise InvalidValue(
                f"{path} is not a JSON document (expected kind {kind!r})"
            )
        return "trace-stream", stream_mod.validate_stream_text(text)
    warnings: List[str] = []
    if kind == "auto":
        kind = sniff_kind(payload)
    if kind == "trace":
        validate_chrome_trace(payload)
        dropped = (payload.get("otherData") or {}).get("dropped_spans", 0)
        if dropped:
            warnings.append(
                f"trace truncated by max_spans: {dropped} span(s) "
                f"dropped (not a failure; bound the run or raise "
                f"max_spans to keep them)"
            )
    elif kind == "metrics":
        validate_metrics_snapshot(payload)
    elif kind == "manifest":
        validate_manifest(payload)
    elif kind == "trace-stream":
        # a one-line stream (header only) parses as a single JSON doc
        warnings.extend(stream_mod.validate_stream_text(text))
    else:
        raise InvalidValue(f"unknown artifact kind {kind!r}")
    return kind, warnings
