"""Run context and the near-zero-cost enablement seam.

All instrumentation in the solver stack goes through the module-level
helpers here (:func:`span`, :func:`event`, :func:`metrics`,
:func:`manifest_recorder`).  When observability is off — the default —
each helper is one environment read and a ``None`` return, so the hot
paths pay essentially nothing and the numerics are untouched either
way.

Activation, in precedence order:

1. an explicit context (``with obs.run() as ctx:``, or
   :func:`activate`) — used by the driver CLI and tests;
2. the ``REPRO_TRACE`` environment variable (default **off**): the
   first instrumented call under ``REPRO_TRACE=1`` lazily creates a
   process-wide context, which is how a whole test suite or an
   uncooperative script gets traced without code changes;
3. nothing — the shared :data:`~repro.obs.trace.NULL_SPAN` sink.

:func:`disabled` force-suppresses observability for a dynamic extent
even under ``REPRO_TRACE=1`` (the overhead smoke test's untraced arm).
"""

from __future__ import annotations

import os
import uuid
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

from repro.obs.manifest import ManifestRecorder
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_SPAN, SpanHandle, Tracer

#: The master switch: tracing is off unless this is truthy.
ENV_TRACE = "REPRO_TRACE"

_TRUTHY = ("1", "true", "on", "yes")


def trace_env_enabled() -> bool:
    """The ``REPRO_TRACE`` switch (default off)."""
    return os.environ.get(ENV_TRACE, "").strip().lower() in _TRUTHY


class RunContext:
    """One observed run: a tracer, a metrics registry and a manifest."""

    def __init__(self, name: str = "run", run_id: Optional[str] = None,
                 max_spans: Optional[int] = None):
        self.name = name
        self.run_id = run_id or uuid.uuid4().hex[:12]
        self.tracer = (Tracer() if max_spans is None
                       else Tracer(max_spans=max_spans))
        self.metrics = MetricsRegistry()
        self.manifest = ManifestRecorder(run_id=self.run_id)
        # artifact paths flushed on crash (and reusable on clean exit):
        # see set_flush_paths() / flush()
        self.flush_trace: Optional[str] = None
        self.flush_metrics: Optional[str] = None
        self.flush_manifest: Optional[str] = None

    def build_manifest(self, **extra_config: Any) -> Dict[str, Any]:
        return self.manifest.build(**extra_config)

    def sync_self_metrics(self) -> None:
        """Refresh the observability layer's metrics about itself.

        The tracer's dropped-span counter (and sink-error count, when
        any) become gauges, so every exposition — ``/metrics`` scrape,
        ``--metrics-json`` artifact, push — states whether the trace it
        accompanies was truncated by ``max_spans``.
        """
        self.metrics.gauge(
            "obs_tracer_dropped_spans",
            "spans dropped by the bounded in-memory tracer",
        ).set(self.tracer.dropped)
        if self.tracer.sink_errors:
            self.metrics.gauge(
                "obs_tracer_sink_errors",
                "stream-sink write failures (spans lost to the stream)",
            ).set(self.tracer.sink_errors)

    def set_flush_paths(self, trace: Optional[str] = None,
                        metrics: Optional[str] = None,
                        manifest: Optional[str] = None) -> "RunContext":
        """Where :meth:`flush` writes each artifact (None = skip it)."""
        self.flush_trace = trace
        self.flush_metrics = metrics
        self.flush_manifest = manifest
        return self

    def flush(self, reason: Optional[str] = None) -> List[str]:
        """Write every configured artifact with whatever is recorded.

        Best-effort by design: this is the crash path — each artifact
        is attempted independently and a failing write never masks the
        exception that triggered the flush.  Returns the paths written.
        ``reason`` (e.g. ``"exception"``) is recorded in the manifest's
        config so a post-mortem knows the artifacts are partial.
        """
        from repro.obs import export

        written: List[str] = []
        self.sync_self_metrics()
        for path, write in (
            (self.flush_trace,
             lambda p: export.write_trace(p, self)),
            (self.flush_metrics,
             lambda p: export.write_metrics(p, self)),
            (self.flush_manifest,
             lambda p: export.write_manifest(
                 p, self.build_manifest(
                     **({"flush_reason": reason} if reason else {})))),
        ):
            if not path:
                continue
            try:
                written.append(write(path))
            except Exception:
                continue
        return written


# Explicit activations; a ``None`` entry means "forced off".  The env
# fallback context is created lazily and reused for the process.
_stack: List[Optional[RunContext]] = []
_env_context: Optional[RunContext] = None


def current() -> Optional[RunContext]:
    """The active context, or None when observability is off."""
    global _env_context
    if _stack:
        return _stack[-1]
    if trace_env_enabled():
        if _env_context is None:
            _env_context = RunContext(name="env")
        return _env_context
    return None


def enabled() -> bool:
    return current() is not None


def activate(ctx: RunContext) -> RunContext:
    _stack.append(ctx)
    return ctx


def deactivate(ctx: Optional[RunContext] = None) -> None:
    """Pop the innermost activation (which must be ``ctx`` when given)."""
    if not _stack:
        return
    if ctx is not None and _stack[-1] is not ctx:
        raise ValueError("deactivate() out of order")
    _stack.pop()


def reset() -> None:
    """Drop every activation and the lazy env context (test isolation)."""
    global _env_context
    _stack.clear()
    _env_context = None


@contextmanager
def run(name: str = "run", run_id: Optional[str] = None,
        max_spans: Optional[int] = None,
        flush_trace: Optional[str] = None,
        flush_metrics: Optional[str] = None,
        flush_manifest: Optional[str] = None) -> Iterator[RunContext]:
    """Activate a fresh context for the dynamic extent.

    With any ``flush_*`` path configured, an exception escaping the
    body triggers a best-effort :meth:`RunContext.flush` *before* the
    exception propagates — a crashing solve still leaves validating
    trace/metrics/manifest artifacts holding everything recorded up to
    the failure (every span already closed by the unwinding ``with``
    blocks is in them).
    """
    ctx = RunContext(name=name, run_id=run_id, max_spans=max_spans)
    ctx.set_flush_paths(trace=flush_trace, metrics=flush_metrics,
                        manifest=flush_manifest)
    activate(ctx)
    try:
        yield ctx
    except BaseException:
        ctx.flush(reason="exception")
        raise
    finally:
        deactivate(ctx)


@contextmanager
def disabled() -> Iterator[None]:
    """Force observability off for the dynamic extent."""
    _stack.append(None)
    try:
        yield
    finally:
        _stack.pop()


# --- the instrumentation helpers (the only API hot paths touch) -------------

def span(name: str, category: str = "",
         args: Optional[Dict[str, Any]] = None):
    """A span context manager — the shared null sink when disabled.

    The enabled form yields a :class:`~repro.obs.trace.SpanHandle`;
    the disabled form yields ``None``, so call sites can gate
    attribute work with ``if sp is not None``.
    """
    ctx = current()
    if ctx is None:
        return NULL_SPAN
    return ctx.tracer.span(name, category, args)


def event(name: str, category: str = "",
          args: Optional[Dict[str, Any]] = None) -> None:
    """Record an instant event (no-op when disabled)."""
    ctx = current()
    if ctx is not None:
        ctx.tracer.event(name, category, args)


def metrics() -> Optional[MetricsRegistry]:
    """The active metrics registry, or None when disabled."""
    ctx = current()
    return ctx.metrics if ctx is not None else None


def manifest_recorder() -> Optional[ManifestRecorder]:
    """The active manifest recorder, or None when disabled."""
    ctx = current()
    return ctx.manifest if ctx is not None else None


def record_selection(**fields: Any) -> None:
    """Record a substrate-selection decision on the active manifest
    (and as a trace event) — called by the substrate registry."""
    ctx = current()
    if ctx is None:
        return
    ctx.manifest.record_decision(**fields)
    ctx.tracer.event("substrate_selection", category="substrate",
                     args=fields)
