"""Run context and the near-zero-cost enablement seam.

All instrumentation in the solver stack goes through the module-level
helpers here (:func:`span`, :func:`event`, :func:`metrics`,
:func:`manifest_recorder`).  When observability is off — the default —
each helper is one environment read and a ``None`` return, so the hot
paths pay essentially nothing and the numerics are untouched either
way.

Activation, in precedence order:

1. an explicit context (``with obs.run() as ctx:``, or
   :func:`activate`) — used by the driver CLI and tests;
2. the ``REPRO_TRACE`` environment variable (default **off**): the
   first instrumented call under ``REPRO_TRACE=1`` lazily creates a
   process-wide context, which is how a whole test suite or an
   uncooperative script gets traced without code changes;
3. nothing — the shared :data:`~repro.obs.trace.NULL_SPAN` sink.

:func:`disabled` force-suppresses observability for a dynamic extent
even under ``REPRO_TRACE=1`` (the overhead smoke test's untraced arm).
"""

from __future__ import annotations

import os
import uuid
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

from repro.obs.manifest import ManifestRecorder
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_SPAN, SpanHandle, Tracer

#: The master switch: tracing is off unless this is truthy.
ENV_TRACE = "REPRO_TRACE"

_TRUTHY = ("1", "true", "on", "yes")


def trace_env_enabled() -> bool:
    """The ``REPRO_TRACE`` switch (default off)."""
    return os.environ.get(ENV_TRACE, "").strip().lower() in _TRUTHY


class RunContext:
    """One observed run: a tracer, a metrics registry and a manifest."""

    def __init__(self, name: str = "run", run_id: Optional[str] = None,
                 max_spans: Optional[int] = None):
        self.name = name
        self.run_id = run_id or uuid.uuid4().hex[:12]
        self.tracer = (Tracer() if max_spans is None
                       else Tracer(max_spans=max_spans))
        self.metrics = MetricsRegistry()
        self.manifest = ManifestRecorder(run_id=self.run_id)

    def build_manifest(self, **extra_config: Any) -> Dict[str, Any]:
        return self.manifest.build(**extra_config)


# Explicit activations; a ``None`` entry means "forced off".  The env
# fallback context is created lazily and reused for the process.
_stack: List[Optional[RunContext]] = []
_env_context: Optional[RunContext] = None


def current() -> Optional[RunContext]:
    """The active context, or None when observability is off."""
    global _env_context
    if _stack:
        return _stack[-1]
    if trace_env_enabled():
        if _env_context is None:
            _env_context = RunContext(name="env")
        return _env_context
    return None


def enabled() -> bool:
    return current() is not None


def activate(ctx: RunContext) -> RunContext:
    _stack.append(ctx)
    return ctx


def deactivate(ctx: Optional[RunContext] = None) -> None:
    """Pop the innermost activation (which must be ``ctx`` when given)."""
    if not _stack:
        return
    if ctx is not None and _stack[-1] is not ctx:
        raise ValueError("deactivate() out of order")
    _stack.pop()


def reset() -> None:
    """Drop every activation and the lazy env context (test isolation)."""
    global _env_context
    _stack.clear()
    _env_context = None


@contextmanager
def run(name: str = "run", run_id: Optional[str] = None,
        max_spans: Optional[int] = None) -> Iterator[RunContext]:
    """Activate a fresh context for the dynamic extent."""
    ctx = RunContext(name=name, run_id=run_id, max_spans=max_spans)
    activate(ctx)
    try:
        yield ctx
    finally:
        deactivate(ctx)


@contextmanager
def disabled() -> Iterator[None]:
    """Force observability off for the dynamic extent."""
    _stack.append(None)
    try:
        yield
    finally:
        _stack.pop()


# --- the instrumentation helpers (the only API hot paths touch) -------------

def span(name: str, category: str = "",
         args: Optional[Dict[str, Any]] = None):
    """A span context manager — the shared null sink when disabled.

    The enabled form yields a :class:`~repro.obs.trace.SpanHandle`;
    the disabled form yields ``None``, so call sites can gate
    attribute work with ``if sp is not None``.
    """
    ctx = current()
    if ctx is None:
        return NULL_SPAN
    return ctx.tracer.span(name, category, args)


def event(name: str, category: str = "",
          args: Optional[Dict[str, Any]] = None) -> None:
    """Record an instant event (no-op when disabled)."""
    ctx = current()
    if ctx is not None:
        ctx.tracer.event(name, category, args)


def metrics() -> Optional[MetricsRegistry]:
    """The active metrics registry, or None when disabled."""
    ctx = current()
    return ctx.metrics if ctx is not None else None


def manifest_recorder() -> Optional[ManifestRecorder]:
    """The active manifest recorder, or None when disabled."""
    ctx = current()
    return ctx.manifest if ctx is not None else None


def record_selection(**fields: Any) -> None:
    """Record a substrate-selection decision on the active manifest
    (and as a trace event) — called by the substrate registry."""
    ctx = current()
    if ctx is None:
        return
    ctx.manifest.record_decision(**fields)
    ctx.tracer.event("substrate_selection", category="substrate",
                     args=fields)
