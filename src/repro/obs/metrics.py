"""Labelled metrics: counters, gauges, histograms and series.

The registry backs two consumers:

* **snapshots** — a plain nested dict (:meth:`MetricsRegistry.snapshot`)
  round-trippable through JSON, attached to results and dumped by the
  driver's ``--metrics-json``;
* **Prometheus text exposition** (:meth:`MetricsRegistry.to_prometheus`)
  for the future serving engine: the same registry can be scraped.

Metric types follow Prometheus semantics where they exist (counter,
gauge, histogram); :class:`Series` is the local extra — an ordered,
bounded trajectory of observations (CG residual histories, per-superstep
h-relations) that a point-in-time scrape cannot represent, exported to
Prometheus as its last value.

Everything is label-aware: ``counter.inc(3, fmt="csr")`` keeps one
sample per distinct label set.  All mutation goes through a per-registry
lock, so concurrent solves can share one registry.
"""

from __future__ import annotations

import re
import threading
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.util.errors import InvalidValue

LabelKey = Tuple[Tuple[str, str], ...]

#: Prometheus metric-name grammar (exposition format 0.0.4).
NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")

#: Prometheus label-name grammar (no colons, unlike metric names).
LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default latency-style histogram buckets (seconds).
DEFAULT_BUCKETS = (
    0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0,
)

#: Default bound on stored series points (drops oldest beyond this).
SERIES_MAXLEN = 10_000


def _label_key(labels: Mapping[str, Any]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _labels_dict(key: LabelKey) -> Dict[str, str]:
    return dict(key)


class Metric:
    """Base: one named metric family holding per-label-set samples."""

    type_name = "untyped"

    def __init__(self, name: str, help: str = ""):
        if not NAME_RE.match(name or ""):
            raise InvalidValue(f"invalid metric name {name!r}")
        self.name = name
        self.help = help
        self._samples: Dict[LabelKey, Any] = {}
        self._lock = threading.Lock()

    def labels(self) -> List[Dict[str, str]]:
        with self._lock:
            return [_labels_dict(k) for k in self._samples]

    def _sample_dicts(self) -> List[Dict[str, Any]]:
        raise NotImplementedError

    def snapshot(self) -> Dict[str, Any]:
        return {
            "type": self.type_name,
            "help": self.help,
            "samples": self._sample_dicts(),
        }


class Counter(Metric):
    """Monotonically increasing value per label set."""

    type_name = "counter"

    def inc(self, value: float = 1.0, **labels: Any) -> None:
        if value < 0:
            raise InvalidValue(f"counter increment must be >= 0: {value}")
        key = _label_key(labels)
        with self._lock:
            self._samples[key] = self._samples.get(key, 0.0) + value

    def value(self, **labels: Any) -> float:
        with self._lock:
            return self._samples.get(_label_key(labels), 0.0)

    def _sample_dicts(self) -> List[Dict[str, Any]]:
        with self._lock:
            return [{"labels": _labels_dict(k), "value": v}
                    for k, v in sorted(self._samples.items())]


class Gauge(Metric):
    """Last-write-wins value per label set."""

    type_name = "gauge"

    def set(self, value: float, **labels: Any) -> None:
        with self._lock:
            self._samples[_label_key(labels)] = float(value)

    def value(self, **labels: Any) -> Optional[float]:
        with self._lock:
            return self._samples.get(_label_key(labels))

    def _sample_dicts(self) -> List[Dict[str, Any]]:
        with self._lock:
            return [{"labels": _labels_dict(k), "value": v}
                    for k, v in sorted(self._samples.items())]


class Histogram(Metric):
    """Cumulative-bucket histogram per label set."""

    type_name = "histogram"

    def __init__(self, name: str, help: str = "",
                 buckets: Sequence[float] = DEFAULT_BUCKETS):
        super().__init__(name, help)
        if not buckets or list(buckets) != sorted(buckets):
            raise InvalidValue("histogram buckets must be ascending")
        self.buckets = tuple(float(b) for b in buckets)

    def observe(self, value: float, **labels: Any) -> None:
        key = _label_key(labels)
        with self._lock:
            sample = self._samples.get(key)
            if sample is None:
                sample = self._samples[key] = {
                    "counts": [0] * (len(self.buckets) + 1),
                    "sum": 0.0,
                    "count": 0,
                }
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    sample["counts"][i] += 1
                    break
            else:
                sample["counts"][-1] += 1
            sample["sum"] += float(value)
            sample["count"] += 1

    def _sample_dicts(self) -> List[Dict[str, Any]]:
        with self._lock:
            return [
                {
                    "labels": _labels_dict(k),
                    "buckets": list(self.buckets),
                    "counts": list(v["counts"]),
                    "sum": v["sum"],
                    "count": v["count"],
                }
                for k, v in sorted(self._samples.items())
            ]


class Series(Metric):
    """An ordered trajectory of observations per label set.

    Bounded at ``maxlen`` points (oldest dropped, drops counted) so an
    always-on registry cannot grow without bound; a single solve's
    residual history sits far below the default bound.
    """

    type_name = "series"

    def __init__(self, name: str, help: str = "",
                 maxlen: int = SERIES_MAXLEN):
        super().__init__(name, help)
        if maxlen < 1:
            raise InvalidValue(f"series maxlen must be >= 1, got {maxlen}")
        self.maxlen = maxlen

    def observe(self, value: float, **labels: Any) -> None:
        key = _label_key(labels)
        with self._lock:
            sample = self._samples.get(key)
            if sample is None:
                sample = self._samples[key] = {"values": [], "dropped": 0}
            sample["values"].append(float(value))
            if len(sample["values"]) > self.maxlen:
                del sample["values"][0]
                sample["dropped"] += 1

    def values(self, **labels: Any) -> List[float]:
        with self._lock:
            sample = self._samples.get(_label_key(labels))
            return list(sample["values"]) if sample else []

    def _sample_dicts(self) -> List[Dict[str, Any]]:
        with self._lock:
            return [
                {
                    "labels": _labels_dict(k),
                    "values": list(v["values"]),
                    "dropped": v["dropped"],
                }
                for k, v in sorted(self._samples.items())
            ]


_TYPES = {cls.type_name: cls for cls in (Counter, Gauge, Histogram, Series)}


class MetricsRegistry:
    """A named collection of metrics with JSON and Prometheus export."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}
        self._lock = threading.Lock()

    def _get(self, cls, name: str, help: str, **kwargs) -> Metric:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = cls(name, help, **kwargs)
            elif not isinstance(metric, cls):
                raise InvalidValue(
                    f"metric {name!r} already registered as "
                    f"{metric.type_name}, requested {cls.type_name}"
                )
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(Gauge, name, help)

    def histogram(self, name: str, help: str = "",
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        return self._get(Histogram, name, help, buckets=buckets)

    def series(self, name: str, help: str = "",
               maxlen: int = SERIES_MAXLEN) -> Series:
        return self._get(Series, name, help, maxlen=maxlen)

    def get(self, name: str) -> Optional[Metric]:
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._metrics)

    def clear(self) -> None:
        with self._lock:
            self._metrics.clear()

    # --- export --------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """All metrics as one JSON-able dict (stable ordering)."""
        with self._lock:
            metrics = dict(self._metrics)
        return {name: metrics[name].snapshot() for name in sorted(metrics)}

    @classmethod
    def from_snapshot(cls, snapshot: Mapping[str, Any]) -> "MetricsRegistry":
        """Rebuild a registry whose :meth:`snapshot` equals ``snapshot``.

        The round trip is the test of the format: every sample (labels,
        values, bucket counts, trajectories) must survive
        ``snapshot -> json -> from_snapshot -> snapshot`` unchanged.
        """
        registry = cls()
        for name, data in snapshot.items():
            type_name = data.get("type")
            if type_name not in _TYPES:
                raise InvalidValue(
                    f"metric {name!r} has unknown type {type_name!r}"
                )
            help_text = data.get("help", "")
            for sample in data.get("samples", []):
                labels = sample.get("labels", {})
                if type_name == "counter":
                    registry.counter(name, help_text).inc(
                        sample["value"], **labels)
                elif type_name == "gauge":
                    registry.gauge(name, help_text).set(
                        sample["value"], **labels)
                elif type_name == "histogram":
                    metric = registry.histogram(
                        name, help_text, buckets=sample["buckets"])
                    key = _label_key(labels)
                    with metric._lock:
                        metric._samples[key] = {
                            "counts": list(sample["counts"]),
                            "sum": sample["sum"],
                            "count": sample["count"],
                        }
                else:  # series
                    metric = registry.series(name, help_text)
                    key = _label_key(labels)
                    with metric._lock:
                        metric._samples[key] = {
                            "values": [float(v) for v in sample["values"]],
                            "dropped": sample.get("dropped", 0),
                        }
                # type conflicts across samples surface via _get above
            if not data.get("samples"):
                registry._get(_TYPES[type_name], name, help_text)
        return registry

    def to_prometheus(self) -> str:
        """Prometheus text exposition (format version 0.0.4).

        Every metric family gets its ``# HELP`` and ``# TYPE`` comment
        lines; help text and label values are escaped per the format
        (backslash, newline — plus double quote inside label values),
        so arbitrary recorded strings cannot corrupt the exposition.
        """
        lines: List[str] = []
        snapshot = self.snapshot()
        for name, data in snapshot.items():
            help_line = f"# HELP {name}"
            if data["help"]:
                help_line += f" {_prom_escape_help(data['help'])}"
            lines.append(help_line)
            prom_type = ("gauge" if data["type"] == "series"
                         else data["type"])
            lines.append(f"# TYPE {name} {prom_type}")
            for sample in data["samples"]:
                labels = sample.get("labels", {})
                if data["type"] in ("counter", "gauge"):
                    lines.append(_prom_line(name, labels, sample["value"]))
                elif data["type"] == "series":
                    values = sample["values"]
                    if values:
                        lines.append(_prom_line(name, labels, values[-1]))
                else:  # histogram: cumulative buckets + sum + count
                    cumulative = 0
                    for bound, count in zip(sample["buckets"],
                                            sample["counts"]):
                        cumulative += count
                        lines.append(_prom_line(
                            f"{name}_bucket", {**labels, "le": repr(bound)},
                            cumulative))
                    cumulative += sample["counts"][-1]
                    lines.append(_prom_line(
                        f"{name}_bucket", {**labels, "le": "+Inf"},
                        cumulative))
                    lines.append(_prom_line(
                        f"{name}_sum", labels, sample["sum"]))
                    lines.append(_prom_line(
                        f"{name}_count", labels, sample["count"]))
        return "\n".join(lines) + ("\n" if lines else "")


def _prom_line(name: str, labels: Mapping[str, str], value: Any) -> str:
    if labels:
        for label in labels:
            if not LABEL_NAME_RE.match(str(label)):
                raise InvalidValue(f"invalid Prometheus label name "
                                   f"{label!r} on metric {name!r}")
        body = ",".join(
            f'{k}="{_prom_escape(str(v))}"' for k, v in sorted(labels.items())
        )
        return f"{name}{{{body}}} {value}"
    return f"{name} {value}"


def _prom_escape(value: str) -> str:
    """Escape a label value: backslash, double quote, newline."""
    return (value.replace("\\", r"\\").replace('"', r'\"')
            .replace("\n", r"\n"))


def _prom_escape_help(value: str) -> str:
    """Escape HELP text: backslash and newline (quotes stay literal)."""
    return value.replace("\\", r"\\").replace("\n", r"\n")
