"""Streaming trace sink: spans persisted as JSONL *while the run runs*.

The PR-6 trace artifact is written once, after a clean exit — a run
that is killed, OOMs, or hangs leaves nothing.  This module closes that
gap: a :class:`StreamingSink` registers with a
:class:`~repro.obs.trace.Tracer` and appends every *finished* span to a
JSON-Lines file as it closes, flushing to the OS whenever a top-level
span completes (and every ``flush_every`` spans in between, so a long
solve's iterations land on disk while the solve is still inside its
enclosing ``hpcg/solve`` span).  ``kill -9`` therefore loses at most
the spans since the last flush plus one partially-written line — and
the reader tolerates exactly that.

File layout (one JSON document per line):

* line 1 — a **header**: ``{"kind": "repro-trace-stream",
  "schema_version": 1, "run_id": ..., "epoch_unix": ..., "pid": ...}``;
* span lines — :meth:`repro.obs.trace.SpanRecord.as_dict` documents in
  completion order (children before parents, like the in-memory list);
* an optional **footer** written by :meth:`StreamingSink.close`:
  ``{"kind": "repro-trace-stream-end", "spans": N, "dropped": M}`` —
  its *absence* is how a reader knows the run did not exit cleanly.

Because the sink hangs off the tracer's sink hook it also receives
spans the bounded in-memory store dropped past ``max_spans``: the
stream is the unbounded record, the memory buffer the cheap one.

Readers: :func:`read_stream` (header/spans/footer), and
:func:`repro.obs.analyze.load_spans` understands ``.jsonl`` streams
directly, so ``obs diff``/``flame``/``top`` work on partial traces
unchanged.  :func:`validate_stream_text` is the ``obs validate`` gate.
"""

from __future__ import annotations

import atexit
import json
import os
import threading
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.trace import SpanRecord, Tracer
from repro.util.errors import InvalidValue

#: The header/footer discriminator values.
STREAM_KIND = "repro-trace-stream"
STREAM_END_KIND = "repro-trace-stream-end"

#: Stream schema version (bump on incompatible layout changes).
STREAM_SCHEMA_VERSION = 1

#: Keys every span line must carry to be loadable by the consumers.
SPAN_KEYS = ("id", "name", "start", "wall_seconds", "modelled_seconds")

#: Flush to the OS at least every this many spans even when no
#: top-level span closes (a whole CG solve sits under one span).
FLUSH_EVERY = 100


class StreamingSink:
    """Appends finished spans to ``path`` as JSONL, crash-safely.

    Register on a tracer with :meth:`attach` (or pass ``tracer=``);
    :meth:`close` writes the clean-exit footer and detaches.  A
    finalizer is registered with :mod:`atexit` so an *orderly*
    interpreter exit (unhandled exception, ``sys.exit``) still closes
    the stream; a hard kill simply leaves the footer off, which the
    readers treat as "partial trace", not an error.
    """

    def __init__(self, path: str, run_id: str = "",
                 tracer: Optional[Tracer] = None,
                 flush_every: int = FLUSH_EVERY):
        if flush_every < 1:
            raise InvalidValue(f"flush_every must be >= 1, got {flush_every}")
        self.path = path
        self.run_id = run_id
        self.flush_every = flush_every
        self.spans_written = 0
        self._pending = 0
        self._tracer: Optional[Tracer] = None
        self._lock = threading.Lock()
        self._fh = open(path, "w", encoding="utf-8")
        self._write_line({
            "kind": STREAM_KIND,
            "schema_version": STREAM_SCHEMA_VERSION,
            "run_id": run_id,
            "epoch_unix": tracer.epoch_unix if tracer is not None else None,
            "pid": os.getpid(),
        })
        self._fh.flush()
        self._atexit = atexit.register(self.close)
        if tracer is not None:
            self.attach(tracer)

    # the tracer calls the sink itself: sink(record)
    def __call__(self, record: SpanRecord) -> None:
        with self._lock:
            if self._fh.closed:
                return
            self._write_line(record.as_dict())
            self.spans_written += 1
            self._pending += 1
            if record.parent_id is None or self._pending >= self.flush_every:
                self._fh.flush()
                self._pending = 0

    def _write_line(self, doc: Dict[str, Any]) -> None:
        self._fh.write(json.dumps(doc, sort_keys=True, default=str) + "\n")

    def attach(self, tracer: Tracer) -> "StreamingSink":
        self._tracer = tracer
        tracer.add_sink(self)
        return self

    def close(self) -> None:
        """Write the clean-exit footer and detach; idempotent."""
        with self._lock:
            if self._fh.closed:
                return
            if self._tracer is not None:
                self._tracer.remove_sink(self)
            self._write_line({
                "kind": STREAM_END_KIND,
                "spans": self.spans_written,
                "dropped": (self._tracer.dropped
                            if self._tracer is not None else 0),
            })
            self._fh.close()
        try:
            atexit.unregister(self._atexit)
        except Exception:
            pass

    def __enter__(self) -> "StreamingSink":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


# ---------------------------------------------------------------------------
# reading
# ---------------------------------------------------------------------------

def parse_stream_text(
    text: str,
) -> Tuple[Dict[str, Any], List[Dict[str, Any]], Optional[Dict[str, Any]]]:
    """``(header, spans, footer)`` from JSONL stream text.

    Tolerates exactly the damage a hard kill causes: a truncated
    *final* line is ignored (``footer`` comes back ``None``).  A
    malformed line anywhere else, or a missing/foreign header, raises
    :class:`InvalidValue` — that is corruption, not a crash artifact.
    """
    lines = text.splitlines()
    if not lines:
        raise InvalidValue("empty trace stream")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        raise InvalidValue(f"stream header is not JSON: {exc}") from exc
    if not isinstance(header, dict) or header.get("kind") != STREAM_KIND:
        raise InvalidValue(
            f"not a trace stream: header kind "
            f"{header.get('kind') if isinstance(header, dict) else header!r}"
        )
    if header.get("schema_version") != STREAM_SCHEMA_VERSION:
        raise InvalidValue(
            f"stream schema {header.get('schema_version')!r} != "
            f"supported {STREAM_SCHEMA_VERSION}"
        )
    spans: List[Dict[str, Any]] = []
    footer: Optional[Dict[str, Any]] = None
    last = len(lines) - 1
    for i, line in enumerate(lines[1:], start=1):
        if not line.strip():
            continue
        try:
            doc = json.loads(line)
        except json.JSONDecodeError as exc:
            if i == last:          # the torn tail of a killed writer
                break
            raise InvalidValue(f"stream line {i + 1} is not JSON: "
                               f"{exc}") from exc
        if not isinstance(doc, dict):
            raise InvalidValue(f"stream line {i + 1} is not an object")
        if doc.get("kind") == STREAM_END_KIND:
            footer = doc
            continue
        missing = [k for k in SPAN_KEYS if k not in doc]
        if missing:
            raise InvalidValue(
                f"stream line {i + 1} span missing keys: "
                f"{', '.join(missing)}"
            )
        spans.append(doc)
    return header, spans, footer


def read_stream(
    path: str,
) -> Tuple[Dict[str, Any], List[Dict[str, Any]], Optional[Dict[str, Any]]]:
    """:func:`parse_stream_text` over a file."""
    with open(path, "r", encoding="utf-8") as fh:
        return parse_stream_text(fh.read())


def load_stream_spans(path: str) -> List[Dict[str, Any]]:
    """Just the span dicts of a stream file (partial traces included)."""
    return read_stream(path)[1]


def validate_stream_text(text: str) -> List[str]:
    """Validate stream text; returns human-readable *warnings*.

    Raises :class:`InvalidValue` on structural corruption.  A missing
    footer (killed run) and dropped spans are warnings, not failures —
    partial traces are the feature, and ``obs validate`` must accept
    them.
    """
    header, spans, footer = parse_stream_text(text)
    warnings: List[str] = []
    if not spans:
        warnings.append("stream carries no complete spans yet")
    if footer is None:
        warnings.append(
            "no clean end marker: the run crashed, was killed, or is "
            "still writing (partial trace)"
        )
    else:
        if footer.get("spans") != len(spans):
            raise InvalidValue(
                f"footer says {footer.get('spans')} spans, stream "
                f"carries {len(spans)}"
            )
        dropped = footer.get("dropped", 0)
        if dropped:
            warnings.append(
                f"in-memory trace was truncated by max_spans "
                f"({dropped} span(s) dropped; the stream kept them)"
            )
    return warnings
