"""Run provenance: the manifest that makes a run reproducible.

One solver run's configuration is scattered across environment toggles
(``REPRO_SUBSTRATE``, ``REPRO_FUSED``, ``REPRO_JIT``, ``REPRO_THREADS``,
``REPRO_OVERLAP``, ``REPRO_TRACE``, the tune-cache location), the
cached machine profile,
per-matrix substrate-selection decisions, and driver arguments.  The
manifest captures all of it in one JSON document — the *why* next to
the *what* — so any result file can answer "how was this run
configured, and why did it pick these kernels?".

Selection decisions carry their **reason** (``pin``, ``env``,
``model``, ``heuristic``) as recorded by
:mod:`repro.graphblas.substrate.registry` at resolve time; seeds and
arbitrary config are recorded by whoever owns them (the driver records
its CLI, simulated runs record backend/partition/machine).
"""

from __future__ import annotations

import os
import platform
import sys
import threading
import time
from typing import Any, Dict, List, Optional

from repro.util.errors import InvalidValue

#: Manifest schema version (bump on incompatible layout changes).
SCHEMA_VERSION = 1

#: Every environment variable with this prefix is captured verbatim.
ENV_PREFIX = "REPRO_"

#: Keys every valid manifest must carry (see :func:`validate_manifest`).
REQUIRED_KEYS = (
    "schema_version", "run_id", "created_at", "package_version",
    "python", "environment", "toggles", "tune_profile",
    "substrate_decisions", "seeds", "config",
)


class ManifestRecorder:
    """Accumulates the run-scoped half of a manifest.

    Thread-safe; one recorder lives on each
    :class:`repro.obs.context.RunContext`.  The environment/toggle half
    is captured fresh at :meth:`build` time so the manifest reflects
    the state the run actually saw.
    """

    def __init__(self, run_id: str = ""):
        self.run_id = run_id
        self._seeds: Dict[str, Any] = {}
        self._decisions: List[Dict[str, Any]] = []
        self._config: Dict[str, Any] = {}
        self._lock = threading.Lock()

    def record_seed(self, name: str, value: Any) -> None:
        with self._lock:
            self._seeds[str(name)] = value

    def record_config(self, **items: Any) -> None:
        with self._lock:
            self._config.update(items)

    def record_decision(self, **fields: Any) -> None:
        """One substrate-selection decision (chosen format + reason)."""
        with self._lock:
            self._decisions.append(dict(fields))

    @property
    def decisions(self) -> List[Dict[str, Any]]:
        with self._lock:
            return [dict(d) for d in self._decisions]

    def build(self, **extra_config: Any) -> Dict[str, Any]:
        """The complete manifest as a JSON-able dict."""
        with self._lock:
            seeds = dict(self._seeds)
            decisions = [dict(d) for d in self._decisions]
            config = dict(self._config)
        config.update(extra_config)
        return build_manifest(
            run_id=self.run_id, seeds=seeds, decisions=decisions,
            config=config,
        )


def capture_environment() -> Dict[str, str]:
    """Every ``REPRO_*`` environment variable, verbatim."""
    return {
        key: value
        for key, value in sorted(os.environ.items())
        if key.startswith(ENV_PREFIX)
    }


def capture_toggles() -> Dict[str, Any]:
    """The *resolved* state of every runtime switch.

    Environment capture alone is not reproducible — unset variables
    have defaults — so the manifest also records what each toggle
    resolved to at capture time.
    """
    from repro.dist.comm import resolve_comm_mode
    from repro.graphblas import fused as fused_mod
    from repro.graphblas.substrate import jit as jit_mod
    from repro.graphblas.substrate import registry as registry_mod
    from repro.graphblas.substrate import threads as threads_mod
    from repro.obs.context import trace_env_enabled

    try:
        comm_mode = resolve_comm_mode()
    except InvalidValue:
        comm_mode = "invalid"
    try:
        substrate_force = registry_mod.forced()
    except InvalidValue:
        substrate_force = "invalid"
    try:
        threads_requested: Any = threads_mod.requested()
        threads_effective: Any = threads_mod.resolve()
    except InvalidValue:
        threads_requested = threads_effective = "invalid"
    return {
        "fused": fused_mod.fused_enabled(),
        "jit_enabled": jit_mod.enabled(),
        "jit_available": jit_mod.available(),
        "jit_parallel_available": jit_mod.parallel_available(),
        "comm_mode": comm_mode,
        "substrate_force": substrate_force,
        "trace": trace_env_enabled(),
        # the REPRO_THREADS resolution pair: what was asked (None =
        # auto) and what the parallel lane resolved it to
        "threads_requested": threads_requested,
        "threads_effective": threads_effective,
    }


def capture_tune_profile() -> Optional[Dict[str, Any]]:
    """Summary of the cached machine profile, or None when uncached."""
    from repro.tune import cache as tune_cache

    profile = tune_cache.current_profile()
    if profile is None:
        return None
    return {
        "name": profile.name,
        "host": profile.host,
        "schema_version": profile.schema_version,
        "created_at": profile.created_at,
        "triad_bandwidth": profile.triad_bandwidth,
        "net_bandwidth": profile.net_bandwidth,
        "latency": profile.latency,
        "overlap_efficiency": profile.overlap_efficiency,
        "fast": profile.fast,
        "half_sat_threads": profile.half_sat_threads,
        "thread_speedup": profile.thread_speedup(),
    }


def build_manifest(
    run_id: str = "",
    seeds: Optional[Dict[str, Any]] = None,
    decisions: Optional[List[Dict[str, Any]]] = None,
    config: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble a manifest dict from recorded state + a fresh capture."""
    from repro import __version__

    return {
        "schema_version": SCHEMA_VERSION,
        "run_id": run_id,
        "created_at": time.time(),
        "package_version": __version__,
        "python": {
            "version": sys.version.split()[0],
            "implementation": platform.python_implementation(),
            "platform": platform.platform(),
        },
        "environment": capture_environment(),
        "toggles": capture_toggles(),
        "tune_profile": capture_tune_profile(),
        "substrate_decisions": list(decisions or []),
        "seeds": dict(seeds or {}),
        "config": dict(config or {}),
    }


def validate_manifest(manifest: Dict[str, Any]) -> None:
    """Raise :class:`InvalidValue` unless ``manifest`` is well-formed."""
    if not isinstance(manifest, dict):
        raise InvalidValue("manifest must be a JSON object")
    missing = [k for k in REQUIRED_KEYS if k not in manifest]
    if missing:
        raise InvalidValue(f"manifest missing keys: {', '.join(missing)}")
    if manifest["schema_version"] != SCHEMA_VERSION:
        raise InvalidValue(
            f"manifest schema {manifest['schema_version']!r} != "
            f"supported {SCHEMA_VERSION}"
        )
    if not isinstance(manifest["substrate_decisions"], list):
        raise InvalidValue("substrate_decisions must be a list")
    for decision in manifest["substrate_decisions"]:
        for key in ("chosen", "reason"):
            if key not in decision:
                raise InvalidValue(
                    f"substrate decision missing {key!r}: {decision}"
                )
    for section in ("environment", "toggles", "seeds", "config"):
        if not isinstance(manifest[section], dict):
            raise InvalidValue(f"manifest {section} must be an object")
