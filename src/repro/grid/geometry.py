"""The semi-regular 3D grid HPCG discretises its PDE on.

HPCG models heat diffusion on an ``nx x ny x nz`` point grid with
halo-1 (27-point) interactions.  This module owns the index arithmetic:
linearisation, neighbour enumeration, and the 2x-per-dimension
coarsening used by the multigrid hierarchy.

Linearisation follows the reference implementation: ``x`` fastest,
then ``y``, then ``z`` — ``i = iz*ny*nx + iy*nx + ix``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np

from repro.util.errors import InvalidValue


@dataclass(frozen=True)
class Grid3D:
    """An immutable ``nx x ny x nz`` grid of points."""

    nx: int
    ny: int
    nz: int

    def __post_init__(self):
        if min(self.nx, self.ny, self.nz) < 1:
            raise InvalidValue(f"grid dimensions must be >= 1, got {self.dims}")

    # --- basic properties ---------------------------------------------------
    @property
    def dims(self) -> Tuple[int, int, int]:
        return (self.nx, self.ny, self.nz)

    @property
    def npoints(self) -> int:
        return self.nx * self.ny * self.nz

    # --- index arithmetic -----------------------------------------------------
    def index(self, ix, iy, iz):
        """Linear index of point ``(ix, iy, iz)``; accepts arrays."""
        return (np.asarray(iz) * self.ny + np.asarray(iy)) * self.nx + np.asarray(ix)

    def coords(self, i):
        """Inverse of :meth:`index`; accepts arrays."""
        i = np.asarray(i)
        ix = i % self.nx
        iy = (i // self.nx) % self.ny
        iz = i // (self.nx * self.ny)
        return ix, iy, iz

    def all_coords(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Coordinates of every point, in linear-index order."""
        return self.coords(np.arange(self.npoints, dtype=np.int64))

    def in_bounds(self, ix, iy, iz):
        """Boolean validity of coordinates; accepts arrays."""
        ix, iy, iz = np.asarray(ix), np.asarray(iy), np.asarray(iz)
        return (
            (0 <= ix) & (ix < self.nx)
            & (0 <= iy) & (iy < self.ny)
            & (0 <= iz) & (iz < self.nz)
        )

    def neighbours(self, i: int) -> Iterator[int]:
        """Linear indices of the (up to 26) halo-1 neighbours of ``i``."""
        ix, iy, iz = (int(c) for c in self.coords(i))
        for dz in (-1, 0, 1):
            for dy in (-1, 0, 1):
                for dx in (-1, 0, 1):
                    if dx == dy == dz == 0:
                        continue
                    jx, jy, jz = ix + dx, iy + dy, iz + dz
                    if self.in_bounds(jx, jy, jz):
                        yield int(self.index(jx, jy, jz))

    def row_degree(self) -> np.ndarray:
        """Stencil row sizes (8..27): number of in-bounds stencil points."""
        ix, iy, iz = self.all_coords()
        fx = 3 - (ix == 0) - (ix == self.nx - 1) if self.nx > 1 else np.ones_like(ix)
        fy = 3 - (iy == 0) - (iy == self.ny - 1) if self.ny > 1 else np.ones_like(iy)
        fz = 3 - (iz == 0) - (iz == self.nz - 1) if self.nz > 1 else np.ones_like(iz)
        return (fx * fy * fz).astype(np.int64)

    # --- multigrid coarsening ----------------------------------------------------
    def can_coarsen(self) -> bool:
        """True when every dimension is divisible by two (HPCG requirement)."""
        return (
            self.nx % 2 == 0 and self.ny % 2 == 0 and self.nz % 2 == 0
            and min(self.nx, self.ny, self.nz) >= 2
        )

    def coarsen(self) -> "Grid3D":
        """The 2x-coarser grid (each dimension halved)."""
        if not self.can_coarsen():
            raise InvalidValue(
                f"grid {self.dims} cannot be coarsened: dimensions must be even"
            )
        return Grid3D(self.nx // 2, self.ny // 2, self.nz // 2)

    def injection_indices(self) -> np.ndarray:
        """For each coarse point, the fine linear index it injects from.

        HPCG's straight injection takes the fine point at the lowest
        coordinates of each 2x2x2 octet: coarse ``(x, y, z)`` maps to
        fine ``(2x, 2y, 2z)`` (paper Section II-F).
        """
        coarse = self.coarsen()
        cx, cy, cz = coarse.all_coords()
        return np.asarray(self.index(2 * cx, 2 * cy, 2 * cz), dtype=np.int64)

    def max_mg_levels(self) -> int:
        """How many grids a multigrid hierarchy can have, including this one."""
        levels = 1
        g = self
        while g.can_coarsen():
            g = g.coarsen()
            levels += 1
        return levels

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Grid3D({self.nx}x{self.ny}x{self.nz})"
