"""3D grid geometry for the HPCG problem domain."""

from repro.grid.geometry import Grid3D
from repro.grid.stencil import (
    stencil_27pt_coo,
    stencil_7pt_coo,
    stencil_coo,
    stencil_offsets,
    stencil_offsets_7pt,
)

__all__ = [
    "Grid3D",
    "stencil_27pt_coo",
    "stencil_7pt_coo",
    "stencil_coo",
    "stencil_offsets",
    "stencil_offsets_7pt",
]
