"""Vectorised 27-point stencil assembly.

The HPCG operator couples each grid point with all in-bounds points of
its 3x3x3 neighbourhood: the diagonal entry is ``+26`` and every
off-diagonal entry is ``-1`` (a discrete Laplacian scaled so interior
rows sum to zero, the discretisation of the heat-diffusion problem).

Assembly iterates over the 27 offsets, not over the ``n`` points, so it
is pure numpy: 27 vectorised passes of O(n) each.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.grid.geometry import Grid3D

DIAG_VALUE = 26.0
OFFDIAG_VALUE = -1.0


def stencil_offsets() -> List[Tuple[int, int, int]]:
    """The 27 (dx, dy, dz) offsets, diagonal (0,0,0) included."""
    return [
        (dx, dy, dz)
        for dz in (-1, 0, 1)
        for dy in (-1, 0, 1)
        for dx in (-1, 0, 1)
    ]


def stencil_offsets_7pt() -> List[Tuple[int, int, int]]:
    """The 7 face-neighbour offsets (the classic 3D Laplacian)."""
    return [
        (0, 0, 0),
        (-1, 0, 0), (1, 0, 0),
        (0, -1, 0), (0, 1, 0),
        (0, 0, -1), (0, 0, 1),
    ]


def stencil_27pt_coo(
    grid: Grid3D,
    diag_value: float = DIAG_VALUE,
    offdiag_value: float = OFFDIAG_VALUE,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """COO triplets (rows, cols, values) of the 27-point operator.

    Entries arrive grouped by offset; builders that need CSR sort them.
    Row counts range from 8 (corners) to 27 (interior), matching the
    paper's "from 8 to 27 nonzeroes per row".
    """
    return _stencil_coo(grid, stencil_offsets(), diag_value, offdiag_value)


def stencil_7pt_coo(
    grid: Grid3D,
    diag_value: float = 6.0,
    offdiag_value: float = OFFDIAG_VALUE,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """COO triplets of the 7-point (face-neighbour) Laplacian.

    Not what HPCG benchmarks, but the canonical operator whose
    dependency graph is bipartite — greedy colouring finds exactly the
    two classes of the original *red-black* Gauss-Seidel.  Included to
    exercise the smoother/colouring machinery beyond the 27-point case.
    """
    return _stencil_coo(grid, stencil_offsets_7pt(), diag_value, offdiag_value)


def stencil_coo(grid: Grid3D, stencil: str = "27pt"
                ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Dispatch by stencil name: ``"27pt"`` (HPCG) or ``"7pt"``."""
    if stencil == "27pt":
        return stencil_27pt_coo(grid)
    if stencil == "7pt":
        return stencil_7pt_coo(grid)
    raise ValueError(f"unknown stencil {stencil!r}; expected '27pt' or '7pt'")


def _stencil_coo(
    grid: Grid3D,
    offsets: List[Tuple[int, int, int]],
    diag_value: float,
    offdiag_value: float,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    ix, iy, iz = grid.all_coords()
    all_idx = np.arange(grid.npoints, dtype=np.int64)
    rows_parts: List[np.ndarray] = []
    cols_parts: List[np.ndarray] = []
    vals_parts: List[np.ndarray] = []
    for dx, dy, dz in offsets:
        jx, jy, jz = ix + dx, iy + dy, iz + dz
        valid = grid.in_bounds(jx, jy, jz)
        r = all_idx[valid]
        c = np.asarray(grid.index(jx[valid], jy[valid], jz[valid]), dtype=np.int64)
        rows_parts.append(r)
        cols_parts.append(c)
        value = diag_value if (dx == dy == dz == 0) else offdiag_value
        vals_parts.append(np.full(r.size, value, dtype=np.float64))
    return (
        np.concatenate(rows_parts),
        np.concatenate(cols_parts),
        np.concatenate(vals_parts),
    )
