"""Byte-cost coefficients and per-node work accounting for the
simulated distributed backends.

The coefficients match the accounting of
:func:`repro.graphblas.backend.record` and
:func:`repro.perf.model.ref_stream_from_alp`; HPCG kernels are
bandwidth-bound, so all work is measured in bytes.

The *interior/boundary* helpers support the split-phase communication
engine: a row is **interior** to its node when every column it
references is owned by that node — it can be updated while a halo
exchange is still in flight — and **boundary** otherwise (it must wait
for remote values).  The split is what the overlapped executors pipeline
and what the BSP overlap pricing hides communication behind.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
import scipy.sparse as sp

# bytes-per-element cost coefficients
_MXV_NNZ_BYTES = 16.0
_MXV_ROW_BYTES = 16.0
_DOT_BYTES = 16.0
_WAXPBY_BYTES = 24.0
_RESTRICT_MXV_BYTES = 28.0    # ALP: materialised injection matrix mxv
_RESTRICT_COPY_BYTES = 16.0   # Ref: raw index copy


def mxv_bytes(nnz, rows):
    """Bytes one CSR mxv streams for ``nnz`` entries over ``rows`` rows."""
    return nnz * _MXV_NNZ_BYTES + rows * _MXV_ROW_BYTES


def per_node_rows_and_nnz(A: sp.csr_matrix, owners: np.ndarray, p: int):
    """Per-node owned-row counts and stored-entry counts."""
    row_nnz = np.diff(A.indptr).astype(np.int64)
    rows = np.bincount(owners, minlength=p).astype(np.int64)
    nnz = np.bincount(owners, weights=row_nnz, minlength=p).astype(np.int64)
    return rows, nnz


def per_node_color_work(A: sp.csr_matrix, owners: np.ndarray,
                        colors: np.ndarray, p: int, ncolors: int):
    """Per-colour worst-node mxv work in bytes."""
    row_nnz = np.diff(A.indptr).astype(np.int64)
    key = owners * ncolors + colors
    nnz = np.bincount(key, weights=row_nnz,
                      minlength=p * ncolors).reshape(p, ncolors)
    rows = np.bincount(key, minlength=p * ncolors).reshape(p, ncolors)
    work = nnz * _MXV_NNZ_BYTES + rows * _MXV_ROW_BYTES
    return work.max(axis=0)


def rows_touching_remote(A: sp.csr_matrix,
                         entry_remote: np.ndarray) -> np.ndarray:
    """Per-row boolean: does the row have any entry flagged remote?

    ``entry_remote`` is a boolean over ``A``'s stored entries (aligned
    with ``A.indices``); the caller decides what "remote" means — a
    global owner mismatch, a local halo column, ...
    """
    nrows = A.shape[0]
    if nrows == 0 or A.nnz == 0:
        return np.zeros(nrows, dtype=bool)
    row_nnz = np.diff(A.indptr).astype(np.int64)
    row_of_entry = np.repeat(np.arange(nrows, dtype=np.int64), row_nnz)
    remote_per_row = np.bincount(row_of_entry, weights=entry_remote,
                                 minlength=nrows)
    return remote_per_row > 0


def interior_row_mask(A: sp.csr_matrix, owners: np.ndarray) -> np.ndarray:
    """True for rows whose every referenced column is locally owned.

    Interior rows never read halo values: a node can update them while
    an exchange for its boundary rows is still on the wire.
    """
    owners = np.asarray(owners, dtype=np.int64)
    row_nnz = np.diff(A.indptr).astype(np.int64)
    row_owner = np.repeat(owners, row_nnz)
    return ~rows_touching_remote(A, owners[A.indices] != row_owner)


def per_node_interior_work(
        A: sp.csr_matrix, owners: np.ndarray, p: int,
        interior: Optional[np.ndarray] = None) -> Tuple[float, np.ndarray]:
    """Worst-node and per-node interior mxv work in bytes.

    The interior share of a full SpMV — what a node can compute while
    its posted halo exchange is in flight.  Pass a precomputed
    ``interior_row_mask`` to avoid rescanning the matrix.
    """
    if interior is None:
        interior = interior_row_mask(A, owners)
    row_nnz = np.diff(A.indptr).astype(np.int64)
    rows = np.bincount(owners[interior], minlength=p).astype(np.int64)
    nnz = np.bincount(owners[interior], weights=row_nnz[interior],
                      minlength=p).astype(np.int64)
    per_node = nnz * _MXV_NNZ_BYTES + rows * _MXV_ROW_BYTES
    return float(per_node.max()) if p else 0.0, per_node


def per_node_interior_color_work(
        A: sp.csr_matrix, owners: np.ndarray, colors: np.ndarray, p: int,
        ncolors: int, interior: Optional[np.ndarray] = None) -> np.ndarray:
    """Per-colour worst-node *interior* mxv work in bytes.

    The overlap candidate of the split-phase RBGS pipeline: while colour
    ``c``'s halo slice is in flight, the next colour's interior rows
    update — this is how much compute each colour step offers to hide
    the previous exchange behind.  Pass a precomputed
    ``interior_row_mask`` to avoid rescanning the matrix.
    """
    if interior is None:
        interior = interior_row_mask(A, owners)
    row_nnz = np.diff(A.indptr).astype(np.int64)
    key = (owners * ncolors + colors)[interior]
    nnz = np.bincount(key, weights=row_nnz[interior],
                      minlength=p * ncolors).reshape(p, ncolors)
    rows = np.bincount(key, minlength=p * ncolors).reshape(p, ncolors)
    work = nnz * _MXV_NNZ_BYTES + rows * _MXV_ROW_BYTES
    return work.max(axis=0)
