"""The result record shared by all simulated distributed runs."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.dist.comm import CommTracker
from repro.util.timer import TimerRegistry


@dataclass
class DistRunResult:
    """One simulated distributed CG(+MG) run.

    ``modelled_seconds`` is the BSP-priced execution time; ``timers``
    holds its per-kernel decomposition under the same ``mg/L{i}/...`` /
    ``cg/...`` labels the serial driver uses, so the Figure 4-7
    breakdown code consumes either interchangeably.

    ``comm_seconds`` is the full wire time of the trace (every
    superstep's ``h*g + L``); ``exposed_comm_seconds`` is what remains
    on the critical path after split-phase supersteps hide wire time
    behind overlapped local compute.  Under ``comm_mode="eager"`` the
    two are equal; their gap is the modelled win of the async engine.
    """

    backend: str
    nprocs: int
    n: int
    iterations: int
    residuals: List[float]
    modelled_seconds: float
    timers: TimerRegistry
    tracker: CommTracker
    mg_levels: int
    comm_mode: str = "eager"
    comm_seconds: float = 0.0
    exposed_comm_seconds: float = 0.0
    #: name of the :class:`~repro.dist.bsp.BSPMachine` that priced the
    #: run — ``profile:<name>`` when built via ``BSPMachine.from_profile``,
    #: so reports show whether a measurement or a datasheet preset set
    #: the modelled times
    machine: str = ""
    #: wire-time decomposition under ``full/<key>`` / ``exposed/<key>``
    #: labels — kept apart from ``timers`` so kernel-share reports
    #: still sum to ``modelled_seconds``
    comm_timers: Optional[TimerRegistry] = None
    #: run-provenance manifest (:mod:`repro.obs.manifest`), attached
    #: when observability was enabled during the run; None otherwise
    manifest: Optional[Dict] = None
    #: compact per-run metrics dict (supersteps, comm bytes/seconds by
    #: exposure) attached under the same condition
    metrics: Optional[Dict] = None
    #: True when the run *executed* its node-local SpMV blocks (hybrid
    #: mode, ``execute_local=True``) instead of only pricing them
    executed_local: bool = False
    #: thread-pool width the hybrid calibration ran with (0 = priced
    #: only, no execution)
    node_threads: int = 0
    #: measured serial/threaded ratio of the node-local SpMV pass; it
    #: scaled every superstep's work term (1.0 = no hybrid execution)
    node_speedup: float = 1.0
    #: fault-injection summary (:mod:`repro.dist.faults`) when the run
    #: executed under an active FaultPlan: the plan + seed, every
    #: injected event, recovery/checkpoint/retry counts and the
    #: checkpoint overhead in modelled seconds; None for clean runs
    resilience: Optional[Dict] = None

    @property
    def final_residual(self) -> float:
        return self.residuals[-1] if self.residuals else float("nan")

    @property
    def comm_bytes(self) -> int:
        return self.tracker.total_bytes

    @property
    def syncs(self) -> int:
        return self.tracker.num_syncs

    @property
    def hidden_comm_seconds(self) -> float:
        """Wire time hidden behind overlapped compute (0 when eager)."""
        return self.comm_seconds - self.exposed_comm_seconds

    def mg_level_breakdown(self) -> List[Dict[str, float]]:
        """Per-MG-level shares of modelled time (the Fig. 6/7 quantity)."""
        total = self.modelled_seconds or 1.0
        rows = []
        for i in range(self.mg_levels):
            rbgs = self.timers.total(f"mg/L{i}/rbgs")
            rr = (self.timers.total(f"mg/L{i}/restrict")
                  + self.timers.total(f"mg/L{i}/prolong"))
            rows.append({
                "level": i,
                "rbgs": rbgs / total,
                "restrict_refine": rr / total,
            })
        return rows

    def exposed_comm_breakdown(self) -> List[Dict[str, float]]:
        """Per-MG-level full vs exposed RBGS wire time (seconds).

        The quantity ``bench_halo`` reports: how much of each level's
        smoother communication the split-phase engine hides.
        """
        timers = self.comm_timers or TimerRegistry()
        rows = []
        for i in range(self.mg_levels):
            full = timers.total(f"full/mg/L{i}/rbgs")
            exposed = timers.total(f"exposed/mg/L{i}/rbgs")
            rows.append({
                "level": i,
                "full": full,
                "exposed": exposed,
                "hidden": full - exposed,
            })
        return rows

    def summary(self) -> str:
        final = self.final_residual
        priced = f" priced by {self.machine}" if self.machine else ""
        hybrid = (
            f" [hybrid: {self.node_threads} node threads, "
            f"x{self.node_speedup:.2f} measured]"
            if self.executed_local else ""
        )
        faulted = ""
        if self.resilience is not None:
            r = self.resilience
            faulted = (
                f" [faults: {len(r.get('events', []))} events, "
                f"{r.get('recoveries', 0)} recoveries, "
                f"{r.get('checkpoints', 0)} checkpoints, "
                f"{r.get('exchange_retries', 0)} retries]"
            )
        return (
            f"{self.backend}: p={self.nprocs}, n={self.n}, "
            f"{self.iterations} iterations, final residual {final:.3e}, "
            f"modelled {self.modelled_seconds:.6f}s, "
            f"comm {self.comm_bytes / 1e6:.3f} MB over {self.syncs} "
            f"supersteps [{self.comm_mode}: "
            f"{self.exposed_comm_seconds:.6f}s exposed of "
            f"{self.comm_seconds:.6f}s wire time]{priced}{hybrid}{faulted}"
        )
