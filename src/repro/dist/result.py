"""The result record shared by all simulated distributed runs."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.dist.comm import CommTracker
from repro.util.timer import TimerRegistry


@dataclass
class DistRunResult:
    """One simulated distributed CG(+MG) run.

    ``modelled_seconds`` is the BSP-priced execution time; ``timers``
    holds its per-kernel decomposition under the same ``mg/L{i}/...`` /
    ``cg/...`` labels the serial driver uses, so the Figure 4-7
    breakdown code consumes either interchangeably.
    """

    backend: str
    nprocs: int
    n: int
    iterations: int
    residuals: List[float]
    modelled_seconds: float
    timers: TimerRegistry
    tracker: CommTracker
    mg_levels: int

    @property
    def final_residual(self) -> float:
        return self.residuals[-1] if self.residuals else float("nan")

    @property
    def comm_bytes(self) -> int:
        return self.tracker.total_bytes

    @property
    def syncs(self) -> int:
        return self.tracker.num_syncs

    def mg_level_breakdown(self) -> List[Dict[str, float]]:
        """Per-MG-level shares of modelled time (the Fig. 6/7 quantity)."""
        total = self.modelled_seconds or 1.0
        rows = []
        for i in range(self.mg_levels):
            rbgs = self.timers.total(f"mg/L{i}/rbgs")
            rr = (self.timers.total(f"mg/L{i}/restrict")
                  + self.timers.total(f"mg/L{i}/prolong"))
            rows.append({
                "level": i,
                "rbgs": rbgs / total,
                "restrict_refine": rr / total,
            })
        return rows

    def summary(self) -> str:
        final = self.final_residual
        return (
            f"{self.backend}: p={self.nprocs}, n={self.n}, "
            f"{self.iterations} iterations, final residual {final:.3e}, "
            f"modelled {self.modelled_seconds:.6f}s, "
            f"comm {self.comm_bytes / 1e6:.3f} MB over {self.syncs} supersteps"
        )
