"""Locally-executed distributed kernels with explicit halo exchange.

These executors run the *honest* per-node computation: every node holds
only its own rows, column-compressed to the entries it can actually
reference (owned points plus halo), and remote values arrive through a
:class:`~repro.dist.comm.CommTracker` exchange.  The crucial design
property — asserted bit-for-bit by the tests — is losslessness: the
distributed SpMV equals the global ``A @ x`` and the distributed RBGS
sweep equals the shared-memory :class:`~repro.ref.sgs.RefRBGS`.

Bit-equality holds because each local matrix keeps its row entries in
ascending *global* column order (the local column renumbering is
monotone), so the local kernel accumulates partial products in exactly
the order the global kernel uses.  The local kernels themselves run on
:mod:`repro.graphblas.substrate` providers — per-node format selection
(or a global ``REPRO_SUBSTRATE`` force, or the ``substrate=`` argument)
applies to the distributed executors exactly as it does to the serial
``Matrix``, and every provider honours the same accumulation-order
contract, so the executors are substrate-agnostic by construction.

:class:`LocalRBGSExecutor` implements the paper's §IV per-colour
exchange protocol: after the rows of colour ``c`` update, only the halo
points *of colour c* are exchanged (one superstep per colour).  The
colour classes partition the halo, so a full sweep moves exactly one
full halo — in eight latency-separated slices.

Split-phase mode (``comm_mode="overlap"``, or the ``REPRO_OVERLAP``
force) runs the same exchanges asynchronously: each node's rows are
split into **interior** rows (referencing owned points only — safe to
update while remote values are still in flight) and **boundary** rows
(must wait).  The SpMV posts its halo, updates interior rows, waits,
then updates boundary rows; the RBGS sweep pipelines colour ``c``'s
exchange behind colour ``c+1``'s interior update.  Because rows are
updated disjointly with unchanged per-row accumulation order, both
schedules remain bit-identical to the eager mode and to shared memory —
the split changes *when* a row updates, never *what* it computes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.dist.comm import CommTracker, InFlightExchange, resolve_comm_mode
from repro.dist.cost import mxv_bytes, rows_touching_remote
from repro.dist.partition import halo_for_owners
from repro.graphblas import substrate as substrate_mod
from repro.graphblas.substrate.base import KernelProvider
from repro.util.errors import DimensionMismatch, InvalidValue


@dataclass
class LocalNode:
    """One simulated node: its rows and column-compressed local matrix."""

    rank: int
    rows: np.ndarray            # global row indices owned by this node
    cols: np.ndarray            # global column indices visible locally
    local_matrix: sp.csr_matrix  # rows x cols, ascending global col order
    substrate: str               # resolved provider name for this node
    _provider: Optional[KernelProvider] = field(
        default=None, init=False, repr=False, compare=False)

    @property
    def provider(self) -> KernelProvider:
        """Substrate kernel over ``local_matrix``, built on first use
        (the RBGS executor computes with per-colour blocks only and
        never needs the whole-matrix structure)."""
        if self._provider is None:
            self._provider = substrate_mod.get(self.substrate)(
                self.local_matrix)
        return self._provider


@dataclass
class _SplitRows:
    """Interior/boundary split of a set of local rows (overlap mode)."""

    interior_sel: np.ndarray      # local row indices, no remote columns
    boundary_sel: np.ndarray      # local row indices touching the halo
    interior_rows: np.ndarray     # global row ids of interior_sel
    boundary_rows: np.ndarray     # global row ids of boundary_sel
    interior_block: KernelProvider
    boundary_block: KernelProvider
    interior_work: float          # bytes the interior update streams


def _canonical_csr(A: sp.spmatrix) -> sp.csr_matrix:
    """CSR with sorted row indices, never mutating the caller's matrix."""
    csr = A.tocsr()
    if not csr.has_sorted_indices:
        csr = csr.copy()
        csr.sort_indices()
    return csr


def _split_rows(local: sp.csr_matrix, rows: np.ndarray, sel: np.ndarray,
                touches_remote: np.ndarray,
                substrate: Optional[str]) -> _SplitRows:
    """Split ``sel`` (local row indices) by halo dependence and build
    substrate blocks for each half.  Row slicing preserves per-row
    column order, so each half accumulates exactly as the whole did."""
    boundary = touches_remote[sel]
    interior_sel = sel[~boundary]
    boundary_sel = sel[boundary]
    sub_int = local[interior_sel, :]
    return _SplitRows(
        interior_sel=interior_sel,
        boundary_sel=boundary_sel,
        interior_rows=rows[interior_sel],
        boundary_rows=rows[boundary_sel],
        interior_block=substrate_mod.make(sub_int, substrate),
        boundary_block=substrate_mod.make(local[boundary_sel, :], substrate),
        interior_work=mxv_bytes(sub_int.nnz, interior_sel.size),
    )


class LocalSpmvExecutor:
    """Distributed SpMV: per-node local matrices + one halo superstep.

    In overlap mode the halo is *posted*, interior rows compute while
    it is in flight, and boundary rows follow the wait — bit-identical
    output, split-phase superstep on the tracker.
    """

    def __init__(self, A: sp.spmatrix, owners: np.ndarray, nprocs: int,
                 tracker: Optional[CommTracker] = None,
                 substrate: Optional[str] = None,
                 comm_mode: Optional[str] = None):
        A = _canonical_csr(A)
        owners = np.asarray(owners, dtype=np.int64)
        if owners.shape[0] != A.shape[0]:
            raise DimensionMismatch(
                f"owners size {owners.shape[0]} != matrix rows {A.shape[0]}"
            )
        if owners.size and (owners.min() < 0 or owners.max() >= nprocs):
            raise InvalidValue(
                f"owner ranks must lie in [0, {nprocs})"
            )
        self.n = A.shape[0]
        self.nprocs = nprocs
        self.owners = owners
        self.tracker = tracker
        self.comm_mode = resolve_comm_mode(comm_mode)
        self.overlap = self.comm_mode == "overlap"
        self.halo: Dict[Tuple[int, int], np.ndarray] = halo_for_owners(
            A.indptr, A.indices, owners, nprocs
        )
        self.nodes: List[LocalNode] = []
        self._remote_rows: List[np.ndarray] = []   # per node: halo mask
        for k in range(nprocs):
            rows = np.flatnonzero(owners == k)
            block = A[rows, :]
            # columns this node can see: referenced ones, in ascending
            # global order so the compression map is monotone.
            cols = np.unique(block.indices)
            local = block[:, cols]
            local.sort_indices()
            # each node picks its substrate for its own local block
            # (explicit > REPRO_SUBSTRATE > per-matrix heuristic);
            # resolved now, built lazily on first use
            self.nodes.append(LocalNode(
                rank=k, rows=rows, cols=cols, local_matrix=local,
                substrate=substrate_mod.resolve(local, substrate),
            ))
            col_is_remote = owners[cols] != k
            self._remote_rows.append(
                rows_touching_remote(local, col_is_remote[local.indices]))
        self.substrate = substrate
        self._splits: Optional[List[_SplitRows]] = None

    def _node_splits(self) -> List[_SplitRows]:
        """Per-node interior/boundary structures, built on first use."""
        if self._splits is None:
            self._splits = [
                _split_rows(
                    node.local_matrix, node.rows,
                    np.arange(node.rows.size, dtype=np.int64),
                    self._remote_rows[k], self.substrate,
                )
                for k, node in enumerate(self.nodes)
            ]
        return self._splits

    def halo_bytes_per_exchange(self) -> int:
        """Bytes one full halo exchange moves (8 bytes per point)."""
        return sum(idxs.size * 8 for idxs in self.halo.values())

    def interior_work_bytes(self) -> float:
        """Worst-node interior work — what a posted halo hides behind."""
        return max((s.interior_work for s in self._node_splits()),
                   default=0.0)

    def _record_sends(self, label: str) -> None:
        for (src, dst), idxs in self.halo.items():
            self.tracker.send(src, dst, int(idxs.size) * 8, label=label)

    def _exchange(self, label: str = "halo") -> None:
        """Record one full halo exchange as a single eager superstep."""
        if self.tracker is None:
            return
        self._record_sends(label)
        self.tracker.sync(label=label)

    def _post_exchange(self, label: str = "halo") -> Optional[InFlightExchange]:
        if self.tracker is None:
            return None
        self._record_sends(label)
        return self.tracker.post(label=label)

    def spmv(self, x: np.ndarray) -> np.ndarray:
        """``A @ x`` computed node-locally after one halo exchange."""
        x = np.asarray(x)
        if x.shape[0] != self.n:
            raise DimensionMismatch(
                f"vector size {x.shape[0]} != matrix size {self.n}"
            )
        y = np.empty(self.n, dtype=np.result_type(x.dtype, np.float64))
        if not self.overlap:
            self._exchange()
            for node in self.nodes:
                y[node.rows] = node.provider.mxv(x[node.cols])
            return y
        # split-phase: post, update interior rows in flight, wait,
        # then update the boundary rows that needed the halo
        splits = self._node_splits()
        handle = self._post_exchange()
        for node, split in zip(self.nodes, splits):
            if split.interior_rows.size:
                y[split.interior_rows] = split.interior_block.mxv(
                    x[node.cols])
        if handle is not None:
            handle.overlap(self.interior_work_bytes())
            self.tracker.wait(handle)
        for node, split in zip(self.nodes, splits):
            if split.boundary_rows.size:
                y[split.boundary_rows] = split.boundary_block.mxv(
                    x[node.cols])
        return y


class LocalRBGSExecutor:
    """Distributed multi-colour Gauss-Seidel with per-colour halos.

    In overlap mode the sweep pipelines: colour ``c``'s halo slice is
    posted, colour ``c+1``'s interior rows update while it flies, the
    wait lands, and colour ``c+1``'s boundary rows follow — the async
    protocol of the ROADMAP's split-superstep item, still bit-identical
    to :class:`~repro.ref.sgs.RefRBGS`.

    Bit-identity of the pipelined schedule relies on the colouring
    contract RBGS itself needs: no edges *within* a colour, so the
    interior/boundary write order inside one colour step is
    unobservable.  (An invalid colouring makes eager RBGS
    order-dependent too.)
    """

    def __init__(self, A: sp.spmatrix, owners: np.ndarray, nprocs: int,
                 colors: np.ndarray,
                 tracker: Optional[CommTracker] = None,
                 substrate: Optional[str] = None,
                 comm_mode: Optional[str] = None):
        A = _canonical_csr(A)
        colors = np.asarray(colors, dtype=np.int64)
        if colors.shape[0] != A.shape[0]:
            raise DimensionMismatch(
                f"colour array size {colors.shape[0]} != rows {A.shape[0]}"
            )
        diag = A.diagonal()
        if (diag == 0).any():
            raise InvalidValue("RBGS requires a nonzero diagonal")
        self.base = LocalSpmvExecutor(A, owners, nprocs, tracker=tracker,
                                      substrate=substrate,
                                      comm_mode=comm_mode)
        self.n = A.shape[0]
        self.colors = colors
        self.ncolors = int(colors.max()) + 1 if colors.size else 0
        self.tracker = tracker
        self.diag = diag
        self.substrate = substrate
        self.comm_mode = self.base.comm_mode
        self.overlap = self.base.overlap
        # per-colour slice of each node's rows: colour-row indices into
        # the node's local row block (a row submatrix keeps column order,
        # so the provider's accumulation contract carries over).  Each
        # mode builds only the blocks its sweep actually runs: whole
        # colour blocks for eager, interior/boundary halves for overlap.
        self._color_rows: List[List[np.ndarray]] = []      # [node][color]
        self._color_blocks: List[List[KernelProvider]] = []
        self._color_splits: List[List[_SplitRows]] = []    # overlap mode
        for k, node in enumerate(self.base.nodes):
            row_colors = colors[node.rows]
            per_color_rows, per_color_blocks, per_color_splits = [], [], []
            for c in range(self.ncolors):
                sel = np.flatnonzero(row_colors == c)
                per_color_rows.append(node.rows[sel])
                if self.overlap:
                    per_color_splits.append(_split_rows(
                        node.local_matrix, node.rows, sel,
                        self.base._remote_rows[k], substrate,
                    ))
                else:
                    per_color_blocks.append(substrate_mod.make(
                        node.local_matrix[sel, :], substrate))
            self._color_rows.append(per_color_rows)
            self._color_blocks.append(per_color_blocks)
            self._color_splits.append(per_color_splits)
        # worst-node interior work per colour: what the in-flight
        # previous exchange hides behind
        self._interior_work = [
            max((self._color_splits[k][c].interior_work
                 for k in range(nprocs)), default=0.0)
            for c in range(self.ncolors)
        ] if self.overlap else []
        # per-colour halo: the colour classes partition the halo points
        self._color_halo: List[Dict[Tuple[int, int], int]] = []
        for c in range(self.ncolors):
            per: Dict[Tuple[int, int], int] = {}
            for pair, idxs in self.base.halo.items():
                npoints = int((colors[idxs] == c).sum())
                if npoints:
                    per[pair] = npoints * 8
            self._color_halo.append(per)

    @property
    def color_halo_bytes(self) -> List[Dict[Tuple[int, int], int]]:
        return self._color_halo

    def _record_color_sends(self, c: int) -> None:
        for (src, dst), nbytes in self._color_halo[c].items():
            self.tracker.send(src, dst, nbytes, label="rbgs_halo")

    def _exchange_color(self, c: int) -> None:
        """One superstep moving only the freshly-updated colour's halo."""
        if self.tracker is None:
            return
        self._record_color_sends(c)
        self.tracker.sync(label="rbgs_halo")

    def _post_exchange_color(self, c: int) -> Optional[InFlightExchange]:
        if self.tracker is None:
            return None
        self._record_color_sends(c)
        return self.tracker.post(label="rbgs_halo")

    def _update_color(self, c: int, z: np.ndarray, r: np.ndarray) -> None:
        for k in range(self.base.nprocs):
            rows = self._color_rows[k][c]
            if rows.size == 0:
                continue
            node = self.base.nodes[k]
            s = self._color_blocks[k][c].mxv(z[node.cols])
            d = self.diag[rows]
            z[rows] = (r[rows] - s + z[rows] * d) / d

    def _update_color_part(self, c: int, z: np.ndarray, r: np.ndarray,
                           interior: bool) -> None:
        """Update one half of a colour's rows (disjoint from the other
        half, per-row arithmetic unchanged — hence bit-identical)."""
        for k in range(self.base.nprocs):
            split = self._color_splits[k][c]
            rows = split.interior_rows if interior else split.boundary_rows
            if rows.size == 0:
                continue
            node = self.base.nodes[k]
            block = split.interior_block if interior else split.boundary_block
            s = block.mxv(z[node.cols])
            d = self.diag[rows]
            z[rows] = (r[rows] - s + z[rows] * d) / d

    def _sweep(self, z: np.ndarray, r: np.ndarray, order) -> None:
        self._check(z, r)
        if not self.overlap:
            for c in order:
                self._update_color(c, z, r)
                self._exchange_color(c)
            return
        # split-phase pipeline: colour c's exchange flies while colour
        # c+1's interior rows update; its wait gates only the boundary
        pending: Optional[InFlightExchange] = None
        for c in order:
            self._update_color_part(c, z, r, interior=True)
            if pending is not None:
                pending.overlap(self._interior_work[c])
                self.tracker.wait(pending)
            self._update_color_part(c, z, r, interior=False)
            pending = self._post_exchange_color(c)
        if pending is not None:
            self.tracker.wait(pending)

    def sweep(self, z: np.ndarray, r: np.ndarray) -> np.ndarray:
        """One forward sweep (colours in increasing order)."""
        self._sweep(z, r, range(self.ncolors))
        return z

    def backward(self, z: np.ndarray, r: np.ndarray) -> np.ndarray:
        """One backward sweep (colours in decreasing order)."""
        self._sweep(z, r, range(self.ncolors - 1, -1, -1))
        return z

    def smooth(self, z: np.ndarray, r: np.ndarray,
               sweeps: int = 1) -> np.ndarray:
        """``sweeps`` symmetric (forward + backward) passes."""
        for _ in range(sweeps):
            self.sweep(z, r)
            self.backward(z, r)
        return z

    def _check(self, z: np.ndarray, r: np.ndarray) -> None:
        if z.shape[0] != self.n or r.shape[0] != self.n:
            raise DimensionMismatch(
                f"vector sizes ({z.shape[0]}, {r.shape[0]}) != {self.n}"
            )
