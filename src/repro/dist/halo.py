"""Locally-executed distributed kernels with explicit halo exchange.

These executors run the *honest* per-node computation: every node holds
only its own rows, column-compressed to the entries it can actually
reference (owned points plus halo), and remote values arrive through a
:class:`~repro.dist.comm.CommTracker` exchange.  The crucial design
property — asserted bit-for-bit by the tests — is losslessness: the
distributed SpMV equals the global ``A @ x`` and the distributed RBGS
sweep equals the shared-memory :class:`~repro.ref.sgs.RefRBGS`.

Bit-equality holds because each local matrix keeps its row entries in
ascending *global* column order (the local column renumbering is
monotone), so the local kernel accumulates partial products in exactly
the order the global kernel uses.  The local kernels themselves run on
:mod:`repro.graphblas.substrate` providers — per-node format selection
(or a global ``REPRO_SUBSTRATE`` force, or the ``substrate=`` argument)
applies to the distributed executors exactly as it does to the serial
``Matrix``, and every provider honours the same accumulation-order
contract, so the executors are substrate-agnostic by construction.

:class:`LocalRBGSExecutor` implements the paper's §IV per-colour
exchange protocol: after the rows of colour ``c`` update, only the halo
points *of colour c* are exchanged (one superstep per colour).  The
colour classes partition the halo, so a full sweep moves exactly one
full halo — in eight latency-separated slices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.dist.comm import CommTracker
from repro.dist.partition import halo_for_owners
from repro.graphblas import substrate as substrate_mod
from repro.graphblas.substrate.base import KernelProvider
from repro.util.errors import DimensionMismatch, InvalidValue


@dataclass
class LocalNode:
    """One simulated node: its rows and column-compressed local matrix."""

    rank: int
    rows: np.ndarray            # global row indices owned by this node
    cols: np.ndarray            # global column indices visible locally
    local_matrix: sp.csr_matrix  # rows x cols, ascending global col order
    substrate: str               # resolved provider name for this node
    _provider: Optional[KernelProvider] = field(
        default=None, init=False, repr=False, compare=False)

    @property
    def provider(self) -> KernelProvider:
        """Substrate kernel over ``local_matrix``, built on first use
        (the RBGS executor computes with per-colour blocks only and
        never needs the whole-matrix structure)."""
        if self._provider is None:
            self._provider = substrate_mod.get(self.substrate)(
                self.local_matrix)
        return self._provider


def _canonical_csr(A: sp.spmatrix) -> sp.csr_matrix:
    """CSR with sorted row indices, never mutating the caller's matrix."""
    csr = A.tocsr()
    if not csr.has_sorted_indices:
        csr = csr.copy()
        csr.sort_indices()
    return csr


class LocalSpmvExecutor:
    """Distributed SpMV: per-node local matrices + one halo superstep."""

    def __init__(self, A: sp.spmatrix, owners: np.ndarray, nprocs: int,
                 tracker: Optional[CommTracker] = None,
                 substrate: Optional[str] = None):
        A = _canonical_csr(A)
        owners = np.asarray(owners, dtype=np.int64)
        if owners.shape[0] != A.shape[0]:
            raise DimensionMismatch(
                f"owners size {owners.shape[0]} != matrix rows {A.shape[0]}"
            )
        if owners.size and (owners.min() < 0 or owners.max() >= nprocs):
            raise InvalidValue(
                f"owner ranks must lie in [0, {nprocs})"
            )
        self.n = A.shape[0]
        self.nprocs = nprocs
        self.owners = owners
        self.tracker = tracker
        self.halo: Dict[Tuple[int, int], np.ndarray] = halo_for_owners(
            A.indptr, A.indices, owners, nprocs
        )
        self.nodes: List[LocalNode] = []
        for k in range(nprocs):
            rows = np.flatnonzero(owners == k)
            block = A[rows, :]
            # columns this node can see: referenced ones, in ascending
            # global order so the compression map is monotone.
            cols = np.unique(block.indices)
            local = block[:, cols]
            local.sort_indices()
            # each node picks its substrate for its own local block
            # (explicit > REPRO_SUBSTRATE > per-matrix heuristic);
            # resolved now, built lazily on first use
            self.nodes.append(LocalNode(
                rank=k, rows=rows, cols=cols, local_matrix=local,
                substrate=substrate_mod.resolve(local, substrate),
            ))
        self.substrate = substrate

    def halo_bytes_per_exchange(self) -> int:
        """Bytes one full halo exchange moves (8 bytes per point)."""
        return sum(idxs.size * 8 for idxs in self.halo.values())

    def _exchange(self, label: str = "halo") -> None:
        """Record one full halo exchange as a single superstep."""
        if self.tracker is None:
            return
        for (src, dst), idxs in self.halo.items():
            self.tracker.send(src, dst, int(idxs.size) * 8, label=label)
        self.tracker.sync(label=label)

    def spmv(self, x: np.ndarray) -> np.ndarray:
        """``A @ x`` computed node-locally after one halo exchange."""
        x = np.asarray(x)
        if x.shape[0] != self.n:
            raise DimensionMismatch(
                f"vector size {x.shape[0]} != matrix size {self.n}"
            )
        self._exchange()
        y = np.empty(self.n, dtype=np.result_type(x.dtype, np.float64))
        for node in self.nodes:
            y[node.rows] = node.provider.mxv(x[node.cols])
        return y


class LocalRBGSExecutor:
    """Distributed multi-colour Gauss-Seidel with per-colour halos."""

    def __init__(self, A: sp.spmatrix, owners: np.ndarray, nprocs: int,
                 colors: np.ndarray,
                 tracker: Optional[CommTracker] = None,
                 substrate: Optional[str] = None):
        A = _canonical_csr(A)
        colors = np.asarray(colors, dtype=np.int64)
        if colors.shape[0] != A.shape[0]:
            raise DimensionMismatch(
                f"colour array size {colors.shape[0]} != rows {A.shape[0]}"
            )
        diag = A.diagonal()
        if (diag == 0).any():
            raise InvalidValue("RBGS requires a nonzero diagonal")
        self.base = LocalSpmvExecutor(A, owners, nprocs, tracker=tracker,
                                      substrate=substrate)
        self.n = A.shape[0]
        self.colors = colors
        self.ncolors = int(colors.max()) + 1 if colors.size else 0
        self.tracker = tracker
        self.diag = diag
        self.substrate = substrate
        # per-colour slice of each node's rows: colour-row indices into
        # the node's local row block (a row submatrix keeps column order,
        # so the provider's accumulation contract carries over).
        self._color_rows: List[List[np.ndarray]] = []      # [node][color]
        self._color_blocks: List[List[KernelProvider]] = []
        for node in self.base.nodes:
            row_colors = colors[node.rows]
            per_color_rows, per_color_blocks = [], []
            for c in range(self.ncolors):
                sel = np.flatnonzero(row_colors == c)
                per_color_rows.append(node.rows[sel])
                per_color_blocks.append(
                    substrate_mod.make(node.local_matrix[sel, :], substrate)
                )
            self._color_rows.append(per_color_rows)
            self._color_blocks.append(per_color_blocks)
        # per-colour halo: the colour classes partition the halo points
        self._color_halo: List[Dict[Tuple[int, int], int]] = []
        for c in range(self.ncolors):
            per: Dict[Tuple[int, int], int] = {}
            for pair, idxs in self.base.halo.items():
                npoints = int((colors[idxs] == c).sum())
                if npoints:
                    per[pair] = npoints * 8
            self._color_halo.append(per)

    @property
    def color_halo_bytes(self) -> List[Dict[Tuple[int, int], int]]:
        return self._color_halo

    def _exchange_color(self, c: int) -> None:
        """One superstep moving only the freshly-updated colour's halo."""
        if self.tracker is None:
            return
        for (src, dst), nbytes in self._color_halo[c].items():
            self.tracker.send(src, dst, nbytes, label="rbgs_halo")
        self.tracker.sync(label="rbgs_halo")

    def _update_color(self, c: int, z: np.ndarray, r: np.ndarray) -> None:
        for k in range(self.base.nprocs):
            rows = self._color_rows[k][c]
            if rows.size == 0:
                continue
            node = self.base.nodes[k]
            s = self._color_blocks[k][c].mxv(z[node.cols])
            d = self.diag[rows]
            z[rows] = (r[rows] - s + z[rows] * d) / d

    def _sweep(self, z: np.ndarray, r: np.ndarray, order) -> None:
        self._check(z, r)
        for c in order:
            self._update_color(c, z, r)
            self._exchange_color(c)

    def sweep(self, z: np.ndarray, r: np.ndarray) -> np.ndarray:
        """One forward sweep (colours in increasing order)."""
        self._sweep(z, r, range(self.ncolors))
        return z

    def backward(self, z: np.ndarray, r: np.ndarray) -> np.ndarray:
        """One backward sweep (colours in decreasing order)."""
        self._sweep(z, r, range(self.ncolors - 1, -1, -1))
        return z

    def smooth(self, z: np.ndarray, r: np.ndarray,
               sweeps: int = 1) -> np.ndarray:
        """``sweeps`` symmetric (forward + backward) passes."""
        for _ in range(sweeps):
            self.sweep(z, r)
            self.backward(z, r)
        return z

    def _check(self, z: np.ndarray, r: np.ndarray) -> None:
        if z.shape[0] != self.n or r.shape[0] != self.n:
            raise DimensionMismatch(
                f"vector sizes ({z.shape[0]}, {r.shape[0]}) != {self.n}"
            )
