"""Matrix/vector distributions for the simulated backends.

Four schemes, matching the paper's §VII-B design space:

* :class:`Block1D` — contiguous balanced row blocks;
* :class:`BlockCyclic1D` — the locality-free 1D block-cyclic
  distribution ALP's opaque containers force today;
* :class:`Grid3DPartition` — geometry-aware axis-aligned 3D boxes over
  the problem grid (what the reference HPCG knows and GraphBLAS hides);
* :func:`bfs_partition` — a black-box structural partition grown by
  breadth-first traversal (the paper's "solution iv": recover locality
  from the sparsity pattern alone).

:func:`halo_for_owners` derives, for any ownership vector, exactly
which remote vector entries every node must receive before a local
``A x`` — the halo the executors in :mod:`repro.dist.halo` exchange.

Partition construction and halo derivation run inside
``dist/partition/*`` observability spans (carrying ``n``/``p`` and,
for halos, the derived remote-entry count), so setup cost is
attributable in trace diffs and flamegraphs next to the solve it
feeds.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro import obs
from repro.grid import Grid3D
from repro.util.errors import InvalidValue


class Block1D:
    """``n`` indices in ``p`` contiguous blocks, sizes differing by <= 1."""

    def __init__(self, n: int, p: int):
        if p < 1:
            raise InvalidValue(f"need at least one block, got {p}")
        if n < 0:
            raise InvalidValue(f"negative index space: {n}")
        self.n = n
        self.p = p
        base, extra = divmod(n, p)
        sizes = np.full(p, base, dtype=np.int64)
        sizes[:extra] += 1
        self._sizes = sizes
        self._starts = np.concatenate(([0], np.cumsum(sizes)))

    def local_size(self, k: int) -> int:
        return int(self._sizes[k])

    def local_indices(self, k: int) -> np.ndarray:
        return np.arange(self._starts[k], self._starts[k + 1], dtype=np.int64)

    def owner(self, indices) -> np.ndarray:
        indices = np.asarray(indices, dtype=np.int64)
        return np.searchsorted(self._starts, indices, side="right") - 1


class BlockCyclic1D:
    """Blocks of ``block`` consecutive indices dealt round-robin to nodes."""

    def __init__(self, n: int, p: int, block: int = 1):
        if p < 1:
            raise InvalidValue(f"need at least one node, got {p}")
        if block < 1:
            raise InvalidValue(f"block size must be >= 1, got {block}")
        self.n = n
        self.p = p
        self.block = block

    def owner(self, indices) -> np.ndarray:
        indices = np.asarray(indices, dtype=np.int64)
        return (indices // self.block) % self.p

    def local_indices(self, k: int) -> np.ndarray:
        idx = np.arange(self.n, dtype=np.int64)
        return idx[self.owner(idx) == k]

    def local_size(self, k: int) -> int:
        full_rounds, rem = divmod(self.n, self.p * self.block)
        size = full_rounds * self.block
        # the trailing partial round deals whole blocks in rank order
        start = k * self.block
        size += max(0, min(rem - start, self.block))
        return size


def factor3(p: int) -> Tuple[int, int, int]:
    """Factor ``p`` into ``px <= py <= pz`` with ``px*py*pz == p``.

    Chooses the most cube-like process grid: the largest divisor of
    ``p`` not exceeding its cube root, then the largest divisor of the
    quotient not exceeding its square root.
    """
    if p < 1:
        raise InvalidValue(f"need at least one process, got {p}")
    px = 1
    for d in range(1, int(round(p ** (1.0 / 3.0))) + 1):
        if p % d == 0 and d * d * d <= p:
            px = d
    rest = p // px
    py = 1
    for d in range(1, int(round(rest ** 0.5)) + 1):
        if rest % d == 0 and d * d <= rest:
            py = d
    px, py, pz = sorted((px, py, rest // py))
    return px, py, pz


def largest_square(p: int) -> int:
    """The largest perfect square not exceeding ``p``.

    Fault recovery uses this to respawn the 2D block backend on a
    survivor set: a ``√p x √p`` process grid needs a square node count,
    so after losing nodes the run continues on the largest square
    subset of the survivors.
    """
    if p < 1:
        raise InvalidValue(f"need at least one process, got {p}")
    q = int(p ** 0.5)
    while q * q > p:
        q -= 1
    while (q + 1) * (q + 1) <= p:
        q += 1
    return q * q


class Grid3DPartition:
    """Axis-aligned boxes over a :class:`Grid3D`.

    ``shape`` is the process grid ``(px, py, pz)`` (defaults to
    :func:`factor3`); every grid dimension must divide evenly so each
    node owns an identical ``sx x sy x sz`` box — the reference HPCG's
    constraint, which keeps the computation perfectly balanced.
    """

    def __init__(self, grid: Grid3D, p: int,
                 shape: Optional[Tuple[int, int, int]] = None):
        if p < 1:
            raise InvalidValue(f"need at least one node, got {p}")
        if shape is None:
            shape = factor3(p)
        px, py, pz = shape
        if px * py * pz != p:
            raise InvalidValue(
                f"process grid {shape} has {px * py * pz} nodes, expected {p}"
            )
        if grid.nx % px or grid.ny % py or grid.nz % pz:
            raise InvalidValue(
                f"grid {grid.dims} not divisible by process grid {shape}"
            )
        with obs.span("dist/partition/grid3d", "dist",
                      {"n": grid.npoints, "p": p,
                       "shape": f"{px}x{py}x{pz}"}):
            self.grid = grid
            self.p = p
            self.shape = (px, py, pz)
            self.local_dims = (grid.nx // px, grid.ny // py, grid.nz // pz)

    def owner(self, indices) -> np.ndarray:
        ix, iy, iz = self.grid.coords(np.asarray(indices, dtype=np.int64))
        sx, sy, sz = self.local_dims
        px, py, _pz = self.shape
        bx, by, bz = ix // sx, iy // sy, iz // sz
        return (bz * py + by) * px + bx

    def local_size(self, k: int) -> int:
        sx, sy, sz = self.local_dims
        return sx * sy * sz

    def local_indices(self, k: int) -> np.ndarray:
        owners = self.owner(np.arange(self.grid.npoints, dtype=np.int64))
        return np.flatnonzero(owners == k)

    def halo_surface_points(self) -> int:
        """Points on the six faces' adjacent planes: 2(sx sy + sy sz + sx sz)."""
        sx, sy, sz = self.local_dims
        return 2 * (sx * sy + sy * sz + sx * sz)

    def halo_exchanges(self, indptr: np.ndarray,
                       indices: np.ndarray) -> Dict[Tuple[int, int], np.ndarray]:
        """Per ``(src, dst)`` pair, the global columns ``dst`` receives."""
        owners = self.owner(np.arange(self.grid.npoints, dtype=np.int64))
        return halo_for_owners(indptr, indices, owners, self.p)


def halo_for_owners(
    indptr: np.ndarray,
    indices: np.ndarray,
    owners: np.ndarray,
    p: int,
) -> Dict[Tuple[int, int], np.ndarray]:
    """The halo induced by an arbitrary ownership vector.

    For every node ``dst``, the remote columns referenced by the rows it
    owns, grouped by the owning node ``src``; each value array is sorted
    by global index.  Serial ownership yields ``{}``.
    """
    owners = np.asarray(owners, dtype=np.int64)
    n = owners.shape[0]
    with obs.span("dist/partition/halo", "dist", {"n": n, "p": p}) as span:
        row_nnz = np.diff(indptr).astype(np.int64)
        dst = np.repeat(owners, row_nnz)
        cols = np.asarray(indices, dtype=np.int64)
        remote = owners[cols] != dst
        if not remote.any():
            if span is not None:
                span.set(remote_entries=0, pairs=0)
            return {}
        # unique (dst, column) pairs; the column's owner is the source
        key = dst[remote] * n + cols[remote]
        uniq = np.unique(key)
        u_dst = uniq // n
        u_col = uniq % n
        u_src = owners[u_col]
        out: Dict[Tuple[int, int], np.ndarray] = {}
        pair = u_src * p + u_dst
        order = np.argsort(pair, kind="stable")
        pair_sorted = pair[order]
        col_sorted = u_col[order]
        boundaries = np.flatnonzero(np.diff(pair_sorted)) + 1
        starts = np.concatenate(([0], boundaries))
        ends = np.concatenate((boundaries, [pair_sorted.size]))
        for s, e in zip(starts, ends):
            src = int(pair_sorted[s]) // p
            dst_k = int(pair_sorted[s]) % p
            out[(src, dst_k)] = np.sort(col_sorted[s:e])
        if span is not None:
            span.set(remote_entries=int(uniq.size), pairs=len(out))
        return out


def bfs_partition(indptr: np.ndarray, indices: np.ndarray,
                  n: int, p: int) -> np.ndarray:
    """Black-box locality partition: BFS growth into balanced chunks.

    Visits the structure breadth-first (restarting on disconnected
    components) and assigns consecutive visit ranks to nodes in
    balanced contiguous chunks, so each node owns a connected, roughly
    spherical region — recovering most of the geometric partition's
    locality from the sparsity pattern alone (paper §VII-B iv).
    """
    if p < 1:
        raise InvalidValue(f"need at least one node, got {p}")
    with obs.span("dist/partition/bfs", "dist", {"n": n, "p": p}):
        visit_rank = np.full(n, -1, dtype=np.int64)
        seen = np.zeros(n, dtype=bool)
        order = np.empty(n, dtype=np.int64)
        count = 0
        for seed in range(n):
            if seen[seed]:
                continue
            queue = [seed]
            seen[seed] = True
            while queue:
                next_queue = []
                for i in queue:
                    order[count] = i
                    count += 1
                    for j in indices[indptr[i]:indptr[i + 1]]:
                        if not seen[j]:
                            seen[j] = True
                            next_queue.append(int(j))
                queue = next_queue
        visit_rank[order] = np.arange(n, dtype=np.int64)
        chunks = Block1D(n, p)
        return chunks.owner(visit_rank)
