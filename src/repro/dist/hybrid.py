"""The hybrid ALP backend: 1D block-cyclic + allgather-per-mxv.

This simulates what distributed ALP/GraphBLAS does today (paper §VI):
containers are opaque, so the runtime falls back to a locality-free 1D
block-cyclic distribution and must replicate the *entire* input vector
before every ``mxv`` — an allgather of ``n/p`` values from each node to
every other, i.e. Θ(n) per-node traffic per superstep (the ALP column
of Table I).  Every masked mxv of the RBGS smoother pays the same
price, which is what kills weak scaling in Figure 3.

Split-phase mode is supported but nearly powerless here, and that is
the point: an allgather can only hide behind rows referencing *no*
remote entry, and the block-cyclic distribution leaves essentially no
such interior rows — opaque containers forfeit the overlap the
reference backend's surface halos enjoy.  The honest interior share is
computed from the actual owners, so the modelled win is whatever the
distribution truly offers (≈ zero at block=1).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.dist.bsp import BSPMachine
from repro.dist.cost import (
    interior_row_mask,
    per_node_interior_color_work,
    per_node_interior_work,
)
from repro.dist.partition import BlockCyclic1D
from repro.dist.simulate import (
    SimLevel,
    SimulatedDistRun,
    _MXV_NNZ_BYTES,
    _MXV_ROW_BYTES,
    _RESTRICT_MXV_BYTES,
    per_node_color_work,
    per_node_rows_and_nnz,
)
from repro.hpcg.problem import Problem


def _allgather_matrix(part) -> np.ndarray:
    """Per-(src, dst) bytes of one vector allgather under ``part``.

    ``m[src, dst]`` is what ``src`` ships to ``dst`` when the full
    vector is replicated: its own share (8 bytes per value) to every
    other node, nothing to itself.
    """
    p = part.p
    m = np.zeros((p, p), dtype=np.int64)
    for src in range(p):
        m[src, :] = part.local_size(src) * 8
        m[src, src] = 0
    return m


class HybridALPRun(SimulatedDistRun):
    """Simulated distributed HPCG over 1D block-cyclic ALP containers."""

    backend = "alp-1d"

    def __init__(self, problem: Problem, nprocs: int, mg_levels: int = 4,
                 machine: Optional[BSPMachine] = None, block: int = 1,
                 comm_mode: Optional[str] = None,
                 overlap_efficiency: Optional[float] = None,
                 agglomerate_below: int = 0,
                 execute_local: bool = False,
                 node_threads: Optional[int] = None,
                 faults=None):
        self._block = block
        super().__init__(problem, nprocs, mg_levels, machine,
                         comm_mode=comm_mode,
                         overlap_efficiency=overlap_efficiency,
                         agglomerate_below=agglomerate_below,
                         execute_local=execute_local,
                         node_threads=node_threads,
                         faults=faults)

    def _respawn_kwargs(self) -> dict:
        kw = super()._respawn_kwargs()
        kw["block"] = self._block
        return kw

    def _init_level_comm(self, level: SimLevel) -> None:
        p = self.nprocs
        part = BlockCyclic1D(level.n, p, block=self._block)
        level.partition = part
        owners = part.owner(np.arange(level.n, dtype=np.int64))
        level.owners = owners
        level.share_bytes = np.array(
            [part.local_size(k) * 8 for k in range(p)], dtype=np.int64
        )
        rows, nnz = per_node_rows_and_nnz(level.A, owners, p)
        work_bytes = nnz * _MXV_NNZ_BYTES + rows * _MXV_ROW_BYTES
        level.spmv_comm = _allgather_matrix(part)
        level.spmv_work = (work_bytes, rows)
        level.color_work = per_node_color_work(
            level.A, owners, level.colors, p, level.ncolors
        )
        # what little overlap the block-cyclic distribution offers: the
        # replication can only hide behind rows needing no remote entry
        interior = interior_row_mask(level.A, owners)
        level.interior_spmv_work, _ = per_node_interior_work(
            level.A, owners, p, interior=interior)
        level.interior_color_work = per_node_interior_color_work(
            level.A, owners, level.colors, p, level.ncolors,
            interior=interior,
        )

    # --- communication hooks -------------------------------------------------
    def _allgather(self, level: SimLevel, sync_label: str, timer_key: str,
                   work_bytes: float, overlap_bytes: float = 0.0) -> None:
        self.tracker.allgather(level.share_bytes, label=sync_label)
        self._close_superstep(sync_label, timer_key, work_bytes,
                              overlap_bytes)

    def _spmv_comm(self, level: SimLevel, sync_label: str,
                   timer_key: str) -> None:
        self._allgather(level, sync_label, timer_key,
                        float(level.spmv_work[0].max()),
                        overlap_bytes=level.interior_spmv_work)

    def _rbgs_comm(self, level: SimLevel, color: int,
                   next_color: Optional[int] = None) -> None:
        # the allgather precedes colour ``color``'s masked mxv, so the
        # only compute it can hide behind is that colour's own interior
        self._allgather(level, "rbgs_mxv", f"mg/L{level.index}/rbgs",
                        float(level.color_work[color]),
                        overlap_bytes=float(
                            level.interior_color_work[color]))

    def _restrict_comm(self, fine: SimLevel, coarse: SimLevel) -> None:
        # rc = R f is an mxv over the fine vector: full replication of f
        work = _RESTRICT_MXV_BYTES * self._vector_share(coarse.n)
        self._allgather(fine, "restrict", f"mg/L{fine.index}/restrict", work)

    def _prolong_comm(self, fine: SimLevel, coarse: SimLevel) -> None:
        # z += R' zc is an mxv over the coarse vector: replication of zc
        work = _RESTRICT_MXV_BYTES * self._vector_share(coarse.n)
        self._allgather(coarse, "refine", f"mg/L{fine.index}/prolong", work)
