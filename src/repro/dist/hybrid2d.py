"""The executed 2D block distribution (paper §VII-B, solution ii).

Matrix blocks ``A[i][j]`` live on a ``√p x √p`` process grid; the
vector is owned in ``n/√p`` blocks by the diagonal processes.  One
``mxv`` takes **two** supersteps:

1. *column broadcast* — the diagonal process of column ``j`` ships its
   vector block to the ``√p - 1`` other processes of the column;
2. *row reduction* — every process sends its partial output block to
   the diagonal process of its row.

Per-node traffic drops from ``n (p-1)/p`` to ``n/√p (√p - 1)`` values —
a constant-factor saving that remains Θ(n): the paper's observation
that solution ii "only partially alleviates the communication
bottleneck", bought at twice the barrier count.

The two supersteps route through the split-phase engine but tag no
overlappable work: an off-diagonal process owns *nothing* of the input
block it waits for, so the broadcast cannot hide behind local compute,
and the row reduction needs the partial outputs finished before it can
post — another face of the opaque-container limitation.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.dist.bsp import BSPMachine
from repro.dist.partition import Block1D, largest_square
from repro.dist.simulate import (
    SimLevel,
    SimulatedDistRun,
    _MXV_NNZ_BYTES,
    _MXV_ROW_BYTES,
    _RESTRICT_MXV_BYTES,
)
from repro.hpcg.problem import Problem
from repro.util.errors import InvalidValue


class Hybrid2DRun(SimulatedDistRun):
    """Simulated distributed HPCG over a 2D block matrix distribution."""

    backend = "alp-2d"

    def __init__(self, problem: Problem, nprocs: int, mg_levels: int = 4,
                 machine: Optional[BSPMachine] = None,
                 comm_mode: Optional[str] = None,
                 overlap_efficiency: Optional[float] = None,
                 agglomerate_below: int = 0,
                 execute_local: bool = False,
                 node_threads: Optional[int] = None,
                 faults=None):
        q = int(round(math.sqrt(nprocs)))
        if q * q != nprocs:
            raise InvalidValue(
                f"the 2D block distribution needs a square process count, "
                f"got {nprocs}"
            )
        self.q = q
        super().__init__(problem, nprocs, mg_levels, machine,
                         comm_mode=comm_mode,
                         overlap_efficiency=overlap_efficiency,
                         agglomerate_below=agglomerate_below,
                         execute_local=execute_local,
                         node_threads=node_threads,
                         faults=faults)

    def _respawn(self, nprocs: int) -> "Hybrid2DRun":
        """The √p x √p grid needs a square node count: continue on the
        largest square subset of the survivors."""
        return type(self)(self.problem, largest_square(nprocs),
                          **self._respawn_kwargs())

    def _rank(self, i: int, j: int) -> int:
        return i * self.q + j

    def _init_level_comm(self, level: SimLevel) -> None:
        q = self.q
        part = Block1D(level.n, q)
        level.partition = part
        level.block_bytes = np.array(
            [part.local_size(k) * 8 for k in range(q)], dtype=np.int64
        )
        # worst-block mxv work: blocks are ~uniform, price the average
        nnz_per_block = level.A.nnz / max(self.nprocs, 1)
        rows_per_block = level.n / q
        level.block_work = (nnz_per_block * _MXV_NNZ_BYTES
                            + rows_per_block * _MXV_ROW_BYTES)
        # per-colour output block sizes (bytes) for the row reduction
        level.color_block_bytes = []
        block_of = part.owner(np.arange(level.n, dtype=np.int64))
        for c in range(level.ncolors):
            counts = np.bincount(block_of[level.color_rows[c]], minlength=q)
            level.color_block_bytes.append(counts.astype(np.int64) * 8)

    # --- the two-superstep mxv ----------------------------------------------
    def _two_phase_mxv(self, in_bytes: np.ndarray, out_bytes: np.ndarray,
                       sync_label: str, timer_key: str,
                       work_bytes: float) -> None:
        q = self.q
        # phase 1: column broadcast of the input blocks — nothing to
        # overlap: the receivers own no part of the block they await
        for j in range(q):
            for i in range(q):
                if i != j:
                    self.tracker.send(self._rank(j, j), self._rank(i, j),
                                      int(in_bytes[j]), label=sync_label)
        self._close_superstep(sync_label, timer_key, 0.0)
        # phase 2: row reduction of the partial outputs — posted only
        # after the partials exist, so it too stays exposed
        for i in range(q):
            for j in range(q):
                if j != i:
                    self.tracker.send(self._rank(i, j), self._rank(i, i),
                                      int(out_bytes[i]), label=sync_label)
        self._close_superstep(sync_label, timer_key, work_bytes)

    # --- communication hooks -------------------------------------------------
    def _spmv_comm(self, level: SimLevel, sync_label: str,
                   timer_key: str) -> None:
        label = "spmv2d" if sync_label == "spmv" else sync_label
        self._two_phase_mxv(level.block_bytes, level.block_bytes,
                            label, timer_key, level.block_work)

    def _rbgs_comm(self, level: SimLevel, color: int,
                   next_color: Optional[int] = None) -> None:
        self._two_phase_mxv(
            level.block_bytes, level.color_block_bytes[color],
            "rbgs2d", f"mg/L{level.index}/rbgs",
            level.block_work / level.ncolors,
        )

    def _restrict_comm(self, fine: SimLevel, coarse: SimLevel) -> None:
        self._two_phase_mxv(
            fine.block_bytes, coarse.block_bytes,
            "restrict2d", f"mg/L{fine.index}/restrict",
            _RESTRICT_MXV_BYTES * coarse.n / self.q,
        )

    def _prolong_comm(self, fine: SimLevel, coarse: SimLevel) -> None:
        self._two_phase_mxv(
            coarse.block_bytes, fine.block_bytes,
            "refine2d", f"mg/L{fine.index}/prolong",
            _RESTRICT_MXV_BYTES * coarse.n / self.q,
        )

    def _vector_share(self, n: int) -> float:
        # vectors live in n/√p blocks on the diagonal processes
        return float(-(-n // self.q))
