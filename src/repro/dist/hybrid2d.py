"""The executed 2D block distribution (paper §VII-B, solution ii).

Matrix blocks ``A[i][j]`` live on a ``√p x √p`` process grid; the
vector is owned in ``n/√p`` blocks by the diagonal processes.  One
``mxv`` takes **two** supersteps:

1. *column broadcast* — the diagonal process of column ``j`` ships its
   vector block to the ``√p - 1`` other processes of the column;
2. *row reduction* — every process sends its partial output block to
   the diagonal process of its row.

Per-node traffic drops from ``n (p-1)/p`` to ``n/√p (√p - 1)`` values —
a constant-factor saving that remains Θ(n): the paper's observation
that solution ii "only partially alleviates the communication
bottleneck", bought at twice the barrier count.
"""

from __future__ import annotations

import math

import numpy as np

from repro.dist.bsp import ARM_CLUSTER_NODE, BSPMachine
from repro.dist.partition import Block1D
from repro.dist.simulate import (
    SimLevel,
    SimulatedDistRun,
    _MXV_NNZ_BYTES,
    _MXV_ROW_BYTES,
    _RESTRICT_MXV_BYTES,
)
from repro.hpcg.problem import Problem
from repro.util.errors import InvalidValue


class Hybrid2DRun(SimulatedDistRun):
    """Simulated distributed HPCG over a 2D block matrix distribution."""

    backend = "alp-2d"

    def __init__(self, problem: Problem, nprocs: int, mg_levels: int = 4,
                 machine: BSPMachine = ARM_CLUSTER_NODE):
        q = int(round(math.sqrt(nprocs)))
        if q * q != nprocs:
            raise InvalidValue(
                f"the 2D block distribution needs a square process count, "
                f"got {nprocs}"
            )
        self.q = q
        super().__init__(problem, nprocs, mg_levels, machine)

    def _rank(self, i: int, j: int) -> int:
        return i * self.q + j

    def _init_level_comm(self, level: SimLevel) -> None:
        q = self.q
        part = Block1D(level.n, q)
        level.partition = part
        level.block_bytes = np.array(
            [part.local_size(k) * 8 for k in range(q)], dtype=np.int64
        )
        # worst-block mxv work: blocks are ~uniform, price the average
        nnz_per_block = level.A.nnz / max(self.nprocs, 1)
        rows_per_block = level.n / q
        level.block_work = (nnz_per_block * _MXV_NNZ_BYTES
                            + rows_per_block * _MXV_ROW_BYTES)
        # per-colour output block sizes (bytes) for the row reduction
        level.color_block_bytes = []
        block_of = part.owner(np.arange(level.n, dtype=np.int64))
        for c in range(level.ncolors):
            counts = np.bincount(block_of[level.color_rows[c]], minlength=q)
            level.color_block_bytes.append(counts.astype(np.int64) * 8)

    # --- the two-superstep mxv ----------------------------------------------
    def _two_phase_mxv(self, in_bytes: np.ndarray, out_bytes: np.ndarray,
                       sync_label: str, timer_key: str,
                       work_bytes: float) -> None:
        q = self.q
        # phase 1: column broadcast of the input blocks
        for j in range(q):
            for i in range(q):
                if i != j:
                    self.tracker.send(self._rank(j, j), self._rank(i, j),
                                      int(in_bytes[j]), label=sync_label)
        stats1 = self.tracker.sync(label=sync_label)
        self._tick_superstep(timer_key, 0.0, stats1.h)
        # phase 2: row reduction of the partial outputs
        for i in range(q):
            for j in range(q):
                if j != i:
                    self.tracker.send(self._rank(i, j), self._rank(i, i),
                                      int(out_bytes[i]), label=sync_label)
        stats2 = self.tracker.sync(label=sync_label)
        self._tick_superstep(timer_key, work_bytes, stats2.h)

    # --- communication hooks -------------------------------------------------
    def _spmv_comm(self, level: SimLevel, sync_label: str,
                   timer_key: str) -> None:
        label = "spmv2d" if sync_label == "spmv" else sync_label
        self._two_phase_mxv(level.block_bytes, level.block_bytes,
                            label, timer_key, level.block_work)

    def _rbgs_comm(self, level: SimLevel, color: int) -> None:
        self._two_phase_mxv(
            level.block_bytes, level.color_block_bytes[color],
            "rbgs2d", f"mg/L{level.index}/rbgs",
            level.block_work / level.ncolors,
        )

    def _restrict_comm(self, fine: SimLevel, coarse: SimLevel) -> None:
        self._two_phase_mxv(
            fine.block_bytes, coarse.block_bytes,
            "restrict2d", f"mg/L{fine.index}/restrict",
            _RESTRICT_MXV_BYTES * coarse.n / self.q,
        )

    def _prolong_comm(self, fine: SimLevel, coarse: SimLevel) -> None:
        self._two_phase_mxv(
            coarse.block_bytes, fine.block_bytes,
            "refine2d", f"mg/L{fine.index}/prolong",
            _RESTRICT_MXV_BYTES * coarse.n / self.q,
        )

    def _vector_share(self, n: int) -> float:
        # vectors live in n/√p blocks on the diagonal processes
        return float(-(-n // self.q))
