"""The simulated reference backend: geometric 3D boxes + halo exchange.

What the reference HPCG does with its geometry knowledge (paper §II,
§IV): each node owns an axis-aligned box of the grid, an ``mxv`` only
exchanges the O((n/p)^(2/3)) surface halo, the RBGS smoother exchanges
one colour's halo slice per colour step, and restriction/refinement are
purely node-local index copies (the coarse box of a node nests inside
its fine box).  This is the backend that weak-scales in Figure 3 and
the Ref column of Table I.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.dist.bsp import ARM_CLUSTER_NODE, BSPMachine
from repro.dist.partition import Grid3DPartition, factor3
from repro.dist.simulate import (
    SimLevel,
    SimulatedDistRun,
    _MXV_NNZ_BYTES,
    _MXV_ROW_BYTES,
    _RESTRICT_COPY_BYTES,
    per_node_color_work,
    per_node_rows_and_nnz,
)
from repro.hpcg.problem import Problem


class RefDistRun(SimulatedDistRun):
    """Simulated distributed HPCG with the reference 3D distribution."""

    backend = "ref-3d"

    def __init__(self, problem: Problem, nprocs: int, mg_levels: int = 4,
                 machine: BSPMachine = ARM_CLUSTER_NODE,
                 process_grid: Optional[Tuple[int, int, int]] = None):
        self._process_grid = process_grid if process_grid else factor3(nprocs)
        super().__init__(problem, nprocs, mg_levels, machine)

    def _init_level_comm(self, level: SimLevel) -> None:
        p = self.nprocs
        part = Grid3DPartition(level.grid, p, shape=self._process_grid)
        level.partition = part
        owners = part.owner(np.arange(level.n, dtype=np.int64))
        halos = part.halo_exchanges(level.A.indptr, level.A.indices)
        level.spmv_halo = {pair: int(idxs.size) * 8
                           for pair, idxs in halos.items()}
        # the colour classes partition every halo point
        level.color_halo = []
        for c in range(level.ncolors):
            per = {}
            for pair, idxs in halos.items():
                npoints = int((level.colors[idxs] == c).sum())
                if npoints:
                    per[pair] = npoints * 8
            level.color_halo.append(per)
        rows, nnz = per_node_rows_and_nnz(level.A, owners, p)
        work_bytes = nnz * _MXV_NNZ_BYTES + rows * _MXV_ROW_BYTES
        level.spmv_work = (work_bytes, rows)
        level.color_work = per_node_color_work(
            level.A, owners, level.colors, p, level.ncolors
        )

    # --- communication hooks -------------------------------------------------
    def _halo_exchange(self, halo, sync_label: str, timer_key: str,
                       work_bytes: float) -> None:
        for (src, dst), nbytes in halo.items():
            self.tracker.send(src, dst, nbytes, label=sync_label)
        stats = self.tracker.sync(label=sync_label)
        self._tick_superstep(timer_key, work_bytes, stats.h)

    def _spmv_comm(self, level: SimLevel, sync_label: str,
                   timer_key: str) -> None:
        self._halo_exchange(level.spmv_halo, sync_label, timer_key,
                            float(level.spmv_work[0].max()))

    def _rbgs_comm(self, level: SimLevel, color: int) -> None:
        self._halo_exchange(level.color_halo[color], "rbgs_halo",
                            f"mg/L{level.index}/rbgs",
                            float(level.color_work[color]))

    def _restrict_comm(self, fine: SimLevel, coarse: SimLevel) -> None:
        # injection source (2x, 2y, 2z) lies in the same node's box:
        # a local index copy, no messages, no barrier (paper §IV)
        self._tick_local(f"mg/L{fine.index}/restrict",
                         _RESTRICT_COPY_BYTES * self._vector_share(coarse.n))

    def _prolong_comm(self, fine: SimLevel, coarse: SimLevel) -> None:
        self._tick_local(f"mg/L{fine.index}/prolong",
                         _RESTRICT_COPY_BYTES * self._vector_share(coarse.n))
