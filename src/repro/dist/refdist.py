"""The simulated reference backend: geometric 3D boxes + halo exchange.

What the reference HPCG does with its geometry knowledge (paper §II,
§IV): each node owns an axis-aligned box of the grid, an ``mxv`` only
exchanges the O((n/p)^(2/3)) surface halo, the RBGS smoother exchanges
one colour's halo slice per colour step, and restriction/refinement are
purely node-local index copies (the coarse box of a node nests inside
its fine box).  This is the backend that weak-scales in Figure 3 and
the Ref column of Table I.

Two owner sources are supported (``partition=``):

* ``"grid3d"`` (default) — the geometric boxes above;
* ``"bfs"`` — the paper's §VII-B *solution iv*: a black-box partition
  grown by breadth-first traversal of the sparsity pattern, which
  recovers most of the geometric locality without any geometry
  knowledge.  Its boxes do not nest across MG levels, so restriction/
  refinement ship the (few) injection points whose coarse owner differs
  from the fine owner — priced as real supersteps.

In ``comm_mode="overlap"`` the halo exchanges run split-phase: a posted
SpMV halo hides behind the node's *interior* rows (rows referencing no
remote point), and colour ``c``'s exchange hides behind colour
``c+1``'s interior update — the paper's async pipeline, priced by the
BSP overlap model.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.dist.bsp import BSPMachine
from repro.dist.cost import (
    interior_row_mask,
    per_node_interior_color_work,
    per_node_interior_work,
)
from repro.dist.partition import (
    Grid3DPartition,
    bfs_partition,
    factor3,
    halo_for_owners,
)
from repro.dist.simulate import (
    SimLevel,
    SimulatedDistRun,
    _MXV_NNZ_BYTES,
    _MXV_ROW_BYTES,
    _RESTRICT_COPY_BYTES,
    per_node_color_work,
    per_node_rows_and_nnz,
)
from repro.hpcg.problem import Problem
from repro.util.errors import InvalidValue

#: Owner sources accepted by :class:`RefDistRun`.
PARTITIONS = ("grid3d", "bfs")


class RefDistRun(SimulatedDistRun):
    """Simulated distributed HPCG with the reference 3D distribution."""

    backend = "ref-3d"

    def __init__(self, problem: Problem, nprocs: int, mg_levels: int = 4,
                 machine: Optional[BSPMachine] = None,
                 process_grid: Optional[Tuple[int, int, int]] = None,
                 partition: str = "grid3d",
                 comm_mode: Optional[str] = None,
                 overlap_efficiency: Optional[float] = None,
                 agglomerate_below: int = 0,
                 execute_local: bool = False,
                 node_threads: Optional[int] = None,
                 faults=None):
        if partition not in PARTITIONS:
            raise InvalidValue(
                f"unknown partition {partition!r}, "
                f"expected one of {PARTITIONS}"
            )
        self._partition_kind = partition
        self._process_grid = process_grid if process_grid else factor3(nprocs)
        super().__init__(problem, nprocs, mg_levels, machine,
                         comm_mode=comm_mode,
                         overlap_efficiency=overlap_efficiency,
                         agglomerate_below=agglomerate_below,
                         execute_local=execute_local,
                         node_threads=node_threads,
                         faults=faults)

    # --- crash recovery ------------------------------------------------------
    def _respawn_kwargs(self) -> dict:
        kw = super()._respawn_kwargs()
        kw["partition"] = self._partition_kind
        return kw

    def _respawn(self, nprocs: int) -> "RefDistRun":
        """Repartition onto the survivors: geometric boxes when the
        survivor count still factors into the grid, else fall back to
        the black-box BFS partition (which accepts any node count)."""
        kw = self._respawn_kwargs()
        if kw["partition"] == "grid3d":
            try:
                return type(self)(self.problem, nprocs, **kw)
            except InvalidValue:
                kw["partition"] = "bfs"
        return type(self)(self.problem, nprocs, **kw)

    def _init_level_comm(self, level: SimLevel) -> None:
        p = self.nprocs
        if self._partition_kind == "grid3d":
            part = Grid3DPartition(level.grid, p, shape=self._process_grid)
            level.partition = part
            owners = part.owner(np.arange(level.n, dtype=np.int64))
        else:
            level.partition = None
            owners = bfs_partition(level.A.indptr, level.A.indices,
                                   level.n, p)
        level.owners = owners
        halos = halo_for_owners(level.A.indptr, level.A.indices, owners, p)
        level.spmv_halo = {pair: int(idxs.size) * 8
                           for pair, idxs in halos.items()}
        # the colour classes partition every halo point
        level.color_halo = []
        for c in range(level.ncolors):
            per = {}
            for pair, idxs in halos.items():
                npoints = int((level.colors[idxs] == c).sum())
                if npoints:
                    per[pair] = npoints * 8
            level.color_halo.append(per)
        rows, nnz = per_node_rows_and_nnz(level.A, owners, p)
        work_bytes = nnz * _MXV_NNZ_BYTES + rows * _MXV_ROW_BYTES
        level.spmv_work = (work_bytes, rows)
        level.color_work = per_node_color_work(
            level.A, owners, level.colors, p, level.ncolors
        )
        # interior shares: the overlap candidates of split-phase mode
        interior = interior_row_mask(level.A, owners)
        level.interior_spmv_work, _ = per_node_interior_work(
            level.A, owners, p, interior=interior)
        level.interior_color_work = per_node_interior_color_work(
            level.A, owners, level.colors, p, level.ncolors,
            interior=interior,
        )
        # lazily built cross-node injection traffic (bfs owners only)
        level.restrict_halo = None

    # --- communication hooks -------------------------------------------------
    def _halo_exchange(self, halo, sync_label: str, timer_key: str,
                       work_bytes: float, overlap_bytes: float = 0.0) -> None:
        for (src, dst), nbytes in halo.items():
            self.tracker.send(src, dst, nbytes, label=sync_label)
        self._close_superstep(sync_label, timer_key, work_bytes,
                              overlap_bytes)

    def _spmv_comm(self, level: SimLevel, sync_label: str,
                   timer_key: str) -> None:
        # split-phase: the posted halo hides behind the interior rows
        self._halo_exchange(level.spmv_halo, sync_label, timer_key,
                            float(level.spmv_work[0].max()),
                            overlap_bytes=level.interior_spmv_work)

    def _rbgs_comm(self, level: SimLevel, color: int,
                   next_color: Optional[int] = None) -> None:
        # colour c's exchange pipelines behind colour c+1's interior
        # update; the last colour of a half-sweep has nothing to hide
        # behind and stays exposed
        overlap = (float(level.interior_color_work[next_color])
                   if next_color is not None else 0.0)
        self._halo_exchange(level.color_halo[color], "rbgs_halo",
                            f"mg/L{level.index}/rbgs",
                            float(level.color_work[color]),
                            overlap_bytes=overlap)

    # --- restriction / refinement --------------------------------------------
    def _injection_halo(self, fine: SimLevel,
                        coarse: SimLevel) -> Dict[Tuple[int, int], int]:
        """Per-(src, dst) bytes of injection points crossing nodes.

        Empty for the geometric partition (nested boxes); small but
        nonzero for BFS owners, whose levels are partitioned
        independently.
        """
        if fine.restrict_halo is None:
            src = fine.owners[fine.injection]
            dst = coarse.owners
            cross = src != dst
            halo: Dict[Tuple[int, int], int] = {}
            if cross.any():
                pair = src[cross] * self.nprocs + dst[cross]
                counts = np.bincount(pair)
                for key in np.flatnonzero(counts):
                    halo[(int(key) // self.nprocs,
                          int(key) % self.nprocs)] = int(counts[key]) * 8
            fine.restrict_halo = halo
        return fine.restrict_halo

    def _restrict_comm(self, fine: SimLevel, coarse: SimLevel) -> None:
        halo = self._injection_halo(fine, coarse)
        work = _RESTRICT_COPY_BYTES * self._vector_share(coarse.n)
        if not halo:
            # injection source (2x, 2y, 2z) lies in the same node's box:
            # a local index copy, no messages, no barrier (paper §IV)
            self._tick_local(f"mg/L{fine.index}/restrict", work)
        else:
            self._halo_exchange(halo, "restrict",
                                f"mg/L{fine.index}/restrict", work)

    def _prolong_comm(self, fine: SimLevel, coarse: SimLevel) -> None:
        halo = self._injection_halo(fine, coarse)
        work = _RESTRICT_COPY_BYTES * self._vector_share(coarse.n)
        if not halo:
            self._tick_local(f"mg/L{fine.index}/prolong", work)
        else:
            # the correction travels the opposite way
            reverse = {(dst, src): nbytes
                       for (src, dst), nbytes in halo.items()}
            self._halo_exchange(reverse, "refine",
                                f"mg/L{fine.index}/prolong", work)
