"""Simulated distributed-memory execution of HPCG-on-GraphBLAS.

The paper's distributed experiments compare two designs:

* the **hybrid ALP backend** — opaque containers force a 1D block-cyclic
  distribution whose every ``mxv`` replicates the input vector
  (an allgather of ``n (p-1)/p`` values per node, Table I);
* the **reference backend** — geometry-aware 3D box partitioning with
  surface-proportional halo exchanges, which weak-scales.

This package simulates both (plus the paper's §VII-B "solution ii" 2D
block distribution) on one machine: the numerics are executed exactly —
residual histories are bit-identical to the serial driver — while every
message is recorded by a :class:`~repro.dist.comm.CommTracker` and
priced by the BSP cost model in :mod:`repro.dist.bsp`.

Communication runs through a **split-phase engine**: exchanges are
either eager supersteps (``compute + comm`` summed) or posted/waited
asynchronous intervals that hide wire time behind tagged local compute
(``comm_mode="overlap"``, or the ``REPRO_OVERLAP`` environment force).
Both modes move identical bytes over identical supersteps and produce
bit-identical residuals; only the BSP pricing differs, and both the
full and the *exposed* (post-overlap) communication time are reported.
"""

from repro.dist.bsp import (
    ARM_CLUSTER_NODE,
    BSPMachine,
    X86_NODE,
    bsp_time,
    tracker_comm_time,
    tracker_exposed_comm_time,
)
from repro.dist.comm import (
    CommTracker,
    InFlightExchange,
    SuperstepStats,
    resolve_comm_mode,
)
from repro.dist.faults import (
    Checkpoint,
    Crash,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    MessageLoss,
    NodeCrash,
    Straggler,
)
from repro.dist.halo import LocalRBGSExecutor, LocalSpmvExecutor
from repro.dist.hybrid import HybridALPRun
from repro.dist.hybrid2d import Hybrid2DRun
from repro.dist.partition import (
    Block1D,
    BlockCyclic1D,
    Grid3DPartition,
    bfs_partition,
    factor3,
    halo_for_owners,
    largest_square,
)
from repro.dist.refdist import RefDistRun
from repro.dist.result import DistRunResult

__all__ = [
    "ARM_CLUSTER_NODE",
    "BSPMachine",
    "Block1D",
    "BlockCyclic1D",
    "Checkpoint",
    "CommTracker",
    "Crash",
    "DistRunResult",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "Grid3DPartition",
    "Hybrid2DRun",
    "HybridALPRun",
    "InFlightExchange",
    "LocalRBGSExecutor",
    "LocalSpmvExecutor",
    "MessageLoss",
    "NodeCrash",
    "RefDistRun",
    "Straggler",
    "SuperstepStats",
    "X86_NODE",
    "bfs_partition",
    "bsp_time",
    "factor3",
    "halo_for_owners",
    "largest_square",
    "resolve_comm_mode",
    "tracker_comm_time",
    "tracker_exposed_comm_time",
]
