"""The BSP cost model that prices a recorded communication trace.

A superstep that moves an h-relation of ``h`` bytes while each node
streams ``work`` bytes through memory costs

    ``work / mem_bandwidth + h / net_bandwidth + latency``

— the classic BSP ``w + h*g + L`` with ``g`` and ``L`` expressed in
bytes-per-second and seconds so they can be read straight off machine
datasheets.  HPCG kernels are bandwidth-bound, so ``work`` is measured
in bytes (not flops), matching :mod:`repro.perf.model`.

Split-phase supersteps relax the sum: communication posted early can
hide behind independent local compute.  A superstep that tags
``overlap_bytes`` of its work as running while the exchange is in
flight is priced

    ``work / mem_bw + comm - eff * min(overlap_bytes / mem_bw, comm)``

with ``comm = h / net_bw + latency`` and ``eff`` the machine's
**overlap efficiency** (1.0 = perfect NIC/compute concurrency; 0.0
degenerates to the eager sum).  When the whole work term overlaps
(``overlap_bytes == work``, ``eff == 1``), the formula is exactly
``max(work_time, comm_time)``.  The un-hidden remainder is the
**exposed** communication time the figures report.

The two presets mirror the paper's Table II nodes: the Kunpeng 920
(ARM) node attains more memory bandwidth than the Xeon Gold (x86) node,
while both sit on the same Mellanox 100 Gb/s fabric.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.dist.comm import CommTracker, SuperstepStats
from repro.util.errors import InvalidValue


@dataclass(frozen=True)
class BSPMachine:
    """One node class of a BSP machine.

    ``mem_bandwidth`` and ``net_bandwidth`` are bytes/second;
    ``latency`` is the per-superstep synchronisation cost in seconds
    (the BSP ``L``, charged even for communication-free supersteps);
    ``overlap_efficiency`` is the fraction of in-flight wire time a
    split-phase exchange can hide behind tagged local compute.
    """

    name: str
    mem_bandwidth: float
    net_bandwidth: float
    latency: float
    overlap_efficiency: float = 1.0

    def __post_init__(self):
        if self.mem_bandwidth <= 0 or self.net_bandwidth <= 0:
            raise InvalidValue(
                f"bandwidths must be positive: mem={self.mem_bandwidth}, "
                f"net={self.net_bandwidth}"
            )
        if self.latency < 0:
            raise InvalidValue(f"latency must be >= 0, got {self.latency}")
        if not (0.0 <= self.overlap_efficiency <= 1.0):
            raise InvalidValue(
                f"overlap efficiency must lie in [0, 1], "
                f"got {self.overlap_efficiency}"
            )

    @classmethod
    def from_profile(cls, profile, name: Optional[str] = None,
                     overlap_efficiency: Optional[float] = None
                     ) -> "BSPMachine":
        """A node priced by a measured :class:`repro.tune.MachineProfile`.

        The measured STREAM triad becomes ``mem_bandwidth``, the fitted
        BSP ``g``/``L`` become ``net_bandwidth``/``latency``, and the
        measured compute-under-copy interference becomes
        ``overlap_efficiency`` (overridable).  The name records the
        profile so results report which measurement priced the run.
        """
        eff = (profile.overlap_efficiency if overlap_efficiency is None
               else overlap_efficiency)
        return cls(
            name=name or f"profile:{profile.name}",
            mem_bandwidth=profile.triad_bandwidth,
            net_bandwidth=profile.net_bandwidth,
            latency=profile.latency,
            overlap_efficiency=eff,
        )

    def comm_time(self, h_bytes: float) -> float:
        """Wire time of one superstep: ``h*g + L`` (no local work)."""
        return h_bytes / self.net_bandwidth + self.latency

    def hidden_comm_time(self, h_bytes: float, overlap_bytes: float = 0.0,
                         overlap_efficiency: Optional[float] = None) -> float:
        """Seconds of wire time hidden behind tagged overlapped compute."""
        if overlap_bytes <= 0.0:
            return 0.0
        eff = (self.overlap_efficiency if overlap_efficiency is None
               else overlap_efficiency)
        if not (0.0 <= eff <= 1.0):
            raise InvalidValue(
                f"overlap efficiency must lie in [0, 1], got {eff}"
            )
        return eff * min(overlap_bytes / self.mem_bandwidth,
                         self.comm_time(h_bytes))

    def exposed_comm_time(self, h_bytes: float, overlap_bytes: float = 0.0,
                          overlap_efficiency: Optional[float] = None) -> float:
        """Wire time left on the critical path after overlap."""
        return (self.comm_time(h_bytes)
                - self.hidden_comm_time(h_bytes, overlap_bytes,
                                        overlap_efficiency))

    def superstep_time(self, work_bytes: float, h_bytes: float,
                       overlap_bytes: float = 0.0,
                       overlap_efficiency: Optional[float] = None) -> float:
        """Seconds for one superstep.

        Eager (``overlap_bytes == 0``): the classic ``w + h*g + L``.
        Split-phase: the exchange hides behind ``overlap_bytes`` of the
        local compute, leaving only the exposed wire time — at full
        overlap this is ``max(work_time, comm_time)``.
        """
        return (
            work_bytes / self.mem_bandwidth
            + self.exposed_comm_time(h_bytes, overlap_bytes,
                                     overlap_efficiency)
        )

    def work_time(self, work_bytes: float) -> float:
        """Seconds for a purely local operation (no barrier, no network)."""
        return work_bytes / self.mem_bandwidth

    def retry_comm_time(self, h_bytes: float, attempt: int = 0,
                        backoff: float = 0.0) -> float:
        """Price of re-driving a lost exchange (fault injection).

        The ``attempt``-th retry pays the full wire time again plus an
        exponential sender backoff of ``backoff * 2**attempt`` seconds —
        a bounded-retry transport, with no compute to hide behind.
        """
        if attempt < 0:
            raise InvalidValue(f"retry attempt must be >= 0, got {attempt}")
        if backoff < 0:
            raise InvalidValue(f"retry backoff must be >= 0, got {backoff}")
        return self.comm_time(h_bytes) + backoff * (2.0 ** attempt)

    def superstep_costs(self, work_bytes: float, h_bytes: float,
                        overlap_bytes: float = 0.0,
                        overlap_efficiency: Optional[float] = None
                        ) -> dict:
        """Every component of one superstep's price, in one pass.

        Returns ``{"work", "comm_full", "comm_exposed", "comm_hidden",
        "total"}`` (seconds).  ``total`` equals :meth:`superstep_time`
        and ``comm_full == comm_exposed + comm_hidden`` by
        construction — the decomposition the split-phase engine ticks
        into its timers and the observability layer attaches to
        superstep spans.
        """
        work = self.work_time(work_bytes)
        comm_full = self.comm_time(h_bytes)
        hidden = self.hidden_comm_time(h_bytes, overlap_bytes,
                                       overlap_efficiency)
        exposed = comm_full - hidden
        return {
            "work": work,
            "comm_full": comm_full,
            "comm_exposed": exposed,
            "comm_hidden": hidden,
            "total": work + exposed,
        }


# Table II nodes: attained STREAM bandwidths, shared 100 Gb/s fabric.
X86_NODE = BSPMachine(
    name="x86-node",
    mem_bandwidth=192.0e9,
    net_bandwidth=12.5e9,
    latency=10e-6,
)
ARM_CLUSTER_NODE = BSPMachine(
    name="arm-cluster-node",
    mem_bandwidth=246.3e9,
    net_bandwidth=12.5e9,
    latency=10e-6,
)


def bsp_time(
    machine: BSPMachine,
    supersteps: Iterable[SuperstepStats],
    work_bytes: Sequence[float],
    use_overlap: bool = True,
) -> float:
    """Total time of a trace given per-superstep local work in bytes.

    Split-phase supersteps carry their own ``overlapped_work`` tags;
    ``use_overlap=False`` prices the same trace eagerly (the comparison
    baseline).
    """
    return sum(
        machine.superstep_time(
            work, step.h,
            step.overlapped_work if use_overlap else 0.0,
        )
        for step, work in zip(supersteps, work_bytes)
    )


def tracker_comm_time(machine: BSPMachine, tracker: CommTracker) -> float:
    """Pure communication time of a trace (work priced at zero, nothing
    hidden) — the eager wire-time baseline."""
    return sum(machine.comm_time(s.h) for s in tracker.supersteps)


def tracker_exposed_comm_time(machine: BSPMachine,
                              tracker: CommTracker) -> float:
    """Wire time left on the critical path after each split-phase
    superstep hides what its overlap tags allow."""
    return sum(
        machine.exposed_comm_time(s.h, s.overlapped_work)
        for s in tracker.supersteps
    )
