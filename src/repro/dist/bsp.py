"""The BSP cost model that prices a recorded communication trace.

A superstep that moves an h-relation of ``h`` bytes while each node
streams ``work`` bytes through memory costs

    ``work / mem_bandwidth + h / net_bandwidth + latency``

— the classic BSP ``w + h*g + L`` with ``g`` and ``L`` expressed in
bytes-per-second and seconds so they can be read straight off machine
datasheets.  HPCG kernels are bandwidth-bound, so ``work`` is measured
in bytes (not flops), matching :mod:`repro.perf.model`.

The two presets mirror the paper's Table II nodes: the Kunpeng 920
(ARM) node attains more memory bandwidth than the Xeon Gold (x86) node,
while both sit on the same Mellanox 100 Gb/s fabric.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.dist.comm import CommTracker, SuperstepStats
from repro.util.errors import InvalidValue


@dataclass(frozen=True)
class BSPMachine:
    """One node class of a BSP machine.

    ``mem_bandwidth`` and ``net_bandwidth`` are bytes/second;
    ``latency`` is the per-superstep synchronisation cost in seconds
    (the BSP ``L``, charged even for communication-free supersteps).
    """

    name: str
    mem_bandwidth: float
    net_bandwidth: float
    latency: float

    def __post_init__(self):
        if self.mem_bandwidth <= 0 or self.net_bandwidth <= 0:
            raise InvalidValue(
                f"bandwidths must be positive: mem={self.mem_bandwidth}, "
                f"net={self.net_bandwidth}"
            )
        if self.latency < 0:
            raise InvalidValue(f"latency must be >= 0, got {self.latency}")

    def superstep_time(self, work_bytes: float, h_bytes: float) -> float:
        """Seconds for one superstep: ``w + h*g + L``."""
        return (
            work_bytes / self.mem_bandwidth
            + h_bytes / self.net_bandwidth
            + self.latency
        )

    def work_time(self, work_bytes: float) -> float:
        """Seconds for a purely local operation (no barrier, no network)."""
        return work_bytes / self.mem_bandwidth


# Table II nodes: attained STREAM bandwidths, shared 100 Gb/s fabric.
X86_NODE = BSPMachine(
    name="x86-node",
    mem_bandwidth=192.0e9,
    net_bandwidth=12.5e9,
    latency=10e-6,
)
ARM_CLUSTER_NODE = BSPMachine(
    name="arm-cluster-node",
    mem_bandwidth=246.3e9,
    net_bandwidth=12.5e9,
    latency=10e-6,
)


def bsp_time(
    machine: BSPMachine,
    supersteps: Iterable[SuperstepStats],
    work_bytes: Sequence[float],
) -> float:
    """Total time of a trace given per-superstep local work in bytes."""
    return sum(
        machine.superstep_time(work, step.h)
        for step, work in zip(supersteps, work_bytes)
    )


def tracker_comm_time(machine: BSPMachine, tracker: CommTracker) -> float:
    """Pure communication time of a trace (work priced at zero)."""
    return bsp_time(machine, tracker.supersteps,
                    [0.0] * len(tracker.supersteps))
