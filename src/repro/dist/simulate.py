"""Shared engine of the simulated distributed runs.

The three backends (:class:`~repro.dist.hybrid.HybridALPRun`,
:class:`~repro.dist.hybrid2d.Hybrid2DRun`,
:class:`~repro.dist.refdist.RefDistRun`) run *identical numerics*: a
scipy transcription of the serial GraphBLAS CG + multigrid V-cycle
whose every floating-point operation mirrors the substrate's kernels —
the same CSR row reductions, the same ``waxpby`` in-place update forms,
the same colour order — so residual histories are bit-identical to
``run_hpcg``.  What differs per backend is *communication*: subclasses
override the ``*_comm`` hooks to record sends on the
:class:`~repro.dist.comm.CommTracker` and to price each superstep on
the BSP machine.

This separation is the point of the simulation: convergence is provably
unchanged by the distribution (the paper's Section V precondition), so
backends compete purely on the communication they induce.

Communication modes
-------------------

Every run executes in one of two modes (explicit ``comm_mode=``
argument, else the ``REPRO_OVERLAP`` environment force, else eager):

* ``"eager"`` — each exchange is a synchronous superstep priced
  ``work + comm`` (the original BSP sum);
* ``"overlap"`` — exchanges are *posted* (split-phase): the backend
  tags the local compute that can proceed while the exchange is in
  flight (interior rows, the next colour's interior update, ...) and
  the BSP model hides wire time behind it, up to the machine's
  ``overlap_efficiency``.

The mode changes **pricing only** — sends, supersteps and numerics are
identical, so residual histories are bit-for-bit equal across modes.
Both the full (eager-equivalent) and the exposed (post-overlap) wire
time are accumulated, per timer key under ``comm/full/...`` /
``comm/exposed/...`` and in total on the result, so experiments can
report how much latency the split-phase engine hides.

Coarse-grid agglomeration
-------------------------

``agglomerate_below=n`` gathers every MG level with at most ``n`` rows
onto node 0 (never the finest level): its smoother and residual mxv
become single-node local work — no supersteps, no latency — at the cost
of one gather superstep entering the level, one scatter leaving it, and
the loss of ``p``-way parallelism on the agglomerated work.  The
tradeoff is priced through the same engine, so ``bsp_time`` shows
whether dodging the tiny-superstep latencies pays.

Hybrid node-local execution
---------------------------

``execute_local=True`` makes the run *measure* its node-local speedup
instead of only pricing it: before the solve, the finest level's
per-node SpMV (the :class:`~repro.dist.halo.LocalSpmvExecutor` node
blocks under a Block1D ownership) executes once serially and once with
the nodes dispatched across a ``ThreadPoolExecutor`` of
``node_threads`` workers (default: the ``REPRO_THREADS`` resolution) —
bit-identical outputs, asserted.  The observed serial/threaded ratio
becomes ``node_speedup``, which scales every superstep's *work* term
(communication is unchanged — threads share the NIC), and is surfaced
on the :class:`DistRunResult`.  Numerics are untouched either way.
"""

from __future__ import annotations

import dataclasses
import time
from typing import List, Optional

import numpy as np
import scipy.sparse as sp

from repro import obs
from repro.dist.bsp import ARM_CLUSTER_NODE, BSPMachine
from repro.dist.comm import CommTracker, SuperstepStats, resolve_comm_mode
from repro.dist.faults import FaultInjector, FaultPlan, NodeCrash
from repro.dist.cost import (
    _DOT_BYTES,
    _MXV_NNZ_BYTES,
    _MXV_ROW_BYTES,
    _RESTRICT_COPY_BYTES,
    _RESTRICT_MXV_BYTES,
    _WAXPBY_BYTES,
    mxv_bytes,
    per_node_color_work,
    per_node_rows_and_nnz,
)
from repro.dist.partition import Block1D
from repro.dist.result import DistRunResult
from repro.grid import Grid3D, stencil_coo
from repro.hpcg.coloring import lattice_coloring
from repro.hpcg.problem import Problem
from repro.util.errors import InvalidValue
from repro.util.timer import TimerRegistry


class SimLevel:
    """One multigrid level's numeric data (operator, colours, injection)."""

    def __init__(self, index: int, grid: Grid3D, A: sp.csr_matrix,
                 stencil: str):
        self.index = index
        self.grid = grid
        self.A = A
        self.n = A.shape[0]
        self.diag = A.diagonal()
        self.colors = lattice_coloring(grid, stencil)
        self.ncolors = int(self.colors.max()) + 1
        self.color_rows = [np.flatnonzero(self.colors == c)
                           for c in range(self.ncolors)]
        self.color_blocks = [A[rows, :] for rows in self.color_rows]
        # set by the hierarchy builder when a coarser level exists
        self.injection: Optional[np.ndarray] = None
        # set when the level is gathered onto one node (agglomeration)
        self.agglomerated = False
        self.agg_spmv_work = 0.0
        self.agg_color_work: List[float] = []


class CGCheckpoint:
    """One CG-state snapshot: everything a rollback needs to resume
    iteration ``k + 1`` exactly where the clean run would be."""

    __slots__ = ("k", "x", "r", "p", "rtz", "normr", "normr0", "residuals")

    def __init__(self, k: int, x: np.ndarray, r: np.ndarray, p: np.ndarray,
                 rtz: float, normr: float, normr0: float,
                 residuals: List[float]):
        self.k = k
        self.x = x
        self.r = r
        self.p = p
        self.rtz = rtz
        self.normr = normr
        self.normr0 = normr0
        self.residuals = residuals


class SimulatedDistRun:
    """Base class: exact CG+MG numerics with pluggable communication."""

    backend = "dist"

    def __init__(self, problem: Problem, nprocs: int, mg_levels: int = 4,
                 machine: Optional[BSPMachine] = None,
                 comm_mode: Optional[str] = None,
                 overlap_efficiency: Optional[float] = None,
                 agglomerate_below: int = 0,
                 execute_local: bool = False,
                 node_threads: Optional[int] = None,
                 faults: Optional[FaultPlan] = None):
        if machine is None:
            # no machine pinned: the Table-II ARM preset, but with the
            # *measured* overlap efficiency when this machine has a
            # cached tune profile (PR-4 follow-up) — an explicit
            # machine= or overlap_efficiency= always wins
            machine = ARM_CLUSTER_NODE
            if overlap_efficiency is None:
                from repro.tune import cache as tune_cache
                profile = tune_cache.current_profile()
                if profile is not None:
                    overlap_efficiency = profile.overlap_efficiency
        if nprocs < 1:
            raise InvalidValue(f"need at least one process, got {nprocs}")
        if mg_levels < 1:
            raise InvalidValue(f"need at least one MG level, got {mg_levels}")
        if problem.grid.max_mg_levels() < mg_levels:
            raise InvalidValue(
                f"grid {problem.grid.dims} supports at most "
                f"{problem.grid.max_mg_levels()} MG levels, "
                f"requested {mg_levels}"
            )
        if agglomerate_below < 0:
            raise InvalidValue(
                f"agglomeration threshold must be >= 0, "
                f"got {agglomerate_below}"
            )
        self.problem = problem
        self.nprocs = nprocs
        self.mg_levels = mg_levels
        # an overlap_efficiency override is folded into the machine
        # itself (dataclass validation included), so every pricing
        # helper that takes ``run.machine`` — bsp_time,
        # tracker_exposed_comm_time, perf.model.overlap_savings —
        # agrees with the run's own numbers
        if overlap_efficiency is not None:
            machine = dataclasses.replace(
                machine, overlap_efficiency=overlap_efficiency)
        self.machine = machine
        self.comm_mode = resolve_comm_mode(comm_mode)
        self.overlap = self.comm_mode == "overlap"
        self.overlap_efficiency = machine.overlap_efficiency
        self.agglomerate_below = agglomerate_below
        if node_threads is not None and node_threads < 1:
            raise InvalidValue(
                f"node_threads must be >= 1, got {node_threads}"
            )
        self.execute_local = execute_local
        self.node_threads = node_threads   # resolved at calibration
        self.node_speedup = 1.0
        self.executed_local = False
        self.n = problem.n
        stencil = getattr(problem, "stencil", "27pt")
        self.levels: List[SimLevel] = []
        grid = problem.grid
        A = problem.A.to_scipy()
        for index in range(mg_levels):
            level = SimLevel(index, grid, A, stencil)
            self.levels.append(level)
            if index + 1 < mg_levels:
                level.injection = grid.injection_indices()
                grid = grid.coarsen()
                rows, cols, vals = stencil_coo(grid, stencil)
                A = sp.csr_matrix((vals, (rows, cols)),
                                  shape=(grid.npoints, grid.npoints))
                A.sort_indices()
        for level in self.levels:
            # agglomeration: gather small coarse levels onto node 0
            # (never the finest level, which CG itself runs on)
            if (agglomerate_below and level.index > 0
                    and level.n <= agglomerate_below):
                level.agglomerated = True
                level.agg_spmv_work = mxv_bytes(level.A.nnz, level.n)
                level.agg_color_work = [
                    mxv_bytes(block.nnz, rows.size)
                    for block, rows in zip(level.color_blocks,
                                           level.color_rows)
                ]
            else:
                self._init_level_comm(level)
        # fault model: an inactive plan keeps run_cg on the
        # bit-identical fault-free path
        if faults is not None:
            faults.validate_for(nprocs)
        self.faults = faults
        self._injector: Optional[FaultInjector] = None
        self._checkpoint_state: Optional[CGCheckpoint] = None
        self._checkpoint_seconds = 0.0
        self._checkpoints = 0
        self._current_iteration = 0
        # populated by run_cg
        self.tracker: Optional[CommTracker] = None
        self.timers: Optional[TimerRegistry] = None
        self.comm_timers: Optional[TimerRegistry] = None
        self._seconds = 0.0
        self._comm_seconds = 0.0
        self._exposed_comm_seconds = 0.0
        # observability taps, armed per run_cg (None when tracing is off)
        self._m_supersteps = None
        self._m_h = None
        self._m_comm = None
        self._m_faults = None
        self._m_retries = None
        self._m_ckpt = None
        self._m_recoveries = None

    # --- backend hooks -------------------------------------------------------
    def _init_level_comm(self, level: SimLevel) -> None:
        """Attach the backend's partition/communication data to a level."""
        raise NotImplementedError

    def _spmv_comm(self, level: SimLevel, sync_label: str,
                   timer_key: str) -> None:
        """Record the communication of one full operator mxv."""
        raise NotImplementedError

    def _rbgs_comm(self, level: SimLevel, color: int,
                   next_color: Optional[int] = None) -> None:
        """Record the communication of one colour's masked mxv.

        ``next_color`` is the colour the sweep updates next (``None``
        at the end of a half-sweep): in overlap mode its interior work
        is what a split-phase backend hides the exchange behind.
        """
        raise NotImplementedError

    def _restrict_comm(self, fine: SimLevel, coarse: SimLevel) -> None:
        raise NotImplementedError

    def _prolong_comm(self, fine: SimLevel, coarse: SimLevel) -> None:
        raise NotImplementedError

    # --- the split-phase superstep engine ------------------------------------
    def _close_superstep(self, sync_label: str, timer_key: str,
                         work_bytes: float,
                         overlap_bytes: float = 0.0) -> None:
        """Close the sends recorded on the tracker into one superstep
        and price it.

        Eager mode synchronises (``work + comm``); overlap mode posts
        and waits the same sends as a split-phase exchange, hiding wire
        time behind ``overlap_bytes`` of tagged local compute.
        """
        if self.overlap:
            handle = self.tracker.post(label=sync_label)
            if overlap_bytes:
                handle.overlap(overlap_bytes)
            stats = self.tracker.wait(handle)
        else:
            stats = self.tracker.sync(label=sync_label)
            overlap_bytes = 0.0
        self._tick_superstep(timer_key, work_bytes, stats.h, overlap_bytes)
        if (self._injector is not None
                and self._injector.plan.message_loss is not None):
            self._retry_exchange(stats, sync_label, timer_key)

    # --- pricing helpers -----------------------------------------------------
    def _tick(self, key: str, seconds: float) -> None:
        self.timers.tick(key, seconds)
        self._seconds += seconds

    def _tick_superstep(self, key: str, work_bytes: float, h: int,
                        overlap_bytes: float = 0.0) -> None:
        inj = self._injector
        if inj is not None:
            # every barrier advances the fault clock; the slowest
            # surviving node's straggler/speed factor inflates the
            # max-over-nodes work term (and what it could overlap)
            step = inj.begin_superstep()
            factor = inj.work_factor(step)
            if factor != 1.0:
                work_bytes *= factor
                overlap_bytes *= factor
        if self.node_speedup != 1.0:
            # measured hybrid speedup scales the compute terms only:
            # wire terms are unchanged (threads share the NIC), and a
            # faster node also has *less* compute to hide a posted
            # exchange behind, hence overlap_bytes shrinks with it
            work_bytes /= self.node_speedup
            overlap_bytes /= self.node_speedup
        costs = self.machine.superstep_costs(work_bytes, h, overlap_bytes)
        self._tick(key, costs["total"])
        # wire-time accounting lives in its own registry so the main
        # timers' report() shares still sum to modelled_seconds
        self._comm_seconds += costs["comm_full"]
        self._exposed_comm_seconds += costs["comm_exposed"]
        self.comm_timers.tick(f"full/{key}", costs["comm_full"])
        self.comm_timers.tick(f"exposed/{key}", costs["comm_exposed"])
        with obs.span(f"superstep/{key}", "dist") as sp:
            if sp is not None:
                sp.tick(costs["total"])
                sp.set(
                    h=h, work_bytes=work_bytes, mode=self.comm_mode,
                    overlapped=overlap_bytes > 0,
                    comm_full=costs["comm_full"],
                    comm_exposed=costs["comm_exposed"],
                    comm_hidden=costs["comm_hidden"],
                )
        if self._m_supersteps is not None:
            self._m_supersteps.inc(1, mode=self.comm_mode)
            self._m_h.observe(h)
            self._m_comm.inc(costs["comm_full"], kind="full")
            self._m_comm.inc(costs["comm_exposed"], kind="exposed")
            self._m_comm.inc(costs["comm_hidden"], kind="hidden")
        if inj is not None:
            # crashes surface at the barrier: the superstep is priced,
            # then the failure is detected
            inj.check_crash(step)

    def _tick_local(self, key: str, work_bytes: float) -> None:
        if self._injector is not None:
            work_bytes *= self._injector.work_factor(
                self._injector.superstep)
        self._tick(key, self.machine.work_time(
            work_bytes / self.node_speedup))

    def _retry_exchange(self, stats: SuperstepStats, sync_label: str,
                        timer_key: str) -> None:
        """Price the seeded re-deliveries of one lossy exchange.

        Each retry is a real extra superstep: the tracker re-drives the
        same messages (``retry_of`` links it to the original), and the
        machine charges the full wire time again plus the exponential
        sender backoff — nothing hidden, a retry has no compute to
        overlap.
        """
        inj = self._injector
        loss = inj.plan.message_loss
        origin = inj.superstep - 1          # the just-priced superstep
        retries = inj.exchange_retries_for(stats.h, sync_label, origin)
        for attempt in range(retries):
            retry_stats = self.tracker.retry(stats, label=sync_label)
            step = inj.begin_superstep()
            cost = self.machine.retry_comm_time(stats.h, attempt,
                                                loss.backoff)
            self._tick(timer_key, cost)
            self._comm_seconds += cost
            self._exposed_comm_seconds += cost
            self.comm_timers.tick(f"full/{timer_key}", cost)
            self.comm_timers.tick(f"exposed/{timer_key}", cost)
            if self._m_retries is not None:
                self._m_retries.inc(1, label=sync_label)
            if self._m_supersteps is not None:
                self._m_supersteps.inc(1, mode=self.comm_mode)
                self._m_h.observe(retry_stats.h)
                self._m_comm.inc(cost, kind="full")
                self._m_comm.inc(cost, kind="exposed")
            inj.check_crash(step)

    # --- hybrid node-local execution -----------------------------------------
    #: timing repeats per calibration pass (best-of, noise rejection)
    _CALIBRATE_REPEATS = 3
    #: pricing floor: a measured slowdown never inflates work terms by
    #: more than 20x (guards against degenerate timer readings)
    _MIN_NODE_SPEEDUP = 0.05

    def _calibrate_hybrid(self) -> None:
        """Execute the finest level's per-node SpMV for real and
        measure the node-local thread speedup.

        The per-node blocks come from a
        :class:`~repro.dist.halo.LocalSpmvExecutor` over the same
        Block1D row ownership the 1-D backends partition with.  A
        serial pass loops the nodes; a threaded pass dispatches them
        across a ``ThreadPoolExecutor`` — each node writes a disjoint
        ``y[node.rows]`` slice, so the two passes are bit-identical
        (asserted).  The best-of-:attr:`_CALIBRATE_REPEATS` ratio
        becomes :attr:`node_speedup`; it scales *pricing only* — the
        solve's numerics never touch these vectors.
        """
        from concurrent.futures import ThreadPoolExecutor

        from repro.dist.halo import LocalSpmvExecutor
        from repro.graphblas.substrate import threads as threads_mod

        nthreads = self.node_threads
        if nthreads is None:
            nthreads = threads_mod.resolve()
        # more workers than nodes cannot help: one task per node
        nthreads = max(1, min(nthreads, self.nprocs))
        level0 = self.levels[0]
        owners = Block1D(level0.n, self.nprocs).owner(
            np.arange(level0.n, dtype=np.int64))
        executor = LocalSpmvExecutor(level0.A, owners, self.nprocs,
                                     comm_mode="eager")
        for node in executor.nodes:
            node.provider          # build providers outside the timing
        x = np.random.default_rng(13).standard_normal(level0.n)

        def run_serial(y: np.ndarray) -> float:
            start = time.perf_counter()
            for node in executor.nodes:
                y[node.rows] = node.provider.mxv(x[node.cols])
            return time.perf_counter() - start

        y_serial = np.empty(level0.n)
        serial_s = min(run_serial(y_serial)
                       for _ in range(self._CALIBRATE_REPEATS))
        if nthreads > 1:
            def node_task(node, y: np.ndarray) -> None:
                y[node.rows] = node.provider.mxv(x[node.cols])

            y_threaded = np.empty(level0.n)
            with ThreadPoolExecutor(max_workers=nthreads) as pool:
                def run_threaded() -> float:
                    start = time.perf_counter()
                    futures = [pool.submit(node_task, node, y_threaded)
                               for node in executor.nodes]
                    for future in futures:
                        future.result()
                    return time.perf_counter() - start

                threaded_s = min(run_threaded()
                                 for _ in range(self._CALIBRATE_REPEATS))
            if not np.array_equal(y_serial, y_threaded):
                raise AssertionError(
                    "hybrid node-local execution diverged from the "
                    "serial node loop — disjoint-slice dispatch broken"
                )
            speedup = serial_s / max(threaded_s, 1e-12)
        else:
            threaded_s = serial_s
            speedup = 1.0
        self.node_threads = nthreads
        self.node_speedup = max(speedup, self._MIN_NODE_SPEEDUP)
        self.executed_local = True
        with obs.span("dist/hybrid_calibrate", "dist") as sp:
            if sp is not None:
                sp.set(node_threads=nthreads,
                       node_speedup=self.node_speedup,
                       serial_seconds=serial_s,
                       threaded_seconds=threaded_s,
                       nprocs=self.nprocs, n=level0.n)

    def _vector_share(self, n: int) -> float:
        """Largest per-node share of an ``n``-vector (for local-op work)."""
        return float(-(-n // self.nprocs))

    def _dot_comm(self, n: int) -> None:
        self.tracker.allreduce_scalar(label="dot")
        stats = self.tracker.sync(label="dot")
        self._tick_superstep("cg/dot", _DOT_BYTES * self._vector_share(n),
                             stats.h)

    def _waxpby_cost(self, n: int) -> None:
        self._tick_local("cg/waxpby", _WAXPBY_BYTES * self._vector_share(n))

    # --- agglomerated-level pricing ------------------------------------------
    def _agg_share_bytes(self, k: int, n: int) -> int:
        """Node ``k``'s share of an ``n``-vector during gather/scatter."""
        return Block1D(n, self.nprocs).local_size(k) * 8

    def _agg_gather(self, fine: SimLevel, coarse: SimLevel) -> None:
        """Restriction into an agglomerated level: ship every node's
        share of the coarse residual to node 0 (one superstep)."""
        for k in range(1, self.nprocs):
            self.tracker.send(k, 0, self._agg_share_bytes(k, coarse.n),
                              label="agg_gather")
        self._close_superstep(
            "agg_gather", f"mg/L{fine.index}/restrict",
            _RESTRICT_COPY_BYTES * self._vector_share(coarse.n),
        )

    def _agg_scatter(self, fine: SimLevel, coarse: SimLevel) -> None:
        """Prolongation out of an agglomerated level: node 0 returns
        each node its share of the coarse correction (one superstep)."""
        for k in range(1, self.nprocs):
            self.tracker.send(0, k, self._agg_share_bytes(k, coarse.n),
                              label="agg_scatter")
        self._close_superstep(
            "agg_scatter", f"mg/L{fine.index}/prolong",
            _RESTRICT_COPY_BYTES * self._vector_share(coarse.n),
        )

    # --- exact numerics ------------------------------------------------------
    def _dot(self, u: np.ndarray, v: np.ndarray) -> float:
        value = float(np.dot(u, v))
        self._dot_comm(u.shape[0])
        return value

    def _norm(self, r: np.ndarray) -> float:
        return float(np.sqrt(self._dot(r, r)))

    def _spmv(self, level: SimLevel, x: np.ndarray, sync_label: str,
              timer_key: str) -> np.ndarray:
        if level.agglomerated:
            # the whole level lives on node 0: full work, no messages
            self._tick_local(timer_key, level.agg_spmv_work)
        else:
            self._spmv_comm(level, sync_label, timer_key)
        return level.A @ x

    def _smooth(self, level: SimLevel, z: np.ndarray, r: np.ndarray,
                sweeps: int) -> None:
        for _ in range(sweeps):
            self._half_sweep(level, z, r, range(level.ncolors))
            self._half_sweep(level, z, r,
                             range(level.ncolors - 1, -1, -1))

    def _half_sweep(self, level: SimLevel, z: np.ndarray, r: np.ndarray,
                    order) -> None:
        order = list(order)
        for pos, c in enumerate(order):
            rows = level.color_rows[c]
            s = level.color_blocks[c] @ z
            d = level.diag[rows]
            z[rows] = (r[rows] - s + z[rows] * d) / d
            if level.agglomerated:
                self._tick_local(f"mg/L{level.index}/rbgs",
                                 level.agg_color_work[c])
            else:
                nxt = order[pos + 1] if pos + 1 < len(order) else None
                self._rbgs_comm(level, c, nxt)

    def _vcycle(self, li: int, z: np.ndarray, r: np.ndarray) -> np.ndarray:
        level = self.levels[li]
        with obs.span(f"mg/L{li}", "mg",
                      {"level": li, "n": level.n,
                       "agglomerated": level.agglomerated}) as sp:
            modelled_before = self._seconds
            self._smooth(level, z, r, sweeps=1)      # pre-smoothing
            if li + 1 == len(self.levels):
                if sp is not None:
                    sp.tick(self._seconds - modelled_before)
                return z
            coarse = self.levels[li + 1]
            f = self._spmv(level, z, "mg_spmv", f"mg/L{li}/spmv")
            f *= -1.0
            f += 1.0 * r                              # f <- r - A z
            rc = f[level.injection].copy()            # restrict (injection)
            if coarse.agglomerated:
                if level.agglomerated:
                    # both levels already sit on node 0: a local copy
                    self._tick_local(f"mg/L{li}/restrict",
                                     _RESTRICT_COPY_BYTES * coarse.n)
                else:
                    self._agg_gather(level, coarse)
            else:
                self._restrict_comm(level, coarse)
            zc = np.zeros(coarse.n)
            self._vcycle(li + 1, zc, rc)
            z[level.injection] += zc                  # refine-and-add
            if coarse.agglomerated:
                if level.agglomerated:
                    self._tick_local(f"mg/L{li}/prolong",
                                     _RESTRICT_COPY_BYTES * coarse.n)
                else:
                    self._agg_scatter(level, coarse)
            else:
                self._prolong_comm(level, coarse)
            self._smooth(level, z, r, sweeps=1)       # post-smoothing
            if sp is not None:
                # modelled time at this level *includes* coarser levels
                # (they execute within this span's dynamic extent, just
                # like the span nesting shows)
                sp.tick(self._seconds - modelled_before)
        return z

    def _precondition(self, r: np.ndarray) -> np.ndarray:
        z = np.zeros(self.n)
        self._vcycle(0, z, r)
        return z

    # --- run bookkeeping -----------------------------------------------------
    def _fresh_clocks(self) -> None:
        """Reset every accumulator a solve writes into."""
        self.tracker = CommTracker(self.nprocs)
        self.timers = TimerRegistry()
        self.comm_timers = TimerRegistry()
        self._seconds = 0.0
        self._comm_seconds = 0.0
        self._exposed_comm_seconds = 0.0

    def _arm_metrics(self):
        """Arm the per-run metric taps; returns the CG progress tuple
        ``(res_series, iter_gauge, res_gauge)`` (Nones when off)."""
        registry = obs.metrics_registry()
        self._m_supersteps = self._m_h = self._m_comm = None
        res_series = iter_gauge = res_gauge = None
        if registry is not None:
            self._m_supersteps = registry.counter(
                "dist_supersteps_total", "BSP supersteps closed")
            self._m_h = registry.series(
                "dist_h_relation", "h-relation bytes per superstep")
            self._m_comm = registry.counter(
                "dist_comm_seconds",
                "modelled wire seconds by exposure (full/exposed/hidden)")
            res_series = registry.series(
                "dist_cg_residual",
                "simulated CG residual 2-norm per iteration")
            iter_gauge = registry.gauge(
                "dist_cg_iteration",
                "current simulated-CG iteration (live progress)")
            res_gauge = registry.gauge(
                "dist_cg_residual_last",
                "most recent simulated-CG residual 2-norm")
        return res_series, iter_gauge, res_gauge

    def _arm_fault_metrics(self) -> None:
        registry = obs.metrics_registry()
        self._m_faults = self._m_retries = None
        self._m_ckpt = self._m_recoveries = None
        if registry is not None:
            self._m_faults = registry.counter(
                "faults_injected_total", "injected fault events by kind")
            self._m_retries = registry.counter(
                "exchange_retries_total",
                "lost-exchange re-deliveries priced as extra supersteps")
            self._m_ckpt = registry.counter(
                "checkpoint_seconds",
                "modelled seconds spent taking CG-state checkpoints")
            self._m_recoveries = registry.counter(
                "dist_recoveries_total",
                "crash recoveries (rollback + repartition onto survivors)")

    def _on_fault_event(self, event) -> None:
        """Mirror every injector event into the trace and metrics."""
        if obs.enabled():
            obs.event(f"fault/{event.kind}", "fault", event.as_dict())
        if (self._m_faults is not None
                and event.kind in ("straggler", "node_speeds",
                                   "message_loss", "crash")):
            self._m_faults.inc(1, kind=event.kind)

    # --- checkpoint / restart ------------------------------------------------
    #: vectors a CG checkpoint persists (x, r, p)
    _CKPT_VECTORS = 3

    def _take_checkpoint(self, k: int, x: np.ndarray, r: np.ndarray,
                         p: np.ndarray, rtz: float, normr: float,
                         normr0: float, residuals: List[float]) -> None:
        """Snapshot CG state after iteration ``k``, priced as a gather.

        Every node ships its share of the three CG vectors to node 0
        (which persists them to stable storage) — one superstep.  The
        in-memory snapshot is taken *after* the superstep is priced, so
        a crash landing on the checkpoint barrier leaves the previous
        snapshot as the rollback target, exactly like a torn write to
        stable storage would.
        """
        with obs.span("fault/checkpoint", "fault", {"iteration": k}) as sp:
            before = self._seconds
            for node in range(1, self.nprocs):
                self.tracker.send(
                    node, 0,
                    self._CKPT_VECTORS * self._agg_share_bytes(node, self.n),
                    label="checkpoint")
            stats = self.tracker.sync(label="checkpoint")
            self._tick_superstep(
                "fault/checkpoint",
                _RESTRICT_COPY_BYTES * self._CKPT_VECTORS
                * self._vector_share(self.n),
                stats.h)
            delta = self._seconds - before
            self._checkpoint_seconds += delta
            self._checkpoints += 1
            self._checkpoint_state = CGCheckpoint(
                k=k, x=x.copy(), r=r.copy(), p=p.copy(), rtz=rtz,
                normr=normr, normr0=normr0, residuals=list(residuals))
            if self._m_ckpt is not None:
                self._m_ckpt.inc(delta)
            self._injector.record("checkpoint",
                                  self._injector.superstep - 1,
                                  iteration=k)
            if sp is not None:
                sp.set(seconds=delta)
                sp.tick(delta)

    def _price_recovery(self, checkpoint: CGCheckpoint) -> None:
        """Price the post-repartition restore: node 0 scatters each
        survivor its share of the checkpointed vectors (one superstep
        on the *new* node count)."""
        with obs.span("fault/restore", "fault",
                      {"iteration": checkpoint.k,
                       "nprocs": self.nprocs}) as sp:
            before = self._seconds
            for node in range(1, self.nprocs):
                self.tracker.send(
                    0, node,
                    self._CKPT_VECTORS * self._agg_share_bytes(node, self.n),
                    label="restore")
            stats = self.tracker.sync(label="restore")
            self._tick_superstep(
                "fault/restore",
                _RESTRICT_COPY_BYTES * self._CKPT_VECTORS
                * self._vector_share(self.n),
                stats.h)
            if sp is not None:
                sp.tick(self._seconds - before)

    # --- crash recovery ------------------------------------------------------
    def _respawn_kwargs(self) -> dict:
        """Constructor kwargs a survivor run inherits (subclasses add
        their own).  Hybrid calibration is not re-run: the measured
        node_speedup is adopted instead."""
        return dict(
            mg_levels=self.mg_levels,
            machine=self.machine,
            comm_mode=self.comm_mode,
            agglomerate_below=self.agglomerate_below,
            execute_local=False,
            node_threads=self.node_threads,
        )

    def _respawn(self, nprocs: int) -> "SimulatedDistRun":
        """Rebuild this run on ``nprocs`` surviving nodes, repartitioning
        every level with the backend's own partitioner."""
        return type(self)(self.problem, nprocs, **self._respawn_kwargs())

    def _adopt(self, prior: "SimulatedDistRun") -> None:
        """Continue ``prior``'s solve on this (survivor) run: inherit
        its clocks, fault state and metric taps.  The timer registries
        are shared objects, so the final run's totals are the honest
        whole-execution time including every failed attempt; only the
        tracker restarts (its per-node arrays are sized to the new
        node count)."""
        self.timers = prior.timers
        self.comm_timers = prior.comm_timers
        self._seconds = prior._seconds
        self._comm_seconds = prior._comm_seconds
        self._exposed_comm_seconds = prior._exposed_comm_seconds
        self.tracker = CommTracker(self.nprocs)
        self.faults = prior.faults
        self._injector = prior._injector
        self._checkpoint_state = prior._checkpoint_state
        self._checkpoint_seconds = prior._checkpoint_seconds
        self._checkpoints = prior._checkpoints
        self._current_iteration = prior._current_iteration
        self._m_supersteps = prior._m_supersteps
        self._m_h = prior._m_h
        self._m_comm = prior._m_comm
        self._m_faults = prior._m_faults
        self._m_retries = prior._m_retries
        self._m_ckpt = prior._m_ckpt
        self._m_recoveries = prior._m_recoveries
        self.node_speedup = prior.node_speedup
        self.node_threads = prior.node_threads
        self.executed_local = prior.executed_local

    # --- the resilient execution loop ----------------------------------------
    def _run_cg_resilient(self, max_iters: int, use_mg: bool,
                          tolerance: float) -> DistRunResult:
        """Execute the solve under the active fault plan.

        The numerics are the same transcription :meth:`run_cg` runs;
        only pricing degrades (stragglers, heterogeneous speeds, retry
        supersteps) and the execution path grows checkpoint supersteps
        and — on a planned crash — rollback: repartition onto the
        survivors, restore the last snapshot, re-execute from there.
        The recovered residual history therefore equals the clean
        run's exactly, while ``modelled_seconds`` honestly includes
        checkpoint overhead, rollback and re-execution.
        """
        injector = FaultInjector(self.faults, self.nprocs)
        injector.on_event = self._on_fault_event
        run = self
        run._injector = injector
        run._checkpoint_state = None
        run._checkpoint_seconds = 0.0
        run._checkpoints = 0
        run._current_iteration = 0
        run._fresh_clocks()
        res_series, iter_gauge, res_gauge = run._arm_metrics()
        run._arm_fault_metrics()
        injector.announce_speeds()
        if run.execute_local and not run.executed_local:
            run._calibrate_hybrid()

        initial_nprocs = self.nprocs
        reexecuted = 0
        prior_supersteps = 0
        prior_bytes = 0
        pending_recovery: Optional[CGCheckpoint] = None
        with obs.span("dist/run_cg", "dist", {
            "backend": self.backend, "nprocs": self.nprocs, "n": self.n,
            "mode": self.comm_mode, "machine": self.machine.name,
            "mg_levels": self.mg_levels,
            "node_speedup": self.node_speedup,
            "faulted": True,
        }) as rsp:
            while True:
                try:
                    if pending_recovery is not None:
                        run._price_recovery(pending_recovery)
                    iterations, residuals = run._cg_attempt(
                        max_iters, use_mg, tolerance,
                        resume=pending_recovery,
                        res_series=res_series, iter_gauge=iter_gauge,
                        res_gauge=res_gauge)
                    break
                except NodeCrash as crash:
                    checkpoint = run._checkpoint_state
                    resume_k = checkpoint.k if checkpoint is not None else 0
                    reexecuted += max(run._current_iteration - resume_k, 0)
                    prior_supersteps += run.tracker.num_syncs
                    prior_bytes += run.tracker.total_bytes
                    survivors = injector.alive_count
                    with obs.span("fault/recovery", "fault", {
                        "crashed_node": crash.node,
                        "superstep": crash.superstep,
                        "survivors": survivors,
                        "resume_iteration": resume_k,
                    }):
                        new_run = run._respawn(survivors)
                    new_run._adopt(run)
                    injector.recoveries += 1
                    injector.record(
                        "recovery", injector.superstep, node=crash.node,
                        survivors=survivors, new_nprocs=new_run.nprocs,
                        resume_iteration=resume_k,
                        from_checkpoint=checkpoint is not None)
                    if run._m_recoveries is not None:
                        run._m_recoveries.inc(1)
                    pending_recovery = checkpoint
                    run = new_run
            if rsp is not None:
                rsp.set(iterations=iterations,
                        recoveries=injector.recoveries,
                        final_nprocs=run.nprocs)
                rsp.tick(run._seconds)

        manifest, run_metrics = run._obs_attachments(iterations)
        resilience = {
            "plan": self.faults.to_dict(),
            "seed": self.faults.seed,
            "events": [e.as_dict() for e in injector.events],
            "injected": injector.injected_counts(),
            "recoveries": injector.recoveries,
            "checkpoints": run._checkpoints,
            "checkpoint_seconds": run._checkpoint_seconds,
            "exchange_retries": injector.exchange_retries,
            "initial_nprocs": initial_nprocs,
            "final_nprocs": run.nprocs,
            "reexecuted_iterations": reexecuted,
            "supersteps_total": prior_supersteps + run.tracker.num_syncs,
            "comm_bytes_total": prior_bytes + run.tracker.total_bytes,
        }
        if run_metrics is not None:
            run_metrics["recoveries"] = injector.recoveries
            run_metrics["checkpoint_seconds"] = run._checkpoint_seconds
            run_metrics["exchange_retries"] = injector.exchange_retries
        return DistRunResult(
            backend=run.backend,
            nprocs=run.nprocs,
            n=run.n,
            iterations=iterations,
            residuals=residuals,
            modelled_seconds=run._seconds,
            timers=run.timers,
            tracker=run.tracker,
            mg_levels=run.mg_levels,
            comm_mode=run.comm_mode,
            comm_seconds=run._comm_seconds,
            exposed_comm_seconds=run._exposed_comm_seconds,
            comm_timers=run.comm_timers,
            machine=run.machine.name,
            manifest=manifest,
            metrics=run_metrics,
            executed_local=run.executed_local,
            node_threads=run.node_threads or 0,
            node_speedup=run.node_speedup,
            resilience=resilience,
        )

    def _cg_attempt(self, max_iters: int, use_mg: bool, tolerance: float,
                    resume: Optional[CGCheckpoint], res_series,
                    iter_gauge, res_gauge):
        """One (re)execution attempt of the CG loop.

        ``resume=None`` starts from the problem's initial guess with
        exactly :meth:`run_cg`'s operation sequence; otherwise CG state
        is restored from the checkpoint and the loop re-enters at
        ``resume.k + 1`` — on the ``k > 1`` beta branch, with ``rtz``
        restored, so every subsequent residual equals the clean run's.
        Raises :class:`~repro.dist.faults.NodeCrash` when the injector
        detects a planned failure at a barrier.
        """
        level0 = self.levels[0]
        n = self.n
        if resume is None:
            b = self.problem.b.to_dense()
            x = self.problem.x0.to_dense()
            Ap = self._spmv(level0, x, "spmv", "cg/spmv")
            r = np.multiply(b, 1.0)
            r += -1.0 * Ap                             # r <- b - A x
            self._waxpby_cost(n)
            normr0 = normr = self._norm(r)
            residuals = [normr]
            if res_series is not None:
                res_series.observe(normr, backend=self.backend)
            rtz = 0.0
            p = np.empty(n)
            k_start = 1
            iterations = 0
        else:
            x = resume.x.copy()
            r = resume.r.copy()
            p = resume.p.copy()
            rtz = resume.rtz
            normr = resume.normr
            normr0 = resume.normr0
            residuals = list(resume.residuals)
            k_start = resume.k + 1
            iterations = resume.k
        ckpt_plan = self.faults.checkpoint
        if normr0 != 0.0:
            for k in range(k_start, max_iters + 1):
                if tolerance > 0 and normr / normr0 <= tolerance:
                    break
                self._current_iteration = k
                with obs.span("cg/iteration", "cg", {"k": k}) as sp:
                    modelled_before = self._seconds
                    if use_mg:
                        z = self._precondition(r)      # z <- M r
                    else:
                        z = np.multiply(r, 1.0)
                        z += 0.0 * r                   # z <- r
                        self._waxpby_cost(n)
                    if k == 1:
                        np.multiply(z, 1.0, out=p)
                        p += 0.0 * z                   # p <- z
                        self._waxpby_cost(n)
                        rtz = self._dot(r, z)
                    else:
                        rtz_old = rtz
                        rtz = self._dot(r, z)
                        beta = rtz / rtz_old
                        p *= beta
                        p += 1.0 * z                   # p <- z + beta p
                        self._waxpby_cost(n)
                    Ap = self._spmv(level0, p, "spmv", "cg/spmv")
                    pAp = self._dot(p, Ap)
                    alpha = rtz / pAp
                    x *= 1.0
                    x += alpha * p                     # x <- x + alpha p
                    self._waxpby_cost(n)
                    r *= 1.0
                    r += -alpha * Ap                   # r <- r - alpha Ap
                    self._waxpby_cost(n)
                    normr = self._norm(r)
                    if sp is not None:
                        sp.set(normr=normr)
                        sp.tick(self._seconds - modelled_before)
                residuals.append(normr)
                if res_series is not None:
                    res_series.observe(normr, backend=self.backend)
                    iter_gauge.set(k)
                    res_gauge.set(normr)
                iterations = k
                if (ckpt_plan is not None and k % ckpt_plan.interval == 0
                        and k < max_iters):
                    self._take_checkpoint(k, x, r, p, rtz, normr, normr0,
                                          residuals)
        return iterations, residuals

    def run_cg(self, max_iters: int = 50, use_mg: bool = True,
               tolerance: float = 0.0) -> DistRunResult:
        """Simulate a full preconditioned CG solve.

        The iteration structure transcribes :func:`repro.hpcg.cg.pcg`
        operation for operation, so the residual history is
        bit-identical to the serial driver's — in either communication
        mode, which changes pricing only.

        Under an *active* :class:`~repro.dist.faults.FaultPlan` the
        solve routes through the resilient execution loop instead
        (same numerics, degraded pricing, checkpoint/restart recovery);
        ``faults=None`` or an empty plan keeps this exact path.
        """
        if self.faults is not None and self.faults.active():
            return self._run_cg_resilient(max_iters, use_mg, tolerance)
        self._fresh_clocks()
        res_series, iter_gauge, res_gauge = self._arm_metrics()
        level0 = self.levels[0]
        n = self.n
        b = self.problem.b.to_dense()
        x = self.problem.x0.to_dense()

        if self.execute_local and not self.executed_local:
            self._calibrate_hybrid()

        run_span = obs.span("dist/run_cg", "dist", {
            "backend": self.backend, "nprocs": self.nprocs, "n": n,
            "mode": self.comm_mode, "machine": self.machine.name,
            "mg_levels": self.mg_levels,
            "node_speedup": self.node_speedup,
        })
        with run_span as rsp:
            Ap = self._spmv(level0, x, "spmv", "cg/spmv")
            r = np.multiply(b, 1.0)
            r += -1.0 * Ap                             # r <- b - A x
            self._waxpby_cost(n)
            normr0 = normr = self._norm(r)
            residuals = [normr]
            if res_series is not None:
                res_series.observe(normr, backend=self.backend)

            iterations = 0
            if normr0 != 0.0:
                rtz = 0.0
                p = np.empty(n)
                for k in range(1, max_iters + 1):
                    if tolerance > 0 and normr / normr0 <= tolerance:
                        break
                    with obs.span("cg/iteration", "cg", {"k": k}) as sp:
                        modelled_before = self._seconds
                        if use_mg:
                            z = self._precondition(r)  # z <- M r
                        else:
                            z = np.multiply(r, 1.0)
                            z += 0.0 * r               # z <- r
                            self._waxpby_cost(n)
                        if k == 1:
                            np.multiply(z, 1.0, out=p)
                            p += 0.0 * z               # p <- z
                            self._waxpby_cost(n)
                            rtz = self._dot(r, z)
                        else:
                            rtz_old = rtz
                            rtz = self._dot(r, z)
                            beta = rtz / rtz_old
                            p *= beta
                            p += 1.0 * z               # p <- z + beta p
                            self._waxpby_cost(n)
                        Ap = self._spmv(level0, p, "spmv", "cg/spmv")
                        pAp = self._dot(p, Ap)
                        alpha = rtz / pAp
                        x *= 1.0
                        x += alpha * p                 # x <- x + alpha p
                        self._waxpby_cost(n)
                        r *= 1.0
                        r += -alpha * Ap               # r <- r - alpha Ap
                        self._waxpby_cost(n)
                        normr = self._norm(r)
                        if sp is not None:
                            sp.set(normr=normr)
                            sp.tick(self._seconds - modelled_before)
                    residuals.append(normr)
                    if res_series is not None:
                        res_series.observe(normr, backend=self.backend)
                        iter_gauge.set(k)
                        res_gauge.set(normr)
                    iterations = k
            if rsp is not None:
                rsp.set(iterations=iterations)
                rsp.tick(self._seconds)

        manifest, run_metrics = self._obs_attachments(iterations)
        return DistRunResult(
            backend=self.backend,
            nprocs=self.nprocs,
            n=n,
            iterations=iterations,
            residuals=residuals,
            modelled_seconds=self._seconds,
            timers=self.timers,
            tracker=self.tracker,
            mg_levels=self.mg_levels,
            comm_mode=self.comm_mode,
            comm_seconds=self._comm_seconds,
            exposed_comm_seconds=self._exposed_comm_seconds,
            comm_timers=self.comm_timers,
            machine=self.machine.name,
            manifest=manifest,
            metrics=run_metrics,
            executed_local=self.executed_local,
            node_threads=self.node_threads or 0,
            node_speedup=self.node_speedup,
        )

    def _obs_attachments(self, iterations: int):
        """Manifest + compact metrics for the result (None when off)."""
        if not obs.enabled():
            return None, None
        recorder = obs.manifest_recorder()
        recorder.record_config(dist={
            "backend": self.backend,
            "nprocs": self.nprocs,
            "mg_levels": self.mg_levels,
            "machine": self.machine.name,
            "comm_mode": self.comm_mode,
            "overlap_efficiency": self.overlap_efficiency,
            "agglomerate_below": self.agglomerate_below,
            "execute_local": self.execute_local,
            "node_threads": self.node_threads or 0,
            "node_speedup": self.node_speedup,
        })
        if self.faults is not None and self.faults.active():
            recorder.record_config(faults=self.faults.to_dict())
            recorder.record_seed("fault_plan", self.faults.seed)
        manifest = obs.current().build_manifest()
        run_metrics = {
            "supersteps": self.tracker.num_syncs,
            "comm_bytes": self.tracker.total_bytes,
            "total_h": self.tracker.total_h,
            "modelled_seconds": self._seconds,
            "comm_seconds": self._comm_seconds,
            "exposed_comm_seconds": self._exposed_comm_seconds,
            "hidden_comm_seconds": (
                self._comm_seconds - self._exposed_comm_seconds),
            "iterations": iterations,
            "node_speedup": self.node_speedup,
        }
        return manifest, run_metrics
