"""Shared engine of the simulated distributed runs.

The three backends (:class:`~repro.dist.hybrid.HybridALPRun`,
:class:`~repro.dist.hybrid2d.Hybrid2DRun`,
:class:`~repro.dist.refdist.RefDistRun`) run *identical numerics*: a
scipy transcription of the serial GraphBLAS CG + multigrid V-cycle
whose every floating-point operation mirrors the substrate's kernels —
the same CSR row reductions, the same ``waxpby`` in-place update forms,
the same colour order — so residual histories are bit-identical to
``run_hpcg``.  What differs per backend is *communication*: subclasses
override the ``*_comm`` hooks to record sends on the
:class:`~repro.dist.comm.CommTracker` and to price each superstep on
the BSP machine.

This separation is the point of the simulation: convergence is provably
unchanged by the distribution (the paper's Section V precondition), so
backends compete purely on the communication they induce.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np
import scipy.sparse as sp

from repro.dist.bsp import ARM_CLUSTER_NODE, BSPMachine
from repro.dist.comm import CommTracker
from repro.dist.result import DistRunResult
from repro.grid import Grid3D, stencil_coo
from repro.hpcg.coloring import lattice_coloring
from repro.hpcg.problem import Problem
from repro.util.errors import InvalidValue
from repro.util.timer import TimerRegistry

# bytes-per-element cost coefficients, matching the accounting of
# repro.graphblas.backend.record and repro.perf.model.ref_stream_from_alp
_MXV_NNZ_BYTES = 16.0
_MXV_ROW_BYTES = 16.0
_DOT_BYTES = 16.0
_WAXPBY_BYTES = 24.0
_RESTRICT_MXV_BYTES = 28.0    # ALP: materialised injection matrix mxv
_RESTRICT_COPY_BYTES = 16.0   # Ref: raw index copy


class SimLevel:
    """One multigrid level's numeric data (operator, colours, injection)."""

    def __init__(self, index: int, grid: Grid3D, A: sp.csr_matrix,
                 stencil: str):
        self.index = index
        self.grid = grid
        self.A = A
        self.n = A.shape[0]
        self.diag = A.diagonal()
        self.colors = lattice_coloring(grid, stencil)
        self.ncolors = int(self.colors.max()) + 1
        self.color_rows = [np.flatnonzero(self.colors == c)
                           for c in range(self.ncolors)]
        self.color_blocks = [A[rows, :] for rows in self.color_rows]
        # set by the hierarchy builder when a coarser level exists
        self.injection: Optional[np.ndarray] = None


class SimulatedDistRun:
    """Base class: exact CG+MG numerics with pluggable communication."""

    backend = "dist"

    def __init__(self, problem: Problem, nprocs: int, mg_levels: int = 4,
                 machine: BSPMachine = ARM_CLUSTER_NODE):
        if nprocs < 1:
            raise InvalidValue(f"need at least one process, got {nprocs}")
        if mg_levels < 1:
            raise InvalidValue(f"need at least one MG level, got {mg_levels}")
        if problem.grid.max_mg_levels() < mg_levels:
            raise InvalidValue(
                f"grid {problem.grid.dims} supports at most "
                f"{problem.grid.max_mg_levels()} MG levels, "
                f"requested {mg_levels}"
            )
        self.problem = problem
        self.nprocs = nprocs
        self.mg_levels = mg_levels
        self.machine = machine
        self.n = problem.n
        stencil = getattr(problem, "stencil", "27pt")
        self.levels: List[SimLevel] = []
        grid = problem.grid
        A = problem.A.to_scipy()
        for index in range(mg_levels):
            level = SimLevel(index, grid, A, stencil)
            self.levels.append(level)
            if index + 1 < mg_levels:
                level.injection = grid.injection_indices()
                grid = grid.coarsen()
                rows, cols, vals = stencil_coo(grid, stencil)
                A = sp.csr_matrix((vals, (rows, cols)),
                                  shape=(grid.npoints, grid.npoints))
                A.sort_indices()
        for level in self.levels:
            self._init_level_comm(level)
        # populated by run_cg
        self.tracker: Optional[CommTracker] = None
        self.timers: Optional[TimerRegistry] = None
        self._seconds = 0.0

    # --- backend hooks -------------------------------------------------------
    def _init_level_comm(self, level: SimLevel) -> None:
        """Attach the backend's partition/communication data to a level."""
        raise NotImplementedError

    def _spmv_comm(self, level: SimLevel, sync_label: str,
                   timer_key: str) -> None:
        """Record the communication of one full operator mxv."""
        raise NotImplementedError

    def _rbgs_comm(self, level: SimLevel, color: int) -> None:
        """Record the communication of one colour's masked mxv."""
        raise NotImplementedError

    def _restrict_comm(self, fine: SimLevel, coarse: SimLevel) -> None:
        raise NotImplementedError

    def _prolong_comm(self, fine: SimLevel, coarse: SimLevel) -> None:
        raise NotImplementedError

    # --- pricing helpers -----------------------------------------------------
    def _tick(self, key: str, seconds: float) -> None:
        self.timers.tick(key, seconds)
        self._seconds += seconds

    def _tick_superstep(self, key: str, work_bytes: float, h: int) -> None:
        self._tick(key, self.machine.superstep_time(work_bytes, h))

    def _tick_local(self, key: str, work_bytes: float) -> None:
        self._tick(key, self.machine.work_time(work_bytes))

    def _vector_share(self, n: int) -> float:
        """Largest per-node share of an ``n``-vector (for local-op work)."""
        return float(-(-n // self.nprocs))

    def _dot_comm(self, n: int) -> None:
        self.tracker.allreduce_scalar(label="dot")
        stats = self.tracker.sync(label="dot")
        self._tick_superstep("cg/dot", _DOT_BYTES * self._vector_share(n),
                             stats.h)

    def _waxpby_cost(self, n: int) -> None:
        self._tick_local("cg/waxpby", _WAXPBY_BYTES * self._vector_share(n))

    # --- exact numerics ------------------------------------------------------
    def _dot(self, u: np.ndarray, v: np.ndarray) -> float:
        value = float(np.dot(u, v))
        self._dot_comm(u.shape[0])
        return value

    def _norm(self, r: np.ndarray) -> float:
        return float(np.sqrt(self._dot(r, r)))

    def _spmv(self, level: SimLevel, x: np.ndarray, sync_label: str,
              timer_key: str) -> np.ndarray:
        self._spmv_comm(level, sync_label, timer_key)
        return level.A @ x

    def _smooth(self, level: SimLevel, z: np.ndarray, r: np.ndarray,
                sweeps: int) -> None:
        for _ in range(sweeps):
            self._half_sweep(level, z, r, range(level.ncolors))
            self._half_sweep(level, z, r,
                             range(level.ncolors - 1, -1, -1))

    def _half_sweep(self, level: SimLevel, z: np.ndarray, r: np.ndarray,
                    order) -> None:
        for c in order:
            rows = level.color_rows[c]
            s = level.color_blocks[c] @ z
            d = level.diag[rows]
            z[rows] = (r[rows] - s + z[rows] * d) / d
            self._rbgs_comm(level, c)

    def _vcycle(self, li: int, z: np.ndarray, r: np.ndarray) -> np.ndarray:
        level = self.levels[li]
        self._smooth(level, z, r, sweeps=1)          # pre-smoothing
        if li + 1 == len(self.levels):
            return z
        coarse = self.levels[li + 1]
        f = self._spmv(level, z, "mg_spmv", f"mg/L{li}/spmv")
        f *= -1.0
        f += 1.0 * r                                  # f <- r - A z
        rc = f[level.injection].copy()                # restrict (injection)
        self._restrict_comm(level, coarse)
        zc = np.zeros(coarse.n)
        self._vcycle(li + 1, zc, rc)
        z[level.injection] += zc                      # refine-and-add
        self._prolong_comm(level, coarse)
        self._smooth(level, z, r, sweeps=1)           # post-smoothing
        return z

    def _precondition(self, r: np.ndarray) -> np.ndarray:
        z = np.zeros(self.n)
        self._vcycle(0, z, r)
        return z

    def run_cg(self, max_iters: int = 50, use_mg: bool = True,
               tolerance: float = 0.0) -> DistRunResult:
        """Simulate a full preconditioned CG solve.

        The iteration structure transcribes :func:`repro.hpcg.cg.pcg`
        operation for operation, so the residual history is
        bit-identical to the serial driver's.
        """
        self.tracker = CommTracker(self.nprocs)
        self.timers = TimerRegistry()
        self._seconds = 0.0
        level0 = self.levels[0]
        n = self.n
        b = self.problem.b.to_dense()
        x = self.problem.x0.to_dense()

        Ap = self._spmv(level0, x, "spmv", "cg/spmv")
        r = np.multiply(b, 1.0)
        r += -1.0 * Ap                                 # r <- b - A x
        self._waxpby_cost(n)
        normr0 = normr = self._norm(r)
        residuals = [normr]

        iterations = 0
        if normr0 != 0.0:
            rtz = 0.0
            p = np.empty(n)
            for k in range(1, max_iters + 1):
                if tolerance > 0 and normr / normr0 <= tolerance:
                    break
                if use_mg:
                    z = self._precondition(r)          # z <- M r
                else:
                    z = np.multiply(r, 1.0)
                    z += 0.0 * r                       # z <- r
                    self._waxpby_cost(n)
                if k == 1:
                    np.multiply(z, 1.0, out=p)
                    p += 0.0 * z                       # p <- z
                    self._waxpby_cost(n)
                    rtz = self._dot(r, z)
                else:
                    rtz_old = rtz
                    rtz = self._dot(r, z)
                    beta = rtz / rtz_old
                    p *= beta
                    p += 1.0 * z                       # p <- z + beta p
                    self._waxpby_cost(n)
                Ap = self._spmv(level0, p, "spmv", "cg/spmv")
                pAp = self._dot(p, Ap)
                alpha = rtz / pAp
                x *= 1.0
                x += alpha * p                         # x <- x + alpha p
                self._waxpby_cost(n)
                r *= 1.0
                r += -alpha * Ap                       # r <- r - alpha Ap
                self._waxpby_cost(n)
                normr = self._norm(r)
                residuals.append(normr)
                iterations = k

        return DistRunResult(
            backend=self.backend,
            nprocs=self.nprocs,
            n=n,
            iterations=iterations,
            residuals=residuals,
            modelled_seconds=self._seconds,
            timers=self.timers,
            tracker=self.tracker,
            mg_levels=self.mg_levels,
        )


def per_node_rows_and_nnz(A: sp.csr_matrix, owners: np.ndarray, p: int):
    """Per-node owned-row counts and stored-entry counts."""
    row_nnz = np.diff(A.indptr).astype(np.int64)
    rows = np.bincount(owners, minlength=p).astype(np.int64)
    nnz = np.bincount(owners, weights=row_nnz, minlength=p).astype(np.int64)
    return rows, nnz


def per_node_color_work(A: sp.csr_matrix, owners: np.ndarray,
                        colors: np.ndarray, p: int, ncolors: int):
    """Per-colour worst-node mxv work in bytes."""
    row_nnz = np.diff(A.indptr).astype(np.int64)
    key = owners * ncolors + colors
    nnz = np.bincount(key, weights=row_nnz,
                      minlength=p * ncolors).reshape(p, ncolors)
    rows = np.bincount(key, minlength=p * ncolors).reshape(p, ncolors)
    work = nnz * _MXV_NNZ_BYTES + rows * _MXV_ROW_BYTES
    return work.max(axis=0)
