"""Message accounting for the simulated distributed backends.

A :class:`CommTracker` stands in for the network: simulated executors
:meth:`send` point-to-point messages (or use the collective helpers) and
close each BSP superstep with :meth:`sync`.  Nothing is transmitted —
the tracker only records who moved how many bytes — but the accounting
follows BSP conventions:

* a self-send is free (it is a local copy);
* empty messages are elided (no zero-byte packets on the wire);
* the **h-relation** of a superstep is the largest per-node traffic,
  ``max over nodes of max(sent, received)`` — the quantity the BSP cost
  model charges for.

Labels attach semantics to the trace: sends and syncs can be tagged
(``"spmv"``, ``"rbgs_mxv"``, ``"halo"``, ...) so experiments can ask
"how many supersteps did the smoother cost" without re-running.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.util.errors import InvalidValue


@dataclass
class SuperstepStats:
    """The closed ledger of one BSP superstep."""

    index: int
    sent: np.ndarray           # bytes sent per node
    received: np.ndarray       # bytes received per node
    messages: int              # point-to-point messages (self/empty elided)
    label: Optional[str] = None

    @property
    def total_bytes(self) -> int:
        return int(self.sent.sum())

    @property
    def h(self) -> int:
        """The h-relation: the busiest node's traffic in either direction."""
        if self.sent.size == 0:
            return 0
        return int(max(self.sent.max(), self.received.max()))


class CommTracker:
    """Records sends and supersteps for ``nprocs`` simulated nodes."""

    def __init__(self, nprocs: int):
        if nprocs < 1:
            raise InvalidValue(f"need at least one process, got {nprocs}")
        self.nprocs = nprocs
        self.supersteps: List[SuperstepStats] = []
        self.label_bytes: Dict[str, int] = {}
        self.label_syncs: Dict[str, int] = {}
        self._reset_pending()

    def _reset_pending(self) -> None:
        self._sent = np.zeros(self.nprocs, dtype=np.int64)
        self._received = np.zeros(self.nprocs, dtype=np.int64)
        self._messages = 0

    # --- point-to-point -----------------------------------------------------
    def send(self, src: int, dst: int, nbytes: int,
             label: Optional[str] = None) -> None:
        """Record ``nbytes`` moving from node ``src`` to node ``dst``."""
        if not (0 <= src < self.nprocs) or not (0 <= dst < self.nprocs):
            raise InvalidValue(
                f"rank out of range: {src}->{dst} with {self.nprocs} procs"
            )
        if nbytes < 0:
            raise InvalidValue(f"negative message size: {nbytes}")
        if src == dst or nbytes == 0:
            return
        self._sent[src] += nbytes
        self._received[dst] += nbytes
        self._messages += 1
        if label is not None:
            self.label_bytes[label] = self.label_bytes.get(label, 0) + nbytes

    # --- collectives --------------------------------------------------------
    def broadcast(self, root: int, nbytes: int,
                  label: Optional[str] = None) -> None:
        """``root`` sends ``nbytes`` to every other node."""
        for dst in range(self.nprocs):
            self.send(root, dst, nbytes, label=label)

    def allgather(self, sizes, label: Optional[str] = None) -> None:
        """Every node sends its share to every other node.

        ``sizes[k]`` is the number of bytes node ``k`` contributes; after
        the superstep every node holds all shares (the ALP backend's
        vector replication before each ``mxv``).
        """
        sizes = np.asarray(sizes)
        if sizes.shape[0] != self.nprocs:
            raise InvalidValue(
                f"allgather needs one share per node: got {sizes.shape[0]}, "
                f"expected {self.nprocs}"
            )
        for src in range(self.nprocs):
            nbytes = int(sizes[src])
            for dst in range(self.nprocs):
                self.send(src, dst, nbytes, label=label)

    def allreduce_scalar(self, nbytes: int = 8,
                         label: Optional[str] = None) -> None:
        """All-to-all exchange of one scalar (CG's dot products)."""
        for src in range(self.nprocs):
            for dst in range(self.nprocs):
                self.send(src, dst, nbytes, label=label)

    # --- supersteps ---------------------------------------------------------
    def sync(self, label: Optional[str] = None) -> SuperstepStats:
        """Close the current superstep and return its statistics."""
        stats = SuperstepStats(
            index=len(self.supersteps),
            sent=self._sent,
            received=self._received,
            messages=self._messages,
            label=label,
        )
        self.supersteps.append(stats)
        if label is not None:
            self.label_syncs[label] = self.label_syncs.get(label, 0) + 1
        self._reset_pending()
        return stats

    # --- aggregates ---------------------------------------------------------
    @property
    def total_bytes(self) -> int:
        return sum(s.total_bytes for s in self.supersteps)

    @property
    def num_syncs(self) -> int:
        return len(self.supersteps)

    @property
    def total_h(self) -> int:
        return sum(s.h for s in self.supersteps)

    def max_send_per_node(self) -> int:
        """The largest per-node send volume of any single superstep."""
        if not self.supersteps:
            return 0
        return int(max(s.sent.max() for s in self.supersteps))
