"""Message accounting for the simulated distributed backends.

A :class:`CommTracker` stands in for the network: simulated executors
:meth:`send` point-to-point messages (or use the collective helpers) and
close each BSP superstep with :meth:`sync`.  Nothing is transmitted —
the tracker only records who moved how many bytes — but the accounting
follows BSP conventions:

* a self-send is free (it is a local copy);
* empty messages are elided (no zero-byte packets on the wire);
* the **h-relation** of a superstep is the largest per-node traffic,
  ``max over nodes of max(sent, received)`` — the quantity the BSP cost
  model charges for.

Labels attach semantics to the trace: sends and syncs can be tagged
(``"spmv"``, ``"rbgs_mxv"``, ``"halo"``, ...) so experiments can ask
"how many supersteps did the smoother cost" without re-running.

Split-phase supersteps
----------------------

Real halo exchanges are posted asynchronously and waited on after some
independent local work (``MPI_Isend``/``MPI_Wait``).  The tracker
models that with :meth:`post` / :meth:`wait`: ``post`` turns the sends
recorded so far into an in-flight :class:`InFlightExchange`, local
compute performed while it is outstanding is tagged onto the handle
with :meth:`InFlightExchange.overlap`, and ``wait`` closes it into a
:class:`SuperstepStats` whose ``overlapped_work`` the BSP model can
hide behind the wire time.  ``sync`` remains the eager path and is
exactly ``wait(post())`` with nothing overlapped.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro import obs
from repro.util.errors import InvalidValue

#: Recognised communication modes for executors and simulated runs.
COMM_MODES = ("eager", "overlap")

#: Environment variable forcing a communication mode globally
#: (mirrors ``REPRO_SUBSTRATE``): truthy values select split-phase
#: overlapped exchanges everywhere a mode is not pinned explicitly.
OVERLAP_ENV = "REPRO_OVERLAP"

_TRUTHY = ("1", "true", "on", "yes", "overlap")
_FALSY = ("", "0", "false", "off", "no", "eager")


def resolve_comm_mode(mode: Optional[str] = None) -> str:
    """Resolve an explicit mode, the ``REPRO_OVERLAP`` force, or eager.

    Precedence mirrors the substrate registry: an explicit ``mode``
    wins, otherwise the environment force applies, otherwise the
    default-compatible ``"eager"``.
    """
    if mode is not None:
        if mode not in COMM_MODES:
            raise InvalidValue(
                f"unknown comm mode {mode!r}, expected one of {COMM_MODES}"
            )
        return mode
    raw = os.environ.get(OVERLAP_ENV, "").strip().lower()
    if raw in _TRUTHY:
        return "overlap"
    if raw in _FALSY:
        return "eager"
    raise InvalidValue(
        f"unrecognised {OVERLAP_ENV}={raw!r}: use 1/0, on/off, "
        f"overlap/eager"
    )


@dataclass
class SuperstepStats:
    """The closed ledger of one BSP superstep."""

    index: int
    sent: np.ndarray           # bytes sent per node
    received: np.ndarray       # bytes received per node
    messages: int              # point-to-point messages (self/empty elided)
    label: Optional[str] = None
    #: Local-compute bytes tagged as running while this exchange was in
    #: flight (only split-phase supersteps carry a nonzero value); the
    #: BSP model may hide wire time behind them.
    overlapped_work: float = 0.0
    #: True when the superstep was closed by ``post``/``wait`` rather
    #: than an eager ``sync``.
    posted: bool = False
    #: index of the superstep this one re-drives (fault injection: a
    #: lost exchange is resent as an extra superstep); None normally.
    retry_of: Optional[int] = None

    @property
    def total_bytes(self) -> int:
        return int(self.sent.sum())

    @property
    def h(self) -> int:
        """The h-relation: the busiest node's traffic in either direction."""
        if self.sent.size == 0:
            return 0
        return int(max(self.sent.max(), self.received.max()))


@dataclass
class InFlightExchange:
    """A posted, not-yet-waited exchange (the ``MPI_Request`` analogue)."""

    sent: np.ndarray
    received: np.ndarray
    messages: int
    label: Optional[str] = None
    overlapped_work: float = 0.0
    closed: bool = field(default=False, repr=False)

    def overlap(self, work_bytes: float) -> "InFlightExchange":
        """Tag ``work_bytes`` of local compute as overlapping this
        exchange's flight time (accumulates across calls)."""
        if work_bytes < 0:
            raise InvalidValue(f"negative overlapped work: {work_bytes}")
        if self.closed:
            raise InvalidValue("cannot overlap work on a waited exchange")
        self.overlapped_work += float(work_bytes)
        return self

    @property
    def h(self) -> int:
        if self.sent.size == 0:
            return 0
        return int(max(self.sent.max(), self.received.max()))


class CommTracker:
    """Records sends and supersteps for ``nprocs`` simulated nodes.

    Supports use as a context manager — ``with CommTracker(p) as t:`` —
    which verifies on exit that no posted exchange was left un-waited
    (a leaked ``wait`` is a deadlock in a real runtime).
    """

    def __init__(self, nprocs: int):
        if nprocs < 1:
            raise InvalidValue(f"need at least one process, got {nprocs}")
        self.nprocs = nprocs
        self.supersteps: List[SuperstepStats] = []
        self.label_bytes: Dict[str, int] = {}
        self.label_syncs: Dict[str, int] = {}
        self._in_flight: List[InFlightExchange] = []
        self._reset_pending()

    def _reset_pending(self) -> None:
        self._sent = np.zeros(self.nprocs, dtype=np.int64)
        self._received = np.zeros(self.nprocs, dtype=np.int64)
        self._messages = 0

    def reset(self) -> None:
        """Forget everything: supersteps, labels, pending sends and
        in-flight exchanges — the tracker is as freshly constructed."""
        self.supersteps = []
        self.label_bytes = {}
        self.label_syncs = {}
        self._in_flight = []
        self._reset_pending()

    # --- context manager ----------------------------------------------------
    def __enter__(self) -> "CommTracker":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is None and self._in_flight:
            raise InvalidValue(
                f"{len(self._in_flight)} posted exchange(s) never waited on"
            )
        return False

    # --- point-to-point -----------------------------------------------------
    def send(self, src: int, dst: int, nbytes: int,
             label: Optional[str] = None) -> None:
        """Record ``nbytes`` moving from node ``src`` to node ``dst``."""
        if not (0 <= src < self.nprocs) or not (0 <= dst < self.nprocs):
            raise InvalidValue(
                f"rank out of range: {src}->{dst} with {self.nprocs} procs"
            )
        if nbytes < 0:
            raise InvalidValue(f"negative message size: {nbytes}")
        if src == dst or nbytes == 0:
            return
        self._sent[src] += nbytes
        self._received[dst] += nbytes
        self._messages += 1
        if label is not None:
            self.label_bytes[label] = self.label_bytes.get(label, 0) + nbytes

    # --- collectives --------------------------------------------------------
    def broadcast(self, root: int, nbytes: int,
                  label: Optional[str] = None) -> None:
        """``root`` sends ``nbytes`` to every other node."""
        for dst in range(self.nprocs):
            self.send(root, dst, nbytes, label=label)

    def allgather(self, sizes, label: Optional[str] = None) -> None:
        """Every node sends its share to every other node.

        ``sizes[k]`` is the number of bytes node ``k`` contributes; after
        the superstep every node holds all shares (the ALP backend's
        vector replication before each ``mxv``).
        """
        sizes = np.asarray(sizes)
        if sizes.shape[0] != self.nprocs:
            raise InvalidValue(
                f"allgather needs one share per node: got {sizes.shape[0]}, "
                f"expected {self.nprocs}"
            )
        for src in range(self.nprocs):
            nbytes = int(sizes[src])
            for dst in range(self.nprocs):
                self.send(src, dst, nbytes, label=label)

    def allreduce_scalar(self, nbytes: int = 8,
                         label: Optional[str] = None) -> None:
        """All-to-all exchange of one scalar (CG's dot products)."""
        for src in range(self.nprocs):
            for dst in range(self.nprocs):
                self.send(src, dst, nbytes, label=label)

    # --- split-phase supersteps ---------------------------------------------
    def post(self, label: Optional[str] = None) -> InFlightExchange:
        """Turn the sends recorded so far into an in-flight exchange.

        Sends recorded afterwards belong to the *next* exchange (or the
        next eager superstep).  The exchange stays open — accumulating
        overlapped-work tags — until :meth:`wait` closes it.
        """
        handle = InFlightExchange(
            sent=self._sent,
            received=self._received,
            messages=self._messages,
            label=label,
        )
        self._in_flight.append(handle)
        self._reset_pending()
        return handle

    def wait(self, handle: Optional[InFlightExchange] = None,
             label: Optional[str] = None) -> SuperstepStats:
        """Close a posted exchange into a superstep (FIFO by default).

        The barrier semantics are unchanged — one ``wait`` is one
        superstep boundary — but the returned stats carry the work
        tagged onto the handle while it was in flight, which the BSP
        model may hide behind the wire time.
        """
        if handle is None:
            if not self._in_flight:
                raise InvalidValue("wait() with no posted exchange")
            handle = self._in_flight[0]
        if handle.closed:
            raise InvalidValue("exchange already waited on")
        try:
            self._in_flight.remove(handle)
        except ValueError:
            raise InvalidValue("handle does not belong to this tracker")
        handle.closed = True
        label = label if label is not None else handle.label
        stats = SuperstepStats(
            index=len(self.supersteps),
            sent=handle.sent,
            received=handle.received,
            messages=handle.messages,
            label=label,
            overlapped_work=handle.overlapped_work,
            posted=True,
        )
        self.supersteps.append(stats)
        if label is not None:
            self.label_syncs[label] = self.label_syncs.get(label, 0) + 1
        if obs.enabled():
            obs.event("comm/wait", "comm", {
                "index": stats.index, "label": label, "h": stats.h,
                "bytes": stats.total_bytes, "messages": stats.messages,
                "posted": True,
                "overlapped_work": stats.overlapped_work,
            })
        return stats

    @property
    def in_flight(self) -> int:
        """Number of posted exchanges not yet waited on."""
        return len(self._in_flight)

    # --- eager supersteps ---------------------------------------------------
    def sync(self, label: Optional[str] = None) -> SuperstepStats:
        """Close the current superstep and return its statistics."""
        stats = SuperstepStats(
            index=len(self.supersteps),
            sent=self._sent,
            received=self._received,
            messages=self._messages,
            label=label,
        )
        self.supersteps.append(stats)
        if label is not None:
            self.label_syncs[label] = self.label_syncs.get(label, 0) + 1
        self._reset_pending()
        if obs.enabled():
            obs.event("comm/sync", "comm", {
                "index": stats.index, "label": label, "h": stats.h,
                "bytes": stats.total_bytes, "messages": stats.messages,
                "posted": False,
            })
        return stats

    # --- fault-injected retries ----------------------------------------------
    def retry(self, stats: SuperstepStats,
              label: Optional[str] = None) -> SuperstepStats:
        """Re-drive a closed superstep's messages as an extra superstep.

        The fault model prices a lost exchange as a full resend: the
        retry moves the same bytes between the same nodes, closes its
        own barrier, and carries ``retry_of`` pointing at the original
        so traces can separate first deliveries from re-deliveries.
        Nothing is overlapped — a retry is pure exposed wire time.
        """
        label = label if label is not None else stats.label
        retry = SuperstepStats(
            index=len(self.supersteps),
            sent=stats.sent,
            received=stats.received,
            messages=stats.messages,
            label=label,
            retry_of=stats.index,
        )
        self.supersteps.append(retry)
        if label is not None:
            self.label_bytes[label] = (self.label_bytes.get(label, 0)
                                       + retry.total_bytes)
            self.label_syncs[label] = self.label_syncs.get(label, 0) + 1
        if obs.enabled():
            obs.event("comm/retry", "comm", {
                "index": retry.index, "retry_of": stats.index,
                "label": label, "h": retry.h, "bytes": retry.total_bytes,
                "messages": retry.messages,
            })
        return retry

    # --- aggregates ---------------------------------------------------------
    @property
    def total_bytes(self) -> int:
        return sum(s.total_bytes for s in self.supersteps)

    @property
    def num_syncs(self) -> int:
        return len(self.supersteps)

    @property
    def total_h(self) -> int:
        return sum(s.h for s in self.supersteps)

    @property
    def total_overlapped_work(self) -> float:
        """Bytes of local compute tagged as overlapping some exchange."""
        return sum(s.overlapped_work for s in self.supersteps)

    def max_send_per_node(self) -> int:
        """The largest per-node send volume of any single superstep."""
        if not self.supersteps:
            return 0
        return int(max(s.sent.max() for s in self.supersteps))
