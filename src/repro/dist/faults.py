"""First-class fault model for the simulated distributed solver.

The paper's story is CG+MG on capability-scale machines, where
stragglers, heterogeneous nodes, lost messages and outright node
failures are the steady state.  This module makes those scenarios a
declarative, *deterministic* input to the simulated runs:

* a :class:`FaultPlan` — JSON-loadable and schema-validated — declares
  **stragglers** (transient or permanent per-node slowdown windows),
  **heterogeneous node speeds** (optionally sourced from multiple
  cached :mod:`repro.tune` profiles), **message loss** on exchanges
  (priced as bounded retry/backoff supersteps) and **node crashes** at
  a given superstep, plus the checkpoint cadence recovery relies on;

* a :class:`FaultInjector` executes the plan against one run: it owns
  a seeded generator (same seed → identical injected events, bit for
  bit), tracks which nodes are alive, scales the BSP work term so the
  max-over-nodes superstep price reflects the laggard, draws retry
  counts for lossy exchanges, and raises :class:`NodeCrash` when a
  planned failure reaches its superstep.

Recovery itself lives in :mod:`repro.dist.simulate`: the engine
checkpoints CG state every ``checkpoint.interval`` iterations (priced
as a gather superstep), and on a crash rolls back to the last
checkpoint, repartitions the problem onto the survivors with the
existing partitioners, and resumes — so a crashed run completes with a
correct residual and an honest time-to-solution.

Faults change **pricing and the execution path only** — never the
numerics: every fault-free run is bit-identical to a run constructed
with ``faults=None``, and a recovered run's residual history equals
the clean run's exactly (CG state is global; partitioning only decides
who communicates what).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.util.errors import InvalidValue


class NodeCrash(Exception):
    """Control-flow signal: a planned node failure reached its superstep.

    Raised by :meth:`FaultInjector.check_crash` out of the pricing
    engine; caught by the resilient run loop, which rolls back and
    repartitions.  Deliberately *not* an :class:`InvalidValue` — a
    crash is a simulated event, not a caller mistake.
    """

    def __init__(self, node: int, superstep: int):
        super().__init__(f"node {node} crashed at superstep {superstep}")
        self.node = node
        self.superstep = superstep


# ---------------------------------------------------------------------------
# the declarative plan
# ---------------------------------------------------------------------------

def _require_keys(doc: Mapping[str, Any], allowed: Sequence[str],
                  where: str) -> None:
    if not isinstance(doc, Mapping):
        raise InvalidValue(f"{where} must be an object, got {type(doc).__name__}")
    unknown = set(doc) - set(allowed)
    if unknown:
        raise InvalidValue(
            f"unknown key(s) {sorted(unknown)} in {where}; "
            f"allowed: {sorted(allowed)}"
        )


def _as_int(value: Any, where: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise InvalidValue(f"{where} must be an integer, got {value!r}")
    return value


def _as_number(value: Any, where: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise InvalidValue(f"{where} must be a number, got {value!r}")
    return float(value)


@dataclass(frozen=True)
class Straggler:
    """One node running slow: its work term is scaled by ``factor``
    for every superstep in ``[start_superstep, end_superstep)``
    (``end_superstep=None`` makes the slowdown permanent)."""

    node: int
    factor: float
    start_superstep: int = 0
    end_superstep: Optional[int] = None

    def __post_init__(self):
        if self.node < 0:
            raise InvalidValue(f"straggler node must be >= 0, got {self.node}")
        if self.factor < 1.0:
            raise InvalidValue(
                f"straggler factor must be >= 1 (a slowdown), "
                f"got {self.factor}"
            )
        if self.start_superstep < 0:
            raise InvalidValue(
                f"start_superstep must be >= 0, got {self.start_superstep}")
        if (self.end_superstep is not None
                and self.end_superstep <= self.start_superstep):
            raise InvalidValue(
                f"straggler window [{self.start_superstep}, "
                f"{self.end_superstep}) is empty"
            )

    def active_at(self, superstep: int) -> bool:
        return (self.start_superstep <= superstep
                and (self.end_superstep is None
                     or superstep < self.end_superstep))


@dataclass(frozen=True)
class MessageLoss:
    """Lossy exchanges: each closed exchange superstep independently
    loses its messages with probability ``rate``; every loss is re-driven
    as an extra retry superstep (full wire time plus an exponential
    ``backoff``-seconds delay), at most ``max_retries`` times."""

    rate: float
    max_retries: int = 3
    backoff: float = 2e-5

    def __post_init__(self):
        if not (0.0 <= self.rate < 1.0):
            raise InvalidValue(
                f"message-loss rate must lie in [0, 1), got {self.rate}")
        if self.max_retries < 1:
            raise InvalidValue(
                f"max_retries must be >= 1, got {self.max_retries}")
        if self.backoff < 0:
            raise InvalidValue(f"backoff must be >= 0, got {self.backoff}")


@dataclass(frozen=True)
class Crash:
    """Node ``node`` fails permanently at superstep ``superstep``."""

    node: int
    superstep: int

    def __post_init__(self):
        if self.node < 0:
            raise InvalidValue(f"crash node must be >= 0, got {self.node}")
        if self.superstep < 0:
            raise InvalidValue(
                f"crash superstep must be >= 0, got {self.superstep}")


@dataclass(frozen=True)
class Checkpoint:
    """Snapshot CG state every ``interval`` iterations.

    Each snapshot is priced as a gather superstep (every node ships its
    share of the three CG vectors to node 0, which persists them to
    stable storage) — the overhead a crashed run's recovery amortises.
    """

    interval: int

    def __post_init__(self):
        if self.interval < 1:
            raise InvalidValue(
                f"checkpoint interval must be >= 1, got {self.interval}")


_PLAN_KEYS = ("seed", "stragglers", "node_speeds", "message_loss",
              "crashes", "checkpoint")


@dataclass(frozen=True)
class FaultPlan:
    """The declarative fault scenario one resilient run executes.

    ``node_speeds`` maps node id -> relative speed (1.0 = the machine
    baseline; 0.5 = half speed).  All node ids refer to the *initial*
    rank numbering; after a crash the survivors keep their original
    ids for fault-plan purposes, so a straggler stays a straggler
    across a repartition.
    """

    seed: int = 0
    stragglers: Tuple[Straggler, ...] = ()
    node_speeds: Mapping[int, float] = field(default_factory=dict)
    message_loss: Optional[MessageLoss] = None
    crashes: Tuple[Crash, ...] = ()
    checkpoint: Optional[Checkpoint] = None

    def __post_init__(self):
        for node, speed in self.node_speeds.items():
            if node < 0:
                raise InvalidValue(f"node_speeds node must be >= 0, got {node}")
            if speed <= 0:
                raise InvalidValue(
                    f"node {node} speed must be positive, got {speed}")

    def active(self) -> bool:
        """Does this plan change the run at all?  An empty plan keeps
        the engine on the bit-identical fault-free path."""
        return bool(self.stragglers or self.node_speeds or self.crashes
                    or self.message_loss is not None
                    or self.checkpoint is not None)

    def validate_for(self, nprocs: int) -> None:
        """Check every node reference fits a run of ``nprocs`` nodes and
        that the planned crashes leave at least one survivor."""
        for st in self.stragglers:
            if st.node >= nprocs:
                raise InvalidValue(
                    f"straggler node {st.node} out of range for "
                    f"{nprocs} nodes")
        for node in self.node_speeds:
            if node >= nprocs:
                raise InvalidValue(
                    f"node_speeds node {node} out of range for "
                    f"{nprocs} nodes")
        crashed = set()
        for crash in self.crashes:
            if crash.node >= nprocs:
                raise InvalidValue(
                    f"crash node {crash.node} out of range for "
                    f"{nprocs} nodes")
            crashed.add(crash.node)
        if len(crashed) >= nprocs:
            raise InvalidValue(
                f"plan crashes all {nprocs} nodes — no survivors to "
                f"recover onto")

    # --- (de)serialisation ---------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {"seed": self.seed}
        if self.stragglers:
            doc["stragglers"] = [
                {k: v for k, v in (
                    ("node", st.node), ("factor", st.factor),
                    ("start_superstep", st.start_superstep),
                    ("end_superstep", st.end_superstep),
                ) if v is not None}
                for st in self.stragglers
            ]
        if self.node_speeds:
            doc["node_speeds"] = {str(k): v
                                  for k, v in sorted(self.node_speeds.items())}
        if self.message_loss is not None:
            ml = self.message_loss
            doc["message_loss"] = {"rate": ml.rate,
                                   "max_retries": ml.max_retries,
                                   "backoff": ml.backoff}
        if self.crashes:
            doc["crashes"] = [{"node": c.node, "superstep": c.superstep}
                              for c in self.crashes]
        if self.checkpoint is not None:
            doc["checkpoint"] = {"interval": self.checkpoint.interval}
        return doc

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "FaultPlan":
        _require_keys(doc, _PLAN_KEYS, "fault plan")
        stragglers = []
        for i, st in enumerate(doc.get("stragglers", [])):
            where = f"stragglers[{i}]"
            _require_keys(st, ("node", "factor", "start_superstep",
                               "end_superstep"), where)
            end = st.get("end_superstep")
            stragglers.append(Straggler(
                node=_as_int(st.get("node"), f"{where}.node"),
                factor=_as_number(st.get("factor"), f"{where}.factor"),
                start_superstep=_as_int(st.get("start_superstep", 0),
                                        f"{where}.start_superstep"),
                end_superstep=(None if end is None else
                               _as_int(end, f"{where}.end_superstep")),
            ))
        speeds: Dict[int, float] = {}
        for key, value in dict(doc.get("node_speeds", {})).items():
            try:
                node = int(key)
            except (TypeError, ValueError):
                raise InvalidValue(
                    f"node_speeds key {key!r} is not a node id")
            speeds[node] = _as_number(value, f"node_speeds[{key}]")
        loss = None
        if doc.get("message_loss") is not None:
            ml = doc["message_loss"]
            _require_keys(ml, ("rate", "max_retries", "backoff"),
                          "message_loss")
            loss = MessageLoss(
                rate=_as_number(ml.get("rate"), "message_loss.rate"),
                max_retries=_as_int(ml.get("max_retries", 3),
                                    "message_loss.max_retries"),
                backoff=_as_number(ml.get("backoff", 2e-5),
                                   "message_loss.backoff"),
            )
        crashes = []
        for i, c in enumerate(doc.get("crashes", [])):
            where = f"crashes[{i}]"
            _require_keys(c, ("node", "superstep"), where)
            crashes.append(Crash(
                node=_as_int(c.get("node"), f"{where}.node"),
                superstep=_as_int(c.get("superstep"), f"{where}.superstep"),
            ))
        checkpoint = None
        if doc.get("checkpoint") is not None:
            ck = doc["checkpoint"]
            _require_keys(ck, ("interval",), "checkpoint")
            checkpoint = Checkpoint(
                interval=_as_int(ck.get("interval"), "checkpoint.interval"))
        return cls(
            seed=_as_int(doc.get("seed", 0), "seed"),
            stragglers=tuple(stragglers),
            node_speeds=speeds,
            message_loss=loss,
            crashes=tuple(crashes),
            checkpoint=checkpoint,
        )

    @classmethod
    def from_json(cls, path: str) -> "FaultPlan":
        """Load and schema-validate a plan file; every failure mode —
        missing file, unparsable JSON, schema violation — raises
        :class:`InvalidValue` with a one-line message."""
        try:
            with open(path, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
        except OSError as exc:
            raise InvalidValue(f"cannot read fault plan {path!r}: {exc}")
        except json.JSONDecodeError as exc:
            raise InvalidValue(f"fault plan {path!r} is not valid JSON: {exc}")
        return cls.from_dict(doc)

    def to_json(self, path: str) -> str:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        return path

    @staticmethod
    def speeds_from_profiles(profiles: Sequence[Any],
                             nprocs: int) -> Dict[int, float]:
        """Heterogeneous node speeds from multiple cached tune profiles.

        Each :class:`~repro.tune.profile.MachineProfile`'s STREAM triad
        bandwidth becomes a relative speed (fastest profile = 1.0), and
        the profiles are dealt round-robin across the ``nprocs`` nodes —
        a cluster built from several measured machine generations.
        """
        if not profiles:
            raise InvalidValue("need at least one profile for node speeds")
        triads = [float(p.triad_bandwidth) for p in profiles]
        fastest = max(triads)
        return {node: triads[node % len(triads)] / fastest
                for node in range(nprocs)}


# ---------------------------------------------------------------------------
# events and the injector
# ---------------------------------------------------------------------------

@dataclass
class FaultEvent:
    """One injected fault, as it landed in the run."""

    kind: str                      # straggler | node_speeds | message_loss
    superstep: int                 # | crash | checkpoint | recovery
    node: Optional[int] = None
    detail: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {"kind": self.kind, "superstep": self.superstep}
        if self.node is not None:
            doc["node"] = self.node
        if self.detail:
            doc["detail"] = dict(self.detail)
        return doc


class FaultInjector:
    """Executes one :class:`FaultPlan` against one resilient run.

    All randomness flows through one ``numpy`` generator seeded with
    ``plan.seed``, and draws happen at deterministic points (one
    bounded sequence per closed exchange superstep), so the same plan
    against the same run yields byte-identical events and pricing.

    The injector survives recovery: the respawned survivor run keeps
    using the same instance, so superstep numbering, the alive set and
    the event log are continuous across repartitions.
    """

    def __init__(self, plan: FaultPlan, nprocs: int):
        plan.validate_for(nprocs)
        self.plan = plan
        self.nprocs = nprocs
        self.rng = np.random.default_rng(plan.seed)
        self.alive = set(range(nprocs))
        self.superstep = 0            # next superstep index to be priced
        self.events: List[FaultEvent] = []
        self.recoveries = 0
        self.exchange_retries = 0
        self._pending_crashes = sorted(plan.crashes,
                                       key=lambda c: c.superstep)
        self._mentioned = ({st.node for st in plan.stragglers}
                           | set(plan.node_speeds))
        self._announced: set = set()
        self._speeds_announced = False
        #: optional callback fired on every recorded event — the engine
        #: hangs trace events and metric increments off it
        self.on_event = None

    # --- bookkeeping ---------------------------------------------------------
    @property
    def alive_count(self) -> int:
        return len(self.alive)

    def record(self, kind: str, superstep: int,
               node: Optional[int] = None, **detail: Any) -> FaultEvent:
        event = FaultEvent(kind=kind, superstep=superstep, node=node,
                           detail=detail)
        self.events.append(event)
        if self.on_event is not None:
            self.on_event(event)
        return event

    def announce_speeds(self) -> None:
        """Record the heterogeneous-speed assignment once per run."""
        if self.plan.node_speeds and not self._speeds_announced:
            self._speeds_announced = True
            self.record("node_speeds", 0, speeds={
                str(k): v for k, v in sorted(self.plan.node_speeds.items())})

    def injected_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    # --- per-superstep hooks (called by the pricing engine) ------------------
    def begin_superstep(self) -> int:
        """Claim the next superstep index (every priced barrier —
        exchanges, dots, retries, checkpoints — advances the clock)."""
        s = self.superstep
        self.superstep += 1
        return s

    def work_factor(self, superstep: Optional[int] = None) -> float:
        """The multiplier on this superstep's BSP work term.

        The work term is already the max-over-nodes byte count, so the
        honest degraded price is the *slowest* surviving node's factor:
        ``max over alive n of (straggler factors of n at s) / speed(n)``
        (1.0 for every node the plan does not mention).
        """
        if superstep is None:
            superstep = max(self.superstep - 1, 0)
        candidates = []
        if self.alive - self._mentioned:
            candidates.append(1.0)
        for node in self._mentioned & self.alive:
            f = 1.0
            for idx, st in enumerate(self.plan.stragglers):
                if st.node == node and st.active_at(superstep):
                    f *= st.factor
                    if idx not in self._announced:
                        self._announced.add(idx)
                        self.record("straggler", superstep, node=node,
                                    factor=st.factor,
                                    end_superstep=st.end_superstep)
            f /= self.plan.node_speeds.get(node, 1.0)
            candidates.append(f)
        return max(candidates) if candidates else 1.0

    def exchange_retries_for(self, h: int, label: Optional[str],
                             superstep: int) -> int:
        """Seeded retry count for one closed exchange superstep.

        Draws one uniform per (re)delivery attempt: the exchange is
        lost while the draw lands under ``rate``, up to ``max_retries``
        resends (the transport then falls back to its slow reliable
        path — delivery is never abandoned, only priced).
        """
        loss = self.plan.message_loss
        if loss is None or h <= 0:
            return 0
        retries = 0
        while retries < loss.max_retries and self.rng.random() < loss.rate:
            retries += 1
        if retries:
            self.exchange_retries += retries
            self.record("message_loss", superstep, label=label,
                        retries=retries)
        return retries

    def check_crash(self, superstep: int) -> None:
        """Raise :class:`NodeCrash` when a planned failure is due.

        Crashes are detected at the superstep barrier — the superstep
        itself is already priced — and each planned crash fires at most
        once (a node already dead from an earlier crash is skipped).
        """
        while (self._pending_crashes
               and self._pending_crashes[0].superstep <= superstep):
            crash = self._pending_crashes.pop(0)
            if crash.node not in self.alive:
                continue
            self.alive.discard(crash.node)
            self.record("crash", superstep, node=crash.node,
                        planned_superstep=crash.superstep,
                        survivors=len(self.alive))
            raise NodeCrash(crash.node, superstep)
