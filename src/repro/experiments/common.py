"""Shared helpers for the experiment regenerators."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Plain-text table with right-aligned numeric columns."""
    srows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in srows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in srows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def ascii_series(series: Dict[str, List[float]], xs: List, width: int = 50) -> str:
    """Crude ASCII chart: one bar row per (x, series) pair."""
    flat = [v for vs in series.values() for v in vs]
    top = max(flat) if flat else 1.0
    lines = []
    for i, x in enumerate(xs):
        for name, vs in series.items():
            bar = "#" * max(1, int(round(vs[i] / top * width)))
            lines.append(f"{str(x):>8} {name:<6} |{bar} {vs[i]:.4g}")
        lines.append("")
    return "\n".join(lines)
