"""Figure 2 — strong scaling of ALP and Ref on the x86 machine.

Thread placements follow the paper's x axis: 10..22 threads on one
socket (physical cores), "44 - 1S" (one socket with hyperthreads), 44
on two sockets, and "88 - 2S" (both sockets, hyperthreads).

Shape claims: ALP wins everywhere; at "44 - 1S" Ref gets close to ALP
(it saturates only with hyperthreading — paper Section V-A).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.experiments.common import ascii_series, format_table
from repro.hpcg.problem import generate_problem
from repro.perf import (
    ALP_PROFILE,
    REF_PROFILE,
    Placement,
    ScalingModel,
    X86,
    collect_op_stream,
    ref_stream_from_alp,
)

# (label, threads, sockets) following the paper's x axis.
PLACEMENTS: Tuple[Tuple[str, int, int], ...] = (
    ("10", 10, 1),
    ("14", 14, 1),
    ("18", 18, 1),
    ("22", 22, 1),
    ("44 - 1S", 44, 1),
    ("44", 44, 2),
    ("88 - 2S", 88, 2),
)


@dataclass
class Fig2Result:
    labels: List[str]
    alp_seconds: List[float]
    ref_seconds: List[float]
    nx: int

    def shape_claims(self) -> Dict[str, bool]:
        alp, ref = self.alp_seconds, self.ref_seconds
        i22 = self.labels.index("22")
        i44_1s = self.labels.index("44 - 1S")
        ratio_22 = ref[i22] / alp[i22]
        ratio_44_1s = ref[i44_1s] / alp[i44_1s]
        return {
            "alp_below_ref_everywhere": all(a < r for a, r in zip(alp, ref)),
            "hyperthreads_help_ref": ref[i44_1s] < ref[i22],
            "close_at_44_1s": ratio_44_1s < ratio_22 and ratio_44_1s < 1.25,
        }


def run(nx: int = 16, iterations: int = 5, mg_levels: int = 4,
        stream: Optional[Dict[str, float]] = None) -> Fig2Result:
    if stream is None:
        problem = generate_problem(nx)
        stream = collect_op_stream(problem, mg_levels=mg_levels,
                                   iterations=iterations)
    ref_stream = ref_stream_from_alp(stream)
    alp_model = ScalingModel(X86, ALP_PROFILE)
    ref_model = ScalingModel(X86, REF_PROFILE)
    labels, alp_s, ref_s = [], [], []
    for label, threads, sockets in PLACEMENTS:
        placement = Placement(threads, sockets)
        labels.append(label)
        alp_s.append(alp_model.total_time(stream, placement))
        ref_s.append(ref_model.total_time(ref_stream, placement))
    return Fig2Result(labels, alp_s, ref_s, nx)


def render(result: Fig2Result) -> str:
    table = format_table(
        ["threads", "ALP (s)", "Ref (s)", "Ref/ALP"],
        [
            (lbl, a, r, r / a)
            for lbl, a, r in zip(result.labels, result.alp_seconds,
                                 result.ref_seconds)
        ],
    )
    chart = ascii_series(
        {"ALP": result.alp_seconds, "Ref": result.ref_seconds},
        result.labels,
    )
    claims = result.shape_claims()
    claims_text = "\n".join(
        f"  [{'ok' if v else 'FAIL'}] {k}" for k, v in claims.items()
    )
    return (
        f"Figure 2 — strong scaling on x86 (modelled, nx={result.nx})\n"
        + table + "\n\n" + chart + "shape claims:\n" + claims_text
    )
