"""Table II — the experimental machines (encoded constants)."""

from __future__ import annotations

from typing import Dict, List

from repro.experiments.common import format_table
from repro.perf.machine import table2_rows


def run() -> List[Dict[str, str]]:
    return table2_rows()


def render(rows: List[Dict[str, str]]) -> str:
    table = format_table(
        ["", "x86", "ARM"],
        [(r["field"], r["x86"], r["ARM"]) for r in rows],
    )
    return "Table II — experimental machines\n" + table
