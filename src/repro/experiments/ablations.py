"""Ablations for the design choices and future-work directions.

Four studies, each mapped to a paper section:

* **distribution** (§VII-B i-iv): per-node communication of one mxv
  under 1D block-cyclic (current ALP), a 2D block distribution
  (solution ii, analytic n/√p·(√p−1)), the geometric 3D partition
  (what Ref knows), and a black-box BFS partition (solution iv,
  measured from structure alone).
* **fusion** (§VI / ref. [32]): memory traffic of the RBGS colour step
  with and without the fused masked-mxv+lambda extension.
* **smoothers** (§III-A): CG iterations to tolerance with RBGS vs
  damped Jacobi vs the exact sequential SYMGS — showing RBGS costs a
  few extra iterations vs SYMGS but parallelises, and beats Jacobi.
* **colouring** (§III-A): colour counts of greedy under natural,
  random and lattice orders — natural order achieves the optimal 8.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro import graphblas as grb
from repro.dist.partition import (
    BlockCyclic1D,
    Grid3DPartition,
    bfs_partition,
    factor3,
    halo_for_owners,
)
from repro.experiments.common import format_table
from repro.graphblas.fused import FusedRBGSSmoother
from repro.hpcg.coloring import color_masks, greedy_coloring, lattice_coloring, num_colors
from repro.hpcg.multigrid import MGPreconditioner, build_hierarchy
from repro.hpcg.cg import pcg
from repro.hpcg.problem import generate_problem
from repro.hpcg.smoothers import JacobiSmoother, RBGSSmoother
from repro.ref.cg import ref_pcg
from repro.ref.multigrid import RefMGPreconditioner, build_ref_hierarchy


# ---------------------------------------------------------------------------
# distribution ablation
# ---------------------------------------------------------------------------

@dataclass
class DistributionRow:
    scheme: str
    max_send_values: int      # busiest node, one mxv, in vector values
    note: str = ""


def distribution_ablation(local_nx: int = 16, p: int = 4) -> List[DistributionRow]:
    px, py, pz = factor3(p)
    problem = generate_problem(local_nx * px, local_nx * py, local_nx * pz)
    n = problem.n
    csr = problem.A.to_scipy(copy=False)
    rows: List[DistributionRow] = []

    # 1D block-cyclic: full allgather (what the hybrid backend does).
    part1d = BlockCyclic1D(n, p)
    send_1d = max(part1d.local_size(k) for k in range(p)) * (p - 1)
    rows.append(DistributionRow("1D block-cyclic (ALP)", send_1d,
                                "n/p x (p-1) allgather"))

    # 2D block distribution (paper solution ii), *executed*: column
    # broadcast + row reduction, n/√p (√p - 1) per node per superstep.
    q = int(round(math.sqrt(p)))
    if q * q == p:
        from repro.dist.hybrid2d import Hybrid2DRun
        run2d = Hybrid2DRun(problem, nprocs=p, mg_levels=1)
        res2d = run2d.run_cg(max_iters=1, use_mg=False)
        rows.append(DistributionRow(
            "2D block (solution ii)",
            res2d.tracker.max_send_per_node() // 8,
            "n/sqrt(p) x (sqrt(p)-1), measured",
        ))

    # geometric 3D (Ref): measured halo from the structure.
    part3d = Grid3DPartition(problem.grid, p)
    halos = part3d.halo_exchanges(csr.indptr, csr.indices)
    send_3d = np.zeros(p, dtype=np.int64)
    for (src, _dst), idxs in halos.items():
        send_3d[src] += idxs.size
    rows.append(DistributionRow("geometric 3D (Ref)", int(send_3d.max()),
                                "measured halo"))

    # black-box BFS partition (solution iv): measured halo, no geometry.
    owners = bfs_partition(csr.indptr, csr.indices, n, p)
    halos_bfs = halo_for_owners(csr.indptr, csr.indices, owners, p)
    send_bfs = np.zeros(p, dtype=np.int64)
    for (src, _dst), idxs in halos_bfs.items():
        send_bfs[src] += idxs.size
    rows.append(DistributionRow("black-box BFS (solution iv)",
                                int(send_bfs.max()), "measured halo"))
    return rows


@dataclass
class WeakScaling2DRow:
    p: int
    n: int
    seconds_1d: float
    seconds_2d: float
    seconds_ref: float


def weak_scaling_2d(local_nx: int = 16,
                    ps: tuple = (4, 9)) -> List[WeakScaling2DRow]:
    """Weak scaling of 1D vs 2D vs geometric Ref (square node counts).

    The executed version of the paper's solution-ii discussion: the 2D
    distribution reduces traffic by a constant factor but doubles the
    barriers and both ALP variants remain Θ(n) per node — only the
    geometric partition weak-scales.
    """
    from repro.dist.hybrid2d import Hybrid2DRun
    from repro.dist.hybrid import HybridALPRun
    from repro.dist.refdist import RefDistRun
    from repro.dist.partition import factor3
    rows = []
    for p in ps:
        q = int(round(math.sqrt(p)))
        if q * q != p:
            raise ValueError(f"weak_scaling_2d needs square p, got {p}")
        px, py, pz = factor3(p)
        problem = generate_problem(local_nx * px, local_nx * py, local_nx * pz)
        r1 = HybridALPRun(problem, nprocs=p, mg_levels=3).run_cg(max_iters=2)
        r2 = Hybrid2DRun(problem, nprocs=p, mg_levels=3).run_cg(max_iters=2)
        rr = RefDistRun(problem, nprocs=p, mg_levels=3).run_cg(max_iters=2)
        rows.append(WeakScaling2DRow(
            p=p, n=problem.n,
            seconds_1d=r1.modelled_seconds,
            seconds_2d=r2.modelled_seconds,
            seconds_ref=rr.modelled_seconds,
        ))
    return rows


# ---------------------------------------------------------------------------
# fusion ablation
# ---------------------------------------------------------------------------

@dataclass
class FusionResult:
    unfused_bytes: int
    fused_bytes: int
    identical_result: bool

    @property
    def savings(self) -> float:
        return 1.0 - self.fused_bytes / self.unfused_bytes


def fusion_ablation(nx: int = 16, sweeps: int = 2) -> FusionResult:
    problem = generate_problem(nx)
    colors = color_masks(lattice_coloring(problem.grid))
    rng = np.random.default_rng(3)
    r = grb.Vector.from_dense(rng.standard_normal(problem.n))

    # the unfused arm pins the reference transcription — the default
    # smoother has taken the fused fast path itself since PR 5, which
    # would make this comparison vacuous
    base = RBGSSmoother(problem.A, problem.A_diag, colors, fused=False)
    fused = FusedRBGSSmoother(problem.A, problem.A_diag, colors)

    z1 = grb.Vector.dense(problem.n, 0.0)
    log1 = grb.backend.EventLog()
    with grb.backend.collect(log1):
        base.smooth(z1, r, sweeps=sweeps)

    z2 = grb.Vector.dense(problem.n, 0.0)
    log2 = grb.backend.EventLog()
    with grb.backend.collect(log2):
        fused.smooth(z2, r, sweeps=sweeps)

    return FusionResult(
        unfused_bytes=log1.total("bytes"),
        fused_bytes=log2.total("bytes"),
        identical_result=bool(
            np.array_equal(z1.to_dense(), z2.to_dense())
        ),
    )


# ---------------------------------------------------------------------------
# smoother ablation
# ---------------------------------------------------------------------------

@dataclass
class SmootherRow:
    smoother: str
    iterations: int
    converged: bool
    final_relative_residual: float


def smoother_ablation(nx: int = 16, tolerance: float = 1e-8,
                      max_iters: int = 100, mg_levels: int = 3
                      ) -> List[SmootherRow]:
    rows: List[SmootherRow] = []
    # GraphBLAS RBGS and Jacobi
    for name, factory in (
        ("rbgs", RBGSSmoother),
        ("jacobi", lambda A, d, c: JacobiSmoother(A, d)),
    ):
        problem = generate_problem(nx)
        hierarchy = build_hierarchy(problem, levels=mg_levels,
                                    smoother_factory=factory)
        x = problem.x0.dup()
        res = pcg(problem.A, problem.b, x,
                  preconditioner=MGPreconditioner(hierarchy),
                  max_iters=max_iters, tolerance=tolerance)
        rows.append(SmootherRow(name, res.iterations, res.converged,
                                res.relative_residual))
    # exact sequential SYMGS (reference smoother)
    problem = generate_problem(nx)
    hierarchy = build_ref_hierarchy(problem, levels=mg_levels, smoother="symgs")
    A = problem.A.to_scipy(copy=False)
    x = problem.x0.to_dense()
    res = ref_pcg(A, problem.b.to_dense(), x,
                  preconditioner=RefMGPreconditioner(hierarchy),
                  max_iters=max_iters, tolerance=tolerance)
    rows.append(SmootherRow("symgs (sequential)", res.iterations,
                            res.converged, res.relative_residual))
    return rows


# ---------------------------------------------------------------------------
# colouring ablation
# ---------------------------------------------------------------------------

@dataclass
class ColoringRow:
    order: str
    colors: int


def coloring_ablation(nx: int = 12, seeds: int = 3) -> List[ColoringRow]:
    problem = generate_problem(nx)
    rows = [
        ColoringRow("natural (paper)", num_colors(greedy_coloring(problem.A))),
        ColoringRow("lattice parity", num_colors(lattice_coloring(problem.grid))),
    ]
    n = problem.n
    worst = 0
    for seed in range(seeds):
        order = np.random.default_rng(seed).permutation(n)
        worst = max(worst, num_colors(greedy_coloring(problem.A, order=order)))
    rows.append(ColoringRow(f"random order (worst of {seeds})", worst))
    return rows


# ---------------------------------------------------------------------------
# bundle
# ---------------------------------------------------------------------------

@dataclass
class AblationResults:
    distribution: List[DistributionRow] = field(default_factory=list)
    fusion: FusionResult = None
    smoothers: List[SmootherRow] = field(default_factory=list)
    coloring: List[ColoringRow] = field(default_factory=list)
    weak_2d: List[WeakScaling2DRow] = field(default_factory=list)


def run(local_nx: int = 12, p: int = 4) -> AblationResults:
    return AblationResults(
        distribution=distribution_ablation(local_nx, p),
        fusion=fusion_ablation(local_nx),
        smoothers=smoother_ablation(local_nx),
        coloring=coloring_ablation(local_nx),
        weak_2d=weak_scaling_2d(local_nx=8),
    )


def render(results: AblationResults) -> str:
    parts = [
        "Ablation A — matrix distribution vs one-mxv communication "
        "(values sent by the busiest node)",
        format_table(
            ["scheme", "max send (values)", "note"],
            [(r.scheme, r.max_send_values, r.note) for r in results.distribution],
        ),
        "",
        "Ablation B — RBGS colour-step fusion (nonblocking ALP, ref. [32])",
        format_table(
            ["variant", "bytes"],
            [
                ("mxv + eWiseLambda (blocking)", results.fusion.unfused_bytes),
                ("fused extension", results.fusion.fused_bytes),
            ],
        ),
        f"traffic saved by fusion: {results.fusion.savings:.1%} "
        f"(bit-identical result: {results.fusion.identical_result})",
        "",
        "Ablation C — smoother choice vs CG iterations to 1e-8",
        format_table(
            ["smoother", "iterations", "converged", "final rel. residual"],
            [
                (r.smoother, r.iterations, r.converged,
                 r.final_relative_residual)
                for r in results.smoothers
            ],
        ),
        "",
        "Ablation D — greedy colouring order vs colour count (8 is optimal)",
        format_table(
            ["visit order", "colours"],
            [(r.order, r.colors) for r in results.coloring],
        ),
    ]
    if results.weak_2d:
        parts.extend([
            "",
            "Ablation E — weak scaling: 1D vs 2D (solution ii) vs "
            "geometric Ref (modelled seconds)",
            format_table(
                ["p", "n", "1D", "2D", "Ref"],
                [(r.p, r.n, r.seconds_1d, r.seconds_2d, r.seconds_ref)
                 for r in results.weak_2d],
            ),
        ])
    return "\n".join(parts)
