"""Figure 3 — weak scaling on the ARM cluster (2..7 nodes).

The global problem grows proportionally to the node count (fixed local
grid per node).  Paper findings reproduced as shape claims:

* Ref weak-scales: execution times differ by at most ~5% across node
  counts;
* ALP's execution time grows (approximately linearly) with the number
  of nodes — the Θ(n) allgather before every mxv of Table I.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.dist import HybridALPRun, RefDistRun, factor3
from repro.dist.bsp import BSPMachine
from repro.experiments.common import ascii_series, format_table
from repro.hpcg.problem import generate_problem

NODES = (2, 3, 4, 5, 6, 7)


@dataclass
class Fig3Result:
    nodes: List[int]
    alp_seconds: List[float]
    ref_seconds: List[float]
    ns: List[int]
    local_nx: int
    iterations: int

    def shape_claims(self) -> Dict[str, bool]:
        ref = np.array(self.ref_seconds)
        alp = np.array(self.alp_seconds)
        nodes = np.array(self.nodes, dtype=float)
        ref_spread = float(ref.max() / ref.min() - 1.0)
        # linear fit of ALP time vs p: slope clearly positive and the fit good
        slope, intercept = np.polyfit(nodes, alp, 1)
        fitted = slope * nodes + intercept
        ss_res = float(((alp - fitted) ** 2).sum())
        ss_tot = float(((alp - alp.mean()) ** 2).sum())
        r2 = 1 - ss_res / ss_tot if ss_tot else 1.0
        # The growth *rate* scales with the per-node problem size (the
        # allgather term is Θ(local_n x p) while barriers are constant);
        # the paper runs max-memory local problems.  At the default
        # 24^3/node the 2->7 growth is ~1.5x; tiny grids flatten it.
        return {
            "ref_weak_scales_within_10pct": ref_spread < 0.10,
            "alp_grows_with_nodes": bool(alp[-1] > alp[0] * 1.3),
            "alp_growth_is_linear": r2 > 0.95,
            "alp_slower_than_ref_at_scale": bool(alp[-1] > ref[-1]),
        }


def run(local_nx: int = 24, iterations: int = 3,
        mg_levels: int = 4, nodes: Tuple[int, ...] = NODES,
        machine: Optional[BSPMachine] = None) -> Fig3Result:
    """Run the weak-scaling study; ``machine`` prices every node class
    (default: the Table-II ARM preset via the backends' own default).
    The ``repro.tune scale`` CLI passes a measured-profile machine here
    to rerun the study on this machine's numbers."""
    alp_s, ref_s, ns = [], [], []
    for p in nodes:
        px, py, pz = factor3(p)
        problem = generate_problem(local_nx * px, local_nx * py, local_nx * pz)
        ns.append(problem.n)
        alp = HybridALPRun(problem, nprocs=p, mg_levels=mg_levels,
                           machine=machine)
        ref = RefDistRun(problem, nprocs=p, mg_levels=mg_levels,
                         machine=machine)
        alp_s.append(alp.run_cg(max_iters=iterations).modelled_seconds)
        ref_s.append(ref.run_cg(max_iters=iterations).modelled_seconds)
    return Fig3Result(list(nodes), alp_s, ref_s, ns, local_nx, iterations)


def render(result: Fig3Result) -> str:
    table = format_table(
        ["nodes", "n", "ALP (s)", "Ref (s)", "ALP/Ref"],
        [
            (p, n, a, r, a / r)
            for p, n, a, r in zip(result.nodes, result.ns,
                                  result.alp_seconds, result.ref_seconds)
        ],
    )
    chart = ascii_series(
        {"ALP": result.alp_seconds, "Ref": result.ref_seconds}, result.nodes
    )
    claims = result.shape_claims()
    claims_text = "\n".join(
        f"  [{'ok' if v else 'FAIL'}] {k}" for k, v in claims.items()
    )
    return (
        f"Figure 3 — weak scaling on the ARM cluster "
        f"(local grid {result.local_nx}^3/node, {result.iterations} iters, "
        f"modelled)\n" + table + "\n\n" + chart + "shape claims:\n" + claims_text
    )
