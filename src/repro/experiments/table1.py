"""Table I — BSP asymptotic cost components, verified by measurement.

The paper asserts, per mxv:

===============  ===========  ==================
component        Ref          ALP
===============  ===========  ==================
computation      n/p          n/p
communication    ∛(n²/p²)     n/p·(p−1) ≈ n
synchronisation  Θ(1)         Θ(1)
===============  ===========  ==================

We *measure* these from the simulated backends: the per-node send
volume of one fine-level mxv under both partitions across a sweep of n
and p, and the sync counts of a fixed-iteration run.  ``run`` also fits
the measured series against the predicted exponents so the table is a
verification, not a restatement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.dist import HybridALPRun, RefDistRun, factor3
from repro.experiments.common import format_table
from repro.hpcg.problem import generate_problem


@dataclass
class Table1Row:
    n: int
    p: int
    alp_comm_values: int       # values the busiest node sends, one mxv
    ref_comm_values: int
    alp_work_rows: int         # rows the busiest node computes
    ref_work_rows: int
    alp_syncs_per_mxv: float
    ref_syncs_per_mxv: float

    @property
    def alp_formula(self) -> float:
        """Table I's ALP communication: n (p-1) / p values."""
        return self.n * (self.p - 1) / self.p

    @property
    def ref_formula(self) -> float:
        """Table I's Ref communication: ∛(n²/p²) up to the halo constant."""
        return (self.n ** 2 / self.p ** 2) ** (1.0 / 3.0)


def measure_once(local_nx: int, p: int) -> Table1Row:
    """Build both backends on an identical problem; read one-mxv traffic."""
    px, py, pz = factor3(p)
    problem = generate_problem(local_nx * px, local_nx * py, local_nx * pz)
    n = problem.n
    alp = HybridALPRun(problem, nprocs=p, mg_levels=1)
    ref = RefDistRun(problem, nprocs=p, mg_levels=1)
    alp_comm = int(alp.levels[0].spmv_comm.sum(axis=1).max()) // 8
    halo = ref.levels[0].spmv_halo
    ref_send = np.zeros(p, dtype=np.int64)
    for (src, _dst), nbytes in halo.items():
        ref_send[src] += nbytes
    ref_comm = int(ref_send.max()) // 8
    alp_rows = int(alp.levels[0].spmv_work[1].max())
    ref_rows = int(ref.levels[0].spmv_work[1].max())
    # sync counts per mxv are 1 by construction in both backends; verify
    # by running one unpreconditioned CG iteration and counting.
    ra = HybridALPRun(problem, nprocs=p, mg_levels=1).run_cg(max_iters=1, use_mg=False)
    rr = RefDistRun(problem, nprocs=p, mg_levels=1).run_cg(max_iters=1, use_mg=False)
    alp_mxv_syncs = sum(1 for s in ra.tracker.supersteps if s.label == "spmv")
    ref_mxv_syncs = sum(1 for s in rr.tracker.supersteps if s.label == "spmv")
    n_mxv = 2  # initial residual + one iteration
    return Table1Row(
        n=n, p=p,
        alp_comm_values=alp_comm,
        ref_comm_values=ref_comm,
        alp_work_rows=alp_rows,
        ref_work_rows=ref_rows,
        alp_syncs_per_mxv=alp_mxv_syncs / n_mxv,
        ref_syncs_per_mxv=ref_mxv_syncs / n_mxv,
    )


def run(local_sizes: Tuple[int, ...] = (8, 16, 24),
        procs: Tuple[int, ...] = (2, 4, 8)) -> List[Table1Row]:
    return [measure_once(nx, p) for nx in local_sizes for p in procs]


def fit_exponent(ns: np.ndarray, values: np.ndarray) -> float:
    """Least-squares slope of log(value) vs log(n)."""
    mask = values > 0
    return float(np.polyfit(np.log(ns[mask]), np.log(values[mask]), 1)[0])


def verify(rows: List[Table1Row]) -> Dict[str, float]:
    """Fit measured comm against n at fixed p; return exponents.

    Expected: ALP ≈ 1.0 (linear in n), Ref ≈ 2/3.
    """
    out: Dict[str, float] = {}
    by_p: Dict[int, List[Table1Row]] = {}
    for row in rows:
        by_p.setdefault(row.p, []).append(row)
    alp_exps, ref_exps = [], []
    for p, group in by_p.items():
        if len(group) < 2:
            continue
        ns = np.array([g.n for g in group], dtype=float)
        alp_exps.append(fit_exponent(ns, np.array([g.alp_comm_values for g in group], dtype=float)))
        ref_exps.append(fit_exponent(ns, np.array([g.ref_comm_values for g in group], dtype=float)))
    out["alp_comm_exponent"] = float(np.mean(alp_exps)) if alp_exps else float("nan")
    out["ref_comm_exponent"] = float(np.mean(ref_exps)) if ref_exps else float("nan")
    out["work_balance"] = max(
        max(r.alp_work_rows / (r.n / r.p) for r in rows),
        max(r.ref_work_rows / (r.n / r.p) for r in rows),
    )
    return out


def render(rows: List[Table1Row]) -> str:
    table = format_table(
        ["n", "p", "ALP send/node", "n(p-1)/p", "Ref send/node", "(n²/p²)^⅓",
         "ALP rows/node", "Ref rows/node", "syncs/mxv ALP", "syncs/mxv Ref"],
        [
            (r.n, r.p, r.alp_comm_values, round(r.alp_formula),
             r.ref_comm_values, round(r.ref_formula),
             r.alp_work_rows, r.ref_work_rows,
             r.alp_syncs_per_mxv, r.ref_syncs_per_mxv)
            for r in rows
        ],
    )
    fits = verify(rows)
    footer = (
        f"\nfitted comm-vs-n exponent: ALP {fits['alp_comm_exponent']:.3f} "
        f"(Table I predicts 1), Ref {fits['ref_comm_exponent']:.3f} "
        f"(Table I predicts 2/3 = 0.667)\n"
        f"worst work imbalance (rows/node ÷ n/p): {fits['work_balance']:.3f}"
    )
    return "Table I — measured BSP cost components per mxv\n" + table + footer
