"""Figure 1 — strong scaling of ALP and Ref on the ARM machine.

The paper plots total execution time against application threads
(16..48 on one socket, 96 on two) for a max-memory problem.  We
reproduce the *shape* with the scaling model fed by the measured byte
stream of a real serial run:

* ALP below Ref at every point;
* ALP saturates with few threads (nearly flat curve);
* Ref improves to about one NUMA domain's cores, then slightly degrades
  toward the full socket (NUMA-unaware allocations, two domains per
  socket on Kunpeng 920);
* both drop again at 96 threads / two sockets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.experiments.common import ascii_series, format_table
from repro.hpcg.problem import generate_problem
from repro.perf import (
    ALP_PROFILE,
    ARM,
    REF_PROFILE,
    ScalingModel,
    collect_op_stream,
    packed_placement,
    ref_stream_from_alp,
)

THREADS = (16, 20, 24, 28, 32, 36, 40, 44, 48, 96)


@dataclass
class Fig1Result:
    threads: List[int]
    alp_seconds: List[float]
    ref_seconds: List[float]
    nx: int

    def shape_claims(self) -> Dict[str, bool]:
        alp, ref = self.alp_seconds, self.ref_seconds
        one_socket = [t for t in self.threads if t <= 48]
        i48 = self.threads.index(48)
        i_mid = self.threads.index(28)
        return {
            "alp_below_ref_everywhere": all(a < r for a, r in zip(alp, ref)),
            # saturation: ALP's relative improvement 16->48 is small
            "alp_saturates_early": (alp[0] - alp[i48]) / alp[0] < 0.25,
            # Ref dips then degrades toward the full socket
            "ref_degrades_near_full_socket": ref[i48] > ref[i_mid],
            "two_sockets_faster": self.alp_seconds[-1] < alp[i48]
            and self.ref_seconds[-1] < ref[i48],
            "_one_socket_points": len(one_socket) == 9,
        }


def run(nx: int = 16, iterations: int = 5, mg_levels: int = 4,
        stream: Optional[Dict[str, float]] = None) -> Fig1Result:
    """Collect the op stream once, then model each thread placement."""
    if stream is None:
        problem = generate_problem(nx)
        stream = collect_op_stream(problem, mg_levels=mg_levels,
                                   iterations=iterations)
    ref_stream = ref_stream_from_alp(stream)
    alp_model = ScalingModel(ARM, ALP_PROFILE)
    ref_model = ScalingModel(ARM, REF_PROFILE)
    alp_s, ref_s = [], []
    for t in THREADS:
        placement = packed_placement(ARM, t)
        alp_s.append(alp_model.total_time(stream, placement))
        ref_s.append(ref_model.total_time(ref_stream, placement))
    return Fig1Result(list(THREADS), alp_s, ref_s, nx)


def render(result: Fig1Result) -> str:
    table = format_table(
        ["threads", "ALP (s)", "Ref (s)", "Ref/ALP"],
        [
            (t, a, r, r / a)
            for t, a, r in zip(result.threads, result.alp_seconds,
                               result.ref_seconds)
        ],
    )
    chart = ascii_series(
        {"ALP": result.alp_seconds, "Ref": result.ref_seconds},
        result.threads,
    )
    claims = result.shape_claims()
    claims_text = "\n".join(
        f"  [{'ok' if v else 'FAIL'}] {k}" for k, v in claims.items()
        if not k.startswith("_")
    )
    return (
        f"Figure 1 — strong scaling on ARM (modelled, nx={result.nx})\n"
        + table + "\n\n" + chart + "shape claims:\n" + claims_text
    )
