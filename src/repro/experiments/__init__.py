"""Regenerators for every table and figure of the paper's evaluation.

Each module exposes a ``run(...)`` function returning structured data
and a ``render(...)`` producing the printable table/series.  The CLI
(``python -m repro.experiments <name>`` or ``repro-experiments``)
dispatches by experiment id: ``table1``, ``table2``, ``fig1`` ...
``fig7``, ``ablations``.
"""

from repro.experiments import (
    ablations,
    convergence,
    fig1,
    fig2,
    fig3,
    fig4_7,
    table1,
    table2,
)

__all__ = ["table1", "table2", "fig1", "fig2", "fig3", "fig4_7",
           "ablations", "convergence"]
