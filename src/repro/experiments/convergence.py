"""Convergence equivalence — the precondition of Section V.

"All experiments achieve numerically comparable results, which allows
fixing the number of iterations across all of them, thus making
execution times directly comparable."  This regenerator produces the
residual histories of every implementation variant on one problem and
quantifies their agreement:

* ALP (GraphBLAS) vs Ref (raw CSR): identical to machine precision;
* serial vs both simulated distributed backends (1D hybrid, geometric
  Ref) and the 2D variant: identical;
* RBGS vs exact SYMGS: *different* smoothers, comparable convergence
  rate (the legal-substitution story).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.dist import HybridALPRun, RefDistRun
from repro.dist.hybrid2d import Hybrid2DRun
from repro.experiments.common import format_table
from repro.hpcg.driver import run_hpcg
from repro.hpcg.problem import generate_problem
from repro.ref.driver import run_ref_hpcg


@dataclass
class ConvergenceResult:
    histories: Dict[str, List[float]]
    n: int
    iterations: int

    def max_relative_spread(self, variants: List[str]) -> float:
        """Largest relative disagreement across the listed variants."""
        base = np.array(self.histories[variants[0]])
        worst = 0.0
        for name in variants[1:]:
            other = np.array(self.histories[name])
            denom = np.maximum(np.abs(base), 1e-300)
            worst = max(worst, float(np.abs(other - base).max() / denom.max()))
        return worst

    def shape_claims(self) -> Dict[str, bool]:
        exact = ["alp", "ref", "dist-1d", "dist-ref", "dist-2d"]
        spread = self.max_relative_spread(exact)
        sgs = np.array(self.histories["ref-symgs"])
        rbgs = np.array(self.histories["alp"])
        # same order of magnitude at the end: within 100x after k iters
        ratio = sgs[-1] / rbgs[-1] if rbgs[-1] else 1.0
        return {
            "implementations_numerically_identical": spread < 1e-10,
            "symgs_converges_at_least_as_fast": bool(sgs[-1] <= rbgs[-1] * 1.001),
            "rbgs_within_two_orders_of_symgs": bool(1e-2 <= ratio <= 1.001
                                                    or sgs[-1] == rbgs[-1]),
        }


def run(nx: int = 8, iterations: int = 10, mg_levels: int = 3,
        nprocs: int = 4) -> ConvergenceResult:
    from repro.dist.partition import factor3
    px, py, pz = factor3(nprocs)
    problem = generate_problem(nx * px, nx * py, nx * pz)
    histories: Dict[str, List[float]] = {}
    histories["alp"] = run_hpcg(
        nx=0, problem=problem, max_iters=iterations, mg_levels=mg_levels,
        validate_symmetry=False,
    ).cg.residuals
    histories["ref"] = run_ref_hpcg(
        nx=0, problem=problem, max_iters=iterations, mg_levels=mg_levels,
    ).cg.residuals
    histories["ref-symgs"] = run_ref_hpcg(
        nx=0, problem=problem, max_iters=iterations, mg_levels=mg_levels,
        smoother="symgs",
    ).cg.residuals
    histories["dist-1d"] = HybridALPRun(
        problem, nprocs=nprocs, mg_levels=mg_levels
    ).run_cg(max_iters=iterations).residuals
    histories["dist-ref"] = RefDistRun(
        problem, nprocs=nprocs, mg_levels=mg_levels
    ).run_cg(max_iters=iterations).residuals
    q = int(round(nprocs ** 0.5))
    if q * q == nprocs:
        histories["dist-2d"] = Hybrid2DRun(
            problem, nprocs=nprocs, mg_levels=mg_levels
        ).run_cg(max_iters=iterations).residuals
    else:
        histories["dist-2d"] = histories["dist-1d"]
    return ConvergenceResult(histories=histories, n=problem.n,
                             iterations=iterations)


def render(result: ConvergenceResult) -> str:
    names = list(result.histories)
    rows = []
    for k in range(len(result.histories["alp"])):
        rows.append([k] + [f"{result.histories[n][k]:.6e}" for n in names])
    claims = result.shape_claims()
    claims_text = "\n".join(
        f"  [{'ok' if v else 'FAIL'}] {k}" for k, v in claims.items()
    )
    return (
        f"Convergence equivalence (n={result.n})\n"
        + format_table(["iter"] + names, rows)
        + "\nshape claims:\n" + claims_text
    )
