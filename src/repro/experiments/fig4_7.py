"""Figures 4-7 — per-MG-level time breakdown: RBGS vs restrict/refine.

All four figures plot, per compute size (threads or nodes) and per MG
level, the percentage of *total* execution time spent in the RBGS
smoother (bright bars) and in restriction/refinement (dark bars):

* Fig 4: shared-memory ALP on ARM   (modelled from the measured stream)
* Fig 5: shared-memory Ref on ARM
* Fig 6: distributed ALP            (from the simulated hybrid backend)
* Fig 7: distributed Ref            (from the simulated 3D backend)

Shape claims from the paper's Section V-C:

* MG accounts for 80-90% of total time; RBGS alone always > 50%;
* distributed ALP spends a visibly larger share in refine/restrict than
  distributed Ref (mxv-with-synchronisation vs local index copy);
* distributed Ref spends a slightly larger share in RBGS than
  distributed ALP (per-colour neighbour synchronisation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.dist import HybridALPRun, RefDistRun, factor3
from repro.experiments.common import format_table
from repro.hpcg.problem import generate_problem
from repro.perf import (
    ALP_PROFILE,
    ARM,
    REF_PROFILE,
    ScalingModel,
    collect_op_stream,
    packed_placement,
    ref_stream_from_alp,
)

SHARED_THREADS = (16, 20, 24, 28, 32, 36, 40, 44, 48, 96)
DIST_NODES = (2, 3, 4, 5, 6, 7)


@dataclass
class Breakdown:
    """One figure's data: per x-value, per level, two shares."""

    figure: str
    xs: List          # thread counts or node counts
    levels: int
    # share[x_index][level] -> {"rbgs": f, "restrict_refine": f}
    shares: List[List[Dict[str, float]]]
    mg_share: List[float]     # MG total share per x
    rbgs_share: List[float]   # aggregated RBGS share per x

    def shape_claims(self) -> Dict[str, bool]:
        return {
            "mg_dominates_total": all(0.70 <= s <= 0.97 for s in self.mg_share),
            "rbgs_above_half": all(s > 0.50 for s in self.rbgs_share),
        }


def _stream_breakdown(stream: Dict[str, float], model: ScalingModel,
                      placement, levels: int) -> Tuple[List[Dict[str, float]], float, float]:
    """Per-level shares for a modelled shared-memory run."""
    times = model.kernel_times(stream, placement)
    total = sum(times.values()) or 1.0
    per_level = []
    mg_time = 0.0
    rbgs_time = 0.0
    for lvl in range(levels):
        rbgs = times.get(f"rbgs@L{lvl}", 0.0)
        rr = times.get(f"restrict@L{lvl}", 0.0) + times.get(f"refine@L{lvl}", 0.0)
        mg_time += rbgs + rr + times.get(f"mg_spmv@L{lvl}", 0.0)
        rbgs_time += rbgs
        per_level.append({"rbgs": rbgs / total, "restrict_refine": rr / total})
    return per_level, mg_time / total, rbgs_time / total


def run_fig4(nx: int = 16, iterations: int = 5, mg_levels: int = 4,
             stream: Optional[Dict[str, float]] = None) -> Breakdown:
    """Shared-memory ALP on ARM."""
    if stream is None:
        stream = collect_op_stream(generate_problem(nx), mg_levels, iterations)
    model = ScalingModel(ARM, ALP_PROFILE)
    return _shared_breakdown("fig4", stream, model, mg_levels)


def run_fig5(nx: int = 16, iterations: int = 5, mg_levels: int = 4,
             stream: Optional[Dict[str, float]] = None) -> Breakdown:
    """Shared-memory Ref on ARM."""
    if stream is None:
        stream = collect_op_stream(generate_problem(nx), mg_levels, iterations)
    model = ScalingModel(ARM, REF_PROFILE)
    return _shared_breakdown("fig5", ref_stream_from_alp(stream), model, mg_levels)


def _shared_breakdown(figure: str, stream: Dict[str, float],
                      model: ScalingModel, mg_levels: int) -> Breakdown:
    shares, mg_share, rbgs_share = [], [], []
    for t in SHARED_THREADS:
        placement = packed_placement(ARM, t)
        per_level, mg, rbgs = _stream_breakdown(stream, model, placement, mg_levels)
        shares.append(per_level)
        mg_share.append(mg)
        rbgs_share.append(rbgs)
    return Breakdown(figure, list(SHARED_THREADS), mg_levels, shares,
                     mg_share, rbgs_share)


def _dist_breakdown(figure: str, runs) -> Breakdown:
    shares, mg_share, rbgs_share = [], [], []
    xs = []
    levels = runs[0].mg_levels
    for res in runs:
        xs.append(res.nprocs)
        per_level = [
            {"rbgs": row["rbgs"], "restrict_refine": row["restrict_refine"]}
            for row in res.mg_level_breakdown()
        ]
        shares.append(per_level)
        total = res.modelled_seconds or 1.0
        mg_share.append(res.timers.total("mg/") / total)
        rbgs_share.append(
            sum(res.timers.total(f"mg/L{i}/rbgs") for i in range(levels)) / total
        )
    return Breakdown(figure, xs, levels, shares, mg_share, rbgs_share)


def run_fig6(local_nx: int = 16, iterations: int = 3, mg_levels: int = 4,
             nodes: Tuple[int, ...] = DIST_NODES) -> Breakdown:
    """Distributed ALP breakdown."""
    runs = []
    for p in nodes:
        px, py, pz = factor3(p)
        problem = generate_problem(local_nx * px, local_nx * py, local_nx * pz)
        runs.append(HybridALPRun(problem, nprocs=p, mg_levels=mg_levels)
                    .run_cg(max_iters=iterations))
    return _dist_breakdown("fig6", runs)


def run_fig7(local_nx: int = 16, iterations: int = 3, mg_levels: int = 4,
             nodes: Tuple[int, ...] = DIST_NODES) -> Breakdown:
    """Distributed Ref breakdown."""
    runs = []
    for p in nodes:
        px, py, pz = factor3(p)
        problem = generate_problem(local_nx * px, local_nx * py, local_nx * pz)
        runs.append(RefDistRun(problem, nprocs=p, mg_levels=mg_levels)
                    .run_cg(max_iters=iterations))
    return _dist_breakdown("fig7", runs)


def cross_figure_claims(fig6: Breakdown, fig7: Breakdown) -> Dict[str, bool]:
    """Paper Section V-C comparisons between distributed ALP and Ref."""
    alp_rr = [sum(lvl["restrict_refine"] for lvl in per_x) for per_x in fig6.shares]
    ref_rr = [sum(lvl["restrict_refine"] for lvl in per_x) for per_x in fig7.shares]
    return {
        "alp_restrict_share_exceeds_ref": all(a > r for a, r in zip(alp_rr, ref_rr)),
        "ref_rbgs_share_exceeds_alp": all(
            r > a for a, r in zip(fig6.rbgs_share, fig7.rbgs_share)
        ),
    }


def render(result: Breakdown) -> str:
    headers = ["x"] + [
        f"L{i} {kind}" for i in range(result.levels)
        for kind in ("rbgs%", "r/r%")
    ] + ["MG%", "RBGS%"]
    rows = []
    for x, per_level, mg, rbgs in zip(result.xs, result.shares,
                                      result.mg_share, result.rbgs_share):
        row = [x]
        for lvl in per_level:
            row.extend([f"{lvl['rbgs'] * 100:.1f}",
                        f"{lvl['restrict_refine'] * 100:.1f}"])
        row.extend([f"{mg * 100:.1f}", f"{rbgs * 100:.1f}"])
        rows.append(row)
    claims = result.shape_claims()
    claims_text = "\n".join(
        f"  [{'ok' if v else 'FAIL'}] {k}" for k, v in claims.items()
    )
    return (
        f"{result.figure} — % of total time per MG level "
        f"(rbgs vs restrict/refine)\n"
        + format_table(headers, rows) + "\nshape claims:\n" + claims_text
    )
