"""CLI dispatcher: ``python -m repro.experiments <id> [options]``.

Experiment ids: ``table1``, ``table2``, ``fig1``, ``fig2``, ``fig3``,
``fig4``, ``fig5``, ``fig6``, ``fig7``, ``ablations``, ``all``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments import (
    ablations,
    convergence,
    fig1,
    fig2,
    fig3,
    fig4_7,
    table1,
    table2,
)


def _run_table1(args) -> str:
    rows = table1.run(local_sizes=tuple(args.table1_sizes),
                      procs=tuple(args.table1_procs))
    return table1.render(rows)


def _run_table2(args) -> str:
    return table2.render(table2.run())


def _run_fig1(args) -> str:
    return fig1.render(fig1.run(nx=args.nx, iterations=args.iters))


def _run_fig2(args) -> str:
    return fig2.render(fig2.run(nx=args.nx, iterations=args.iters))


def _run_fig3(args) -> str:
    # fig3 needs a realistically sized per-node grid for the allgather
    # term to dominate the barrier floor (see fig3.shape_claims).
    local_nx = max(args.local_nx, 24)
    return fig3.render(fig3.run(local_nx=local_nx, iterations=args.iters))


def _run_fig4(args) -> str:
    return fig4_7.render(fig4_7.run_fig4(nx=args.nx, iterations=args.iters))


def _run_fig5(args) -> str:
    return fig4_7.render(fig4_7.run_fig5(nx=args.nx, iterations=args.iters))


def _run_fig6(args) -> str:
    return fig4_7.render(fig4_7.run_fig6(local_nx=args.local_nx,
                                         iterations=args.iters))


def _run_fig7(args) -> str:
    return fig4_7.render(fig4_7.run_fig7(local_nx=args.local_nx,
                                         iterations=args.iters))


def _run_ablations(args) -> str:
    return ablations.render(ablations.run(local_nx=args.local_nx))


def _run_convergence(args) -> str:
    return convergence.render(convergence.run(nx=8, iterations=args.iters))


_DISPATCH = {
    "table1": _run_table1,
    "table2": _run_table2,
    "fig1": _run_fig1,
    "fig2": _run_fig2,
    "fig3": _run_fig3,
    "fig4": _run_fig4,
    "fig5": _run_fig5,
    "fig6": _run_fig6,
    "fig7": _run_fig7,
    "ablations": _run_ablations,
    "convergence": _run_convergence,
}


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("experiment", choices=list(_DISPATCH) + ["all"])
    parser.add_argument("--nx", type=int, default=16,
                        help="shared-memory problem edge size")
    parser.add_argument("--local-nx", type=int, default=16,
                        help="per-node problem edge size (distributed)")
    parser.add_argument("--iters", type=int, default=3,
                        help="CG iterations per measurement")
    parser.add_argument("--table1-sizes", type=int, nargs="+",
                        default=[8, 16, 24])
    parser.add_argument("--table1-procs", type=int, nargs="+",
                        default=[2, 4, 8])
    args = parser.parse_args(argv)

    names = list(_DISPATCH) if args.experiment == "all" else [args.experiment]
    for name in names:
        print(_DISPATCH[name](args))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
