"""Small shared utilities: error types, hierarchical timers, reports."""

from repro.util.errors import (
    ReproError,
    DimensionMismatch,
    DomainMismatch,
    InvalidValue,
    OutputAliasing,
)
from repro.util.timer import Timer, TimerRegistry, null_timer

__all__ = [
    "ReproError",
    "DimensionMismatch",
    "DomainMismatch",
    "InvalidValue",
    "OutputAliasing",
    "Timer",
    "TimerRegistry",
    "null_timer",
]
