"""Hierarchical wall-clock timers used by the HPCG driver and experiments.

Two kinds of "time" coexist in this project:

* real wall-clock time (this module), used for serial kernel benchmarks
  and the breakdown figures when running natively; and
* modelled BSP time (:mod:`repro.perf.model`), used to reproduce the
  multi-thread / multi-node figures on a machine we do not have.

``Timer`` supports both: ``tick(seconds)`` adds modelled time, while the
context-manager form measures wall-clock time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional
from contextlib import contextmanager


@dataclass
class Timer:
    """Accumulates elapsed seconds and invocation counts for one label."""

    name: str
    total: float = 0.0
    count: int = 0
    _measuring: bool = field(default=False, repr=False, compare=False)

    @contextmanager
    def measure(self) -> Iterator["Timer"]:
        # Re-entrant measurement of one timer double-counts the outer
        # elapsed interval — a silent corruption of every breakdown
        # figure — so it is an error, not a merge.
        if self._measuring:
            raise RuntimeError(
                f"re-entrant measure() on timer {self.name!r}"
            )
        self._measuring = True
        start = time.perf_counter()
        try:
            yield self
        finally:
            self._measuring = False
            self.total += time.perf_counter() - start
            self.count += 1

    def tick(self, seconds: float) -> None:
        """Record ``seconds`` of modelled (non-wall-clock) time."""
        if seconds < 0:
            raise ValueError(f"negative time tick: {seconds}")
        self.total += seconds
        self.count += 1

    def reset(self) -> None:
        self.total = 0.0
        self.count = 0


@dataclass
class TimerRegistry:
    """A flat registry of named timers with ``a/b/c`` path-style labels.

    HPCG uses labels like ``mg/level0/rbgs`` and ``mg/level0/restrict`` so
    the per-level breakdowns of Figures 4-7 can be recovered by prefix.
    """

    timers: Dict[str, Timer] = field(default_factory=dict)

    def get(self, name: str) -> Timer:
        timer = self.timers.get(name)
        if timer is None:
            timer = Timer(name)
            self.timers[name] = timer
        return timer

    @contextmanager
    def measure(self, name: str) -> Iterator[Timer]:
        with self.get(name).measure() as t:
            yield t

    def tick(self, name: str, seconds: float) -> None:
        self.get(name).tick(seconds)

    def total(self, prefix: str = "") -> float:
        """Sum of all timers whose name starts with ``prefix``."""
        return sum(t.total for name, t in self.timers.items() if name.startswith(prefix))

    def reset(self) -> None:
        for t in self.timers.values():
            t.reset()

    def as_dict(self, counts: bool = False) -> Dict[str, object]:
        """Label → seconds; with ``counts=True``, label → (seconds, calls)."""
        if counts:
            return {name: (t.total, t.count)
                    for name, t in sorted(self.timers.items())}
        return {name: t.total for name, t in sorted(self.timers.items())}

    def merge(self, other: "TimerRegistry") -> "TimerRegistry":
        """Fold another registry's totals and counts into this one."""
        for name, timer in other.timers.items():
            mine = self.get(name)
            mine.total += timer.total
            mine.count += timer.count
        return self

    def rollup(self, depth: int = 1, sep: str = "/") -> Dict[str, float]:
        """Totals aggregated to the first ``depth`` label segments.

        ``mg/L0/rbgs`` and ``mg/L0/restrict`` both land under ``mg`` at
        depth 1 (or ``mg/L0`` at depth 2).  Each leaf timer contributes
        to exactly one rollup bucket, so lifting the rollup into obs
        spans never double-counts a leaf.
        """
        if depth < 1:
            raise ValueError(f"rollup depth must be >= 1, got {depth}")
        out: Dict[str, float] = {}
        for name, t in self.timers.items():
            key = sep.join(name.split(sep)[:depth])
            out[key] = out.get(key, 0.0) + t.total
        return dict(sorted(out.items()))

    def report(self, min_fraction: float = 0.0) -> str:
        """Human-readable table sorted by descending total time."""
        grand = sum(t.total for t in self.timers.values()) or 1.0
        lines = [f"{'timer':<40} {'seconds':>12} {'calls':>8} {'share':>7}"]
        for name, t in sorted(self.timers.items(), key=lambda kv: -kv[1].total):
            share = t.total / grand
            if share < min_fraction:
                continue
            lines.append(f"{name:<40} {t.total:>12.6f} {t.count:>8d} {share:>6.1%}")
        return "\n".join(lines)


class _NullTimer:
    """A timer sink that ignores everything (used when timing is disabled)."""

    @contextmanager
    def measure(self, name: str = "") -> Iterator[None]:
        yield None

    def tick(self, name: str, seconds: float = 0.0) -> None:
        pass

    def get(self, name: str) -> "_NullTimer":
        return self

    def total(self, prefix: str = "") -> float:
        return 0.0


null_timer = _NullTimer()
