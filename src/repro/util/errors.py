"""Exception hierarchy shared by all subpackages.

The GraphBLAS C specification defines API error codes
(``GrB_DIMENSION_MISMATCH``, ``GrB_DOMAIN_MISMATCH``, ...); we mirror the
ones this project can actually raise as Python exceptions so callers can
catch them precisely.
"""


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class DimensionMismatch(ReproError, ValueError):
    """Container sizes are incompatible for the requested operation.

    Mirrors ``GrB_DIMENSION_MISMATCH``.
    """


class DomainMismatch(ReproError, TypeError):
    """Operator/container domains (dtypes) are incompatible.

    Mirrors ``GrB_DOMAIN_MISMATCH``.
    """


class InvalidValue(ReproError, ValueError):
    """An argument value is outside the accepted set.

    Mirrors ``GrB_INVALID_VALUE``.
    """


class OutputAliasing(ReproError, ValueError):
    """The output container illegally aliases an input container.

    The GraphBLAS specification forbids most in-place aliasing; operations
    that support aliasing document it explicitly.
    """


class NotConverged(ReproError, RuntimeError):
    """An iterative solver failed to reach its tolerance."""

    def __init__(self, message: str, iterations: int, residual: float):
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual
