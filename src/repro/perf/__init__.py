"""Machine models and the shared-memory scaling model.

The paper's shared-memory experiments ran on two physical machines
(Table II) we do not have.  :mod:`repro.perf.machine` encodes those
machines' published characteristics; :mod:`repro.perf.model` converts a
*measured* GraphBLAS operation stream (bytes/flops per kernel, captured
by :mod:`repro.graphblas.backend`) into predicted execution times at a
given thread placement, using an explicit bandwidth-saturation + NUMA
model.  The same model instance generates Figures 1, 2, 4 and 5.
"""

from repro.perf.machine import ARM, X86, MachineSpec, table2_rows
from repro.perf.model import (
    ALP_PROFILE,
    REF_PROFILE,
    ImplProfile,
    Placement,
    ScalingModel,
    collect_op_stream,
    packed_placement,
    ref_stream_from_alp,
    split_stream,
)

__all__ = [
    "MachineSpec",
    "ARM",
    "X86",
    "table2_rows",
    "ImplProfile",
    "ALP_PROFILE",
    "REF_PROFILE",
    "Placement",
    "ScalingModel",
    "collect_op_stream",
    "packed_placement",
    "ref_stream_from_alp",
    "split_stream",
]
