"""Calibrate a machine model for THIS machine.

The figures reproduce the paper's machines from Table II constants, but
the same modelling pipeline works for the machine the tests run on:
measure the attainable memory bandwidth (a STREAM-triad-like loop) and
the serial byte-throughput of the actual HPCG kernels, then build a
:class:`~repro.perf.machine.MachineSpec` whose predictions can be
compared against real wall-clock (see ``tests/test_calibrate.py``).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro import graphblas as grb
from repro.hpcg.problem import Problem
from repro.perf.machine import MachineSpec
from repro.perf.model import collect_op_stream


@dataclass(frozen=True)
class CalibrationResult:
    """Measured rates of the current machine/process."""

    triad_bandwidth: float       # bytes/s of a dense triad
    kernel_bandwidth: float      # effective bytes/s of the HPCG op stream
    kernel_seconds: float        # wall-clock of the calibration run
    stream_bytes: float          # formula bytes of the calibration run

    @property
    def efficiency(self) -> float:
        """Fraction of triad bandwidth the sparse kernels reach."""
        return self.kernel_bandwidth / self.triad_bandwidth if self.triad_bandwidth else 0.0


def measure_triad_bandwidth(size: int = 4_000_000, repeats: int = 5) -> float:
    """STREAM-triad-like bandwidth of this process (bytes/second)."""
    a = np.zeros(size)
    b = np.random.default_rng(0).standard_normal(size)
    c = np.random.default_rng(1).standard_normal(size)
    best = 0.0
    for _ in range(repeats):
        start = time.perf_counter()
        np.multiply(b, 2.5, out=a)
        a += c
        elapsed = time.perf_counter() - start
        # 3 streams of 8 bytes each (read b, read c, write a)
        best = max(best, 3 * 8 * size / elapsed)
    return best


def calibrate(problem: Problem, mg_levels: int = 3,
              iterations: int = 3) -> CalibrationResult:
    """Measure the real byte-throughput of this library's HPCG kernels."""
    triad = measure_triad_bandwidth()
    stream = collect_op_stream(problem, mg_levels=mg_levels,
                               iterations=iterations)
    stream_bytes = sum(stream.values())
    # re-run the same workload under a wall clock (collect_op_stream's
    # instrumentation overhead is small but real; measuring a separate
    # run keeps the two concerns apart)
    from repro.hpcg.cg import pcg
    from repro.hpcg.multigrid import MGPreconditioner, build_hierarchy
    mg_levels = min(mg_levels, problem.grid.max_mg_levels())
    hierarchy = build_hierarchy(problem, levels=mg_levels)
    precond = MGPreconditioner(hierarchy)
    x = problem.x0.dup()
    start = time.perf_counter()
    pcg(problem.A, problem.b, x, preconditioner=precond,
        max_iters=iterations)
    kernel_seconds = time.perf_counter() - start
    return CalibrationResult(
        triad_bandwidth=triad,
        kernel_bandwidth=stream_bytes / kernel_seconds if kernel_seconds else 0.0,
        kernel_seconds=kernel_seconds,
        stream_bytes=stream_bytes,
    )


def this_machine(name: str = "local",
                 calibration: Optional[CalibrationResult] = None,
                 bandwidth: Optional[float] = None) -> MachineSpec:
    """A single-socket MachineSpec for the current host.

    Core count comes from the OS; bandwidth from the triad measurement.
    A caller who already holds a :class:`CalibrationResult` (or a raw
    triad figure) passes it via ``calibration=``/``bandwidth=`` and the
    triad is *not* re-measured — :func:`calibrate` already paid for it.
    Cache/frequency fields are filled with neutral placeholders — the
    scaling model only consumes cores, sockets, NUMA domains and
    bandwidth.
    """
    if bandwidth is None:
        bandwidth = (calibration.triad_bandwidth if calibration is not None
                     else measure_triad_bandwidth())
    return MachineSpec.single_socket(
        name=name,
        cpu="local-host",
        cores=os.cpu_count() or 1,
        bandwidth=bandwidth,
        network="n/a",
    )
