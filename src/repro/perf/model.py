"""The shared-memory scaling model behind Figures 1, 2, 4 and 5.

HPCG is memory-bandwidth-bound, so the model's core is *how much of the
machine's attained bandwidth a given implementation extracts at a given
thread placement*:

``BW(t) = efficiency * sum_over_used_sockets[ BW_socket * util(t_s) * numa(t_s) ]``

* ``util(t_s) = t_eff / (t_eff + half_sat)`` — a saturating curve; the
  ``half_sat`` parameter is the implementation's thread count at 50%
  of socket bandwidth.  ALP saturates with few threads (the paper
  attributes this to GraphBLAS semantics + template propagation letting
  the compiler emit better kernels); Ref needs many more, and on x86
  only saturates with hyperthreads (paper Section V-A).  Hyperthreads
  contribute to ``t_eff`` with weight ``smt_weight`` (they add memory-
  level parallelism, not bandwidth).
* ``numa(t_s)`` — NUMA-unaware, domain-local allocations (Ref) serve all
  threads of a socket from one domain's channels: once threads exceed
  one domain's cores, the extra threads contend, modelled as a linear
  penalty.  NUMA-aware interleaved allocations (ALP; or Ref under
  ``numactl --interleave``, which is what the paper plots across two
  sockets) spread pressure evenly: no penalty.  This is what makes
  Ref degrade as threads approach a full Kunpeng socket (two NUMA
  domains per socket, Figure 1) while ALP does not.

The *work* fed into the model is not hand-written: it is the byte/flop
stream of an actual serial run of this repository's GraphBLAS HPCG,
captured by :mod:`repro.graphblas.backend` (see
:func:`collect_op_stream`).  Ref's stream differs only where the paper's
implementations differ: restriction/refinement are index copies rather
than mxv (fewer bytes per transferred point).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro import graphblas as grb
from repro.hpcg.cg import pcg
from repro.hpcg.multigrid import MGPreconditioner, build_hierarchy
from repro.hpcg.problem import Problem
from repro.perf.machine import MachineSpec
from repro.util.errors import InvalidValue


@dataclass(frozen=True)
class ImplProfile:
    """Scaling personality of one implementation."""

    name: str
    numa_aware: bool
    half_sat_threads: float   # threads at 50% of one socket's bandwidth
    smt_weight: float         # how much a hyperthread adds to t_eff
    efficiency: float         # fraction of attained bandwidth reachable
    numa_penalty: float = 0.35  # max slowdown factor for domain-local alloc
    # The paper runs the two-socket Ref configurations under
    # ``numactl --interleave`` (Section V-A), which spreads pages over
    # all NUMA domains and removes the domain-local penalty there; the
    # single-socket runs keep the default (penalised) policy.
    multisocket_interleave: bool = True


# ALP: NUMA-aware interleaved allocator, compiler-optimised kernels.
ALP_PROFILE = ImplProfile(
    name="ALP", numa_aware=True, half_sat_threads=3.0, smt_weight=0.25,
    efficiency=1.0,
)
# Ref: plain allocations, saturates late, gains a lot from SMT.
REF_PROFILE = ImplProfile(
    name="Ref", numa_aware=False, half_sat_threads=12.0, smt_weight=1.0,
    efficiency=0.97,
)


@dataclass(frozen=True)
class Placement:
    """``threads`` application threads packed onto ``sockets`` sockets.

    The paper pins threads to physical cores packed on one socket when
    they fit ("44 - 1S" on x86 means 44 threads — 22 cores plus their
    hyperthreads — on a single socket).
    """

    threads: int
    sockets: int

    def __post_init__(self):
        if self.threads < 1 or self.sockets < 1:
            raise InvalidValue("placement needs >= 1 thread and socket")

    @property
    def threads_per_socket(self) -> float:
        return self.threads / self.sockets


def packed_placement(machine: MachineSpec, threads: int) -> Placement:
    """Default packing: fill physical cores of one socket, then spill."""
    per_socket_threads = machine.cores_per_socket * machine.threads_per_core
    sockets = min(machine.sockets, max(1, math.ceil(threads / per_socket_threads)))
    # prefer fewer sockets only if the threads fit as physical cores there
    if threads <= machine.cores_per_socket:
        sockets = 1
    elif threads <= machine.physical_cores:
        sockets = min(machine.sockets, math.ceil(threads / machine.cores_per_socket))
    return Placement(threads=threads, sockets=sockets)


class ScalingModel:
    """Predicts kernel times for (machine, implementation) pairs."""

    def __init__(self, machine: MachineSpec, impl: ImplProfile):
        self.machine = machine
        self.impl = impl

    # --- the bandwidth curve ---------------------------------------------------
    def socket_utilisation(self, threads_on_socket: float) -> float:
        """Fraction of one socket's bandwidth extracted by ``t_s`` threads."""
        m, impl = self.machine, self.impl
        phys = min(threads_on_socket, m.cores_per_socket)
        smt = max(0.0, threads_on_socket - m.cores_per_socket)
        t_eff = phys + impl.smt_weight * smt
        return t_eff / (t_eff + impl.half_sat_threads)

    def numa_factor(self, threads_on_socket: float, sockets: int = 1) -> float:
        """Penalty for domain-local allocations spanning NUMA domains."""
        m, impl = self.machine, self.impl
        if impl.numa_aware or m.numa_domains_per_socket == 1:
            return 1.0
        if sockets > 1 and impl.multisocket_interleave:
            return 1.0
        per_domain = m.cores_per_numa_domain
        phys = min(threads_on_socket, m.cores_per_socket)
        if phys <= per_domain:
            return 1.0
        overflow = (phys - per_domain) / per_domain
        return 1.0 / (1.0 + impl.numa_penalty * overflow)

    def effective_bandwidth(self, placement: Placement) -> float:
        """Bytes/s the implementation extracts at this placement."""
        m, impl = self.machine, self.impl
        t_s = placement.threads_per_socket
        per_socket = (
            m.bandwidth_per_socket
            * self.socket_utilisation(t_s)
            * self.numa_factor(t_s, placement.sockets)
        )
        return impl.efficiency * per_socket * placement.sockets

    # --- time predictions --------------------------------------------------------
    def time_for_bytes(self, nbytes: float, placement: Placement) -> float:
        return nbytes / self.effective_bandwidth(placement)

    def kernel_times(
        self, stream: Dict[str, float], placement: Placement
    ) -> Dict[str, float]:
        """Per-label seconds for a measured byte stream."""
        bw = self.effective_bandwidth(placement)
        return {label: nbytes / bw for label, nbytes in stream.items()}

    def total_time(self, stream: Dict[str, float], placement: Placement) -> float:
        return sum(self.kernel_times(stream, placement).values())


# ---------------------------------------------------------------------------
# op-stream capture
# ---------------------------------------------------------------------------

def collect_op_stream(
    problem: Problem,
    mg_levels: int = 4,
    iterations: int = 5,
) -> Dict[str, float]:
    """Run serial GraphBLAS HPCG and return bytes moved per kernel label.

    Labels are ``rbgs@L{i}``, ``restrict@L{i}``, ``refine@L{i}``,
    ``mg_spmv@L{i}``, ``spmv``, ``dot``, ``waxpby`` — the level-tagged
    stream Figures 4-5 break down.
    """
    log = grb.backend.EventLog()
    mg_levels = min(mg_levels, problem.grid.max_mg_levels())
    hierarchy = build_hierarchy(problem, levels=mg_levels)
    precond = MGPreconditioner(hierarchy)
    x = problem.x0.dup()
    with grb.backend.collect(log):
        pcg(problem.A, problem.b, x, preconditioner=precond,
            max_iters=iterations)
    stream: Dict[str, float] = {}
    for event in log.events:
        label = event.label or event.op
        stream[label] = stream.get(label, 0.0) + float(event.bytes)
    return stream


def ref_stream_from_alp(stream: Dict[str, float]) -> Dict[str, float]:
    """Derive the Ref implementation's byte stream from ALP's.

    The two implementations run the same mathematics; they differ where
    the paper says they differ (Section III-B): Ref's restriction and
    refinement are raw index copies (8-byte read + 8-byte write per
    transferred point ≈ 16 bytes) while ALP's are mxv over a
    materialised matrix (value + column index + output row traffic ≈ 28
    bytes per point).  Everything else is byte-identical.
    """
    out = {}
    for label, nbytes in stream.items():
        if label.startswith(("restrict@", "refine@")):
            out[label] = nbytes * 16.0 / 28.0
        else:
            out[label] = nbytes
    return out


def split_stream(stream: Dict[str, float]) -> Dict[str, Dict[str, float]]:
    """Group a level-tagged stream: {kernel: {level_or_'-': bytes}}."""
    out: Dict[str, Dict[str, float]] = {}
    for label, nbytes in stream.items():
        kernel, _, level = label.partition("@")
        out.setdefault(kernel, {})[level or "-"] = (
            out.get(kernel, {}).get(level or "-", 0.0) + nbytes
        )
    return out


# ---------------------------------------------------------------------------
# distributed communication: overlapped vs. exposed wire time
# ---------------------------------------------------------------------------

def comm_overlap_stream(machine, tracker) -> Dict[str, Dict[str, float]]:
    """Per-label wire-time decomposition of a recorded trace.

    For each superstep label the full ``h*g + L`` wire time, the
    *exposed* remainder after split-phase supersteps hide what their
    ``overlapped_work`` tags allow, and the hidden difference:
    ``{label: {"full": s, "exposed": s, "hidden": s}}``.  ``machine``
    is a :class:`repro.dist.bsp.BSPMachine`; eager traces report
    ``hidden == 0`` everywhere.
    """
    out: Dict[str, Dict[str, float]] = {}
    for step in tracker.supersteps:
        label = step.label or "-"
        full = machine.comm_time(step.h)
        exposed = machine.exposed_comm_time(step.h, step.overlapped_work)
        row = out.setdefault(label,
                             {"full": 0.0, "exposed": 0.0, "hidden": 0.0})
        row["full"] += full
        row["exposed"] += exposed
        row["hidden"] += full - exposed
    return out


def overlap_savings(machine, tracker) -> float:
    """Fraction of a trace's wire time hidden by split-phase overlap."""
    full = sum(machine.comm_time(s.h) for s in tracker.supersteps)
    if full == 0.0:
        return 0.0
    exposed = sum(machine.exposed_comm_time(s.h, s.overlapped_work)
                  for s in tracker.supersteps)
    return (full - exposed) / full
