"""The paper's experimental machines (Table II) as data.

All figures come straight from the paper; the ``attained_bandwidth`` is
the measured STREAM-like figure the paper reports, which is the number
the bandwidth-bound kernel model divides by.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.util.errors import InvalidValue


@dataclass(frozen=True)
class MachineSpec:
    """One shared-memory machine (a node of the cluster)."""

    name: str
    cpu: str
    cores_per_socket: int
    sockets: int
    threads_per_core: int           # 2 when SMT/HT is enabled
    numa_domains_per_socket: int
    max_frequency_ghz: float
    l3_cache_mb: float              # per socket
    l2_cache_kb_per_core: float
    memory_channels: int            # per socket
    ram_gb: int
    ddr_frequency_mhz: int
    attained_bandwidth: float       # bytes/s, whole machine
    network: str

    def __post_init__(self):
        if self.cores_per_socket < 1 or self.sockets < 1:
            raise InvalidValue("machine must have at least one core/socket")

    @classmethod
    def single_socket(cls, name: str, cpu: str, cores: int,
                      bandwidth: float, network: str) -> "MachineSpec":
        """A measured single-socket spec with neutral placeholders.

        The scaling model only consumes cores, sockets, NUMA domains
        and bandwidth; cache/frequency fields are zeroed.  This is the
        shared shape behind :func:`repro.perf.calibrate.this_machine`
        and :meth:`from_profile`.
        """
        return cls(
            name=name,
            cpu=cpu,
            cores_per_socket=max(int(cores), 1),
            sockets=1,
            threads_per_core=1,
            numa_domains_per_socket=1,
            max_frequency_ghz=0.0,
            l3_cache_mb=0.0,
            l2_cache_kb_per_core=0.0,
            memory_channels=0,
            ram_gb=0,
            ddr_frequency_mhz=0,
            attained_bandwidth=bandwidth,
            network=network,
        )

    @classmethod
    def from_profile(cls, profile, name: Optional[str] = None
                     ) -> "MachineSpec":
        """A single-socket spec built from a measured
        :class:`repro.tune.MachineProfile` instead of a datasheet.

        Core count and attained bandwidth come from the measurement.
        """
        return cls.single_socket(
            name=name or f"profile:{profile.name}",
            cpu=profile.host or "measured-host",
            cores=profile.cores,
            bandwidth=profile.triad_bandwidth,
            network=(f"measured: g={profile.net_bandwidth / 1e9:.2f} GB/s, "
                     f"L={profile.latency * 1e6:.2f} us"),
        )

    @property
    def physical_cores(self) -> int:
        return self.cores_per_socket * self.sockets

    @property
    def hardware_threads(self) -> int:
        return self.physical_cores * self.threads_per_core

    @property
    def bandwidth_per_socket(self) -> float:
        return self.attained_bandwidth / self.sockets

    @property
    def cores_per_numa_domain(self) -> int:
        return self.cores_per_socket // self.numa_domains_per_socket


# Table II, x86 column: dual-socket Xeon Gold 6238T.
X86 = MachineSpec(
    name="x86",
    cpu="Xeon Gold 6238T",
    cores_per_socket=22,
    sockets=2,
    threads_per_core=2,             # HT enabled: 44 threads/socket
    numa_domains_per_socket=1,
    max_frequency_ghz=3.70,
    l3_cache_mb=30.25,
    l2_cache_kb_per_core=1024,
    memory_channels=6,
    ram_gb=192,
    ddr_frequency_mhz=2933,
    attained_bandwidth=192.0e9,
    network="Mellanox ConnectX-5, 2x100Gb/s",
)

# Table II, ARM column: dual-socket Kunpeng 920-4826.
ARM = MachineSpec(
    name="ARM",
    cpu="Kunpeng 920-4826",
    cores_per_socket=48,
    sockets=2,
    threads_per_core=1,
    numa_domains_per_socket=2,
    max_frequency_ghz=2.6,
    l3_cache_mb=48,
    l2_cache_kb_per_core=512,
    memory_channels=8,
    ram_gb=512,
    ddr_frequency_mhz=2933,
    attained_bandwidth=246.3e9,
    network="Mellanox ConnectX-5, 2x100Gb/s",
)


def table2_rows() -> List[Dict[str, str]]:
    """Regenerate the rows of paper Table II from the encoded specs."""
    rows = []
    for field, getter in [
        ("CPU", lambda m: m.cpu),
        ("cores (per socket)", lambda m: str(m.cores_per_socket)),
        ("threads (per node)", lambda m: str(m.hardware_threads)),
        ("max frequency (GHz)", lambda m: f"{m.max_frequency_ghz:g}"),
        ("L3 cache (MB, per socket)", lambda m: f"{m.l3_cache_mb:g}"),
        ("per core L2 cache (KB)", lambda m: f"{m.l2_cache_kb_per_core:g}"),
        ("memory channels (per socket)", lambda m: str(m.memory_channels)),
        ("NUMA domains (per socket)", lambda m: str(m.numa_domains_per_socket)),
        ("sockets", lambda m: str(m.sockets)),
        ("RAM memory (GB)", lambda m: str(m.ram_gb)),
        ("max DDR frequency (MHz)", lambda m: str(m.ddr_frequency_mhz)),
        ("attained bandwidth (GB/s)", lambda m: f"{m.attained_bandwidth / 1e9:g}"),
        ("network adapter", lambda m: m.network),
    ]:
        rows.append({"field": field, "x86": getter(X86), "ARM": getter(ARM)})
    return rows
