"""Reference CG: the same iteration as :mod:`repro.hpcg.cg` on raw arrays.

Keeping the two solvers line-for-line parallel lets tests assert that
ALP and Ref produce *numerically comparable results* — the property the
paper relies on to fix the iteration count and compare times directly
(Section V).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np
import scipy.sparse as sp

from repro.ref.kernels import compute_dot, compute_spmv, compute_waxpby
from repro.util.errors import DimensionMismatch
from repro.util.timer import null_timer

RefPreconditioner = Callable[[np.ndarray, np.ndarray], np.ndarray]


@dataclass
class RefCGResult:
    x: np.ndarray
    iterations: int
    converged: bool
    normr0: float
    normr: float
    residuals: List[float] = field(default_factory=list)

    @property
    def relative_residual(self) -> float:
        return self.normr / self.normr0 if self.normr0 else 0.0


def ref_pcg(
    A: sp.csr_matrix,
    b: np.ndarray,
    x: np.ndarray,
    preconditioner: Optional[RefPreconditioner] = None,
    max_iters: int = 50,
    tolerance: float = 0.0,
    timers=null_timer,
) -> RefCGResult:
    """Solve ``A x = b`` in place; mirrors :func:`repro.hpcg.cg.pcg`."""
    n = A.shape[0]
    if b.shape[0] != n or x.shape[0] != n:
        raise DimensionMismatch(f"CG sizes: A {A.shape}, b {b.shape[0]}, x {x.shape[0]}")
    r = np.zeros(n)
    z = np.zeros(n)
    p = np.zeros(n)
    Ap = np.zeros(n)

    with timers.measure("cg/spmv"):
        compute_spmv(Ap, A, x)
    with timers.measure("cg/waxpby"):
        compute_waxpby(r, 1.0, b, -1.0, Ap)
    with timers.measure("cg/dot"):
        normr0 = normr = float(np.sqrt(compute_dot(r, r)))
    residuals = [normr]
    rtz = 0.0

    if normr0 == 0.0:
        # the initial guess already solves the system exactly
        return RefCGResult(x=x, iterations=0, converged=True, normr0=0.0,
                           normr=0.0, residuals=residuals)

    iterations = 0
    for k in range(1, max_iters + 1):
        if tolerance > 0 and normr / normr0 <= tolerance:
            break
        if preconditioner is not None:
            with timers.measure("cg/mg"):
                preconditioner(z, r)
        else:
            with timers.measure("cg/waxpby"):
                z[:] = r
        if k == 1:
            with timers.measure("cg/waxpby"):
                p[:] = z
            with timers.measure("cg/dot"):
                rtz = compute_dot(r, z)
        else:
            rtz_old = rtz
            with timers.measure("cg/dot"):
                rtz = compute_dot(r, z)
            beta = rtz / rtz_old
            with timers.measure("cg/waxpby"):
                compute_waxpby(p, 1.0, z, beta, p)
        with timers.measure("cg/spmv"):
            compute_spmv(Ap, A, p)
        with timers.measure("cg/dot"):
            pAp = compute_dot(p, Ap)
        alpha = rtz / pAp
        with timers.measure("cg/waxpby"):
            compute_waxpby(x, 1.0, x, alpha, p)
            compute_waxpby(r, 1.0, r, -alpha, Ap)
        with timers.measure("cg/dot"):
            normr = float(np.sqrt(compute_dot(r, r)))
        residuals.append(normr)
        iterations = k

    converged = tolerance > 0 and normr / normr0 <= tolerance
    return RefCGResult(
        x=x, iterations=iterations, converged=converged,
        normr0=normr0, normr=normr, residuals=residuals,
    )
