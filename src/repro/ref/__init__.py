"""The "Ref" baseline: reference-HPCG-style kernels on raw CSR storage.

This package deliberately does what :mod:`repro.hpcg` cannot: it reaches
straight into the CSR arrays (restriction by index copy, per-colour row
slices, triangular solves on matrix splits).  The paper's comparison is
precisely GraphBLAS-with-opaque-containers (ALP) versus this style of
code (Ref); keeping both in the repository makes every experiment a
two-sided measurement.

Naming follows the official HPCG sources: ``compute_spmv``,
``compute_waxpby``, ``compute_dot``, ``compute_symgs``, ``compute_mg``.
"""

from repro.ref.kernels import compute_dot, compute_spmv, compute_waxpby
from repro.ref.sgs import RefRBGS, RefSymGS
from repro.ref.multigrid import RefMGLevel, build_ref_hierarchy, ref_mg_vcycle
from repro.ref.cg import RefCGResult, ref_pcg
from repro.ref.driver import RefHPCGResult, run_ref_hpcg

__all__ = [
    "compute_spmv",
    "compute_waxpby",
    "compute_dot",
    "RefSymGS",
    "RefRBGS",
    "RefMGLevel",
    "build_ref_hierarchy",
    "ref_mg_vcycle",
    "RefCGResult",
    "ref_pcg",
    "RefHPCGResult",
    "run_ref_hpcg",
]
