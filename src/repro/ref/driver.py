"""Reference-HPCG driver, parallel to :mod:`repro.hpcg.driver`."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.hpcg.problem import Problem, generate_problem
from repro.ref.cg import RefCGResult, ref_pcg
from repro.ref.multigrid import RefMGPreconditioner, build_ref_hierarchy
from repro.util.timer import TimerRegistry


@dataclass
class RefHPCGResult:
    problem: Problem
    cg: RefCGResult
    timers: TimerRegistry
    setup_seconds: float
    run_seconds: float
    mg_levels: int

    def mg_level_breakdown(self) -> List[Dict[str, float]]:
        """Per-level RBGS vs restrict+refine shares of total time."""
        total = self.run_seconds or 1.0
        out = []
        for i in range(self.mg_levels):
            rbgs = self.timers.total(f"mg/L{i}/rbgs")
            rr = self.timers.total(f"mg/L{i}/restrict") + self.timers.total(
                f"mg/L{i}/prolong"
            )
            out.append({"level": i, "rbgs": rbgs / total, "restrict_refine": rr / total})
        return out

    def summary(self) -> str:
        return (
            f"Ref HPCG: grid {self.problem.grid.dims}, n={self.problem.n}, "
            f"iters {self.cg.iterations}, rel.res {self.cg.relative_residual:.3e}, "
            f"setup {self.setup_seconds:.3f}s, run {self.run_seconds:.3f}s"
        )


def run_ref_hpcg(
    nx: int,
    ny: int = 0,
    nz: int = 0,
    max_iters: int = 50,
    tolerance: float = 0.0,
    mg_levels: int = 4,
    smoother: str = "rbgs",
    b_style: str = "reference",
    problem: Optional[Problem] = None,
) -> RefHPCGResult:
    """Run reference HPCG (direct-storage kernels) and return the report."""
    t0 = time.perf_counter()
    if problem is None:
        problem = generate_problem(nx, ny, nz, b_style=b_style)
    timers = TimerRegistry()
    preconditioner = None
    if mg_levels > 0:
        hierarchy = build_ref_hierarchy(problem, levels=mg_levels, smoother=smoother)
        preconditioner = RefMGPreconditioner(hierarchy, timers=timers)
    setup_seconds = time.perf_counter() - t0

    A = problem.A.to_scipy(copy=False)
    b = problem.b.to_dense()
    x = problem.x0.to_dense()
    t1 = time.perf_counter()
    cg_result = ref_pcg(
        A, b, x,
        preconditioner=preconditioner,
        max_iters=max_iters,
        tolerance=tolerance,
        timers=timers,
    )
    run_seconds = time.perf_counter() - t1
    return RefHPCGResult(
        problem=problem,
        cg=cg_result,
        timers=timers,
        setup_seconds=setup_seconds,
        run_seconds=run_seconds,
        mg_levels=mg_levels,
    )
