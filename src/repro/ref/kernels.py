"""Reference HPCG computational kernels on raw arrays.

These are the three CG kernels of paper Section II-C, written the way
the reference code writes them: direct operations on the CSR arrays and
dense vectors, no algebraic abstraction.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.util.errors import DimensionMismatch


def compute_spmv(y: np.ndarray, A: sp.csr_matrix, x: np.ndarray) -> np.ndarray:
    """``y = A x`` — the runtime-dominant kernel (Θ(nnz))."""
    if A.shape[1] != x.shape[0] or A.shape[0] != y.shape[0]:
        raise DimensionMismatch(
            f"spmv sizes: A {A.shape}, x {x.shape[0]}, y {y.shape[0]}"
        )
    # scipy's csr_matvec with a preallocated output.
    y[:] = A.dot(x)
    return y


def compute_waxpby(
    w: np.ndarray, alpha: float, x: np.ndarray, beta: float, y: np.ndarray
) -> np.ndarray:
    """``w = alpha x + beta y``; ``w`` may alias ``x`` or ``y``."""
    if not (w.shape == x.shape == y.shape):
        raise DimensionMismatch(
            f"waxpby sizes: w {w.shape}, x {x.shape}, y {y.shape}"
        )
    if w is x:
        w *= alpha
        w += beta * y
    elif w is y:
        w *= beta
        w += alpha * x
    else:
        np.multiply(x, alpha, out=w)
        w += beta * y
    return w


def compute_dot(x: np.ndarray, y: np.ndarray) -> float:
    """``x' y``."""
    if x.shape != y.shape:
        raise DimensionMismatch(f"dot sizes: {x.shape} vs {y.shape}")
    return float(np.dot(x, y))


def compute_residual_norm(A: sp.csr_matrix, b: np.ndarray, x: np.ndarray) -> float:
    """``||b - A x||_2``."""
    return float(np.linalg.norm(b - A.dot(x)))
