"""Reference smoothers: exact sequential SYMGS and direct-access RBGS.

:class:`RefSymGS` is the official HPCG smoother — the *inherently
sequential* symmetric Gauss-Seidel of paper Section II-E.  The forward
sweep solves ``(D + L) z_new = r - U z_old`` exactly (each ``z_i``
update sees all already-updated ``z_j``, j < i); the backward sweep is
the mirror image.  We realise the sweeps as sparse triangular solves on
precomputed matrix splits, which gives bit-exact sequential semantics
without a Python-level loop over rows.

:class:`RefRBGS` is the smoother the paper adds to the reference code
base (Section IV): the same multi-colour relaxation as the GraphBLAS
version, but implemented through direct CSR slicing — per-colour row
submatrices and fancy indexing, the kind of storage access GraphBLAS
forbids.  Ref and ALP RBGS must produce identical iterates; tests
assert this to machine precision.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np
import scipy.sparse as sp
from scipy.sparse.linalg import spsolve_triangular

from repro.util.errors import DimensionMismatch, InvalidValue


class RefSymGS:
    """Exact sequential symmetric Gauss-Seidel via triangular solves."""

    def __init__(self, A: sp.csr_matrix):
        if A.shape[0] != A.shape[1]:
            raise InvalidValue("SYMGS requires a square operator")
        A = A.tocsr()
        self.A = A
        self.n = A.shape[0]
        diag = A.diagonal()
        if (diag == 0).any():
            raise InvalidValue("SYMGS requires a nonzero diagonal")
        # (D + L) and (D + U) splits, kept in CSR for the solver.
        self._lower = sp.tril(A, k=0, format="csr")     # D + L
        self._upper = sp.triu(A, k=0, format="csr")     # D + U
        self._strict_lower = sp.tril(A, k=-1, format="csr")
        self._strict_upper = sp.triu(A, k=1, format="csr")

    def forward(self, z: np.ndarray, r: np.ndarray) -> np.ndarray:
        """One forward sweep: ``z <- (D+L)^-1 (r - U z)``."""
        self._check(z, r)
        rhs = r - self._strict_upper.dot(z)
        z[:] = spsolve_triangular(self._lower, rhs, lower=True)
        return z

    def backward(self, z: np.ndarray, r: np.ndarray) -> np.ndarray:
        """One backward sweep: ``z <- (D+U)^-1 (r - L z)``."""
        self._check(z, r)
        rhs = r - self._strict_lower.dot(z)
        z[:] = spsolve_triangular(self._upper, rhs, lower=False)
        return z

    def smooth(self, z: np.ndarray, r: np.ndarray, sweeps: int = 1) -> np.ndarray:
        """``sweeps`` symmetric passes (forward then backward)."""
        for _ in range(sweeps):
            self.forward(z, r)
            self.backward(z, r)
        return z

    def _check(self, z: np.ndarray, r: np.ndarray) -> None:
        if z.shape[0] != self.n or r.shape[0] != self.n:
            raise DimensionMismatch(
                f"vector sizes ({z.shape[0]}, {r.shape[0]}) != {self.n}"
            )


class RefRBGS:
    """Multi-colour Gauss-Seidel with direct CSR storage access.

    ``colors`` is an int array of colour ids (as produced by
    :mod:`repro.hpcg.coloring`); per-colour row submatrices are sliced
    once at construction — the data-structure manipulation that opaque
    containers disallow and that the paper replaces with masked mxv.
    """

    def __init__(self, A: sp.csr_matrix, colors: np.ndarray,
                 diag: Optional[np.ndarray] = None):
        if A.shape[0] != A.shape[1]:
            raise InvalidValue("RBGS requires a square operator")
        if colors.shape[0] != A.shape[0]:
            raise DimensionMismatch("colour array size mismatch")
        A = A.tocsr()
        self.A = A
        self.n = A.shape[0]
        self.diag = A.diagonal() if diag is None else np.asarray(diag, dtype=A.dtype)
        if (self.diag == 0).any():
            raise InvalidValue("RBGS requires a nonzero diagonal")
        ncolors = int(colors.max()) + 1
        self.color_rows: List[np.ndarray] = [
            np.flatnonzero(colors == c) for c in range(ncolors)
        ]
        if any(rows.size == 0 for rows in self.color_rows):
            raise InvalidValue("empty colour class; colour ids must be contiguous")
        # Direct storage manipulation: one row-submatrix per colour.
        self.color_blocks: List[sp.csr_matrix] = [
            A[rows, :] for rows in self.color_rows
        ]
        self.color_diag: List[np.ndarray] = [
            self.diag[rows] for rows in self.color_rows
        ]

    def _update_color(self, k: int, z: np.ndarray, r: np.ndarray) -> None:
        rows = self.color_rows[k]
        d = self.color_diag[k]
        s = self.color_blocks[k].dot(z)          # full row product incl. diagonal
        z[rows] = (r[rows] - s + z[rows] * d) / d

    def forward(self, z: np.ndarray, r: np.ndarray) -> np.ndarray:
        self._check(z, r)
        for k in range(len(self.color_rows)):
            self._update_color(k, z, r)
        return z

    def backward(self, z: np.ndarray, r: np.ndarray) -> np.ndarray:
        self._check(z, r)
        for k in range(len(self.color_rows) - 1, -1, -1):
            self._update_color(k, z, r)
        return z

    def smooth(self, z: np.ndarray, r: np.ndarray, sweeps: int = 1) -> np.ndarray:
        for _ in range(sweeps):
            self.forward(z, r)
            self.backward(z, r)
        return z

    def _check(self, z: np.ndarray, r: np.ndarray) -> None:
        if z.shape[0] != self.n or r.shape[0] != self.n:
            raise DimensionMismatch(
                f"vector sizes ({z.shape[0]}, {r.shape[0]}) != {self.n}"
            )
