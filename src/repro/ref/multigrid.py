"""Reference multigrid: direct-injection restriction on raw arrays.

Identical V-cycle mathematics to :mod:`repro.hpcg.multigrid`, but
restriction/refinement are index copies into the storage (paper Section
II-F: "the HPCG reference implementation performs it in-place by
directly accessing the input and output arrays") instead of matrix
products.  The smoother defaults to :class:`RefRBGS` (what the paper's
Ref uses in its experiments); pass ``smoother="symgs"`` for the official
sequential smoother.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np
import scipy.sparse as sp

from repro.grid import Grid3D
from repro.hpcg.coloring import lattice_coloring
from repro.hpcg.problem import Problem
from repro.grid.stencil import stencil_coo
from repro.ref.sgs import RefRBGS, RefSymGS
from repro.util.errors import InvalidValue
from repro.util.timer import null_timer


@dataclass
class RefMGLevel:
    """One level of the reference hierarchy (raw-array flavour)."""

    index: int
    grid: Grid3D
    A: sp.csr_matrix
    diag: np.ndarray
    smoother: object
    injection: Optional[np.ndarray] = None   # fine indices feeding the coarse grid
    coarser: Optional["RefMGLevel"] = None
    f: np.ndarray = field(default=None)
    rc: np.ndarray = field(default=None)
    zc: np.ndarray = field(default=None)

    @property
    def n(self) -> int:
        return self.grid.npoints

    def levels(self) -> List["RefMGLevel"]:
        out, lvl = [], self
        while lvl is not None:
            out.append(lvl)
            lvl = lvl.coarser
        return out


def _build_csr(grid: Grid3D, stencil: str = "27pt") -> sp.csr_matrix:
    rows, cols, vals = stencil_coo(grid, stencil)
    A = sp.csr_matrix((vals, (rows, cols)), shape=(grid.npoints, grid.npoints))
    A.sort_indices()
    return A


def build_ref_hierarchy(
    problem: Problem,
    levels: int = 4,
    smoother: str = "rbgs",
) -> RefMGLevel:
    """Build the reference hierarchy from the same generated problem.

    Reuses ``problem``'s operator through the I/O escape hatch — the Ref
    implementation is allowed to see storage.
    """
    if levels < 1:
        raise InvalidValue(f"need at least one level, got {levels}")
    if problem.grid.max_mg_levels() < levels:
        raise InvalidValue(
            f"grid {problem.grid.dims} supports at most "
            f"{problem.grid.max_mg_levels()} MG levels, requested {levels}"
        )

    stencil = getattr(problem, "stencil", "27pt")

    def make_smoother(A: sp.csr_matrix, grid: Grid3D):
        if smoother == "rbgs":
            return RefRBGS(A, lattice_coloring(grid, stencil))
        if smoother == "symgs":
            return RefSymGS(A)
        raise InvalidValue(f"unknown smoother {smoother!r}")

    A0 = problem.A.to_scipy(copy=False)
    top = RefMGLevel(
        index=0, grid=problem.grid, A=A0, diag=A0.diagonal(),
        smoother=make_smoother(A0, problem.grid),
        f=np.zeros(problem.n),
    )
    current = top
    for idx in range(1, levels):
        coarse_grid = current.grid.coarsen()
        A_c = _build_csr(coarse_grid, stencil)
        level = RefMGLevel(
            index=idx, grid=coarse_grid, A=A_c, diag=A_c.diagonal(),
            smoother=make_smoother(A_c, coarse_grid),
            f=np.zeros(coarse_grid.npoints),
        )
        current.injection = current.grid.injection_indices()
        current.rc = np.zeros(coarse_grid.npoints)
        current.zc = np.zeros(coarse_grid.npoints)
        current.coarser = level
        current = level
    return top


def ref_mg_vcycle(
    level: RefMGLevel,
    z: np.ndarray,
    r: np.ndarray,
    timers=null_timer,
    pre_sweeps: int = 1,
    post_sweeps: int = 1,
) -> np.ndarray:
    """One V-cycle with direct-injection grid transfers."""
    tag = f"mg/L{level.index}"
    with timers.measure(f"{tag}/rbgs"):
        level.smoother.smooth(z, r, sweeps=pre_sweeps)
    if level.coarser is None:
        return z

    with timers.measure(f"{tag}/spmv"):
        level.f[:] = r - level.A.dot(z)              # residual
    with timers.measure(f"{tag}/restrict"):
        level.rc[:] = level.f[level.injection]       # straight injection
    level.zc.fill(0.0)
    ref_mg_vcycle(level.coarser, level.zc, level.rc, timers,
                  pre_sweeps=pre_sweeps, post_sweeps=post_sweeps)
    with timers.measure(f"{tag}/prolong"):
        z[level.injection] += level.zc               # refine: scatter-add
    with timers.measure(f"{tag}/rbgs"):
        level.smoother.smooth(z, r, sweeps=post_sweeps)
    return z


class RefMGPreconditioner:
    """Callable ``M(z, r)`` wrapper over the reference V-cycle."""

    def __init__(self, hierarchy: RefMGLevel, timers=null_timer,
                 pre_sweeps: int = 1, post_sweeps: int = 1):
        self.hierarchy = hierarchy
        self.timers = timers
        self.pre_sweeps = pre_sweeps
        self.post_sweeps = post_sweeps

    def __call__(self, z: np.ndarray, r: np.ndarray) -> np.ndarray:
        z.fill(0.0)
        return ref_mg_vcycle(
            self.hierarchy, z, r, self.timers,
            pre_sweeps=self.pre_sweeps, post_sweeps=self.post_sweeps,
        )
