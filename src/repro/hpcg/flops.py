"""Official-HPCG-style floating-point operation accounting.

HPCG reports GFLOP/s from *formula* flops, not hardware counters:

* ``dot``:    2n per call,
* ``waxpby``: 3n per call,
* ``spmv``:   2 * nnz per call,
* symmetric Gauss-Seidel / RBGS: 4 * nnz per symmetric pass (a forward
  and a backward sweep, each touching every nonzero once with one
  multiply and one add),
* restriction / refinement: counted as data movement (0 flops) by the
  reference; the GraphBLAS implementation performs 2 * n_c flops per
  application because it really is an mxv — we report both.

These formulas reproduce the reference's ``ComputeFlops`` bookkeeping so
the driver's GFLOP/s output is comparable in structure to an official
HPCG report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class FlopCounts:
    """Accumulated formula flops per kernel family."""

    counts: Dict[str, float] = field(default_factory=dict)

    def add(self, kernel: str, flops: float) -> None:
        self.counts[kernel] = self.counts.get(kernel, 0.0) + flops

    @property
    def total(self) -> float:
        return sum(self.counts.values())

    def merged(self) -> Dict[str, float]:
        return dict(sorted(self.counts.items()))


def cg_iteration_flops(n: int, nnz: int, mg_nnz_per_level: List[int],
                       mg_n_per_level: List[int],
                       grb_restriction: bool = True) -> FlopCounts:
    """Formula flops of ONE preconditioned CG iteration.

    ``mg_nnz_per_level``/``mg_n_per_level`` list each hierarchy level,
    finest first.  Pre- and post-smoothing are one symmetric RBGS pass
    each; every non-coarsest level also performs one residual spmv and a
    restriction/refinement pair.
    """
    fc = FlopCounts()
    # CG body: 3 dots + norm (~dot), 3 waxpby, 1 spmv.
    fc.add("dot", 4 * 2 * n)
    fc.add("waxpby", 3 * 3 * n)
    fc.add("spmv", 2 * nnz)
    levels = len(mg_nnz_per_level)
    for i, (lvl_nnz, lvl_n) in enumerate(zip(mg_nnz_per_level, mg_n_per_level)):
        is_coarsest = i == levels - 1
        sym_passes = 1 if is_coarsest else 2  # pre+post except at the bottom
        fc.add("rbgs", sym_passes * 4 * lvl_nnz)
        if not is_coarsest:
            fc.add("mg_spmv", 2 * lvl_nnz + 2 * lvl_n)  # residual spmv + axpy
            coarse_n = mg_n_per_level[i + 1]
            if grb_restriction:
                # mxv with one nonzero per coarse row, plus the
                # accumulating transpose-mxv of refinement.
                fc.add("restrict", 2 * coarse_n)
                fc.add("refine", 2 * coarse_n)
    return fc
