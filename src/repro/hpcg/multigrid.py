"""The multigrid V-cycle preconditioner (paper Listing 1).

A hierarchy of (by default) four grids, each 2x coarser per dimension
than the previous.  Each level owns its operator, diagonal, colour
masks, smoother, restriction matrix and workspace vectors, mirroring
the ``mg_level`` record of Listing 1/2.

The cycle at one level:

1. pre-smooth ``z`` (one symmetric RBGS pass),
2. residual ``r - A z``,
3. restrict it to the coarse grid,
4. recurse from ``z_c = 0``,
5. refine-and-add the coarse correction,
6. post-smooth.

At the coarsest level only the smoother runs (Listing 1 lines 3-4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro import graphblas as grb
from repro import obs
from repro.graphblas import fused as fused_ext
from repro.grid import Grid3D
from repro.hpcg.coloring import color_masks, coloring_for_problem, lattice_coloring
from repro.hpcg.problem import Problem, build_operator
from repro.hpcg.restriction import build_restriction, prolong_add, restrict
from repro.hpcg.smoothers import RBGSSmoother
from repro.util.errors import InvalidValue
from repro.util.timer import null_timer

SmootherFactory = Callable[[grb.Matrix, grb.Vector, List[grb.Vector]], object]


@dataclass
class MGLevel:
    """One grid level of the multigrid hierarchy."""

    index: int
    grid: Grid3D
    A: grb.Matrix
    A_diag: grb.Vector
    smoother: object
    R: Optional[grb.Matrix] = None          # restriction to the coarser level
    coarser: Optional["MGLevel"] = None
    # workspace (allocated once; Listing 1 names)
    f: grb.Vector = field(default=None)     # A z
    rc: grb.Vector = field(default=None)    # restricted residual
    zc: grb.Vector = field(default=None)    # coarse correction

    @property
    def n(self) -> int:
        return self.grid.npoints

    def levels(self) -> List["MGLevel"]:
        """This level and all coarser ones, finest first."""
        out, lvl = [], self
        while lvl is not None:
            out.append(lvl)
            lvl = lvl.coarser
        return out


def build_hierarchy(
    problem: Problem,
    levels: int = 4,
    smoother_factory: Optional[SmootherFactory] = None,
    coloring_scheme: str = "auto",
    fused: Optional[bool] = None,
) -> MGLevel:
    """Build an ``levels``-deep hierarchy under ``problem``'s fine grid.

    Raises when the grid cannot be coarsened ``levels - 1`` times (every
    dimension must be divisible by ``2**(levels-1)``, the reference
    HPCG requirement).

    ``fused`` pins the default smoothers' fast path per hierarchy
    (``None`` follows ``REPRO_FUSED``; ``False`` is the reference
    transcription baseline the perf benchmarks compare against); it is
    ignored when an explicit ``smoother_factory`` is given.
    """
    if levels < 1:
        raise InvalidValue(f"need at least one level, got {levels}")
    if problem.grid.max_mg_levels() < levels:
        raise InvalidValue(
            f"grid {problem.grid.dims} supports at most "
            f"{problem.grid.max_mg_levels()} MG levels, requested {levels}"
        )
    if smoother_factory is None:
        def smoother_factory(A, A_diag, colors):
            return RBGSSmoother(A, A_diag, colors, fused=fused)
    stencil = getattr(problem, "stencil", "27pt")
    # honour the problem's substrate pin on every coarse operator; None
    # leaves each level to the per-matrix heuristic (the coarse levels
    # are small enough that auto-selection keeps them on CSR).
    substrate = getattr(problem, "substrate", None)

    def make_level(index: int, grid: Grid3D, A: grb.Matrix,
                   A_diag: grb.Vector) -> MGLevel:
        colors = color_masks(
            coloring_for_problem(A, grid, coloring_scheme, stencil)
        )
        smoother = smoother_factory(A, A_diag, colors)
        # tell level-aware smoothers who owns them, so their spans and
        # fused byte-stream events carry the MG level even outside a
        # ``labelled`` scope (custom factories may opt out)
        set_level = getattr(smoother, "set_level", None)
        if callable(set_level):
            set_level(index)
        return MGLevel(
            index=index, grid=grid, A=A, A_diag=A_diag, smoother=smoother,
            f=grb.Vector.dense(grid.npoints),
        )

    top = make_level(0, problem.grid, problem.A, problem.A_diag)
    current = top
    for idx in range(1, levels):
        coarse_grid = current.grid.coarsen()
        A_c = build_operator(coarse_grid, stencil, substrate)
        level = make_level(idx, coarse_grid, A_c, grb.diag(A_c))
        current.R = build_restriction(current.grid)
        current.rc = grb.Vector.dense(coarse_grid.npoints)
        current.zc = grb.Vector.dense(coarse_grid.npoints)
        current.coarser = level
        current = level
    return top


def mg_vcycle(
    level: MGLevel,
    z: grb.Vector,
    r: grb.Vector,
    timers=null_timer,
    pre_sweeps: int = 1,
    post_sweeps: int = 1,
) -> grb.Vector:
    """Apply one V-cycle at ``level``, improving ``z`` toward ``A^-1 r``.

    Transcription of Listing 1; ``timers`` receives per-level entries
    under ``mg/L{i}/...`` which the breakdown figures consume.
    """
    tag = f"mg/L{level.index}"
    with obs.span(tag, "mg", {"level": level.index, "n": level.n}):
        registry = obs.metrics_registry()
        if registry is not None:
            registry.counter(
                "mg_level_visits_total", "V-cycle visits per MG level"
            ).inc(level=level.index)
        with timers.measure(f"{tag}/rbgs"), \
                grb.backend.labelled(f"rbgs@L{level.index}"):
            level.smoother.smooth(z, r, sweeps=pre_sweeps)
        if level.coarser is None:
            return z

        with timers.measure(f"{tag}/spmv"), \
                grb.backend.labelled(f"mg_spmv@L{level.index}"), \
                obs.span(f"{tag}/spmv", "mg"):
            # f <- r - A z, fused when the extension accepts the call
            if not fused_ext.fused_spmv_waxpby(level.f, 1.0, r, -1.0,
                                               level.A, z):
                grb.mxv(level.f, None, level.A, z)          # f <- A z
                grb.waxpby(level.f, 1.0, r, -1.0, level.f)  # f <- r - f
        with timers.measure(f"{tag}/restrict"), \
                grb.backend.labelled(f"restrict@L{level.index}"), \
                obs.span(f"{tag}/restrict", "mg"):
            restrict(level.rc, level.R, level.f)        # rc <- R (r - A z)
        level.zc.fill(0.0)                              # zc <- 0
        mg_vcycle(level.coarser, level.zc, level.rc, timers,
                  pre_sweeps=pre_sweeps, post_sweeps=post_sweeps)
        with timers.measure(f"{tag}/prolong"), \
                grb.backend.labelled(f"refine@L{level.index}"), \
                obs.span(f"{tag}/prolong", "mg"):
            prolong_add(z, level.R, level.zc)           # z <- z + R' zc
        with timers.measure(f"{tag}/rbgs"), \
                grb.backend.labelled(f"rbgs@L{level.index}"):
            level.smoother.smooth(z, r, sweeps=post_sweeps)
    return z


class MGPreconditioner:
    """Callable wrapper: ``M(z, r)`` overwrites ``z`` with ≈ ``A^-1 r``."""

    def __init__(self, hierarchy: MGLevel, timers=null_timer,
                 pre_sweeps: int = 1, post_sweeps: int = 1):
        self.hierarchy = hierarchy
        self.timers = timers
        self.pre_sweeps = pre_sweeps
        self.post_sweeps = post_sweeps

    def __call__(self, z: grb.Vector, r: grb.Vector) -> grb.Vector:
        z.fill(0.0)
        return mg_vcycle(
            self.hierarchy, z, r, self.timers,
            pre_sweeps=self.pre_sweeps, post_sweeps=self.post_sweeps,
        )
