"""Smoothers for the multigrid preconditioner.

The centrepiece is :class:`RBGSSmoother` — the paper's Red-Black
(multi-colour) Gauss-Seidel expressed purely in GraphBLAS primitives,
transcribing Listings 2 and 3:

* per colour ``k``: a *masked, structural* ``mxv`` computes
  ``s = (A z)`` restricted to the rows of colour ``k``;
* an ``ewise_lambda`` then updates those rows in place:
  ``z_i <- (r_i - s_i + z_i * d_i) / d_i`` where ``d`` is the diagonal
  held in a dedicated vector (GraphBLAS has no O(1) element access).

Colours are processed sequentially to honour inter-colour dependencies;
within one colour everything is data-parallel (here: vectorised).

**The fused fast path.**  Executing that transcription literally pays
mask materialisation, row re-extraction, a workspace round trip and
several layers of Python dispatch per colour × sweep × MG level × CG
iteration.  Since the fused-sweep PR the smoother therefore runs whole
sweeps through :class:`repro.graphblas.fused.ColorSweepPlan` — the
active substrate provider's prebuilt
:class:`~repro.graphblas.substrate.base.ColorSweep`, with per-colour
row partitions, substructures and diagonals hoisted to construction
and products on the compiled jit lane when numba is available.  The
fast path is *bit-identical* to the transcription (same kernels, same
accumulation order — ``tests/test_fused_smoother.py`` proves it per
provider, colouring and sweep order) and declines whenever it cannot
be: ``REPRO_FUSED=0``, an explicit ``fused=False``, sparse vectors or
non-float64 domains all fall back to the literal Listing 2/3 path.

The smoothers stay *substrate-agnostic*: both paths execute whichever
kernel provider the matrix's substrate selection picked (CSR,
SELL-C-σ, dense-blocked — see :mod:`repro.graphblas.substrate`), with
bit-identical iterates.

A damped Jacobi smoother is provided for the smoother-choice ablation;
it is *not* HPCG-legal (fails the symmetry requirement less strictly
speaking — it is symmetric, but converges slower) and is benchmarked as
such.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro import graphblas as grb
from repro import obs
from repro.graphblas import fused as fused_mod
from repro.graphblas.substrate import threads as threads_mod
from repro.util.errors import DimensionMismatch, InvalidValue


class RBGSSmoother:
    """Multi-colour Gauss-Seidel over GraphBLAS containers.

    One ``smooth`` call performs a forward sweep (colours in increasing
    order) followed by a backward sweep (decreasing order) — the
    symmetric variant HPCG requires of its smoother.

    ``fused`` selects the fast path: ``None`` (default) follows the
    ``REPRO_FUSED`` environment switch, ``False`` pins the reference
    Listing 2/3 transcription (the ablation baseline), ``True`` arms
    the fused plan.  An armed plan still falls back per call — when it
    cannot serve the request bit-identically (sparse vectors,
    non-float64 domains), and whenever ``REPRO_FUSED=0`` is set at
    call time (the kill switch works on already-built smoothers too).
    """

    def __init__(
        self,
        A: grb.Matrix,
        A_diag: grb.Vector,
        colors: Sequence[grb.Vector],
        fused: Optional[bool] = None,
    ):
        if A.nrows != A.ncols:
            raise InvalidValue("smoother requires a square operator")
        if A_diag.size != A.nrows:
            raise DimensionMismatch(
                f"diagonal size {A_diag.size} != operator rows {A.nrows}"
            )
        if not colors:
            raise InvalidValue("at least one colour mask is required")
        for c in colors:
            if c.size != A.nrows:
                raise DimensionMismatch("colour mask size mismatch")
        self.A = A
        self.A_diag = A_diag
        self.colors: List[grb.Vector] = list(colors)
        #: owning MG level when built by ``build_hierarchy`` (None for
        #: a standalone smoother); tags spans and fused-event streams
        self.level: Optional[int] = None
        # Workspace for the masked products; allocated once, like the
        # explicit `tmp` buffer of Listing 3.
        self._tmp = grb.Vector.dense(A.nrows)
        use_fused = fused_mod.fused_enabled() if fused is None else fused
        self._plan = (
            fused_mod.ColorSweepPlan(A, self.colors, A_diag)
            if use_fused else None
        )

    def set_level(self, index: Optional[int]) -> "RBGSSmoother":
        """Record the owning MG level (propagated into the fused plan)."""
        self.level = index
        if self._plan is not None:
            self._plan.level = index
        return self

    @property
    def n(self) -> int:
        return self.A.nrows

    @property
    def fused_active(self) -> bool:
        """True when the fused fast path is armed (it may still fall
        back per call on configurations it cannot serve)."""
        return self._plan is not None

    @staticmethod
    def _pointwise(idx: np.ndarray, z: np.ndarray, r: np.ndarray,
                   s: np.ndarray, d: np.ndarray) -> None:
        """The Listing-3 lambda, vectorised over one colour."""
        dd = d[idx]
        z[idx] = (r[idx] - s[idx] + z[idx] * dd) / dd

    def _sweep(self, z: grb.Vector, r: grb.Vector, order) -> None:
        with obs.span("smoother/rbgs_sweep", "smoother") as sp:
            if self._plan is not None and self._plan.run(z, r, order):
                if sp is not None:
                    sp.set(fused=True, colors=len(self.colors),
                           level=self.level, n=self.n,
                           lane=threads_mod.lane_name())
                return
            for k in order:
                mask = self.colors[k]
                grb.mxv(self._tmp, mask, self.A, z,
                        desc=grb.descriptors.structural)
                grb.ewise_lambda(
                    self._pointwise, mask, z, r, self._tmp, self.A_diag
                )
            if sp is not None:
                sp.set(fused=False, colors=len(self.colors),
                       level=self.level, n=self.n,
                       lane=threads_mod.lane_name())

    def forward(self, z: grb.Vector, r: grb.Vector) -> grb.Vector:
        """One forward multi-colour Gauss-Seidel sweep (Listing 2)."""
        self._check(z, r)
        self._sweep(z, r, range(len(self.colors)))
        return z

    def backward(self, z: grb.Vector, r: grb.Vector) -> grb.Vector:
        """One backward sweep: colours in decreasing order."""
        self._check(z, r)
        self._sweep(z, r, range(len(self.colors) - 1, -1, -1))
        return z

    def smooth(self, z: grb.Vector, r: grb.Vector, sweeps: int = 1) -> grb.Vector:
        """``sweeps`` symmetric (forward+backward) Gauss-Seidel passes."""
        for _ in range(sweeps):
            self.forward(z, r)
            self.backward(z, r)
        return z

    def _check(self, z: grb.Vector, r: grb.Vector) -> None:
        if z.size != self.n or r.size != self.n:
            raise DimensionMismatch(
                f"vector sizes ({z.size}, {r.size}) != operator size {self.n}"
            )


class JacobiSmoother:
    """Damped Jacobi: ``z += omega * D^-1 (r - A z)``.

    Fully parallel (no colouring needed) but a weaker smoother; kept for
    the ablation study comparing smoother choices.  Takes the fused
    product+update fast path under the same ``fused``/``REPRO_FUSED``
    contract as :class:`RBGSSmoother`.
    """

    def __init__(self, A: grb.Matrix, A_diag: grb.Vector,
                 omega: float = 2.0 / 3.0, fused: Optional[bool] = None):
        if not 0 < omega <= 1.0:
            raise InvalidValue(f"damping factor must be in (0, 1], got {omega}")
        self.A = A
        self.A_diag = A_diag
        self.omega = omega
        self.level: Optional[int] = None
        self._tmp = grb.Vector.dense(A.nrows)
        use_fused = fused_mod.fused_enabled() if fused is None else fused
        self._plan = (
            fused_mod.JacobiSweepPlan(A, A_diag, omega)
            if use_fused else None
        )

    def set_level(self, index: Optional[int]) -> "JacobiSmoother":
        """Record the owning MG level (propagated into the fused plan)."""
        self.level = index
        if self._plan is not None:
            self._plan.level = index
        return self

    @property
    def n(self) -> int:
        return self.A.nrows

    @property
    def fused_active(self) -> bool:
        return self._plan is not None

    def smooth(self, z: grb.Vector, r: grb.Vector, sweeps: int = 1) -> grb.Vector:
        with obs.span("smoother/jacobi_sweep", "smoother") as sp:
            if sp is not None:
                sp.set(sweeps=sweeps, level=self.level, n=self.n,
                       fused=self._plan is not None,
                       lane=threads_mod.lane_name())
            if self._plan is not None and self._plan.run(z, r, sweeps):
                return z
            if sp is not None:
                sp.set(fused=False)
            omega = self.omega

            def update(idx, zv, rv, sv, dv):
                zv[idx] = zv[idx] + omega * (rv[idx] - sv[idx]) / dv[idx]

            for _ in range(sweeps):
                grb.mxv(self._tmp, None, self.A, z)
                grb.ewise_lambda(update, None, z, r, self._tmp, self.A_diag)
            return z

    # Jacobi's forward and backward halves are identical.
    def forward(self, z: grb.Vector, r: grb.Vector) -> grb.Vector:
        return self.smooth(z, r, sweeps=1)

    backward = forward
