"""The HPCG benchmark driver: generation → validation → timed run → report.

Mirrors the phase structure of the official benchmark:

1. **Generation** — build the system and the multigrid hierarchy
   (reported as setup time, excluded from the benchmark figure);
2. **Validation** — spmv/preconditioner symmetry tests (the HPCG spec's
   precondition for the RBGS smoother substitution) and a convergence
   sanity check;
3. **Timed run** — preconditioned CG for a fixed iteration count with
   per-kernel timers;
4. **Report** — GFLOP/s from formula flops, per-kernel and per-MG-level
   breakdowns (the percentages behind the paper's Figures 4-7).
"""

from __future__ import annotations

import argparse
import contextlib
import os
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro import graphblas as grb
from repro import obs
from repro.hpcg import flops as flops_mod
from repro.hpcg.cg import CGResult, CGWorkspace, pcg
from repro.hpcg.multigrid import MGLevel, MGPreconditioner, build_hierarchy
from repro.hpcg.problem import Problem, generate_problem
from repro.hpcg.symmetry import SymmetryReport, validate
from repro.util.timer import TimerRegistry


@dataclass
class HPCGResult:
    """Everything an HPCG run produces."""

    problem: Problem
    cg: CGResult
    symmetry: SymmetryReport
    timers: TimerRegistry
    setup_seconds: float
    run_seconds: float
    flops: flops_mod.FlopCounts
    mg_levels: int
    # with repetitions > 1 (the paper repeats each experiment 10 times
    # and reports averages): per-repetition wall-clock of the timed run
    repetition_seconds: List[float] = field(default_factory=list)

    @property
    def run_seconds_std(self) -> float:
        """Unbiased standard deviation over repetitions (0 for one run)."""
        reps = self.repetition_seconds or [self.run_seconds]
        if len(reps) < 2:
            return 0.0
        mean = sum(reps) / len(reps)
        var = sum((t - mean) ** 2 for t in reps) / (len(reps) - 1)
        return var ** 0.5

    @property
    def gflops(self) -> float:
        return self.flops.total / self.run_seconds / 1e9 if self.run_seconds else 0.0

    @property
    def _timed_total(self) -> float:
        """Wall-clock covered by the timers (all repetitions)."""
        reps = self.repetition_seconds or [self.run_seconds]
        return sum(reps) or 1.0

    def kernel_breakdown(self) -> Dict[str, float]:
        """Fraction of run time per top-level kernel family."""
        total = self._timed_total
        mg = self.timers.total("mg/")
        out = {
            "mg": mg / total,
            "cg/spmv": self.timers.total("cg/spmv") / total,
            "cg/dot": self.timers.total("cg/dot") / total,
            "cg/waxpby": self.timers.total("cg/waxpby") / total,
        }
        return out

    def mg_level_breakdown(self) -> List[Dict[str, float]]:
        """Per-level shares of *total* time: RBGS vs restrict+refine.

        This is exactly the quantity plotted in the paper's Figures 4-7
        ("the percentages refer to the total execution time, and the
        runtime in a given level does not include coarser levels").
        """
        total = self._timed_total
        out = []
        for i in range(self.mg_levels):
            rbgs = self.timers.total(f"mg/L{i}/rbgs")
            rr = self.timers.total(f"mg/L{i}/restrict") + self.timers.total(
                f"mg/L{i}/prolong"
            )
            out.append({"level": i, "rbgs": rbgs / total, "restrict_refine": rr / total})
        return out

    def summary(self) -> str:
        lines = [
            f"HPCG result: grid {self.problem.grid.dims}, n={self.problem.n}",
            f"  validation: spmv_err={self.symmetry.spmv_error:.3e} "
            f"precond_err={self.symmetry.precond_error:.3e} "
            f"passed={self.symmetry.passed}",
            f"  iterations: {self.cg.iterations}, "
            f"final relative residual {self.cg.relative_residual:.3e}",
            f"  setup {self.setup_seconds:.3f}s, run {self.run_seconds:.3f}s, "
            f"{self.gflops:.3f} GFLOP/s (formula flops)",
            "  MG level breakdown (share of total time):",
        ]
        for row in self.mg_level_breakdown():
            lines.append(
                f"    L{row['level']}: rbgs {row['rbgs']:.1%}, "
                f"restrict+refine {row['restrict_refine']:.1%}"
            )
        return "\n".join(lines)


def run_hpcg(
    nx: int,
    ny: int = 0,
    nz: int = 0,
    max_iters: int = 50,
    tolerance: float = 0.0,
    mg_levels: int = 4,
    b_style: str = "reference",
    validate_symmetry: bool = True,
    coloring_scheme: str = "auto",
    problem: Optional[Problem] = None,
    repetitions: int = 1,
) -> HPCGResult:
    """Run the complete HPCG benchmark on GraphBLAS and return the report.

    ``mg_levels`` may be lowered for small grids; pass ``mg_levels=0``
    to run unpreconditioned CG (used by validation and ablations).
    With ``repetitions > 1`` the timed run repeats (fresh ``x`` each
    time, same fixed iteration count — the paper's protocol) and
    ``run_seconds`` is the average; the timers accumulate all
    repetitions, so breakdown *shares* are unaffected.
    """
    t0 = time.perf_counter()
    with obs.span("hpcg/setup", "hpcg",
                  {"nx": nx, "ny": ny, "nz": nz, "mg_levels": mg_levels}):
        if problem is None:
            problem = generate_problem(nx, ny, nz, b_style=b_style)
        timers = TimerRegistry()
        preconditioner = None
        if mg_levels > 0:
            hierarchy = build_hierarchy(problem, levels=mg_levels,
                                        coloring_scheme=coloring_scheme)
            preconditioner = MGPreconditioner(hierarchy, timers=timers)
    setup_seconds = time.perf_counter() - t0

    if validate_symmetry:
        with obs.span("hpcg/validate", "hpcg"):
            sym = validate(problem.A, preconditioner)
        # the validation probes ran the preconditioner under the same
        # timer registry; clear them so the breakdown reflects only the
        # timed run (official HPCG likewise excludes validation).
        timers.reset()
    else:
        sym = SymmetryReport(0.0, 0.0, True, True)

    if repetitions < 1:
        raise ValueError(f"repetitions must be >= 1, got {repetitions}")
    registry = obs.metrics_registry()
    recorder = obs.manifest_recorder()
    if recorder is not None:
        recorder.record_config(
            nx=problem.grid.nx, ny=problem.grid.ny, nz=problem.grid.nz,
            max_iters=max_iters, tolerance=tolerance, mg_levels=mg_levels,
            b_style=b_style, coloring_scheme=coloring_scheme,
            repetitions=repetitions, validate_symmetry=validate_symmetry,
        )
        # the validation probes draw fixed-seed random vectors
        # (symmetry.py defaults); record them for reproducibility
        recorder.record_seed("symmetry_spmv", 7)
        recorder.record_seed("symmetry_precond", 11)
    repetition_seconds: List[float] = []
    cg_result = None
    workspace = CGWorkspace(problem.n)   # shared across repetitions
    x = None
    event_log = None
    for rep in range(repetitions):
        if x is None:
            x = problem.x0.dup()
        else:
            grb.assign(x, None, problem.x0)      # x <- x0, same storage
        with contextlib.ExitStack() as scope:
            scope.enter_context(
                obs.span("hpcg/solve", "hpcg", {"repetition": rep})
            )
            # collect the op stream for the bytes-by-format metric, but
            # never displace a collector someone outside installed (the
            # perf layer's scaling runs own the stream when present)
            if registry is not None and not grb.backend.active():
                if event_log is None:
                    event_log = grb.backend.EventLog()
                scope.enter_context(grb.backend.collect(event_log))
            t1 = time.perf_counter()
            cg_result = pcg(
                problem.A, problem.b, x,
                preconditioner=preconditioner,
                max_iters=max_iters,
                tolerance=tolerance,
                timers=timers,
                workspace=workspace,
            )
            repetition_seconds.append(time.perf_counter() - t1)
    run_seconds = sum(repetition_seconds) / len(repetition_seconds)

    if registry is not None:
        latency = registry.histogram(
            "hpcg_solve_seconds", "wall-clock seconds per timed CG solve")
        for seconds in repetition_seconds:
            latency.observe(seconds)
        registry.counter(
            "cg_iterations_total", "CG iterations across timed solves"
        ).inc(cg_result.iterations * repetitions)
        if event_log is not None:
            by_fmt = registry.counter(
                "graphblas_bytes_by_format",
                "modelled bytes moved, per substrate format")
            for fmt, nbytes in event_log.by_format("bytes").items():
                by_fmt.inc(nbytes, fmt=fmt or "untagged")
            registry.counter(
                "graphblas_ops_total", "GraphBLAS operations executed"
            ).inc(len(event_log.events))

    flops = _count_flops(problem, preconditioner, cg_result.iterations, mg_levels)
    return HPCGResult(
        problem=problem,
        cg=cg_result,
        symmetry=sym,
        timers=timers,
        setup_seconds=setup_seconds,
        run_seconds=run_seconds,
        flops=flops,
        mg_levels=mg_levels,
        repetition_seconds=repetition_seconds,
    )


def _count_flops(
    problem: Problem,
    preconditioner: Optional[MGPreconditioner],
    iterations: int,
    mg_levels: int,
) -> flops_mod.FlopCounts:
    if preconditioner is not None:
        levels: List[MGLevel] = preconditioner.hierarchy.levels()
        nnz_per_level = [lvl.A.nvals for lvl in levels]
        n_per_level = [lvl.n for lvl in levels]
    else:
        nnz_per_level, n_per_level = [], []
    per_iter = flops_mod.cg_iteration_flops(
        problem.n, problem.A.nvals, nnz_per_level, n_per_level
    )
    total = flops_mod.FlopCounts()
    for kernel, count in per_iter.counts.items():
        total.add(kernel, count * max(iterations, 1))
    return total


#: Simulated distributed backends reachable from the CLI.
DIST_BACKENDS = ("ref-3d", "alp-1d", "alp-2d")


def _fail(message: str) -> int:
    """One-line CLI error on stderr, exit code 2 — never a traceback."""
    print(f"error: {message}", file=sys.stderr)
    return 2


def _unwritable_artifact(path: str) -> Optional[str]:
    """Why ``path`` cannot be written, or None when it can."""
    directory = os.path.dirname(path) or "."
    if not os.path.isdir(directory):
        return f"directory {directory!r} does not exist"
    if not os.access(directory, os.W_OK):
        return f"directory {directory!r} is not writable"
    if os.path.isdir(path):
        return f"{path!r} is a directory"
    return None


def _dist_backend(name: str, problem, args, faults=None):
    from repro.dist import Hybrid2DRun, HybridALPRun, RefDistRun
    cls = {"ref-3d": RefDistRun, "alp-1d": HybridALPRun,
           "alp-2d": Hybrid2DRun}[name]
    mg_levels = min(args.mg_levels, problem.grid.max_mg_levels())
    return cls(problem, args.nprocs, mg_levels=max(mg_levels, 1),
               faults=faults)


def _describe_plan(plan) -> str:
    parts = []
    if plan.stragglers:
        parts.append(f"{len(plan.stragglers)} straggler(s)")
    if plan.node_speeds:
        parts.append(f"{len(plan.node_speeds)} node speed(s)")
    if plan.message_loss is not None:
        parts.append(f"message loss {plan.message_loss.rate:.1%}")
    if plan.crashes:
        parts.append(f"{len(plan.crashes)} crash(es)")
    if plan.checkpoint is not None:
        parts.append(f"checkpoint every {plan.checkpoint.interval} iter(s)")
    return ", ".join(parts) or "empty"


def _run_dist(args, plan) -> int:
    """The driver's simulated-distributed path (``--dist``).

    With an active fault plan, a clean twin of the run prices the
    fault-free baseline so the Resilience section can report the
    degraded-vs-clean time-to-solution honestly.
    """
    problem = generate_problem(args.nx, args.ny, args.nz,
                               b_style=args.b_style)
    result = _dist_backend(args.dist, problem, args, faults=plan).run_cg(
        max_iters=args.iters, tolerance=args.tolerance)
    print(result.summary())
    if plan is not None and plan.active():
        clean = _dist_backend(args.dist, problem, args).run_cg(
            max_iters=args.iters, tolerance=args.tolerance)
        r = result.resilience
        degraded = result.modelled_seconds
        base = clean.modelled_seconds
        overhead = (degraded / base - 1.0) if base else 0.0
        print("Resilience:")
        print(f"  plan: {_describe_plan(plan)} (seed {plan.seed})")
        print(f"  clean time-to-solution:    {base:.6f}s")
        print(f"  degraded time-to-solution: {degraded:.6f}s "
              f"({overhead:+.1%})")
        print(f"  recoveries: {r['recoveries']} "
              f"(re-executed {r['reexecuted_iterations']} iteration(s), "
              f"{r['initial_nprocs']} -> {r['final_nprocs']} nodes)")
        print(f"  checkpoints: {r['checkpoints']} "
              f"({r['checkpoint_seconds']:.6f}s overhead)")
        print(f"  exchange retries: {r['exchange_retries']}")
        print(f"  injected events: {len(r['events'])}")
        print(f"  final residual matches clean run: "
              f"{result.residuals == clean.residuals}")
    if args.timers:
        print(result.timers.report())
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point: ``repro-hpcg --nx 16 --iters 50``."""
    parser = argparse.ArgumentParser(description="HPCG on GraphBLAS (Python)")
    parser.add_argument("--nx", type=int, default=16)
    parser.add_argument("--ny", type=int, default=0)
    parser.add_argument("--nz", type=int, default=0)
    parser.add_argument("--iters", type=int, default=50)
    parser.add_argument("--tolerance", type=float, default=0.0)
    parser.add_argument("--mg-levels", type=int, default=4)
    parser.add_argument("--b-style", choices=["reference", "ones"],
                        default="reference")
    parser.add_argument("--timers", action="store_true",
                        help="print the full timer table")
    parser.add_argument("--report", action="store_true",
                        help="print an official-HPCG-style YAML report")
    parser.add_argument("--profile", action="store_true",
                        help="attach the cached repro.tune machine "
                             "profile to the report (run `python -m "
                             "repro.tune measure` first)")
    parser.add_argument("--trace-json", metavar="PATH", default=None,
                        help="write a Chrome/Perfetto trace_event JSON "
                             "of the run (implies tracing on)")
    parser.add_argument("--metrics-json", metavar="PATH", default=None,
                        help="write the metrics snapshot as JSON "
                             "(implies tracing on)")
    parser.add_argument("--manifest-json", metavar="PATH", default=None,
                        help="write the run-provenance manifest as JSON "
                             "(implies tracing on)")
    parser.add_argument("--compare-trace", metavar="BASELINE", default=None,
                        help="diff this run's trace against a baseline "
                             "trace.json and print the span-level deltas "
                             "(implies tracing on)")
    parser.add_argument("--serve-metrics", metavar="PORT", type=int,
                        default=None,
                        help="serve live telemetry over HTTP while the "
                             "run executes: /metrics (Prometheus text), "
                             "/healthz, /manifest, /progress; PORT 0 "
                             "picks a free port (implies tracing on)")
    parser.add_argument("--trace-stream", metavar="PATH", default=None,
                        help="stream finished spans to PATH as JSONL "
                             "while the run executes; the partial file "
                             "survives a killed run and obs validate/"
                             "flame/diff accept it (implies tracing on)")
    parser.add_argument("--sample-profile", metavar="HZ", nargs="?",
                        type=float, const=100.0, default=None,
                        help="run the sampling wall-clock profiler at HZ "
                             "(default 100) during the run; prints a "
                             "summary and, with --folded-out, writes "
                             "folded stacks (implies tracing on)")
    parser.add_argument("--folded-out", metavar="PATH", default=None,
                        help="write the sampling profiler's folded "
                             "stacks to PATH (for obs flame/top or "
                             "flamegraph.pl; needs --sample-profile)")
    parser.add_argument("--threads", metavar="N|auto|0", default=None,
                        help="thread count for the parallel kernel lane "
                             "(sets REPRO_THREADS for this run: a count, "
                             "'auto' for the profile-fitted width, '0' to "
                             "kill the lane)")
    parser.add_argument("--dist", choices=DIST_BACKENDS, default=None,
                        help="run the simulated distributed solver with "
                             "this backend instead of the serial benchmark")
    parser.add_argument("--nprocs", type=int, default=4,
                        help="simulated node count for --dist (default 4)")
    parser.add_argument("--faults", metavar="PLAN.json", default=None,
                        help="JSON fault plan for --dist: stragglers, "
                             "node speeds, message loss, crashes, "
                             "checkpoint cadence (see repro.dist.faults); "
                             "adds a Resilience report section")
    parser.add_argument("--push-url", metavar="URL", default=None,
                        help="push the metrics exposition to this "
                             "pushgateway-style URL when the run finishes "
                             "(implies tracing on)")
    parser.add_argument("--push-interval", metavar="SECONDS", type=float,
                        default=None,
                        help="also push periodically during the run, every "
                             "SECONDS (needs --push-url)")
    args = parser.parse_args(argv)
    if args.threads is not None:
        from repro.graphblas.substrate import threads as threads_mod
        os.environ[threads_mod.ENV_VAR] = args.threads
        threads_mod.requested()   # fail fast on an unparsable value
    # CLI robustness: every artifact/plan problem is a one-line error
    # and exit code 2 — discovered before any solve work starts
    for flag, path in (("--trace-json", args.trace_json),
                       ("--metrics-json", args.metrics_json),
                       ("--manifest-json", args.manifest_json),
                       ("--trace-stream", args.trace_stream),
                       ("--folded-out", args.folded_out)):
        if path is not None:
            why = _unwritable_artifact(path)
            if why is not None:
                return _fail(f"{flag} {path}: {why}")
    if args.faults is not None and args.dist is None:
        return _fail("--faults needs --dist (the fault model applies to "
                     "the simulated distributed solver)")
    if args.push_interval is not None:
        if args.push_url is None:
            return _fail("--push-interval needs --push-url")
        if args.push_interval <= 0:
            return _fail(f"--push-interval must be positive, "
                         f"got {args.push_interval}")
    if args.nprocs < 1:
        return _fail(f"--nprocs must be >= 1, got {args.nprocs}")
    fault_plan = None
    if args.faults is not None:
        from repro.dist import FaultPlan
        from repro.util.errors import InvalidValue
        try:
            fault_plan = FaultPlan.from_json(args.faults)
            fault_plan.validate_for(args.nprocs)
        except InvalidValue as exc:
            return _fail(str(exc))
    want_artifacts = bool(
        args.trace_json or args.metrics_json or args.manifest_json
        or args.compare_trace or args.serve_metrics is not None
        or args.trace_stream or args.sample_profile is not None
        or args.push_url
    )
    sampler = None
    with contextlib.ExitStack() as scope:
        if want_artifacts:
            # an explicit context so the artifacts cover exactly this
            # run, even when REPRO_TRACE also armed the env context —
            # with the artifact paths doubling as crash-flush targets,
            # so a failing solve still leaves whatever was recorded
            scope.enter_context(obs.run(
                name="hpcg-driver",
                flush_trace=args.trace_json,
                flush_metrics=args.metrics_json,
                flush_manifest=args.manifest_json,
            ))
        live_ctx = obs.current()
        if live_ctx is not None:
            if args.trace_stream:
                sink = obs.StreamingSink(args.trace_stream,
                                         run_id=live_ctx.run_id,
                                         tracer=live_ctx.tracer)
                scope.callback(sink.close)
                print(f"streaming trace -> {args.trace_stream}")
            if args.serve_metrics is not None:
                server = obs.LiveServer(obs.live.context_source(live_ctx),
                                        port=args.serve_metrics)
                server.start()
                scope.callback(server.stop)
                print(f"live telemetry at {server.url} "
                      f"(/metrics /healthz /manifest /progress)")
            if args.sample_profile is not None:
                sampler = obs.SamplingProfiler(hz=args.sample_profile,
                                               tracer=live_ctx.tracer,
                                               registry=live_ctx.metrics)
                scope.enter_context(sampler)
            if args.push_url:
                pusher = obs.MetricsPusher(
                    args.push_url,
                    source=obs.live.context_source(live_ctx).metrics_text,
                    registry=live_ctx.metrics)
                if args.push_interval is not None:
                    scope.enter_context(
                        obs.PeriodicPusher(pusher, args.push_interval))
                    print(f"pushing metrics -> {pusher.target} "
                          f"every {args.push_interval:g}s")
                else:
                    # one push on the way out (crash-safe: the stack
                    # unwinds even when the solve raises)
                    scope.callback(pusher.push)
                    print(f"pushing metrics -> {pusher.target} on exit")
        result = None
        if args.dist is not None:
            _run_dist(args, fault_plan)
        else:
            result = run_hpcg(
                args.nx, args.ny, args.nz,
                max_iters=args.iters,
                tolerance=args.tolerance,
                mg_levels=args.mg_levels,
                b_style=args.b_style,
            )
        obs_ctx = obs.current()   # env-armed context when no flag given
    if result is not None:
        print(result.summary())
    profile = None
    if args.profile:
        from repro.tune import cache as tune_cache
        profile = tune_cache.current_profile()
        if profile is None:
            print("(no machine profile cached; run "
                  "`python -m repro.tune measure`)")
        else:
            print(f"machine profile: {profile.name} "
                  f"(triad {profile.triad_bandwidth / 1e9:.2f} GB/s)")
    if obs_ctx is not None:
        print(f"observability: run {obs_ctx.run_id}: "
              f"{len(obs_ctx.tracer.spans)} spans "
              f"({obs_ctx.tracer.dropped} dropped), "
              f"{len(obs_ctx.metrics.names())} metrics")
        if args.trace_json:
            print(f"  trace   -> {obs.export.write_trace(args.trace_json, obs_ctx)}")
        if args.metrics_json:
            print(f"  metrics -> {obs.export.write_metrics(args.metrics_json, obs_ctx)}")
        if args.manifest_json:
            print(f"  manifest-> "
                  f"{obs.export.write_manifest(args.manifest_json, obs_ctx.build_manifest())}")
    if sampler is not None:
        print(f"sampling profiler: {sampler.summary()}")
        if args.folded_out:
            folded = sampler.folded_stacks()
            with open(args.folded_out, "w", encoding="utf-8") as fh:
                fh.write("\n".join(obs.flame.folded_lines(folded)) + "\n")
            print(f"  folded  -> {args.folded_out}")
    trace_diff = None
    if args.compare_trace and obs_ctx is not None:
        trace_diff = obs.analyze.diff_traces(
            args.compare_trace, obs_ctx.tracer.as_dicts())
        print(f"trace comparison vs {args.compare_trace}:")
        print(obs.analyze.format_table(trace_diff, top=10))
        print(f"attribution: {obs.analyze.summarize(trace_diff)}")
    if args.timers and result is not None:
        print(result.timers.report())
    if args.report:
        if result is None:
            print("(--report covers the serial benchmark; dist runs "
                  "print their own summary and Resilience section)")
        else:
            from repro.hpcg.report import render_report
            print(render_report(result, profile=profile, obs_ctx=obs_ctx,
                                trace_diff=trace_diff,
                                trace_baseline=args.compare_trace))
    if result is None:
        return 0
    return 0 if result.symmetry.passed else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
