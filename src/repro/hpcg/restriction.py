"""Restriction and refinement as GraphBLAS linear operators.

Reference HPCG implements straight injection by index-copying between
raw arrays — impossible against opaque containers.  The paper's design
(Section III-B) materialises the injection as a rectangular
``n_c x n_f`` matrix ``R`` with exactly one unit entry per row:

* restriction:  ``r_c = R r_f``            (an ``mxv``)
* refinement:   ``z_f += R' z_c``          (``mxv`` with the
  ``transpose_matrix`` descriptor and a ``plus`` accumulator, so the
  restriction matrix is reused untransposed — Section IV).

The refinement accumulates only at injection points; all other fine
entries are untouched, which matches "populate with the corresponding
values of the coarse vector and zeroes elsewhere" composed with the
``z <- z + refine(zc)`` update of Listing 1 line 9.
"""

from __future__ import annotations

import numpy as np

from repro import graphblas as grb
from repro.grid import Grid3D
from repro.util.errors import DimensionMismatch


def build_restriction(fine_grid: Grid3D) -> grb.Matrix:
    """The straight-injection restriction matrix for one coarsening step."""
    injection = fine_grid.injection_indices()
    nc = injection.shape[0]
    nf = fine_grid.npoints
    rows = np.arange(nc, dtype=np.int64)
    vals = np.ones(nc, dtype=np.float64)
    return grb.Matrix.from_coo(rows, injection, vals, nc, nf)


def restrict(rc: grb.Vector, R: grb.Matrix, rf: grb.Vector) -> grb.Vector:
    """``rc = R rf`` — project a fine-grid vector onto the coarse grid."""
    if rc.size != R.nrows or rf.size != R.ncols:
        raise DimensionMismatch(
            f"restrict: rc {rc.size}, rf {rf.size} vs R {R.shape}"
        )
    return grb.mxv(rc, None, R, rf)


def prolong_add(zf: grb.Vector, R: grb.Matrix, zc: grb.Vector) -> grb.Vector:
    """``zf += R' zc`` — refine a coarse correction into the fine grid.

    Uses the transpose descriptor so ``R`` itself is never transposed in
    storage (the optimisation the paper highlights in Section IV).
    """
    if zf.size != R.ncols or zc.size != R.nrows:
        raise DimensionMismatch(
            f"prolong: zf {zf.size}, zc {zc.size} vs R {R.shape}"
        )
    return grb.mxv(
        zf, None, R, zc,
        desc=grb.descriptors.transpose_matrix,
        accum=grb.ops.plus,
    )
