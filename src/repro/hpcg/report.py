"""Official-HPCG-style result report.

The real benchmark emits a YAML file (``HPCG-Benchmark_3.1_....yaml``)
with the problem setup, the validation results, per-kernel timing/flop
summaries and the final rating.  This module renders the same structure
from an :class:`~repro.hpcg.driver.HPCGResult`, both as a nested dict
(for programmatic use) and as YAML-formatted text (no YAML library
needed — the subset we emit is plain nested scalars).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.hpcg.driver import HPCGResult


def to_dict(result: HPCGResult, profile=None, obs_ctx=None,
            trace_diff=None, trace_baseline=None) -> Dict:
    """The report as a nested dictionary.

    ``profile`` (a :class:`repro.tune.MachineProfile`) adds a "Machine
    Profile" section recording which measurement priced/contextualised
    the run — the official report likewise names its machine.
    ``obs_ctx`` (a :class:`repro.obs.RunContext`) adds an
    "Observability" section identifying the trace the run produced.
    ``trace_diff`` (a :class:`repro.obs.TraceDiff`, from the driver's
    ``--compare-trace``) adds a "Trace Comparison" section: the
    significant per-span movers against the baseline trace, each with
    its execution-vs-model attribution verdict.
    """
    problem = result.problem
    counts = result.flops.merged()
    kernel_seconds = {
        "spmv": result.timers.total("cg/spmv"),
        "dot": result.timers.total("cg/dot"),
        "waxpby": result.timers.total("cg/waxpby"),
        "mg": result.timers.total("mg/"),
    }
    gflops_per_kernel = {}
    for kernel, seconds in kernel_seconds.items():
        if kernel == "mg":
            flops = sum(v for k, v in counts.items()
                        if k in ("rbgs", "mg_spmv", "restrict", "refine"))
        else:
            flops = counts.get(kernel, 0.0)
        gflops_per_kernel[kernel] = flops / seconds / 1e9 if seconds else 0.0
    machine_section = {}
    if profile is not None:
        machine_section = {
            "Machine Profile": {
                "Name": profile.name,
                "Host": profile.host,
                "Schema Version": profile.schema_version,
                "Triad Bandwidth (GB/s)": round(
                    profile.triad_bandwidth / 1e9, 3),
                "BSP g (GB/s)": round(profile.net_bandwidth / 1e9, 3),
                "BSP L (us)": round(profile.latency * 1e6, 3),
                "Overlap Efficiency": round(profile.overlap_efficiency, 3),
                "Fast Budget": profile.fast,
            }
        }
    obs_section = {}
    if obs_ctx is not None:
        obs_section = {
            "Observability": {
                "Run ID": obs_ctx.run_id,
                "Spans Recorded": len(obs_ctx.tracer.spans),
                "Spans Dropped": obs_ctx.tracer.dropped,
                "Metrics": len(obs_ctx.metrics.names()),
                "Substrate Decisions": len(obs_ctx.manifest.decisions),
            }
        }
    diff_section = {}
    if trace_diff is not None:
        significant = trace_diff.significant_rows()
        movers = {}
        for row in significant[:5]:
            old_self = row.old.wall_self if row.old else 0.0
            new_self = row.new.wall_self if row.new else 0.0
            movers[row.key] = (
                f"{old_self:.4f}s -> {new_self:.4f}s ({row.verdict})"
            )
        diff_section = {
            "Trace Comparison": {
                "Baseline": trace_baseline or "(baseline trace)",
                "Aggregated By": trace_diff.by,
                "Significant Deltas": len(significant),
                **({"Top Movers": movers} if movers else {}),
            }
        }
    return {
        "HPCG-Benchmark": {
            "version": "repro-python",
            "Global Problem Dimensions": {
                "nx": problem.grid.nx,
                "ny": problem.grid.ny,
                "nz": problem.grid.nz,
            },
            "Linear System Information": {
                "Number of Equations": problem.n,
                "Number of Nonzero Terms": problem.A.nvals,
            },
            "Multigrid Information": {
                "Number of coarse grid levels": max(result.mg_levels - 1, 0),
            },
            "Setup Information": {
                "Setup Time": round(result.setup_seconds, 6),
            },
            "Validation Testing": {
                "spmv symmetry error": result.symmetry.spmv_error,
                "preconditioner symmetry error": result.symmetry.precond_error,
                "Result": "PASSED" if result.symmetry.passed else "FAILED",
            },
            "Iteration Count Information": {
                "Total number of optimized iterations": result.cg.iterations,
            },
            "Reproducibility Information": {
                "Scaled residual": result.cg.relative_residual,
            },
            "Benchmark Time Summary": {
                "Total": round(result.run_seconds, 6),
                **{k: round(v, 6) for k, v in kernel_seconds.items()},
            },
            "GFLOP/s Summary": {
                "Raw Total": round(result.gflops, 6),
                **{f"Raw {k.upper()}": round(v, 6)
                   for k, v in gflops_per_kernel.items()},
            },
            **machine_section,
            **obs_section,
            **diff_section,
            "Final Summary": {
                "HPCG result is": "VALID" if result.symmetry.passed else "INVALID",
                "GFLOP/s rating of": round(result.gflops, 6),
            },
        }
    }


def _render(node, indent: int = 0) -> str:
    lines = []
    pad = "  " * indent
    for key, value in node.items():
        if isinstance(value, dict):
            lines.append(f"{pad}{key}:")
            lines.append(_render(value, indent + 1))
        else:
            lines.append(f"{pad}{key}: {value}")
    return "\n".join(lines)


def render_report(result: HPCGResult, profile=None, obs_ctx=None,
                  trace_diff=None, trace_baseline=None) -> str:
    """The report as YAML-formatted text (official-report lookalike)."""
    return _render(to_dict(result, profile=profile, obs_ctx=obs_ctx,
                           trace_diff=trace_diff,
                           trace_baseline=trace_baseline))
