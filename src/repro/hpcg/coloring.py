"""Graph colouring for the RBGS smoother.

The Gauss-Seidel update order induces (i, j) dependencies wherever
``A[i, j] != 0``; a colouring that separates directly-dependent indices
lets all indices of one colour update in parallel (paper Section III-A).

Two schemes:

* :func:`greedy_coloring` — first-fit greedy over the matrix structure
  in natural order: the paper's scheme, applicable to any symmetric
  pattern.  On the HPCG stencil it finds the optimal 8 colours.
* :func:`lattice_coloring` — the closed-form parity colouring
  ``(ix mod 2) + 2*(iy mod 2) + 4*(iz mod 2)`` for the 27-point grid.
  O(n) with no graph traversal; used as the fast path for large grids
  and as a cross-check for greedy.

Colour masks are returned as GraphBLAS boolean vectors so they can feed
straight into masked ``mxv`` (the ``colors[k]`` of Listings 2/3).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro import graphblas as grb
from repro.grid import Grid3D
from repro.util.errors import InvalidValue


def greedy_coloring(A: grb.Matrix, order: Optional[np.ndarray] = None) -> np.ndarray:
    """First-fit greedy colouring of the symmetric pattern of ``A``.

    Visits rows in ``order`` (natural order by default) and assigns the
    smallest colour not used by any already-coloured neighbour.  Returns
    an int array of colour ids, 0-based and contiguous.
    """
    if A.nrows != A.ncols:
        raise InvalidValue("colouring requires a square matrix")
    n = A.nrows
    # extractTuples is the GraphBLAS-sanctioned way to read a pattern;
    # rows arrive sorted, so segment boundaries give per-row adjacency.
    rows, indices, _ = A.to_coo()
    indptr = np.searchsorted(rows, np.arange(n + 1))
    colors = np.full(n, -1, dtype=np.int64)
    if order is None:
        order = np.arange(n)
    for i in order:
        neigh = indices[indptr[i]:indptr[i + 1]]
        used = set(colors[neigh[neigh != i]].tolist())
        used.discard(-1)
        c = 0
        while c in used:
            c += 1
        colors[i] = c
    return colors


def lattice_coloring(grid: Grid3D, stencil: str = "27pt") -> np.ndarray:
    """Closed-form parity colouring for structured stencils.

    * ``27pt``: 8 colours from the per-axis parity vector — any two grid
      points within the 3x3x3 halo differ in at least one coordinate by
      exactly 1, so they differ in parity vector;
    * ``7pt``: the classic *red-black* 2-colouring by the parity of
      ``x + y + z`` (face neighbours always flip the sum's parity).
    """
    ix, iy, iz = grid.all_coords()
    if stencil == "27pt":
        return ((ix & 1) + 2 * (iy & 1) + 4 * (iz & 1)).astype(np.int64)
    if stencil == "7pt":
        return ((ix + iy + iz) & 1).astype(np.int64)
    raise InvalidValue(f"unknown stencil {stencil!r}")


def num_colors(colors: np.ndarray) -> int:
    return int(colors.max()) + 1 if colors.size else 0


def color_masks(colors: np.ndarray) -> List[grb.Vector]:
    """One boolean GraphBLAS mask vector per colour class.

    Masks are *structural*: an entry exists only at the indices of that
    colour (value ``True``), matching how ALP passes ``Vector<bool>``
    colour masks with the ``structural`` descriptor.
    """
    n = colors.shape[0]
    masks: List[grb.Vector] = []
    for c in range(num_colors(colors)):
        idx = np.flatnonzero(colors == c)
        masks.append(
            grb.Vector.from_coo(idx, np.ones(idx.size, dtype=bool), n, dtype=bool)
        )
    return masks


def jones_plassmann_coloring(
    A: grb.Matrix, seed: int = 0, max_rounds: Optional[int] = None
) -> np.ndarray:
    """Jones-Plassmann parallel colouring, expressed in GraphBLAS.

    Each vertex draws a random priority; every round, vertices whose
    priority beats all uncoloured neighbours take the smallest colour
    unused by their neighbourhood — all discovered with masked ``mxv``
    over the max-second semiring, no sequential row sweep.  This is the
    kind of parallel colouring a production GraphBLAS deployment would
    use instead of sequential greedy (the paper's scheme), and tests
    assert it yields a valid colouring with a comparable colour count.
    """
    from repro.graphblas import semiring as _semiring
    from repro.graphblas.operations import mxv as _mxv
    from repro.graphblas.select import offdiag as _offdiag, select as _select

    if A.nrows != A.ncols:
        raise InvalidValue("colouring requires a square matrix")
    n = A.nrows
    rng = np.random.default_rng(seed)
    priority = rng.permutation(n).astype(np.float64) + 1.0  # distinct, > 0
    colors = np.full(n, -1, dtype=np.int64)
    # the neighbourhood operator must not include self-loops, or every
    # vertex would see its own priority as a "neighbour" — drop the
    # diagonal with select(offdiag), GraphBLAS-style.
    Aoff = grb.Matrix.identity(n)
    _select(Aoff, _offdiag, A)
    rows, cols, _ = Aoff.to_coo()
    # per-row adjacency ranges (rows arrive sorted from extractTuples)
    indptr = np.searchsorted(rows, np.arange(n + 1))

    rounds = 0
    limit = max_rounds if max_rounds is not None else n
    while (colors < 0).any() and rounds < limit:
        rounds += 1
        uncolored = colors < 0
        # max neighbour priority among *uncoloured* neighbours, via mxv:
        # mask the output to uncoloured rows; the input vector carries
        # priorities only at uncoloured positions.
        active_idx = np.flatnonzero(uncolored)
        active_prio = grb.Vector.from_coo(
            active_idx, priority[active_idx], n
        )
        mask = grb.Vector.from_coo(
            active_idx, np.ones(active_idx.size, dtype=bool), n, dtype=bool
        )
        neigh_max = grb.Vector.sparse(n)
        _mxv(neigh_max, mask, Aoff, active_prio,
             semiring=_semiring.max_second,
             desc=grb.descriptors.structural)
        nm = neigh_max.to_dense(fill=-np.inf)
        winners = uncolored & (priority > nm)
        if not winners.any():  # pragma: no cover - distinct priorities
            break
        # smallest colour unused by any (coloured) neighbour
        for v in np.flatnonzero(winners):
            neigh = cols[indptr[v]:indptr[v + 1]]
            used = set(colors[neigh][colors[neigh] >= 0].tolist())
            c = 0
            while c in used:
                c += 1
            colors[v] = c
    if (colors < 0).any():
        raise InvalidValue("colouring did not converge within the round limit")
    return colors


def validate_coloring(A: grb.Matrix, colors: np.ndarray) -> bool:
    """True iff no off-diagonal stored entry joins two same-colour indices."""
    rows, cols, _ = A.to_coo()
    off = rows != cols
    return bool((colors[rows[off]] != colors[cols[off]]).all())


def coloring_for_problem(
    A: grb.Matrix,
    grid: Optional[Grid3D] = None,
    scheme: str = "auto",
    stencil: str = "27pt",
) -> np.ndarray:
    """Choose a colouring scheme.

    ``auto`` uses the O(n) lattice colouring when the geometry is known
    (it provably equals what greedy finds on this operator — asserted in
    tests), falling back to greedy for arbitrary matrices.
    """
    if scheme == "greedy" or (scheme == "auto" and grid is None):
        return greedy_coloring(A)
    if scheme in ("lattice", "auto"):
        if grid is None:
            raise InvalidValue("lattice colouring needs the grid geometry")
        return lattice_coloring(grid, stencil)
    raise InvalidValue(f"unknown colouring scheme {scheme!r}")
