"""HPCG input generation (the benchmark's first kernel).

Builds the system matrix ``A`` (27-point stencil), the right-hand side
``b``, the initial guess ``x0 = 0``, and the known exact solution, as
GraphBLAS containers.  Also extracts the diagonal into a dedicated
vector at generation time — GraphBLAS provides no constant-time element
access, so the RBGS smoother cannot read ``A[i][i]`` on the fly (paper
Section III-A).

Two right-hand-side conventions exist:

* ``"reference"`` (default): ``b = A @ 1`` (equivalently ``27 - nnz_row``),
  which is what the official HPCG code generates and makes ``x = 1`` the
  exact solution — used by the convergence validation;
* ``"ones"``: ``b = 1``, the phrasing used in the paper's Section II-B.

Both exercise identical code paths; the driver records which one ran.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Optional

import numpy as np

from repro import graphblas as grb
from repro.grid import Grid3D, stencil_coo
from repro.util.errors import InvalidValue

BStyle = Literal["reference", "ones"]
Stencil = Literal["27pt", "7pt"]


@dataclass
class Problem:
    """One generated HPCG system ``A x = b`` with metadata."""

    grid: Grid3D
    A: grb.Matrix
    A_diag: grb.Vector
    b: grb.Vector
    x0: grb.Vector
    exact: grb.Vector
    b_style: BStyle = "reference"
    stencil: Stencil = "27pt"
    # requested storage substrate (None = per-matrix auto-selection);
    # recorded so the MG hierarchy can honour the same pin per level
    substrate: Optional[str] = None

    @property
    def n(self) -> int:
        return self.grid.npoints

    def residual_norm(self, x: grb.Vector) -> float:
        """``||b - A x||_2`` computed with GraphBLAS operations."""
        r = grb.Vector.dense(self.n)
        grb.mxv(r, None, self.A, x)
        grb.waxpby(r, 1.0, self.b, -1.0, r)
        return grb.norm2(r)


def build_operator(grid: Grid3D, stencil: Stencil = "27pt",
                   substrate: Optional[str] = None) -> grb.Matrix:
    """The stencil operator as a GraphBLAS matrix (27-point = HPCG).

    ``substrate`` pins the storage format/kernel provider; the default
    lets the registry heuristic pick per matrix (paper Section III-B).
    """
    rows, cols, vals = stencil_coo(grid, stencil)
    return grb.Matrix.from_coo(rows, cols, vals, grid.npoints, grid.npoints,
                               substrate=substrate)


def generate_problem(
    nx: int,
    ny: int = 0,
    nz: int = 0,
    b_style: BStyle = "reference",
    stencil: Stencil = "27pt",
    substrate: Optional[str] = None,
) -> Problem:
    """Generate the HPCG system on an ``nx x ny x nz`` grid.

    ``ny``/``nz`` default to ``nx`` (cubical domain, the benchmark's
    usual configuration).  ``stencil="7pt"`` swaps in the face-neighbour
    Laplacian — not HPCG, but useful for studies (its dependency graph
    is 2-colourable, the original red-black setting).  ``substrate``
    pins every operator (fine and, via :func:`build_hierarchy`, coarse)
    to one storage format; ``None`` means per-matrix auto-selection.
    """
    ny = ny or nx
    nz = nz or nx
    grid = Grid3D(nx, ny, nz)
    A = build_operator(grid, stencil, substrate)
    n = grid.npoints

    A_diag = grb.diag(A)
    if A_diag.nvals != n:
        raise InvalidValue("stencil operator is missing diagonal entries")

    exact = grb.Vector.dense(n, 1.0)
    if b_style == "reference":
        b = grb.Vector.dense(n)
        grb.mxv(b, None, A, exact)
    elif b_style == "ones":
        b = grb.Vector.dense(n, 1.0)
    else:
        raise InvalidValue(f"unknown b_style {b_style!r}")
    x0 = grb.Vector.dense(n, 0.0)
    return Problem(grid=grid, A=A, A_diag=A_diag, b=b, x0=x0, exact=exact,
                   b_style=b_style, stencil=stencil, substrate=substrate)
