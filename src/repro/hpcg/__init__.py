"""HPCG expressed on GraphBLAS — the paper's primary contribution.

Public API::

    from repro.hpcg import generate_problem, build_hierarchy, pcg, run_hpcg

    problem = generate_problem(32)
    hierarchy = build_hierarchy(problem, levels=4)
    result = run_hpcg(nx=32, max_iters=50)

All numerical code in this package programs against the opaque
:mod:`repro.graphblas` containers only; tests enforce that no module
here touches backend storage.
"""

from repro.hpcg.cg import CGResult, pcg
from repro.hpcg.coloring import (
    color_masks,
    coloring_for_problem,
    greedy_coloring,
    jones_plassmann_coloring,
    lattice_coloring,
    num_colors,
    validate_coloring,
)
from repro.hpcg.driver import HPCGResult, run_hpcg
from repro.hpcg.multigrid import (
    MGLevel,
    MGPreconditioner,
    build_hierarchy,
    mg_vcycle,
)
from repro.hpcg.problem import Problem, build_operator, generate_problem
from repro.hpcg.report import render_report, to_dict as report_dict
from repro.hpcg.restriction import build_restriction, prolong_add, restrict
from repro.hpcg.smoothers import JacobiSmoother, RBGSSmoother
from repro.hpcg.symmetry import SymmetryReport, validate

__all__ = [
    "CGResult",
    "pcg",
    "color_masks",
    "coloring_for_problem",
    "greedy_coloring",
    "jones_plassmann_coloring",
    "lattice_coloring",
    "num_colors",
    "validate_coloring",
    "HPCGResult",
    "run_hpcg",
    "MGLevel",
    "MGPreconditioner",
    "build_hierarchy",
    "mg_vcycle",
    "Problem",
    "build_operator",
    "generate_problem",
    "build_restriction",
    "prolong_add",
    "restrict",
    "JacobiSmoother",
    "RBGSSmoother",
    "SymmetryReport",
    "validate",
    "render_report",
    "report_dict",
]
