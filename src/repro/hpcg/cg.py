"""The preconditioned Conjugate Gradient solver (paper Section II-C).

Iteration structure matches the reference HPCG ``CG.cpp`` so iteration
counts are comparable: one preconditioner application, two dots plus a
norm, one spmv and three waxpby per iteration.

The solver is generic over the preconditioner: pass
:class:`~repro.hpcg.multigrid.MGPreconditioner` for full HPCG, or
``None`` for plain CG (used by the convergence validation, which checks
that preconditioning reduces iterations).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro import graphblas as grb
from repro import obs
from repro.graphblas import fused as fused_ext
from repro.util.errors import DimensionMismatch
from repro.util.timer import null_timer

Preconditioner = Callable[[grb.Vector, grb.Vector], grb.Vector]


class CGWorkspace:
    """The solver's four work vectors (``r``, ``z``, ``p``, ``Ap``).

    Allocated once and passed to repeated :func:`pcg` calls (the
    driver's repetition protocol, parameter sweeps, benchmarks) so the
    per-solve cost is the mathematics, not four fresh allocations —
    every vector is fully overwritten before it is read, so reuse is
    state-free.
    """

    __slots__ = ("n", "r", "z", "p", "Ap")

    def __init__(self, n: int):
        self.n = n
        self.r = grb.Vector.dense(n)
        self.z = grb.Vector.dense(n)
        self.p = grb.Vector.dense(n)
        self.Ap = grb.Vector.dense(n)


@dataclass
class CGResult:
    """Outcome of a CG solve."""

    x: grb.Vector
    iterations: int
    converged: bool
    normr0: float
    normr: float
    residuals: List[float] = field(default_factory=list)

    @property
    def relative_residual(self) -> float:
        return self.normr / self.normr0 if self.normr0 else 0.0


def pcg(
    A: grb.Matrix,
    b: grb.Vector,
    x: grb.Vector,
    preconditioner: Optional[Preconditioner] = None,
    max_iters: int = 50,
    tolerance: float = 0.0,
    timers=null_timer,
    workspace: Optional[CGWorkspace] = None,
) -> CGResult:
    """Solve ``A x = b`` from initial guess ``x`` (updated in place).

    With ``tolerance=0`` runs exactly ``max_iters`` iterations — HPCG's
    timed mode, where the iteration count is fixed so execution times
    are directly comparable (paper Section V).  Pass a
    :class:`CGWorkspace` to reuse the solver vectors across repeated
    calls instead of reallocating them per solve.
    """
    n = A.nrows
    if b.size != n or x.size != n:
        raise DimensionMismatch(
            f"CG sizes: A {A.shape}, b {b.size}, x {x.size}"
        )
    if workspace is None:
        workspace = CGWorkspace(n)
    elif workspace.n != n:
        raise DimensionMismatch(
            f"workspace size {workspace.n} != operator size {n}"
        )
    r, z, p, Ap = workspace.r, workspace.z, workspace.p, workspace.Ap

    # observability taps (None when tracing is off): a residual series
    # and a gauge, resolved once so the loop pays a single lookup
    registry = obs.metrics_registry()
    res_series = (registry.series(
        "cg_residual", "CG residual 2-norm per iteration (index 0 = initial)"
    ) if registry is not None else None)
    res_gauge = (registry.gauge(
        "cg_residual_last", "most recent CG residual 2-norm"
    ) if registry is not None else None)
    iter_gauge = (registry.gauge(
        "cg_iteration", "current CG iteration (live progress)"
    ) if registry is not None else None)

    with timers.measure("cg/spmv"), grb.backend.labelled("spmv"):
        # the fused extension computes r <- b - A x in one pass (Ap is
        # recomputed from p before its first read, so eliding it here
        # is state-free); declining falls back to the reference pair
        fused_init = fused_ext.fused_spmv_waxpby(r, 1.0, b, -1.0, A, x)
        if not fused_init:
            grb.mxv(Ap, None, A, x)
    if not fused_init:
        with timers.measure("cg/waxpby"), grb.backend.labelled("waxpby"):
            grb.waxpby(r, 1.0, b, -1.0, Ap)         # r <- b - A x
    with timers.measure("cg/dot"), grb.backend.labelled("dot"):
        normr0 = normr = grb.norm2(r)
    residuals = [normr]
    if res_series is not None:
        res_series.observe(normr)
    rtz = 0.0

    if normr0 == 0.0:
        # the initial guess already solves the system exactly
        return CGResult(x=x, iterations=0, converged=True, normr0=0.0,
                        normr=0.0, residuals=residuals)

    iterations = 0
    for k in range(1, max_iters + 1):
        if tolerance > 0 and normr / normr0 <= tolerance:
            break
        with obs.span("cg/iteration", "cg", {"k": k}) as sp:
            if preconditioner is not None:
                with timers.measure("cg/mg"):
                    preconditioner(z, r)                 # z <- M r
            else:
                with timers.measure("cg/waxpby"), \
                        grb.backend.labelled("waxpby"):
                    grb.waxpby(z, 1.0, r, 0.0, r)        # z <- r
            if k == 1:
                with timers.measure("cg/waxpby"), \
                        grb.backend.labelled("waxpby"):
                    grb.waxpby(p, 1.0, z, 0.0, z)        # p <- z
                with timers.measure("cg/dot"), grb.backend.labelled("dot"):
                    rtz = grb.dot(r, z)
            else:
                rtz_old = rtz
                with timers.measure("cg/dot"), grb.backend.labelled("dot"):
                    rtz = grb.dot(r, z)
                beta = rtz / rtz_old
                with timers.measure("cg/waxpby"), \
                        grb.backend.labelled("waxpby"):
                    grb.waxpby(p, 1.0, z, beta, p)       # p <- z + beta p
            with timers.measure("cg/spmv"), grb.backend.labelled("spmv"):
                grb.mxv(Ap, None, A, p)                  # Ap <- A p
            with timers.measure("cg/dot"), grb.backend.labelled("dot"):
                pAp = grb.dot(p, Ap)
            alpha = rtz / pAp
            with timers.measure("cg/waxpby"), grb.backend.labelled("waxpby"):
                grb.waxpby(x, 1.0, x, alpha, p)          # x <- x + alpha p
                grb.waxpby(r, 1.0, r, -alpha, Ap)        # r <- r - alpha Ap
            with timers.measure("cg/dot"), grb.backend.labelled("dot"):
                normr = grb.norm2(r)
            if sp is not None:
                sp.set(normr=normr)
        residuals.append(normr)
        if res_series is not None:
            res_series.observe(normr)
            res_gauge.set(normr)
            iter_gauge.set(k)
        iterations = k

    converged = tolerance > 0 and normr / normr0 <= tolerance
    return CGResult(
        x=x,
        iterations=iterations,
        converged=converged,
        normr0=normr0,
        normr=normr,
        residuals=residuals,
    )
