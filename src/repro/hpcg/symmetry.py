"""HPCG validation phase: symmetry and convergence tests.

The HPCG technical specification permits replacing the smoother (the
door the paper walks through with RBGS) *only if* the replacement passes
the benchmark's internal symmetry test.  This module implements those
checks:

* spmv symmetry:   ``|x' (A y) - y' (A x)|`` must be ~0 — the operator
  itself is symmetric;
* smoother/MG symmetry: ``|x' M(y) - y' M(x)|`` must be small — a
  symmetric Gauss-Seidel (forward then backward sweep from a zero
  guess) is a symmetric linear operator, and so is the V-cycle built
  from it;
* convergence sanity: preconditioned CG must converge in fewer
  iterations than unpreconditioned CG.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro import graphblas as grb


@dataclass
class SymmetryReport:
    """Outcome of the validation phase (all values are relative errors)."""

    spmv_error: float
    precond_error: float
    spmv_ok: bool
    precond_ok: bool

    @property
    def passed(self) -> bool:
        return self.spmv_ok and self.precond_ok


def _random_vectors(n: int, seed: int) -> tuple:
    rng = np.random.default_rng(seed)
    x = grb.Vector.from_dense(rng.standard_normal(n))
    y = grb.Vector.from_dense(rng.standard_normal(n))
    return x, y


def spmv_symmetry_error(A: grb.Matrix, seed: int = 7) -> float:
    """Relative asymmetry ``|x'Ay - y'Ax| / (||x|| ||y|| ||A||_f)``."""
    n = A.nrows
    x, y = _random_vectors(n, seed)
    Ax = grb.Vector.dense(n)
    Ay = grb.Vector.dense(n)
    grb.mxv(Ax, None, A, x)
    grb.mxv(Ay, None, A, y)
    xAy = grb.dot(x, Ay)
    yAx = grb.dot(y, Ax)
    scale = grb.norm2(x) * grb.norm2(y) or 1.0
    return abs(xAy - yAx) / scale


def precond_symmetry_error(
    apply_precond: Callable[[grb.Vector, grb.Vector], grb.Vector],
    n: int,
    seed: int = 11,
) -> float:
    """Relative asymmetry of a preconditioner as a linear operator.

    ``apply_precond(z, r)`` must overwrite ``z`` with ``M r`` starting
    from a state-independent initial guess (the MG preconditioner zeroes
    ``z`` internally, making it a fixed linear operator — this is why the
    smoother must start from ``z = 0`` for the symmetry argument).
    """
    x, y = _random_vectors(n, seed)
    Mx = grb.Vector.dense(n)
    My = grb.Vector.dense(n)
    apply_precond(My, y)
    apply_precond(Mx, x)
    xMy = grb.dot(x, My)
    yMx = grb.dot(y, Mx)
    scale = grb.norm2(x) * grb.norm2(y) or 1.0
    return abs(xMy - yMx) / scale


def validate(
    A: grb.Matrix,
    apply_precond: Optional[Callable] = None,
    tolerance: float = 1e-10,
    seed: int = 7,
) -> SymmetryReport:
    """Run the HPCG validation phase and report pass/fail per check."""
    spmv_err = spmv_symmetry_error(A, seed=seed)
    if apply_precond is not None:
        pre_err = precond_symmetry_error(apply_precond, A.nrows, seed=seed + 4)
    else:
        pre_err = 0.0
    return SymmetryReport(
        spmv_error=spmv_err,
        precond_error=pre_err,
        spmv_ok=spmv_err <= tolerance,
        precond_ok=pre_err <= tolerance,
    )
