"""The micro-benchmark suite behind ``python -m repro.tune measure``.

Six probes, each answering one question the modelling pipeline
otherwise answers with a datasheet constant:

* **STREAM triad** — the machine's attainable memory bandwidth (the
  number every bandwidth-bound prediction divides by); reuses
  :func:`repro.perf.calibrate.measure_triad_bandwidth`.
* **SpMV shape grid** — each registered substrate provider's effective
  byte rate on three reference shapes (uniform 27-point stencil,
  high-cv skewed rows, dense-ish), the rates the registry's ``model``
  selection mode prices candidates with.
* **RBGS probe** — each provider's effective rate over a full
  multi-colour half-sweep (prebuilt colour blocks, the smoother's
  steady state).
* **Message cost** — BSP ``g`` and ``L`` fitted by least squares to
  timed simulated h-relations (staged buffer copies standing in for
  the wire, exactly what the simulated backends' sends are).
* **Compute-under-copy interference** — a copy thread running against
  a triad loop; the measured fraction of the shorter phase that the
  concurrency hides is the machine's ``overlap_efficiency``.
* **Thread sweep** — the uniform-stencil SpMV at 1, 2, 4, … threads
  (row-chunked over a thread pool — numba-free, so it runs on the
  supported-everywhere configuration); the fitted ``half_sat_threads``
  and the per-count rates are what ``REPRO_THREADS=auto`` and the
  hybrid dist pricing consume.

Budgets: :data:`FULL` for a real calibration, :data:`FAST` for the CI
leg (the whole suite in well under a minute), :data:`SMOKE` for tests.

Each probe runs inside a ``tune/probe/*`` observability span carrying
its budget and measured result, so a traced calibration shows up in
trace diffs and flamegraphs like any other subsystem.
"""

from __future__ import annotations

import os
import platform
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from repro import obs
from repro.grid import Grid3D, stencil_coo
from repro.hpcg.coloring import lattice_coloring
from repro.perf.calibrate import measure_triad_bandwidth
from repro.tune.profile import MachineProfile
from repro.tune.select import useful_bytes
from repro.graphblas import substrate as substrate_mod
from repro.graphblas.substrate.base import MatrixProfile


@dataclass(frozen=True)
class ProbeBudget:
    """How much work each probe spends (sizes and best-of repeats)."""

    name: str
    triad_size: int
    triad_repeats: int
    stencil_nx: int            # uniform probe: nx^3 27-point stencil
    highcv_rows: int           # skewed-row probe size
    dense_rows: int            # dense-ish probe rows (64 columns)
    spmv_repeats: int
    rbgs_repeats: int
    message_sizes: Tuple[int, ...]
    message_repeats: int
    overlap_size: int
    overlap_repeats: int
    thread_repeats: int = 3    # thread-sweep probe best-of repeats
    thread_max: int = 16       # sweep ceiling (always capped by cores)


FULL = ProbeBudget(
    name="full",
    triad_size=4_000_000, triad_repeats=5,
    stencil_nx=24, highcv_rows=16384, dense_rows=4096,
    spmv_repeats=7, rbgs_repeats=5,
    message_sizes=(4_096, 32_768, 262_144, 1_048_576, 4_194_304),
    message_repeats=7,
    overlap_size=4_000_000, overlap_repeats=5,
    thread_repeats=5, thread_max=32,
)

FAST = ProbeBudget(
    name="fast",
    triad_size=1_000_000, triad_repeats=3,
    stencil_nx=16, highcv_rows=8192, dense_rows=2048,
    spmv_repeats=3, rbgs_repeats=3,
    message_sizes=(4_096, 65_536, 524_288, 2_097_152),
    message_repeats=3,
    overlap_size=1_000_000, overlap_repeats=3,
    thread_repeats=3, thread_max=16,
)

#: Minimal budget for unit tests: validity of the pipeline, not of the
#: numbers.
SMOKE = ProbeBudget(
    name="smoke",
    triad_size=100_000, triad_repeats=1,
    stencil_nx=8, highcv_rows=1024, dense_rows=256,
    spmv_repeats=1, rbgs_repeats=1,
    message_sizes=(4_096, 65_536, 262_144),
    message_repeats=1,
    overlap_size=100_000, overlap_repeats=1,
    thread_repeats=1, thread_max=4,
)

BUDGETS = {b.name: b for b in (FULL, FAST, SMOKE)}


def _best_of(fn, repeats: int) -> float:
    """Minimum wall-clock of ``repeats`` calls (noise-floor timing)."""
    best = float("inf")
    for _ in range(max(repeats, 1)):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


# ---------------------------------------------------------------------------
# probe matrices: the shape grid
# ---------------------------------------------------------------------------

def probe_matrices(budget: ProbeBudget) -> Dict[str, sp.csr_matrix]:
    """The shape grid: one representative CSR per shape class."""
    # uniform: the 27-point stencil, near-constant row lengths
    grid = Grid3D(budget.stencil_nx, budget.stencil_nx, budget.stencil_nx)
    rows, cols, vals = stencil_coo(grid, "27pt")
    uniform = sp.csr_matrix((vals, (rows, cols)),
                            shape=(grid.npoints, grid.npoints))
    uniform.sort_indices()
    # highcv: skewed row lengths (geometric-ish), the SELL-C-σ case
    rng = np.random.default_rng(7)
    n = budget.highcv_rows
    row_nnz = np.minimum(1 + rng.geometric(1.0 / 12.0, size=n), n)
    r = np.repeat(np.arange(n, dtype=np.int64), row_nnz)
    c = rng.integers(0, n, size=r.size, dtype=np.int64)
    v = rng.standard_normal(r.size)
    highcv = sp.csr_matrix((v, (r, c)), shape=(n, n))
    highcv.sum_duplicates()
    highcv.sort_indices()
    # dense-ish: a tall block over few columns, density well above 0.25
    dn, dm = budget.dense_rows, 64
    mask = rng.random((dn, dm)) < 0.4
    dense_arr = rng.standard_normal((dn, dm)) * mask
    dense = sp.csr_matrix(dense_arr)
    dense.sort_indices()
    return {"uniform": uniform, "highcv": highcv, "dense": dense}


# ---------------------------------------------------------------------------
# the probes
# ---------------------------------------------------------------------------

def measure_spmv_rates(
    budget: ProbeBudget,
    names: Optional[Sequence[str]] = None,
    matrices: Optional[Dict[str, sp.csr_matrix]] = None,
) -> Dict[str, Dict[str, float]]:
    """Effective SpMV bytes/s per (provider, shape class).

    The rate normaliser is the csr-equivalent useful stream, so rates
    across formats are directly comparable: ``useful / rate`` is each
    format's measured seconds on that shape.
    """
    if names is None:
        names = substrate_mod.available()
    if matrices is None:
        matrices = probe_matrices(budget)
    rng = np.random.default_rng(3)
    out: Dict[str, Dict[str, float]] = {name: {} for name in names}
    with obs.span("tune/probe/spmv", "tune",
                  {"budget": budget.name,
                   "repeats": budget.spmv_repeats}) as span:
        for shape, csr in matrices.items():
            nbytes = useful_bytes(MatrixProfile.from_csr(csr))
            x = rng.standard_normal(csr.shape[1])
            for name in names:
                provider = substrate_mod.get(name)(csr)
                provider.mxv(x)   # warm-up (and structure build check)
                elapsed = _best_of(lambda: provider.mxv(x),
                                   budget.spmv_repeats)
                out[name][shape] = nbytes / elapsed if elapsed > 0 else 0.0
        if span is not None:
            span.set(rates={name: dict(shapes)
                            for name, shapes in out.items()})
    return out


def measure_rbgs_rates(
    budget: ProbeBudget,
    names: Optional[Sequence[str]] = None,
) -> Dict[str, float]:
    """Effective bytes/s of a full RBGS half-sweep per provider.

    Colour blocks are prebuilt (the smoother's steady state — the
    hierarchy builds them once) so the probe times the per-colour
    masked products, not format construction.
    """
    if names is None:
        names = substrate_mod.available()
    grid = Grid3D(budget.stencil_nx, budget.stencil_nx, budget.stencil_nx)
    rows, cols, vals = stencil_coo(grid, "27pt")
    A = sp.csr_matrix((vals, (rows, cols)),
                      shape=(grid.npoints, grid.npoints))
    A.sort_indices()
    colors = lattice_coloring(grid, "27pt")
    ncolors = int(colors.max()) + 1
    color_rows = [np.flatnonzero(colors == c) for c in range(ncolors)]
    diag = A.diagonal()
    rng = np.random.default_rng(5)
    r = rng.standard_normal(A.shape[0])
    nbytes = useful_bytes(MatrixProfile.from_csr(A))
    out: Dict[str, float] = {}
    with obs.span("tune/probe/rbgs", "tune",
                  {"budget": budget.name, "nx": budget.stencil_nx,
                   "repeats": budget.rbgs_repeats}) as span:
        for name in names:
            blocks = [substrate_mod.get(name)(A[sel, :]) for sel in color_rows]

            def half_sweep():
                z = np.zeros(A.shape[0])
                for c in range(ncolors):
                    sel = color_rows[c]
                    s = blocks[c].mxv(z)
                    d = diag[sel]
                    z[sel] = (r[sel] - s + z[sel] * d) / d
                return z

            half_sweep()   # warm-up
            elapsed = _best_of(half_sweep, budget.rbgs_repeats)
            out[name] = nbytes / elapsed if elapsed > 0 else 0.0
        if span is not None:
            span.set(rates=dict(out))
    return out


def fit_message_cost(budget: ProbeBudget) -> Tuple[float, float]:
    """Fit BSP ``(g, L)`` to timed simulated h-relations.

    The simulated backends' "wire" is host memory: a send is a staged
    copy (pack into a message buffer, unpack at the receiver).  Timing
    that transport over a range of message sizes and fitting
    ``seconds = L + h / g`` by least squares yields the g/L the BSP
    model should charge *for this simulator on this machine* — the
    honest analogue of a ping-pong fit on a real fabric.
    """
    sizes: List[float] = []
    times: List[float] = []
    with obs.span("tune/probe/message_cost", "tune",
                  {"budget": budget.name,
                   "sizes": list(budget.message_sizes),
                   "repeats": budget.message_repeats}) as span:
        for nbytes in budget.message_sizes:
            n = max(nbytes // 8, 1)
            src = np.random.default_rng(1).standard_normal(n)
            stage = np.empty(n)
            dst = np.empty(n)

            def exchange():
                np.copyto(stage, src)   # pack / inject
                np.copyto(dst, stage)   # deliver / unpack

            exchange()   # warm-up
            elapsed = _best_of(exchange, budget.message_repeats)
            sizes.append(float(n * 8))
            times.append(elapsed)
        slope, intercept = np.polyfit(np.asarray(sizes), np.asarray(times), 1)
        if slope <= 0:
            # timer-noise degenerate fit: fall back to the largest probe's
            # raw throughput and a nominal microsecond of latency
            g = sizes[-1] / times[-1] if times[-1] > 0 else 1e9
            latency = 1e-6
        else:
            g = 1.0 / slope
            latency = max(float(intercept), 1e-9)
        if span is not None:
            span.set(g=float(g), latency=float(latency))
    return float(g), latency


def measure_overlap_efficiency(budget: ProbeBudget) -> float:
    """Measured fraction of a copy the machine hides behind compute.

    Times a triad compute phase and a buffer-copy phase separately,
    then concurrently (the copy on a thread — NumPy releases the GIL
    for both).  Perfect NIC/compute-style concurrency gives
    ``t_both == max(t_comp, t_copy)`` (efficiency 1); full serialisation
    gives ``t_both == t_comp + t_copy`` (efficiency 0).
    """
    n = budget.overlap_size
    rng = np.random.default_rng(2)
    a = np.zeros(n)
    b = rng.standard_normal(n)
    c = rng.standard_normal(n)
    src = rng.standard_normal(n)
    dst = np.empty(n)

    def compute():
        np.multiply(b, 2.5, out=a)
        np.add(a, c, out=a)

    def copy():
        np.copyto(dst, src)

    best_eff = 0.0
    with obs.span("tune/probe/overlap", "tune",
                  {"budget": budget.name, "size": budget.overlap_size,
                   "repeats": budget.overlap_repeats}) as span:
        for _ in range(max(budget.overlap_repeats, 1)):
            t_comp = _best_of(compute, 1)
            t_copy = _best_of(copy, 1)
            thread = threading.Thread(target=copy)
            start = time.perf_counter()
            thread.start()
            compute()
            thread.join()
            t_both = time.perf_counter() - start
            shorter = min(t_comp, t_copy)
            if shorter <= 0:
                continue
            hidden = (t_comp + t_copy) - t_both
            best_eff = max(best_eff, hidden / shorter)
        efficiency = float(np.clip(best_eff, 0.0, 1.0))
        if span is not None:
            span.set(overlap_efficiency=efficiency)
    return efficiency


def _sweep_counts(budget: ProbeBudget) -> List[int]:
    """1, 2, 4, … up to min(thread_max, cores), cores always included."""
    cores = os.cpu_count() or 1
    ceiling = max(1, min(budget.thread_max, cores))
    counts = [1]
    t = 2
    while t < ceiling:
        counts.append(t)
        t *= 2
    if ceiling > 1:
        counts.append(ceiling)
    return counts


def measure_thread_scaling(
    budget: ProbeBudget,
) -> Tuple[int, Dict[str, Dict[str, float]]]:
    """The thread sweep: per-count SpMV rates and the half-saturation
    fit.

    Runs the uniform-stencil SpMV through
    :class:`~repro.graphblas.substrate.threads.ChunkedSpmv` at each
    count (the same rows-partitioned execution shape as the prange
    kernels, so the scaling transfers), and fits ``half_sat_threads``
    as the smallest count capturing at least half of the measured
    parallel *gain* (``rate(t) >= rate(1) + (saturated - rate(1))/2``)
    — the knee the auto policy targets instead of oversubscribing; a
    sweep with no gain over serial fits 1.
    """
    from repro.graphblas.substrate.threads import ChunkedSpmv

    grid = Grid3D(budget.stencil_nx, budget.stencil_nx, budget.stencil_nx)
    rows, cols, vals = stencil_coo(grid, "27pt")
    csr = sp.csr_matrix((vals, (rows, cols)),
                        shape=(grid.npoints, grid.npoints))
    csr.sort_indices()
    nbytes = useful_bytes(MatrixProfile.from_csr(csr))
    x = np.random.default_rng(11).standard_normal(csr.shape[1])
    counts = _sweep_counts(budget)
    rates: Dict[str, float] = {}
    with obs.span("tune/probe/threads", "tune",
                  {"budget": budget.name, "counts": list(counts),
                   "repeats": budget.thread_repeats}) as span:
        reference = None
        for t in counts:
            with ChunkedSpmv(csr, t) as kernel:
                y = kernel(x)   # warm-up (threads spawned, caches hot)
                if reference is None:
                    reference = y.copy()
                elif not np.array_equal(y, reference):
                    raise AssertionError(
                        f"thread sweep at {t} threads diverged from the "
                        f"serial result"
                    )
                elapsed = _best_of(lambda: kernel(x),
                                   budget.thread_repeats)
            rates[str(t)] = nbytes / elapsed if elapsed > 0 else 0.0
        serial = rates.get("1", 0.0)
        saturated = max(rates.values()) if rates else 0.0
        half_sat = 1
        if saturated > serial > 0:
            knee = serial + 0.5 * (saturated - serial)
            for t in sorted(rates, key=int):
                if rates[t] >= knee:
                    half_sat = int(t)
                    break
        if span is not None:
            span.set(half_sat_threads=half_sat, rates=dict(rates))
    return half_sat, {"spmv": rates}


# ---------------------------------------------------------------------------
# the full suite
# ---------------------------------------------------------------------------

def measure(budget: ProbeBudget = FULL,
            name: Optional[str] = None) -> MachineProfile:
    """Run every probe and assemble the :class:`MachineProfile`."""
    with obs.span("tune/probe/triad", "tune",
                  {"budget": budget.name, "size": budget.triad_size,
                   "repeats": budget.triad_repeats}) as span:
        triad = measure_triad_bandwidth(size=budget.triad_size,
                                        repeats=budget.triad_repeats)
        if span is not None:
            span.set(bandwidth=float(triad))
    spmv_rates = measure_spmv_rates(budget)
    rbgs_rates = measure_rbgs_rates(budget)
    g, latency = fit_message_cost(budget)
    overlap = measure_overlap_efficiency(budget)
    half_sat, thread_rates = measure_thread_scaling(budget)
    return MachineProfile(
        name=name or platform.node() or "local",
        created_at=time.time(),
        host=platform.node() or "unknown",
        cores=os.cpu_count() or 1,
        triad_bandwidth=triad,
        spmv_rates=spmv_rates,
        rbgs_rates=rbgs_rates,
        net_bandwidth=g,
        latency=latency,
        overlap_efficiency=overlap,
        fast=budget.name != "full",
        half_sat_threads=half_sat,
        thread_rates=thread_rates,
    )
