"""``repro.tune`` — measured machine profiles and model-driven tuning.

The fourth subsystem: it makes the other three self-calibrating.  The
modelling pipeline (BSP pricing in :mod:`repro.dist`, the scaling model
in :mod:`repro.perf`, substrate selection in
:mod:`repro.graphblas.substrate`) was seeded with the paper's Table II
datasheet constants; this package replaces them with *measurements of
the machine the code is running on*:

* :mod:`repro.tune.microbench` — the probe suite (STREAM triad,
  per-substrate SpMV/RBGS rates over a shape grid, a BSP ``g``/``L``
  fit from simulated h-relation timings, a compute-under-copy
  interference probe for ``overlap_efficiency``);
* :mod:`repro.tune.profile` — the schema-versioned, canonically
  serialised :class:`MachineProfile` the probes produce;
* :mod:`repro.tune.cache` — persistence under ``REPRO_TUNE_CACHE``
  with staleness checks and a never-raising :func:`current_profile`;
* :mod:`repro.tune.select` — model-driven substrate selection
  (``REPRO_SUBSTRATE=model`` / ``selection="model"``) pricing each
  provider with the profile's measured per-format byte rates.

Consumers: ``BSPMachine.from_profile(...)`` and
``MachineSpec.from_profile(...)`` construct measurement-driven machine
models; ``python -m repro.tune measure`` (``--fast`` for CI) produces
the profile.

``microbench`` is imported lazily (via :func:`measure`) so that the
substrate registry can read profiles without dragging the whole HPCG
stack into every ``Matrix`` construction.
"""

from repro.tune.cache import (
    ENV_VAR,
    MAX_AGE_ENV_VAR,
    cache_dir,
    clear,
    current_profile,
    load_profile,
    profile_path,
    save_profile,
)
from repro.tune.profile import (
    SCHEMA_VERSION,
    SHAPE_CLASSES,
    MachineProfile,
    ProfileVersionError,
    synthetic_profile,
)
from repro.tune.select import (
    choose_model,
    predict_seconds,
    shape_class,
    useful_bytes,
)


def measure(*args, **kwargs):
    """Run the micro-benchmark suite (lazy import of the probe stack).

    See :func:`repro.tune.microbench.measure`.
    """
    from repro.tune import microbench

    return microbench.measure(*args, **kwargs)


__all__ = [
    "ENV_VAR",
    "MAX_AGE_ENV_VAR",
    "SCHEMA_VERSION",
    "SHAPE_CLASSES",
    "MachineProfile",
    "ProfileVersionError",
    "cache_dir",
    "choose_model",
    "clear",
    "current_profile",
    "load_profile",
    "measure",
    "predict_seconds",
    "profile_path",
    "save_profile",
    "shape_class",
    "synthetic_profile",
    "useful_bytes",
]
