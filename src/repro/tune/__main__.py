"""CLI for the autotuning subsystem: ``python -m repro.tune``.

Subcommands:

* ``measure`` — run the micro-benchmark suite and persist the profile
  (``--fast`` is the CI budget, well under a minute; ``--smoke`` is
  the seconds-long test budget);
* ``show`` — print the cached profile;
* ``clear`` — delete the cached profile;
* ``scale`` — rerun the Figure 3 weak-scaling study with the BSP node
  priced by the measured profile, against the Table-II preset.

The cache location is ``$REPRO_TUNE_CACHE`` (default
``~/.cache/repro/tune``); ``measure --out`` writes anywhere.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.tune import cache
from repro.util.errors import InvalidValue


def _cmd_measure(args: argparse.Namespace) -> int:
    from repro.tune import microbench

    budget = microbench.FULL
    if args.fast:
        budget = microbench.FAST
    if args.smoke:
        budget = microbench.SMOKE
    start = time.perf_counter()
    profile = microbench.measure(budget, name=args.name)
    elapsed = time.perf_counter() - start
    path = cache.save_profile(profile, path=args.out)
    print(profile.summary())
    print(f"measured in {elapsed:.1f}s ({budget.name} budget), "
          f"saved to {path}")
    return 0


def _cmd_show(args: argparse.Namespace) -> int:
    try:
        profile = cache.load_profile(path=args.path)
    except (InvalidValue, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(profile.summary())
    return 0


def _cmd_scale(args: argparse.Namespace) -> int:
    try:
        profile = cache.load_profile(path=args.path)
    except (InvalidValue, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    try:
        nodes = tuple(int(tok) for tok in args.nodes.split(",") if tok)
    except ValueError:
        print(f"error: --nodes must be a comma-separated list of ints, "
              f"got {args.nodes!r}", file=sys.stderr)
        return 1
    from repro.tune import scale

    start = time.perf_counter()
    comp = scale.run_scale(
        profile, preset=args.preset, local_nx=args.local_nx,
        iterations=args.iters, mg_levels=args.mg_levels, nodes=nodes,
    )
    print(scale.render(comp))
    print(f"\nswept {len(nodes)} node counts twice in "
          f"{time.perf_counter() - start:.1f}s")
    return 0


def _cmd_clear(args: argparse.Namespace) -> int:
    path = args.path or cache.profile_path()
    if cache.clear(path=args.path):
        print(f"removed {path}")
    else:
        print(f"nothing cached at {path}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tune",
        description="Measure this machine and persist a MachineProfile "
                    "for the modelling pipeline.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_measure = sub.add_parser(
        "measure", help="run the micro-benchmark suite and save the profile")
    p_measure.add_argument("--fast", action="store_true",
                           help="the CI budget (completes in well under "
                                "a minute)")
    p_measure.add_argument("--smoke", action="store_true",
                           help="the seconds-long test budget (numbers are "
                                "valid but noisy)")
    p_measure.add_argument("--name", default=None,
                           help="profile name (default: hostname)")
    p_measure.add_argument("--out", default=None,
                           help="write here instead of the cache location")
    p_measure.set_defaults(func=_cmd_measure)

    p_show = sub.add_parser("show", help="print the cached profile")
    p_show.add_argument("--path", default=None,
                        help="read from here instead of the cache location")
    p_show.set_defaults(func=_cmd_show)

    p_scale = sub.add_parser(
        "scale",
        help="rerun the Figure 3 weak-scaling study on the measured "
             "profile vs the Table-II preset")
    p_scale.add_argument("--local-nx", type=int, default=16,
                         help="per-node grid edge (default 16; the paper "
                              "runs max-memory local problems)")
    p_scale.add_argument("--iters", type=int, default=2,
                         help="CG iterations per run (default 2)")
    p_scale.add_argument("--mg-levels", type=int, default=4)
    p_scale.add_argument("--nodes", default="2,3,4,5,6,7",
                         help="comma-separated node counts "
                              "(default 2,3,4,5,6,7)")
    p_scale.add_argument("--preset", choices=("arm", "x86"), default="arm",
                         help="the Table-II baseline to compare against")
    p_scale.add_argument("--path", default=None,
                         help="read the profile from here instead of the "
                              "cache location")
    p_scale.set_defaults(func=_cmd_scale)

    p_clear = sub.add_parser("clear", help="delete the cached profile")
    p_clear.add_argument("--path", default=None,
                         help="delete this file instead of the cache "
                              "location")
    p_clear.set_defaults(func=_cmd_clear)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
