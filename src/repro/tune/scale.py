"""The weak-scaling sweep on a measured profile (``repro.tune scale``).

The ROADMAP's open item: rerun the Figure 3 weak-scaling study —
per-node problem size fixed, node count growing — with the BSP node
class priced by this machine's measured :class:`MachineProfile`
(:meth:`BSPMachine.from_profile`: STREAM-triad memory bandwidth, fitted
``g``/``L``, measured overlap efficiency) and put it side by side with
the paper's Table-II preset, so the datasheet-vs-measurement gap is a
table instead of a guess.

Both sweeps run the identical simulated backends on identical problems
(``repro.experiments.fig3``); only the machine pricing differs, which
is exactly the claim the comparison isolates.  The shape claims (Ref
weak-scales, ALP grows linearly) are evaluated under both machines —
they are *shape* claims and should survive any realistic pricing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.dist.bsp import ARM_CLUSTER_NODE, X86_NODE, BSPMachine
from repro.tune.profile import MachineProfile
from repro.util.errors import InvalidValue

#: Table-II node classes selectable as the comparison baseline.
PRESETS = {"arm": ARM_CLUSTER_NODE, "x86": X86_NODE}


@dataclass
class ScaleComparison:
    """One weak-scaling study priced twice: preset vs measured profile."""

    profile: MachineProfile
    preset_machine: BSPMachine
    measured_machine: BSPMachine
    preset: "Fig3Result"          # noqa: F821 - repro.experiments.fig3
    measured: "Fig3Result"        # noqa: F821


def run_scale(profile: MachineProfile, preset: str = "arm",
              local_nx: int = 16, iterations: int = 2,
              mg_levels: int = 4,
              nodes: Tuple[int, ...] = (2, 3, 4, 5, 6, 7)
              ) -> ScaleComparison:
    """Run the Figure 3 study under the preset and the measured machine."""
    from repro.experiments import fig3

    if preset not in PRESETS:
        raise InvalidValue(
            f"unknown preset {preset!r}; expected one of {tuple(PRESETS)}"
        )
    preset_machine = PRESETS[preset]
    measured_machine = BSPMachine.from_profile(profile)
    return ScaleComparison(
        profile=profile,
        preset_machine=preset_machine,
        measured_machine=measured_machine,
        preset=fig3.run(local_nx=local_nx, iterations=iterations,
                        mg_levels=mg_levels, nodes=nodes,
                        machine=preset_machine),
        measured=fig3.run(local_nx=local_nx, iterations=iterations,
                          mg_levels=mg_levels, nodes=nodes,
                          machine=measured_machine),
    )


def render(comp: ScaleComparison) -> str:
    """The comparison table plus both machines' shape claims."""
    from repro.experiments.common import format_table

    pre, mea = comp.preset, comp.measured
    table = format_table(
        ["nodes", "n",
         f"ALP@{comp.preset_machine.name} (s)",
         f"Ref@{comp.preset_machine.name} (s)",
         "ALP@profile (s)", "Ref@profile (s)", "Ref profile/preset"],
        [
            (p, n, pa, pr, ma, mr, mr / pr if pr else float("nan"))
            for p, n, pa, pr, ma, mr in zip(
                pre.nodes, pre.ns, pre.alp_seconds, pre.ref_seconds,
                mea.alp_seconds, mea.ref_seconds,
            )
        ],
    )
    lines = [
        f"Weak scaling (local grid {pre.local_nx}^3/node, "
        f"{pre.iterations} iters) — Table-II preset "
        f"{comp.preset_machine.name!r} vs measured profile "
        f"{comp.profile.name!r}",
        table,
        "",
        f"measured machine: mem {comp.measured_machine.mem_bandwidth / 1e9:.2f} GB/s, "
        f"net {comp.measured_machine.net_bandwidth / 1e9:.2f} GB/s, "
        f"L {comp.measured_machine.latency * 1e6:.2f} us, "
        f"overlap eff {comp.measured_machine.overlap_efficiency:.2f}",
    ]
    for tag, result in (("preset", pre), ("profile", mea)):
        claims = result.shape_claims()
        lines.append(f"shape claims ({tag}):")
        lines.extend(
            f"  [{'ok' if v else 'FAIL'}] {k}" for k, v in claims.items()
        )
    return "\n".join(lines)
