"""Model-driven substrate selection: measured rates instead of thresholds.

The structure heuristic in :mod:`repro.graphblas.substrate.registry`
encodes *assumed* format strengths as hand-tuned thresholds.  This
module replaces the assumption with arithmetic over a measured
:class:`~repro.tune.profile.MachineProfile`:

1. classify the matrix's :class:`MatrixProfile` onto the shape grid the
   SpMV probes covered (``uniform`` / ``highcv`` / ``dense``);
2. predict each candidate provider's SpMV seconds as
   ``useful_bytes / measured_rate(fmt, shape)``, where ``useful_bytes``
   is the csr-equivalent stream ``nnz*16 + nrows*16`` (the same
   normalisation the probes used, so padding-heavy formats are charged
   through their measured rate, not through a guessed padding model);
3. pick the cheapest candidate.

Structural *guards* stay: tiny matrices never amortise a format
conversion regardless of steady-state rates, and a single outlier
megarow can explode blocked/SELL-C-σ storage in ways no steady-state
rate captures — those remain hard gates, as in the heuristic.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.graphblas.substrate.base import MatrixProfile
from repro.tune.profile import SHAPE_CLASSES, MachineProfile

#: Formats whose probes the shape grid covers; anything else is priced
#: via the profile's neutral fallback (triad bandwidth).
_CSR = "csr"
_SELLCS = "sellcs"
_BLOCKED = "blocked"


def shape_class(p: MatrixProfile) -> str:
    """Map a matrix structure onto the probed shape grid."""
    if p.density > 0.25:
        return "dense"
    if p.cv_row_nnz <= 0.25 and p.mean_row_nnz >= 8.0:
        return "uniform"
    return "highcv"


def useful_bytes(p: MatrixProfile) -> float:
    """The csr-equivalent SpMV stream: the probes' rate normaliser."""
    return float(p.nnz) * 16.0 + float(p.nrows) * 16.0


def candidates(p: MatrixProfile,
               names: Iterable[str]) -> Dict[str, bool]:
    """Which registered providers are structurally safe for ``p``.

    The gates mirror the heuristic's pathology bounds: blocked-dense
    pads every block to the widest row (memory explodes on skew unless
    the matrix is genuinely dense), and SELL-C-σ degenerates to a
    scalar loop past extreme skew.  CSR is always safe.
    """
    mean = p.mean_row_nnz or 1.0
    out: Dict[str, bool] = {}
    for name in names:
        if name == _SELLCS:
            out[name] = p.max_row_nnz <= 16.0 * mean
        elif name == _BLOCKED:
            out[name] = (p.density > 0.25
                         or p.max_row_nnz <= 4.0 * mean)
        else:
            out[name] = True
    return out


def predict_seconds(p: MatrixProfile, profile: MachineProfile,
                    names: Iterable[str]) -> Dict[str, float]:
    """Predicted SpMV seconds per provider from the measured rates."""
    shape = shape_class(p)
    nbytes = useful_bytes(p)
    return {name: nbytes / profile.spmv_rate(name, shape)
            for name in names}


def choose_model(p: MatrixProfile, profile: MachineProfile,
                 names: Iterable[str],
                 min_size: int = 0) -> str:
    """The cheapest structurally-safe provider under the profile.

    ``min_size`` is the registry's conversion-amortisation floor
    (``AUTO_MIN_SIZE``): below it the answer is CSR no matter what the
    steady-state rates say, because selection happens at construction
    time and small operators never pay back a format build.
    """
    names = list(names)
    if _CSR not in names:
        names = [_CSR] + names
    if p.nrows < min_size or p.nnz == 0:
        return _CSR
    safe = candidates(p, names)
    costs = predict_seconds(p, profile, names)
    best = _CSR
    for name in names:
        if safe.get(name) and costs[name] < costs[best]:
            best = name
    return best


__all__ = [
    "SHAPE_CLASSES",
    "shape_class",
    "useful_bytes",
    "candidates",
    "predict_seconds",
    "choose_model",
]
