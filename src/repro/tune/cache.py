"""Profile persistence: the ``REPRO_TUNE_CACHE`` directory.

One machine profile lives at ``$REPRO_TUNE_CACHE/machine_profile.json``
(default ``~/.cache/repro/tune``).  :func:`current_profile` is the
soft accessor every automatic consumer uses — the substrate registry's
``model`` selection mode, the driver's ``--profile`` report — and it
*never raises*: a missing, corrupt, schema-incompatible or stale file
simply yields ``None`` so callers fall back to their uncalibrated
behaviour without warning noise.  :func:`load_profile` is the strict
accessor for explicit CLI/tooling use and raises with a real message.

Staleness: a profile older than ``max_age_seconds`` (argument, or the
``REPRO_TUNE_MAX_AGE`` environment variable) is treated as absent by
:func:`current_profile` — machines drift, and a months-old measurement
silently mis-pricing every run is worse than no measurement.
"""

from __future__ import annotations

import os
import time
from typing import Optional, Tuple

from repro.tune.profile import MachineProfile
from repro.util.errors import InvalidValue

#: Environment variable pointing at the cache directory.
ENV_VAR = "REPRO_TUNE_CACHE"

#: Optional staleness bound (seconds) applied by :func:`current_profile`.
MAX_AGE_ENV_VAR = "REPRO_TUNE_MAX_AGE"

#: File name of the cached profile inside the cache directory.
PROFILE_FILENAME = "machine_profile.json"

# memo for current_profile(): (path, mtime_ns, size) -> MachineProfile
_memo_key: Optional[Tuple[str, int, int]] = None
_memo_profile: Optional[MachineProfile] = None


def cache_dir() -> str:
    """The active cache directory (not created until a save)."""
    env = os.environ.get(ENV_VAR, "").strip()
    if env:
        return env
    return os.path.join(os.path.expanduser("~"), ".cache", "repro", "tune")


def profile_path() -> str:
    """Where the cached profile lives under the active cache dir."""
    return os.path.join(cache_dir(), PROFILE_FILENAME)


def invalidate() -> None:
    """Drop the in-process memo (after an external write/clear)."""
    global _memo_key, _memo_profile
    _memo_key = None
    _memo_profile = None


def save_profile(profile: MachineProfile,
                 path: Optional[str] = None) -> str:
    """Persist ``profile`` to ``path`` (default: the cache location)."""
    if path is None:
        path = profile_path()
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    profile.save(path)
    invalidate()
    return path


def load_profile(path: Optional[str] = None) -> MachineProfile:
    """Load a profile, raising on absence or schema mismatch."""
    if path is None:
        path = profile_path()
    if not os.path.exists(path):
        raise InvalidValue(
            f"no machine profile at {path}; run "
            f"`python -m repro.tune measure` first"
        )
    return MachineProfile.load(path)


def clear(path: Optional[str] = None) -> bool:
    """Remove the cached profile; True if a file was deleted."""
    if path is None:
        path = profile_path()
    invalidate()
    if os.path.exists(path):
        os.remove(path)
        return True
    return False


def _max_age(max_age_seconds: Optional[float]) -> Optional[float]:
    if max_age_seconds is not None:
        return max_age_seconds
    raw = os.environ.get(MAX_AGE_ENV_VAR, "").strip()
    if not raw:
        return None
    try:
        return float(raw)
    except ValueError:
        return None    # a malformed bound must not break the soft path


def current_profile(
    max_age_seconds: Optional[float] = None,
) -> Optional[MachineProfile]:
    """The cached profile, or ``None`` — never raises.

    Memoised per (path, mtime, size) so per-matrix substrate selection
    does not re-read and re-parse the JSON; the memo invalidates itself
    when the file changes or ``REPRO_TUNE_CACHE`` points elsewhere.
    """
    global _memo_key, _memo_profile
    path = profile_path()
    try:
        stat = os.stat(path)
    except OSError:
        return None
    key = (path, stat.st_mtime_ns, stat.st_size)
    if key == _memo_key:
        profile = _memo_profile
    else:
        try:
            profile = MachineProfile.load(path)
        except (InvalidValue, OSError):
            # memoise the failure too: an unreadable file must not be
            # re-parsed on every matrix construction
            profile = None
        _memo_key = key
        _memo_profile = profile
    if profile is None:
        return None
    bound = _max_age(max_age_seconds)
    if bound is not None and time.time() - profile.created_at > bound:
        return None
    return profile
