"""The persisted, versioned record of a measured machine.

A :class:`MachineProfile` is what the micro-benchmark suite
(:mod:`repro.tune.microbench`) produces and what every downstream
consumer reads: ``BSPMachine.from_profile`` prices simulated
distributed runs with the *measured* memory bandwidth, fitted BSP
``g``/``L`` and measured overlap efficiency instead of the Table II
datasheet constants; ``MachineSpec.from_profile`` feeds the
shared-memory scaling model; and the substrate registry's ``model``
selection mode divides a matrix's byte stream by the profile's
measured per-format rates.

Serialisation is canonical JSON — keys sorted, two-space indent, one
trailing newline — so ``save → load → save`` is byte-identical (the
round-trip contract ``tests/test_tune.py`` enforces), and the file
carries an explicit ``schema_version`` so a profile written by an
incompatible release is rejected cleanly rather than misread.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Dict, Optional

from repro.util.errors import InvalidValue

#: Bump on any incompatible change to the on-disk layout.
#: v2 added the thread-scaling fields (``half_sat_threads``,
#: ``thread_rates``) that size the ``REPRO_THREADS=auto`` lane.
SCHEMA_VERSION = 2

#: The matrix-shape grid the SpMV probes cover (and the classes the
#: model-driven selection maps a :class:`MatrixProfile` onto).
SHAPE_CLASSES = ("uniform", "highcv", "dense")


class ProfileVersionError(InvalidValue):
    """A profile file's schema version does not match this release."""


@dataclass(frozen=True)
class MachineProfile:
    """Measured rates of one machine, as captured by ``repro.tune``.

    Rates are *effective* bytes/second over the csr-equivalent byte
    stream of the probed kernel (``nnz*16 + nrows*16`` for SpMV), so
    ``useful_bytes / rate`` predicts seconds regardless of how much
    padding a format physically streams.
    """

    name: str
    created_at: float               # unix seconds, stamped at measure time
    host: str
    cores: int
    triad_bandwidth: float          # bytes/s, STREAM-triad
    #: {provider name: {shape class: effective bytes/s}}
    spmv_rates: Dict[str, Dict[str, float]]
    #: {provider name: effective bytes/s of a full RBGS half-sweep}
    rbgs_rates: Dict[str, float]
    net_bandwidth: float            # fitted BSP g, bytes/s
    latency: float                  # fitted BSP L, seconds
    overlap_efficiency: float       # measured compute-under-copy hiding
    fast: bool = False              # produced under the --fast CI budget
    #: smallest thread count reaching half the saturated parallel SpMV
    #: rate — what ``REPRO_THREADS=auto`` resolves to (1 = stay serial)
    half_sat_threads: int = 1
    #: {kernel: {thread count (str, JSON-keyable): effective bytes/s}}
    #: from the thread-sweep probe; "1" is the serial baseline
    thread_rates: Dict[str, Dict[str, float]] = field(default_factory=dict)
    schema_version: int = field(default=SCHEMA_VERSION)

    def __post_init__(self):
        if self.triad_bandwidth <= 0:
            raise InvalidValue(
                f"triad bandwidth must be positive, got {self.triad_bandwidth}"
            )
        if self.net_bandwidth <= 0 or self.latency < 0:
            raise InvalidValue(
                f"need net_bandwidth > 0 and latency >= 0, got "
                f"g={self.net_bandwidth}, L={self.latency}"
            )
        if not (0.0 <= self.overlap_efficiency <= 1.0):
            raise InvalidValue(
                f"overlap efficiency must lie in [0, 1], "
                f"got {self.overlap_efficiency}"
            )
        if self.half_sat_threads < 1:
            raise InvalidValue(
                f"half_sat_threads must be >= 1, got {self.half_sat_threads}"
            )

    # --- rate lookups -------------------------------------------------------
    def spmv_rate(self, fmt: str, shape_class: Optional[str] = None) -> float:
        """Effective SpMV bytes/s of ``fmt`` on a shape class.

        Falls back gracefully: an unprobed shape class gets the
        geometric mean of the format's probed classes; an unprobed
        format gets the triad bandwidth (the bandwidth-bound ceiling),
        so a newly registered provider is priced neutrally rather than
        crashing selection.
        """
        per_shape = self.spmv_rates.get(fmt)
        if not per_shape:
            return self.triad_bandwidth
        if shape_class is not None and shape_class in per_shape:
            return per_shape[shape_class]
        prod, count = 1.0, 0
        for rate in per_shape.values():
            if rate > 0:
                prod *= rate
                count += 1
        return prod ** (1.0 / count) if count else self.triad_bandwidth

    def rbgs_rate(self, fmt: str) -> float:
        return self.rbgs_rates.get(fmt, self.triad_bandwidth)

    def thread_rate(self, kernel: str, nthreads: int) -> Optional[float]:
        """Measured effective bytes/s of ``kernel`` at ``nthreads``
        (``None`` when that point was not probed)."""
        return self.thread_rates.get(kernel, {}).get(str(nthreads))

    def thread_speedup(self, kernel: str = "spmv") -> float:
        """Measured parallel speedup at the fitted ``half_sat_threads``
        over the serial baseline (1.0 when unprobed or serial-only)."""
        serial = self.thread_rate(kernel, 1)
        fitted = self.thread_rate(kernel, self.half_sat_threads)
        if not serial or not fitted:
            return 1.0
        return fitted / serial

    # --- serialisation ------------------------------------------------------
    def to_dict(self) -> Dict:
        return asdict(self)

    def dumps(self) -> str:
        """Canonical JSON text (sorted keys, stable layout, newline-
        terminated) — the byte-identical re-save contract."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_dict(cls, data: Dict) -> "MachineProfile":
        if not isinstance(data, dict):
            raise InvalidValue(f"profile data must be a mapping, got "
                               f"{type(data).__name__}")
        version = data.get("schema_version")
        if version != SCHEMA_VERSION:
            raise ProfileVersionError(
                f"profile schema version {version!r} does not match this "
                f"release's {SCHEMA_VERSION}; re-run "
                f"`python -m repro.tune measure`"
            )
        fields = {f for f in cls.__dataclass_fields__}
        unknown = set(data) - fields
        if unknown:
            raise InvalidValue(
                f"unknown profile keys: {', '.join(sorted(unknown))}"
            )
        missing = fields - set(data)
        if missing:
            raise InvalidValue(
                f"profile is missing keys: {', '.join(sorted(missing))}"
            )
        return cls(**data)

    @classmethod
    def loads(cls, text: str) -> "MachineProfile":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise InvalidValue(f"profile is not valid JSON: {exc}") from exc
        return cls.from_dict(data)

    def save(self, path: str) -> str:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.dumps())
        return path

    @classmethod
    def load(cls, path: str) -> "MachineProfile":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.loads(fh.read())

    # --- presentation -------------------------------------------------------
    def summary(self) -> str:
        lines = [
            f"MachineProfile {self.name!r} (schema v{self.schema_version}, "
            f"host {self.host}, {self.cores} cores"
            f"{', fast budget' if self.fast else ''})",
            f"  triad bandwidth   {self.triad_bandwidth / 1e9:.2f} GB/s",
            f"  BSP g (net)       {self.net_bandwidth / 1e9:.2f} GB/s",
            f"  BSP L (latency)   {self.latency * 1e6:.2f} us",
            f"  overlap efficiency {self.overlap_efficiency:.2f}",
            "  SpMV effective rates (GB/s):",
        ]
        for fmt in sorted(self.spmv_rates):
            per = self.spmv_rates[fmt]
            cells = ", ".join(
                f"{shape}={per[shape] / 1e9:.2f}"
                for shape in SHAPE_CLASSES if shape in per
            )
            lines.append(f"    {fmt:8s} {cells}")
        if self.rbgs_rates:
            cells = ", ".join(
                f"{fmt}={rate / 1e9:.2f}"
                for fmt, rate in sorted(self.rbgs_rates.items())
            )
            lines.append(f"  RBGS effective rates (GB/s): {cells}")
        lines.append(
            f"  half-saturation threads: {self.half_sat_threads} "
            f"(REPRO_THREADS=auto target, "
            f"x{self.thread_speedup():.2f} vs serial)"
        )
        for kernel in sorted(self.thread_rates):
            per = self.thread_rates[kernel]
            cells = ", ".join(
                f"{t}t={per[t] / 1e9:.2f}"
                for t in sorted(per, key=int)
            )
            lines.append(f"  thread scaling {kernel} (GB/s): {cells}")
        return "\n".join(lines)


def synthetic_profile(
    name: str = "synthetic",
    triad_bandwidth: float = 10e9,
    net_bandwidth: float = 1e9,
    latency: float = 10e-6,
    overlap_efficiency: float = 0.8,
    spmv_rates: Optional[Dict[str, Dict[str, float]]] = None,
    rbgs_rates: Optional[Dict[str, float]] = None,
    fast: bool = True,
    half_sat_threads: int = 1,
    thread_rates: Optional[Dict[str, Dict[str, float]]] = None,
) -> MachineProfile:
    """A hand-built profile for tests and documentation examples.

    The default per-format rates encode the relative strengths the
    structure heuristic assumes — blocked fastest on uniform/dense
    shapes, SELL-C-σ ahead on moderately varying rows, CSR the safe
    baseline — so model-driven selection with this profile reproduces
    the heuristic's choices on the reference shapes.
    """
    if spmv_rates is None:
        spmv_rates = {
            "csr": {"uniform": 4e9, "highcv": 4e9, "dense": 4e9},
            "sellcs": {"uniform": 5e9, "highcv": 6e9, "dense": 4.5e9},
            "blocked": {"uniform": 7e9, "highcv": 2e9, "dense": 8e9},
        }
    if rbgs_rates is None:
        rbgs_rates = {"csr": 3e9, "sellcs": 4e9, "blocked": 5e9}
    return MachineProfile(
        name=name,
        created_at=0.0,
        host="synthetic",
        cores=1,
        triad_bandwidth=triad_bandwidth,
        spmv_rates=spmv_rates,
        rbgs_rates=rbgs_rates,
        net_bandwidth=net_bandwidth,
        latency=latency,
        overlap_efficiency=overlap_efficiency,
        fast=fast,
        half_sat_threads=half_sat_threads,
        thread_rates=thread_rates if thread_rates is not None else {},
    )
