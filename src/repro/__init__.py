"""repro — HPCG on GraphBLAS, reproduced in Python.

This package reproduces *"Effective implementation of the High Performance
Conjugate Gradient benchmark on GraphBLAS"* (Scolari & Yzelman, 2023,
arXiv:2304.08232).  It contains:

``repro.graphblas``
    A from-scratch GraphBLAS implementation (opaque containers, algebraic
    operator/monoid/semiring objects, descriptors, and the standard
    operation set) playing the role of ALP/GraphBLAS in the paper.
``repro.grid`` / ``repro.hpcg``
    The HPCG benchmark expressed on top of the GraphBLAS API: problem
    generation, greedy colouring, the Red-Black Gauss-Seidel smoother,
    multigrid preconditioner, the CG solver, and an official-style driver.
``repro.ref``
    The comparison baseline ("Ref" in the paper): reference-HPCG-style
    kernels working directly on CSR storage, with the exact sequential
    symmetric Gauss-Seidel smoother.
``repro.dist``
    A simulated distributed-memory substrate: data partitions (1D
    block-cyclic for the ALP hybrid backend, geometric 3D for Ref),
    communication-volume tracking and a BSP cost model.
``repro.perf`` / ``repro.experiments``
    Machine models of the paper's two systems (Table II), the analytic
    shared-memory scaling model, and regenerators for Table I and
    Figures 1-7.

Quickstart::

    from repro.hpcg import run_hpcg
    result = run_hpcg(nx=16, ny=16, nz=16, max_iters=50)
    print(result.summary())
"""

from repro._version import __version__

__all__ = ["__version__"]
