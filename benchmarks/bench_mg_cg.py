"""End-to-end benchmarks: the V-cycle and full HPCG iterations, ALP vs Ref."""

import time

import numpy as np
import pytest

from repro import graphblas as grb
from repro.hpcg.cg import CGWorkspace, pcg
from repro.hpcg.multigrid import MGPreconditioner, build_hierarchy, mg_vcycle
from repro.hpcg.problem import generate_problem
from repro.ref.cg import ref_pcg
from repro.ref.multigrid import RefMGPreconditioner, build_ref_hierarchy, ref_mg_vcycle


@pytest.fixture(scope="module")
def hierarchies(problem16):
    return (
        build_hierarchy(problem16, levels=4),
        build_ref_hierarchy(problem16, levels=4),
    )


def bench_vcycle_alp(benchmark, problem16, hierarchies):
    top, _ = hierarchies
    z = grb.Vector.dense(problem16.n, 0.0)

    def run():
        z.fill(0.0)
        mg_vcycle(top, z, problem16.b)

    benchmark(run)


def bench_vcycle_ref(benchmark, problem16, hierarchies):
    _, top = hierarchies
    z = np.zeros(problem16.n)
    b = problem16.b.to_dense()

    def run():
        z.fill(0.0)
        ref_mg_vcycle(top, z, b)

    benchmark(run)


def bench_hpcg_iterations_alp(benchmark, problem16, hierarchies):
    top, _ = hierarchies
    precond = MGPreconditioner(top)

    def run():
        x = problem16.x0.dup()
        return pcg(problem16.A, problem16.b, x, preconditioner=precond,
                   max_iters=3)

    result = benchmark(run)
    assert result.residuals[-1] < result.residuals[0]


def bench_hpcg_iterations_ref(benchmark, problem16, hierarchies):
    _, top = hierarchies
    precond = RefMGPreconditioner(top)
    A = problem16.A.to_scipy(copy=False)
    b = problem16.b.to_dense()

    def run():
        x = np.zeros(problem16.n)
        return ref_pcg(A, b, x, preconditioner=precond, max_iters=3)

    result = benchmark(run)
    assert result.residuals[-1] < result.residuals[0]


def bench_fused_vs_reference_driver(problem16, bench_json, request):
    """The PR-5 headline: measured wall-clock of the full CG+MG driver,
    fused fast path (plus the jit lane where numba is installed) vs the
    reference Listing 2/3 transcription — byte-identical residual
    histories, asserted strictly faster, ratio recorded as a named
    ``--bench-json`` metric (``fused_speedup``)."""
    hierarchies = {
        "fused": build_hierarchy(problem16, levels=4, fused=True),
        "reference": build_hierarchy(problem16, levels=4, fused=False),
    }
    workspace = CGWorkspace(problem16.n)

    def solve(tag):
        x = problem16.x0.dup()
        return pcg(problem16.A, problem16.b, x,
                   preconditioner=MGPreconditioner(hierarchies[tag]),
                   max_iters=25, workspace=workspace)

    # byte-identical residual histories (the acceptance criterion)
    assert solve("fused").residuals == solve("reference").residuals

    seconds = {}
    for tag in hierarchies:
        solve(tag)                                   # warm caches
        best = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            solve(tag)
            best = min(best, time.perf_counter() - t0)
        seconds[tag] = best

    ratio = seconds["reference"] / seconds["fused"]
    bench_json.record(
        request.node.nodeid,
        fused_seconds=seconds["fused"],
        reference_seconds=seconds["reference"],
        fused_speedup=ratio,
        jit_lane=grb.substrate.jit.available(),
    )
    assert ratio > 1.0, seconds


def bench_problem_generation(benchmark):
    """HPCG's input-generation kernel (Section II-B)."""
    problem = benchmark(generate_problem, 16)
    assert problem.A.nvals > 0


def bench_hierarchy_setup(benchmark, problem16):
    """Colouring + coarse operators + restriction matrices (setup phase)."""
    top = benchmark(build_hierarchy, problem16, 4)
    assert len(top.levels()) == 4
