"""End-to-end benchmarks: the V-cycle and full HPCG iterations, ALP vs Ref."""

import numpy as np
import pytest

from repro import graphblas as grb
from repro.hpcg.cg import pcg
from repro.hpcg.multigrid import MGPreconditioner, build_hierarchy, mg_vcycle
from repro.hpcg.problem import generate_problem
from repro.ref.cg import ref_pcg
from repro.ref.multigrid import RefMGPreconditioner, build_ref_hierarchy, ref_mg_vcycle


@pytest.fixture(scope="module")
def hierarchies(problem16):
    return (
        build_hierarchy(problem16, levels=4),
        build_ref_hierarchy(problem16, levels=4),
    )


def bench_vcycle_alp(benchmark, problem16, hierarchies):
    top, _ = hierarchies
    z = grb.Vector.dense(problem16.n, 0.0)

    def run():
        z.fill(0.0)
        mg_vcycle(top, z, problem16.b)

    benchmark(run)


def bench_vcycle_ref(benchmark, problem16, hierarchies):
    _, top = hierarchies
    z = np.zeros(problem16.n)
    b = problem16.b.to_dense()

    def run():
        z.fill(0.0)
        ref_mg_vcycle(top, z, b)

    benchmark(run)


def bench_hpcg_iterations_alp(benchmark, problem16, hierarchies):
    top, _ = hierarchies
    precond = MGPreconditioner(top)

    def run():
        x = problem16.x0.dup()
        return pcg(problem16.A, problem16.b, x, preconditioner=precond,
                   max_iters=3)

    result = benchmark(run)
    assert result.residuals[-1] < result.residuals[0]


def bench_hpcg_iterations_ref(benchmark, problem16, hierarchies):
    _, top = hierarchies
    precond = RefMGPreconditioner(top)
    A = problem16.A.to_scipy(copy=False)
    b = problem16.b.to_dense()

    def run():
        x = np.zeros(problem16.n)
        return ref_pcg(A, b, x, preconditioner=precond, max_iters=3)

    result = benchmark(run)
    assert result.residuals[-1] < result.residuals[0]


def bench_problem_generation(benchmark):
    """HPCG's input-generation kernel (Section II-B)."""
    problem = benchmark(generate_problem, 16)
    assert problem.A.nvals > 0


def bench_hierarchy_setup(benchmark, problem16):
    """Colouring + coarse operators + restriction matrices (setup phase)."""
    top = benchmark(build_hierarchy, problem16, 4)
    assert len(top.levels()) == 4
