"""Regenerates the convergence-equivalence table (Section V preamble).

Asserts what makes the paper's time comparisons legal: every
implementation variant (GraphBLAS, raw-CSR, and all three simulated
distributed backends) produces the same residual history to machine
precision, while the SYMGS-vs-RBGS smoother swap changes convergence
only mildly.
"""

from repro.experiments import convergence


def bench_convergence_equivalence(benchmark):
    result = benchmark.pedantic(
        convergence.run, kwargs={"nx": 8, "iterations": 8},
        rounds=1, iterations=1,
    )
    claims = result.shape_claims()
    assert all(claims.values()), claims
    spread = result.max_relative_spread(
        ["alp", "ref", "dist-1d", "dist-ref", "dist-2d"]
    )
    assert spread < 1e-12
    print()
    print(convergence.render(result))
