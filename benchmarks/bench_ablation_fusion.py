"""Ablation: the fused RBGS colour step (nonblocking ALP, paper ref. [32]).

Wall-clock comparison of the blocking mxv+eWiseLambda pair against the
fused extension, plus the exact memory-traffic delta from the event log.
"""

import numpy as np
import pytest

from repro import graphblas as grb
from repro.experiments.ablations import fusion_ablation
from repro.graphblas.fused import FusedRBGSSmoother
from repro.hpcg.coloring import color_masks, lattice_coloring
from repro.hpcg.smoothers import RBGSSmoother


@pytest.fixture(scope="module")
def setup(problem16, rhs16):
    masks = color_masks(lattice_coloring(problem16.grid))
    return problem16, masks, grb.Vector.from_dense(rhs16)


def bench_rbgs_unfused(benchmark, setup):
    problem, masks, r = setup
    smoother = RBGSSmoother(problem.A, problem.A_diag, masks)
    z = grb.Vector.dense(problem.n, 0.0)
    benchmark(smoother.smooth, z, r)


def bench_rbgs_fused(benchmark, setup):
    problem, masks, r = setup
    smoother = FusedRBGSSmoother(problem.A, problem.A_diag, masks)
    z = grb.Vector.dense(problem.n, 0.0)
    benchmark(smoother.smooth, z, r)


def bench_fusion_traffic_delta(benchmark):
    result = benchmark.pedantic(fusion_ablation, kwargs={"nx": 16},
                                rounds=1, iterations=1)
    assert result.identical_result
    assert result.fused_bytes < result.unfused_bytes
    print(f"\nfusion saves {result.savings:.1%} of memory traffic "
          f"({result.unfused_bytes} -> {result.fused_bytes} bytes)")
