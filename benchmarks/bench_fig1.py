"""Regenerates paper Figure 1 (ARM strong scaling) and asserts its shape."""

from repro.experiments import fig1
from repro.hpcg.problem import generate_problem
from repro.perf import collect_op_stream


def bench_fig1_regeneration(benchmark, problem16):
    stream = collect_op_stream(problem16, mg_levels=4, iterations=3)
    result = benchmark.pedantic(
        fig1.run, kwargs={"stream": stream}, rounds=1, iterations=1
    )
    claims = result.shape_claims()
    failures = [k for k, v in claims.items()
                if not k.startswith("_") and not v]
    assert not failures, failures
    print()
    print(fig1.render(result))
