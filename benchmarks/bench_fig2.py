"""Regenerates paper Figure 2 (x86 strong scaling) and asserts its shape."""

from repro.experiments import fig2
from repro.perf import collect_op_stream


def bench_fig2_regeneration(benchmark, problem16):
    stream = collect_op_stream(problem16, mg_levels=4, iterations=3)
    result = benchmark.pedantic(
        fig2.run, kwargs={"stream": stream}, rounds=1, iterations=1
    )
    claims = result.shape_claims()
    assert all(claims.values()), claims
    print()
    print(fig2.render(result))
