"""Ablation: matrix distribution strategies (paper Section VII-B).

Communication volume of one fine-level mxv under the four schemes the
paper discusses: the current 1D block-cyclic, the 2D block alternative
(solution ii), a black-box BFS partition (solution iv), and the
geometric 3D partition only Ref can use.  Asserts the strict ordering
3D < BFS < 2D < 1D on the HPCG operator.
"""

from repro.experiments.ablations import distribution_ablation


def bench_distribution_ablation(benchmark):
    rows = benchmark.pedantic(
        distribution_ablation, kwargs={"local_nx": 12, "p": 4},
        rounds=1, iterations=1,
    )
    volumes = {r.scheme: r.max_send_values for r in rows}
    assert volumes["geometric 3D (Ref)"] < volumes["black-box BFS (solution iv)"]
    assert volumes["black-box BFS (solution iv)"] < volumes["2D block (solution ii)"]
    assert volumes["2D block (solution ii)"] < volumes["1D block-cyclic (ALP)"]
    print()
    for r in rows:
        print(f"  {r.scheme:<32} {r.max_send_values:>10} values  ({r.note})")
