"""Shared fixtures for the benchmark harness.

Every paper table/figure has a ``bench_*`` module here; each both
*times* the regeneration (pytest-benchmark) and *asserts* the paper's
shape claims, so ``pytest benchmarks/ --benchmark-only`` doubles as the
reproduction check.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.hpcg.problem import generate_problem


@pytest.fixture(scope="session")
def problem16():
    return generate_problem(16)


@pytest.fixture(scope="session")
def problem8():
    return generate_problem(8)


@pytest.fixture(scope="session")
def rhs16(problem16):
    rng = np.random.default_rng(42)
    return rng.standard_normal(problem16.n)
