"""Shared fixtures for the benchmark harness.

Every paper table/figure has a ``bench_*`` module here; each both
*times* the regeneration (pytest-benchmark) and *asserts* the paper's
shape claims, so ``pytest benchmarks/ --benchmark-only`` doubles as the
reproduction check.

``--bench-json PATH`` starts the perf trajectory: any bench run dumps
per-bench wall-clock (and whatever named metrics a bench records via
the :func:`bench_json` fixture — per-format priced bytes, hidden comm
seconds, ...) as machine-readable JSON, so ``BENCH_*.json`` artifacts
can be produced from plain pytest without extra tooling.
"""

from __future__ import annotations

import json
import os
import platform
import time
from typing import Dict, Optional

import numpy as np
import pytest

from repro.hpcg.problem import generate_problem


@pytest.fixture(scope="session", autouse=True)
def _isolated_tune_cache(tmp_path_factory):
    """Keep benches hermetic: unpinned simulated runs pull the cached
    machine profile's measured overlap efficiency, and bench_halo makes
    hard assertions on overlap behaviour that a developer's global
    cache (a legitimately-measured 0.0) would break.  An explicit
    ``REPRO_TUNE_CACHE`` is honoured, as in ``tests/conftest.py``.
    """
    from repro.tune import cache as tune_cache

    if os.environ.get(tune_cache.ENV_VAR, "").strip():
        yield
        return
    os.environ[tune_cache.ENV_VAR] = str(tmp_path_factory.mktemp("tune-cache"))
    tune_cache.invalidate()
    try:
        yield
    finally:
        os.environ.pop(tune_cache.ENV_VAR, None)
        tune_cache.invalidate()


def pytest_addoption(parser):
    parser.addoption(
        "--bench-json",
        action="store",
        default=None,
        metavar="PATH",
        help="dump per-bench timings (and recorded metrics) as JSON",
    )


class BenchJsonCollector:
    """Accumulates per-bench durations and bench-recorded metrics.

    Inert when no ``--bench-json`` path was given — benches call
    :meth:`record` unconditionally and the data simply goes nowhere.
    """

    def __init__(self, path: Optional[str]):
        self.path = path
        self.benches: Dict[str, Dict] = {}
        self.metrics: Dict[str, Dict] = {}

    def record(self, nodeid: str, **metrics) -> None:
        """Attach named metric values to a bench (merged across calls)."""
        self.metrics.setdefault(nodeid, {}).update(metrics)

    def add_report(self, report) -> None:
        if report.when != "call":
            return
        self.benches[report.nodeid] = {
            "seconds": report.duration,
            "outcome": report.outcome,
        }

    def write(self) -> Optional[str]:
        if self.path is None:
            return None
        payload = {
            "created_at": time.time(),
            "host": platform.node() or "unknown",
            # core count gates the cross-host comparability of
            # parallel-speedup floors in check_trend.py
            "cores": os.cpu_count() or 1,
            "benches": self.benches,
            "metrics": self.metrics,
        }
        with open(self.path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        return self.path


def pytest_configure(config):
    config._bench_json = BenchJsonCollector(config.getoption("--bench-json"))


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    outcome = yield
    collector = getattr(item.config, "_bench_json", None)
    if collector is not None:
        collector.add_report(outcome.get_result())


def pytest_sessionfinish(session, exitstatus):
    collector = getattr(session.config, "_bench_json", None)
    if collector is not None:
        collector.write()


@pytest.fixture(scope="session")
def bench_json(request):
    """The JSON collector: ``bench_json.record(nodeid, metric=value)``."""
    return request.config._bench_json


@pytest.fixture(scope="session")
def problem16():
    return generate_problem(16)


@pytest.fixture(scope="session")
def problem8():
    return generate_problem(8)


@pytest.fixture(scope="session")
def rhs16(problem16):
    rng = np.random.default_rng(42)
    return rng.standard_normal(problem16.n)
