"""Kernel micro-benchmarks: ALP (GraphBLAS) vs Ref (raw CSR).

These quantify the abstraction overhead of the Python GraphBLAS layer
on the three CG kernels and the masked mxv that powers RBGS.
"""

import numpy as np
import pytest

from repro import graphblas as grb
from repro.hpcg.coloring import color_masks, lattice_coloring
from repro.ref.kernels import compute_dot, compute_spmv, compute_waxpby


@pytest.fixture(scope="module")
def vectors16(problem16):
    rng = np.random.default_rng(0)
    x = rng.standard_normal(problem16.n)
    return (
        grb.Vector.from_dense(x),
        grb.Vector.dense(problem16.n),
        x,
        np.zeros(problem16.n),
    )


def bench_spmv_alp(benchmark, problem16, vectors16):
    xg, yg, _, _ = vectors16
    benchmark(grb.mxv, yg, None, problem16.A, xg)
    np.testing.assert_allclose(
        yg.to_dense(), problem16.A.to_scipy() @ xg.to_dense()
    )


def bench_spmv_ref(benchmark, problem16, vectors16):
    _, _, xn, yn = vectors16
    A = problem16.A.to_scipy(copy=False)
    benchmark(compute_spmv, yn, A, xn)


def bench_spmv_transpose_descriptor(benchmark, problem16, vectors16):
    xg, yg, _, _ = vectors16
    benchmark(
        grb.mxv, yg, None, problem16.A, xg,
        desc=grb.descriptors.transpose_matrix,
    )


def bench_masked_mxv_one_color(benchmark, problem16, vectors16):
    """The RBGS inner operation: structural-masked mxv on 1/8 of rows."""
    xg, yg, _, _ = vectors16
    mask = color_masks(lattice_coloring(problem16.grid))[0]
    benchmark(
        grb.mxv, yg, mask, problem16.A, xg, desc=grb.descriptors.structural
    )


def bench_mxv_generic_semiring(benchmark, problem16, vectors16):
    """The fully generic gather/segment-reduce path (min-plus)."""
    xg, yg, _, _ = vectors16
    benchmark(grb.mxv, yg, None, problem16.A, xg, semiring=grb.min_plus)


def bench_dot_alp(benchmark, problem16, vectors16):
    xg, _, _, _ = vectors16
    result = benchmark(grb.dot, xg, xg)
    assert result > 0


def bench_dot_ref(benchmark, vectors16):
    _, _, xn, _ = vectors16
    benchmark(compute_dot, xn, xn)


def bench_waxpby_alp(benchmark, problem16, vectors16):
    xg, yg, _, _ = vectors16
    benchmark(grb.waxpby, yg, 2.0, xg, -1.0, xg)


def bench_waxpby_ref(benchmark, vectors16):
    _, _, xn, yn = vectors16
    benchmark(compute_waxpby, yn, 2.0, xn, -1.0, xn)
