"""Kernel micro-benchmarks: ALP (GraphBLAS) vs Ref (raw CSR).

These quantify the abstraction overhead of the Python GraphBLAS layer
on the three CG kernels and the masked mxv that powers RBGS, plus —
provider-parametrized, mirroring ``bench_substrate`` — the fused
smoother sweep against the reference transcription, so future PRs can
track the compiled lane per storage format.
"""

import numpy as np
import pytest

from repro import graphblas as grb
from repro.graphblas import substrate
from repro.hpcg.coloring import color_masks, lattice_coloring
from repro.hpcg.smoothers import RBGSSmoother
from repro.ref.kernels import compute_dot, compute_spmv, compute_waxpby


@pytest.fixture(scope="module")
def vectors16(problem16):
    rng = np.random.default_rng(0)
    x = rng.standard_normal(problem16.n)
    return (
        grb.Vector.from_dense(x),
        grb.Vector.dense(problem16.n),
        x,
        np.zeros(problem16.n),
    )


def bench_spmv_alp(benchmark, problem16, vectors16):
    xg, yg, _, _ = vectors16
    benchmark(grb.mxv, yg, None, problem16.A, xg)
    np.testing.assert_allclose(
        yg.to_dense(), problem16.A.to_scipy() @ xg.to_dense()
    )


def bench_spmv_ref(benchmark, problem16, vectors16):
    _, _, xn, yn = vectors16
    A = problem16.A.to_scipy(copy=False)
    benchmark(compute_spmv, yn, A, xn)


def bench_spmv_transpose_descriptor(benchmark, problem16, vectors16):
    xg, yg, _, _ = vectors16
    benchmark(
        grb.mxv, yg, None, problem16.A, xg,
        desc=grb.descriptors.transpose_matrix,
    )


def bench_masked_mxv_one_color(benchmark, problem16, vectors16):
    """The RBGS inner operation: structural-masked mxv on 1/8 of rows."""
    xg, yg, _, _ = vectors16
    mask = color_masks(lattice_coloring(problem16.grid))[0]
    benchmark(
        grb.mxv, yg, mask, problem16.A, xg, desc=grb.descriptors.structural
    )


def bench_mxv_generic_semiring(benchmark, problem16, vectors16):
    """The fully generic gather/segment-reduce path (min-plus)."""
    xg, yg, _, _ = vectors16
    benchmark(grb.mxv, yg, None, problem16.A, xg, semiring=grb.min_plus)


# ---------------------------------------------------------------------------
# provider-parametrized fused-sweep benches (the PR-5 fast path)
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def sweep_setup(problem16):
    rng = np.random.default_rng(7)
    return (
        color_masks(lattice_coloring(problem16.grid)),
        grb.Vector.from_dense(rng.standard_normal(problem16.n)),
    )


@pytest.mark.parametrize("name", substrate.available())
def bench_provider_fused_sweep(benchmark, name, problem16, sweep_setup):
    """One symmetric RBGS pass through the fused fast path, per format,
    bit-checked against the reference transcription."""
    masks, r = sweep_setup
    A = grb.Matrix.from_scipy(problem16.A.to_scipy(), substrate=name)
    smoother = RBGSSmoother(A, problem16.A_diag, masks, fused=True)
    assert smoother.fused_active
    z = grb.Vector.dense(problem16.n, 0.0)
    benchmark(smoother.smooth, z, r)
    ref = RBGSSmoother(A, problem16.A_diag, masks, fused=False)
    z_ref = grb.Vector.dense(problem16.n, 0.0)
    z_chk = grb.Vector.dense(problem16.n, 0.0)
    ref.smooth(z_ref, r)
    RBGSSmoother(A, problem16.A_diag, masks, fused=True).smooth(z_chk, r)
    assert np.array_equal(z_chk.to_dense(), z_ref.to_dense())


@pytest.mark.parametrize("name", substrate.available())
def bench_provider_reference_sweep(benchmark, name, problem16, sweep_setup):
    """The same pass through the reference Listing 2/3 transcription —
    the baseline the fused-vs-reference ratio is measured against."""
    masks, r = sweep_setup
    A = grb.Matrix.from_scipy(problem16.A.to_scipy(), substrate=name)
    smoother = RBGSSmoother(A, problem16.A_diag, masks, fused=False)
    z = grb.Vector.dense(problem16.n, 0.0)
    benchmark(smoother.smooth, z, r)


def bench_dot_alp(benchmark, problem16, vectors16):
    xg, _, _, _ = vectors16
    result = benchmark(grb.dot, xg, xg)
    assert result > 0


def bench_dot_ref(benchmark, vectors16):
    _, _, xn, _ = vectors16
    benchmark(compute_dot, xn, xn)


def bench_waxpby_alp(benchmark, problem16, vectors16):
    xg, yg, _, _ = vectors16
    benchmark(grb.waxpby, yg, 2.0, xg, -1.0, xg)


def bench_waxpby_ref(benchmark, vectors16):
    _, _, xn, yn = vectors16
    benchmark(compute_waxpby, yn, 2.0, xn, -1.0, xn)
