"""Thread-scaling bench: the parallel kernel lane vs its serial twin.

The PR-8 headline numbers:

* ``parallel_speedup`` — best-of wall-clock of the numba-free
  :class:`~repro.graphblas.substrate.threads.ChunkedSpmv` at the
  host's core count over the same kernel at one thread, bit-identical
  outputs asserted.  ``check_trend.py`` enforces the >= 1.0 floor only
  when the baseline artifact was produced on a host with the same
  (multi-)core count — a 1-core runner measures pool overhead with
  nothing to pay for it, so its number is informational.
* ``node_speedup`` — the hybrid dist path's *measured* node-local
  ratio (``execute_local=True``), with residual histories asserted
  byte-identical to the priced-only run.

Both rides on the ``--bench-json`` collector, which stamps the host's
``cores`` into the artifact for the gate.
"""

import os
import time

import numpy as np

from repro.dist.refdist import RefDistRun
from repro.graphblas.substrate.threads import ChunkedSpmv
from repro.hpcg.driver import run_hpcg


def _best_of(fn, repeats=5):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_parallel_spmv_speedup(problem16, bench_json, request):
    """Chunked parallel SpMV vs the one-thread baseline: bit-identical
    outputs, ratio recorded as the ``parallel_speedup`` metric."""
    cores = os.cpu_count() or 1
    nthreads = max(2, min(cores, 8))
    csr = problem16.A.to_scipy(copy=False).tocsr()
    x = np.random.default_rng(7).standard_normal(problem16.n)

    with ChunkedSpmv(csr, 1) as serial, ChunkedSpmv(csr, nthreads) as par:
        y_serial = serial(x).copy()
        y_parallel = par(x).copy()
        # the acceptance criterion: parallel-over-rows is bit-identical
        assert np.array_equal(y_serial, y_parallel)
        serial_s = _best_of(lambda: serial(x))
        parallel_s = _best_of(lambda: par(x))

    ratio = serial_s / parallel_s
    bench_json.record(
        request.node.nodeid,
        serial_seconds=serial_s,
        parallel_seconds=parallel_s,
        parallel_speedup=ratio,
        threads=nthreads,
        cores=cores,
    )
    # the >= 1.0 floor is check_trend's job, and only on a multi-core
    # host; here we only require the measurement to be sane
    assert ratio > 0.0


def bench_solver_thread_toggle_bit_identical(problem16, bench_json,
                                             request):
    """The full CG+MG driver under ``REPRO_THREADS=2`` vs the kill
    switch: byte-identical residual histories (the lane contract)."""
    saved = os.environ.get("REPRO_THREADS")
    histories = {}
    try:
        for tag, value in (("off", "0"), ("two", "2")):
            os.environ["REPRO_THREADS"] = value
            histories[tag] = run_hpcg(16, max_iters=10).cg.residuals
    finally:
        if saved is None:
            os.environ.pop("REPRO_THREADS", None)
        else:
            os.environ["REPRO_THREADS"] = saved
    assert histories["off"] == histories["two"]
    bench_json.record(request.node.nodeid, iterations=len(histories["off"]))


def bench_hybrid_dist_node_speedup(problem8, bench_json, request):
    """Hybrid node-local execution: measured speedup folded into BSP
    pricing, numerics untouched (residuals vs priced-only asserted)."""
    priced = RefDistRun(problem8, nprocs=4, mg_levels=2).run_cg(max_iters=8)
    hybrid = RefDistRun(problem8, nprocs=4, mg_levels=2,
                        execute_local=True,
                        node_threads=max(2, min(os.cpu_count() or 1, 4)),
                        ).run_cg(max_iters=8)
    assert hybrid.residuals == priced.residuals
    assert hybrid.executed_local and hybrid.node_speedup > 0.0
    bench_json.record(
        request.node.nodeid,
        node_speedup=hybrid.node_speedup,
        node_threads=hybrid.node_threads,
        hybrid_modelled_seconds=hybrid.modelled_seconds,
        priced_modelled_seconds=priced.modelled_seconds,
    )
