"""Benchmarks of the locally-executed distributed kernels.

These run the honest per-node versions (compressed local storage +
explicit halo exchange) and assert bit-equality with shared memory —
the halo-protocol soundness results of EXPERIMENTS.md.

The ``bench_overlap_*`` benches quantify the split-phase engine: how
much modelled RBGS wire time the async pipeline hides per backend, per
machine preset and per MG level, while asserting residuals stay
bit-identical to eager mode.
"""

import numpy as np
import pytest

from repro.dist import (
    ARM_CLUSTER_NODE,
    Grid3DPartition,
    HybridALPRun,
    RefDistRun,
    X86_NODE,
)
from repro.dist.comm import CommTracker
from repro.dist.halo import LocalRBGSExecutor, LocalSpmvExecutor
from repro.hpcg.coloring import lattice_coloring
from repro.ref.sgs import RefRBGS


@pytest.fixture(scope="module")
def setup(problem16):
    A = problem16.A.to_scipy(copy=False)
    part = Grid3DPartition(problem16.grid, 4)
    owners = part.owner(np.arange(problem16.n))
    colors = lattice_coloring(problem16.grid)
    rng = np.random.default_rng(1)
    return problem16, A, owners, colors, rng.standard_normal(problem16.n)


def bench_local_spmv_vs_global(benchmark, setup):
    problem, A, owners, _colors, x = setup
    ex = LocalSpmvExecutor(A, owners, 4)
    y = benchmark(ex.spmv, x)
    np.testing.assert_array_equal(y, A @ x)


def bench_local_rbgs_sweep(benchmark, setup):
    problem, A, owners, colors, r = setup
    ex = LocalRBGSExecutor(A, owners, 4, colors)

    def sweep():
        z = np.zeros(problem.n)
        ex.sweep(z, r)
        return z

    z = benchmark(sweep)
    z_ref = np.zeros(problem.n)
    RefRBGS(A, colors).forward(z_ref, r)
    np.testing.assert_array_equal(z, z_ref)


def bench_local_rbgs_setup(benchmark, setup):
    """Partition + local-matrix construction cost (the setup phase a
    domain-annotated GraphBLAS backend would pay once)."""
    problem, A, owners, colors, _r = setup
    ex = benchmark(LocalRBGSExecutor, A, owners, 4, colors)
    assert ex.ncolors == 8


def bench_local_rbgs_sweep_overlap(benchmark, setup):
    """The split-phase pipelined sweep: colour c's exchange posted
    behind colour c+1's interior update — still bit-identical."""
    problem, A, owners, colors, r = setup
    tracker = CommTracker(4)
    ex = LocalRBGSExecutor(A, owners, 4, colors, tracker=tracker,
                           comm_mode="overlap")

    def sweep():
        tracker.reset()
        z = np.zeros(problem.n)
        ex.sweep(z, r)
        return z

    z = benchmark(sweep)
    z_ref = np.zeros(problem.n)
    RefRBGS(A, colors).forward(z_ref, r)
    np.testing.assert_array_equal(z, z_ref)
    # seven of the eight per-colour exchanges overlapped a successor
    assert sum(1 for s in tracker.supersteps
               if s.overlapped_work > 0) == ex.ncolors - 1


def _rbgs_comm_seconds(res):
    rows = res.exposed_comm_breakdown()
    return (sum(r["full"] for r in rows),
            sum(r["exposed"] for r in rows))


def bench_overlap_rbgs_comm_win(benchmark, problem16, bench_json, request):
    """The headline number: modelled RBGS wire time hidden by the
    split-phase engine on the Table-II machine presets."""

    def run(machine, mode):
        return RefDistRun(problem16, nprocs=4, mg_levels=3,
                          machine=machine,
                          comm_mode=mode).run_cg(max_iters=3)

    benchmark(run, ARM_CLUSTER_NODE, "overlap")
    strictly_lower = []
    for machine in (X86_NODE, ARM_CLUSTER_NODE):
        eager = run(machine, "eager")
        over = run(machine, "overlap")
        # the pipeline must not change the numerics...
        np.testing.assert_array_equal(eager.residuals, over.residuals)
        full_e, exposed_e = _rbgs_comm_seconds(eager)
        full_o, exposed_o = _rbgs_comm_seconds(over)
        assert exposed_e == pytest.approx(full_e)    # eager hides nothing
        assert full_o == pytest.approx(full_e)       # same wire time...
        strictly_lower.append(exposed_o < full_o)    # ...less exposed
        bench_json.record(request.node.nodeid, **{
            f"{machine.name}/rbgs_full_seconds": full_o,
            f"{machine.name}/rbgs_exposed_seconds": exposed_o,
        })
    # ...and strictly lower modelled RBGS comm on a Table-II preset
    assert any(strictly_lower)


def bench_overlap_per_level_breakdown(benchmark, problem16):
    """Per-MG-level exposed vs hidden RBGS wire time (finer levels have
    more interior rows, hence more hiding headroom)."""
    res = benchmark(
        lambda: RefDistRun(problem16, nprocs=4, mg_levels=3,
                           comm_mode="overlap").run_cg(max_iters=2))
    rows = res.exposed_comm_breakdown()
    assert len(rows) == 3
    assert all(r["exposed"] <= r["full"] for r in rows)
    # the finest level genuinely hides wire time
    assert rows[0]["hidden"] > 0.0


def bench_overlap_backend_contrast(benchmark, problem16, bench_json,
                                   request):
    """Ref's surface halos overlap; ALP's opaque allgathers cannot —
    the modelled contrast the paper's §VI predicts."""

    def run():
        ref = RefDistRun(problem16, nprocs=4, mg_levels=2,
                         comm_mode="overlap").run_cg(max_iters=2)
        alp = HybridALPRun(problem16, nprocs=4, mg_levels=2,
                           comm_mode="overlap").run_cg(max_iters=2)
        return ref, alp

    ref, alp = benchmark(run)
    assert ref.hidden_comm_seconds > 0.0
    assert alp.hidden_comm_seconds == pytest.approx(0.0)
    bench_json.record(request.node.nodeid,
                      ref_hidden_comm_seconds=ref.hidden_comm_seconds,
                      alp_hidden_comm_seconds=alp.hidden_comm_seconds)
