"""Benchmarks of the locally-executed distributed kernels.

These run the honest per-node versions (compressed local storage +
explicit halo exchange) and assert bit-equality with shared memory —
the halo-protocol soundness results of EXPERIMENTS.md.
"""

import numpy as np
import pytest

from repro.dist import Grid3DPartition
from repro.dist.halo import LocalRBGSExecutor, LocalSpmvExecutor
from repro.hpcg.coloring import lattice_coloring
from repro.ref.sgs import RefRBGS


@pytest.fixture(scope="module")
def setup(problem16):
    A = problem16.A.to_scipy(copy=False)
    part = Grid3DPartition(problem16.grid, 4)
    owners = part.owner(np.arange(problem16.n))
    colors = lattice_coloring(problem16.grid)
    rng = np.random.default_rng(1)
    return problem16, A, owners, colors, rng.standard_normal(problem16.n)


def bench_local_spmv_vs_global(benchmark, setup):
    problem, A, owners, _colors, x = setup
    ex = LocalSpmvExecutor(A, owners, 4)
    y = benchmark(ex.spmv, x)
    np.testing.assert_array_equal(y, A @ x)


def bench_local_rbgs_sweep(benchmark, setup):
    problem, A, owners, colors, r = setup
    ex = LocalRBGSExecutor(A, owners, 4, colors)

    def sweep():
        z = np.zeros(problem.n)
        ex.sweep(z, r)
        return z

    z = benchmark(sweep)
    z_ref = np.zeros(problem.n)
    RefRBGS(A, colors).forward(z_ref, r)
    np.testing.assert_array_equal(z, z_ref)


def bench_local_rbgs_setup(benchmark, setup):
    """Partition + local-matrix construction cost (the setup phase a
    domain-annotated GraphBLAS backend would pay once)."""
    problem, A, owners, colors, _r = setup
    ex = benchmark(LocalRBGSExecutor, A, owners, 4, colors)
    assert ex.ncolors == 8
