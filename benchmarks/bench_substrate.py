"""Benchmarks of the wider GraphBLAS substrate surface.

Covers the storage-format providers head to head (SpMV and RBGS per
substrate, discovered through the auto-selection registry, so the
format tradeoff is *measured*, not asserted), plus the operations HPCG
doesn't use but a standalone GraphBLAS release must perform sensibly:
matrix elementwise algebra, select, reductions-to-vector, graph
algorithms, parallel colouring, and the locally-executed halo spmv.
"""

import numpy as np
import pytest

from repro import graphblas as grb
from repro.dist import Grid3DPartition, LocalSpmvExecutor
from repro.graphblas import selectops
from repro.graphblas import substrate
from repro.graphblas.algorithms import bfs_levels, pagerank, sssp
from repro.hpcg.coloring import (
    color_masks,
    greedy_coloring,
    jones_plassmann_coloring,
    lattice_coloring,
)
from repro.hpcg.smoothers import RBGSSmoother


@pytest.fixture(scope="module")
def A16(problem16):
    return problem16.A


# ---------------------------------------------------------------------------
# provider-parametrized format benchmarks (CSR vs SELL-C-σ vs blocked)
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("name", substrate.available())
def bench_provider_spmv(benchmark, name, problem16, rhs16):
    """Full SpMV per storage format, bit-checked against the reference."""
    A = grb.Matrix.from_scipy(problem16.A.to_scipy(), substrate=name)
    assert A.substrate == name
    x = grb.Vector.from_dense(rhs16)
    y = grb.Vector.dense(problem16.n)
    benchmark(grb.mxv, y, None, A, x)
    want = grb.Vector.dense(problem16.n)
    grb.mxv(want, None, problem16.A, x)
    assert np.array_equal(y.to_dense(), want.to_dense())


@pytest.mark.parametrize("name", substrate.available())
def bench_provider_rbgs(benchmark, name, problem16, rhs16):
    """One symmetric RBGS sweep per format (the masked-mxv hot path)."""
    A = grb.Matrix.from_scipy(problem16.A.to_scipy(), substrate=name)
    colors = color_masks(lattice_coloring(problem16.grid))
    smoother = RBGSSmoother(A, problem16.A_diag, colors)
    r = grb.Vector.from_dense(rhs16)

    def sweep():
        z = grb.Vector.dense(problem16.n)
        smoother.smooth(z, r, sweeps=1)
        return z

    z = benchmark(sweep)
    ref = RBGSSmoother(problem16.A, problem16.A_diag, colors)
    z_ref = grb.Vector.dense(problem16.n)
    ref.smooth(z_ref, r, sweeps=1)
    assert np.array_equal(z.to_dense(), z_ref.to_dense())


@pytest.mark.parametrize("name", substrate.available())
def bench_provider_build(benchmark, name, problem16):
    """Format construction cost — the price auto-selection must amortise."""
    csr = problem16.A.to_scipy()
    prov = benchmark(substrate.get(name), csr)
    assert prov.nnz == problem16.A.nvals


def bench_provider_bytes_reported(problem16, rhs16, bench_json, request):
    """Not a timing: assert the registry prices each format differently."""
    x = grb.Vector.from_dense(rhs16)
    totals = {}
    for name in substrate.available():
        A = grb.Matrix.from_scipy(problem16.A.to_scipy(), substrate=name)
        y = grb.Vector.dense(problem16.n)
        log = grb.backend.EventLog()
        with grb.backend.collect(log):
            grb.mxv(y, None, A, x)
        totals[name] = log.total("bytes", fmt=name)
    assert len(set(totals.values())) == len(totals), totals
    bench_json.record(request.node.nodeid,
                      priced_bytes_per_format=totals)


def bench_select_tril(benchmark, A16):
    C = grb.Matrix.identity(A16.nrows)
    benchmark(grb.select, C, selectops.tril, A16)
    assert C.nvals < A16.nvals


def bench_ewise_add_matrix(benchmark, A16):
    C = grb.Matrix.identity(A16.nrows)
    benchmark(grb.ewise_add_matrix, C, A16, A16, grb.ops.plus)


def bench_reduce_rows(benchmark, A16):
    w = grb.Vector.sparse(A16.nrows)
    benchmark(grb.reduce_rows, w, A16, grb.plus_monoid)
    assert w.nvals == A16.nrows


def bench_mxm_coarse_permutation(benchmark, problem8):
    """The P' A P pattern of paper Section III-A at 8^3."""
    n = problem8.n
    rng = np.random.default_rng(0)
    perm = rng.permutation(n)
    P = grb.Matrix.from_coo(np.arange(n), perm, np.ones(n), n, n)

    def sandwich():
        tmp = grb.Matrix.identity(n)
        grb.mxm(tmp, None, problem8.A, P)
        out = grb.Matrix.identity(n)
        grb.mxm(out, None, P, tmp, desc=grb.descriptors.transpose_matrix)
        return out

    out = benchmark(sandwich)
    assert out.nvals == problem8.A.nvals


def bench_bfs(benchmark, problem16):
    """BFS over the stencil graph (boolean semiring path)."""
    levels = benchmark(bfs_levels, problem16.A, 0)
    assert levels.max() > 0


def bench_sssp(benchmark, problem8):
    from repro.graphblas.select import apply_indexop
    # positive weights: |values| of the stencil
    W = grb.Matrix.identity(problem8.n)
    grb.apply_matrix(W, grb.ops.abs_, problem8.A)
    dist = benchmark(sssp, W, 0, 10)
    assert np.isfinite(dist[1])


def bench_pagerank(benchmark, problem8):
    W = grb.Matrix.identity(problem8.n)
    grb.apply_matrix(W, grb.ops.abs_, problem8.A)
    ranks, _ = benchmark(pagerank, W, 0.85, 1e-6, 50)
    assert ranks.sum() == pytest.approx(1.0, abs=1e-4)


def bench_greedy_coloring(benchmark, problem8):
    colors = benchmark(greedy_coloring, problem8.A)
    assert colors.max() == 7


def bench_jones_plassmann_coloring(benchmark, problem8):
    colors = benchmark(jones_plassmann_coloring, problem8.A, 1)
    assert colors.min() >= 0


def bench_local_halo_spmv(benchmark, problem16):
    """Per-node local spmv with explicit halo exchange (4 nodes)."""
    A = problem16.A.to_scipy(copy=False)
    part = Grid3DPartition(problem16.grid, 4)
    owners = part.owner(np.arange(problem16.n))
    ex = LocalSpmvExecutor(A, owners, 4)
    x = np.random.default_rng(0).standard_normal(problem16.n)
    y = benchmark(ex.spmv, x)
    np.testing.assert_allclose(y, A @ x)
