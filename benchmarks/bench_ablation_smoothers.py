"""Ablation: smoother choice vs convergence (paper Section III-A).

RBGS relaxes Gauss-Seidel dependencies to expose parallelism "at the
cost of a higher number of iterations"; this bench quantifies that cost
against the exact sequential SYMGS and the fully parallel Jacobi.
"""

from repro.experiments.ablations import coloring_ablation, smoother_ablation


def bench_smoother_convergence(benchmark):
    rows = benchmark.pedantic(smoother_ablation, kwargs={"nx": 12},
                              rounds=1, iterations=1)
    by_name = {r.smoother: r for r in rows}
    assert all(r.converged for r in rows)
    assert by_name["symgs (sequential)"].iterations <= by_name["rbgs"].iterations
    assert by_name["rbgs"].iterations < by_name["jacobi"].iterations
    print()
    for r in rows:
        print(f"  {r.smoother:<22} {r.iterations:>4} iterations to 1e-8")


def bench_coloring_orders(benchmark):
    rows = benchmark.pedantic(coloring_ablation, kwargs={"nx": 12},
                              rounds=1, iterations=1)
    by_order = {r.order: r.colors for r in rows}
    assert by_order["natural (paper)"] == 8
    assert by_order["lattice parity"] == 8
    print()
    for r in rows:
        print(f"  {r.order:<28} {r.colors} colours")
