"""Regenerates paper Table I and asserts its asymptotics.

``pytest benchmarks/bench_table1.py --benchmark-only`` measures the
regeneration cost and — more importantly — verifies the measured
communication exponents against the paper's formulas:

* ALP per-node send per mxv ~ n (exponent 1, exact n(p-1)/p match);
* Ref per-node send per mxv ~ n^(2/3);
* synchronisation: exactly one barrier per mxv for both.
"""

import pytest

from repro.experiments import table1


def bench_table1_regeneration(benchmark):
    rows = benchmark.pedantic(
        table1.run,
        kwargs={"local_sizes": (8, 12, 16), "procs": (2, 4)},
        rounds=1, iterations=1,
    )
    fits = table1.verify(rows)
    assert fits["alp_comm_exponent"] == pytest.approx(1.0, abs=0.05)
    assert fits["ref_comm_exponent"] == pytest.approx(2.0 / 3.0, abs=0.1)
    assert fits["work_balance"] <= 1.1
    for row in rows:
        assert row.alp_comm_values == pytest.approx(row.alp_formula, rel=0.01)
        assert row.alp_syncs_per_mxv == 1.0
        assert row.ref_syncs_per_mxv == 1.0
    print()
    print(table1.render(rows))
