#!/usr/bin/env python
"""Performance-trend gate: compare a fresh perf-smoke run to a baseline.

Usage::

    python benchmarks/check_trend.py BASELINE.json FRESH.json \
        [--max-regression 0.25]

Both files are ``--bench-json`` outputs (see ``benchmarks/conftest.py``):
``{"benches": {nodeid: {seconds, outcome}}, "metrics": {nodeid: {...}},
"host": ..., "created_at": ...}``.

Two checks, in decreasing portability:

1. **Speedup floors** (always enforced): every ``fused_speedup`` metric
   in the fresh run must stay >= 1.0.  The speedup is a ratio measured
   within one process on one machine, so it transfers across hosts —
   a fused lane slower than the reference transcription is a
   regression wherever it happens.
2. **Parallel-speedup floors** (enforced only when baseline and fresh
   carry the *same* ``cores`` count and it exceeds one): every
   ``parallel_speedup`` metric must stay >= 1.0.  Unlike the fused
   ratio, thread scaling depends on how many cores the host offers —
   a single-core runner legitimately measures <= 1.0, so a core-count
   mismatch (or a 1-core run) downgrades this floor to a note.
3. **Wall-clock trend** (only when the two files carry the same
   ``host``): per-bench ``fused_seconds``-style absolute timings may
   not regress by more than ``--max-regression`` (default 25%).
   Absolute seconds measured on different machines are not comparable,
   so a host mismatch downgrades this check to an informational note
   instead of silently failing on every new CI runner.

With ``--triage OLD_TRACE NEW_TRACE`` a failing check additionally
runs the :mod:`repro.obs.analyze` trace differ over the two
``trace.json`` artifacts and attaches the ranked span-level diff to
the failure output — "which span regressed, and was it execution or
the cost model" — so the human reading a red build starts from the
attribution, not from two raw JSON files.  ``--triage-json PATH``
saves the machine-readable diff for the CI artifact upload, plus a
folded flamegraph pair (``PATH.old.folded`` / ``PATH.new.folded``)
ready for ``obs flame``/``flamegraph.pl`` or a differential
flamegraph.

Exit status: 0 when every enforced check passes, 1 otherwise.
The gate itself is stdlib-only on purpose — CI calls it before the
package environment is proven healthy; only the optional triage step
imports ``repro.obs`` (and degrades to a note when it cannot).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Tuple

#: metrics keys holding absolute wall-clock seconds worth trending
WALL_CLOCK_KEYS = ("fused_seconds", "reference_seconds",
                   "serial_seconds", "parallel_seconds")


def load(path: str) -> Dict:
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    if not isinstance(data, dict) or "benches" not in data:
        raise SystemExit(f"{path}: not a --bench-json artifact")
    data.setdefault("metrics", {})
    return data


def check_speedups(fresh: Dict) -> List[str]:
    """Every fused_speedup in the fresh run must be >= 1.0."""
    failures = []
    for nodeid, metrics in sorted(fresh["metrics"].items()):
        speedup = metrics.get("fused_speedup")
        if speedup is None:
            continue
        marker = "ok" if speedup >= 1.0 else "FAIL"
        print(f"  {marker:>4}  {nodeid}: fused_speedup={speedup:.3f}"
              f" (floor 1.0)")
        if speedup < 1.0:
            failures.append(
                f"{nodeid}: fused lane slower than reference "
                f"(speedup {speedup:.3f} < 1.0)"
            )
    return failures


def check_parallel_speedups(baseline: Dict, fresh: Dict) -> List[str]:
    """``parallel_speedup`` floors, gated on comparable core counts.

    Thread scaling is a property of the host's core count, not of the
    code alone: a 1-core runner measures pool overhead with no
    parallelism to pay for it.  The floor therefore only binds when
    the baseline was produced on a host with the *same* number of
    cores as the fresh run and that count exceeds one; anything else
    is reported but not enforced.
    """
    base_cores = baseline.get("cores")
    fresh_cores = fresh.get("cores")
    enforced = bool(base_cores and base_cores == fresh_cores
                    and fresh_cores > 1)
    if not enforced:
        print(f"  note: parallel-speedup floor informational only "
              f"(baseline cores={base_cores!r}, fresh "
              f"cores={fresh_cores!r}; needs matching multi-core hosts)")
    failures = []
    for nodeid, metrics in sorted(fresh["metrics"].items()):
        speedup = metrics.get("parallel_speedup")
        if speedup is None:
            continue
        ok = speedup >= 1.0 or not enforced
        marker = "ok" if ok else "FAIL"
        print(f"  {marker:>4}  {nodeid}: parallel_speedup={speedup:.3f}"
              f" (floor 1.0, {'enforced' if enforced else 'informational'})")
        if not ok:
            failures.append(
                f"{nodeid}: parallel lane slower than serial "
                f"(speedup {speedup:.3f} < 1.0 on a "
                f"{fresh_cores}-core host)"
            )
    return failures


def check_wall_clock(baseline: Dict, fresh: Dict,
                     max_regression: float) -> Tuple[List[str], bool]:
    """Absolute-seconds trend; skipped (not failed) across hosts."""
    base_host = baseline.get("host")
    fresh_host = fresh.get("host")
    if not base_host or base_host != fresh_host:
        print(f"  note: hosts differ (baseline={base_host!r}, "
              f"fresh={fresh_host!r}); wall-clock trend not comparable, "
              f"skipping")
        return [], False
    failures = []
    compared = False
    for nodeid, metrics in sorted(fresh["metrics"].items()):
        base_metrics = baseline["metrics"].get(nodeid, {})
        for key in WALL_CLOCK_KEYS:
            new = metrics.get(key)
            old = base_metrics.get(key)
            if new is None or not old:
                continue
            compared = True
            ratio = new / old
            limit = 1.0 + max_regression
            marker = "ok" if ratio <= limit else "FAIL"
            print(f"  {marker:>4}  {nodeid}: {key} "
                  f"{old:.4f}s -> {new:.4f}s ({ratio:.2f}x, "
                  f"limit {limit:.2f}x)")
            if ratio > limit:
                failures.append(
                    f"{nodeid}: {key} regressed {ratio:.2f}x "
                    f"(> {limit:.2f}x allowed)"
                )
    if not compared:
        print("  note: no overlapping wall-clock metrics to compare")
    return failures, compared


def triage(old_trace: str, new_trace: str,
           json_out: str = None) -> List[str]:
    """Span-level attribution of a regression: the trace diff, as lines.

    Never raises: a missing trace file or an unimportable ``repro.obs``
    degrades to an explanatory note, so triage can only add signal to
    a failure, never mask one.
    """
    try:
        from repro.obs import analyze, export
    except ImportError as exc:   # package not installed: note, don't fail
        return [f"(triage unavailable: cannot import repro.obs: {exc})"]
    try:
        diff = analyze.diff_traces(old_trace, new_trace)
    except Exception as exc:
        return [f"(triage failed on {old_trace} vs {new_trace}: {exc})"]
    lines = [f"span-level triage ({old_trace} -> {new_trace}):"]
    lines.extend(analyze.format_table(diff, top=10).splitlines())
    lines.append(f"attribution: {analyze.summarize(diff)}")
    if json_out:
        try:
            export.write_json(json_out, diff.as_dict())
            lines.append(f"machine-readable triage -> {json_out}")
        except OSError as exc:
            lines.append(f"(could not write {json_out}: {exc})")
        # a folded flamegraph pair next to the report: feed either file
        # to `obs flame --folded`, flamegraph.pl, or a differential
        # flamegraph tool to *see* where the regression sits
        base = json_out[:-len(".json")] if json_out.endswith(".json") \
            else json_out
        try:
            from repro.obs import flame
            for tag, trace_path in (("old", old_trace), ("new", new_trace)):
                folded_path = f"{base}.{tag}.folded"
                stacks = flame.folded_stacks(analyze.load_spans(trace_path))
                with open(folded_path, "w", encoding="utf-8") as fh:
                    fh.write("\n".join(flame.folded_lines(stacks)) + "\n")
                lines.append(f"folded stacks ({tag}) -> {folded_path}")
        except Exception as exc:
            lines.append(f"(could not write folded stacks: {exc})")
    return lines


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="fail CI when the perf smoke regresses vs a baseline")
    parser.add_argument("baseline", help="committed --bench-json baseline")
    parser.add_argument("fresh", help="freshly produced --bench-json file")
    parser.add_argument("--max-regression", type=float, default=0.25,
                        help="allowed fractional wall-clock regression "
                             "when hosts match (default 0.25 = +25%%)")
    parser.add_argument("--triage", nargs=2,
                        metavar=("OLD_TRACE", "NEW_TRACE"), default=None,
                        help="on failure, attach a span-level trace diff "
                             "of these two trace.json artifacts")
    parser.add_argument("--triage-json", metavar="PATH", default=None,
                        help="with --triage, also save the machine-"
                             "readable diff here")
    args = parser.parse_args(argv)
    baseline = load(args.baseline)
    fresh = load(args.fresh)

    print(f"baseline: {args.baseline} (host={baseline.get('host')!r}, "
          f"{len(baseline['benches'])} benches)")
    print(f"fresh:    {args.fresh} (host={fresh.get('host')!r}, "
          f"{len(fresh['benches'])} benches)")

    print("speedup floors:")
    failures = check_speedups(fresh)
    if not fresh["metrics"]:
        print("  note: fresh run carries no metrics")

    print("parallel-speedup floors:")
    failures.extend(check_parallel_speedups(baseline, fresh))

    print("wall-clock trend:")
    wall_failures, _ = check_wall_clock(baseline, fresh,
                                        args.max_regression)
    failures.extend(wall_failures)

    broken = [nodeid for nodeid, bench in sorted(fresh["benches"].items())
              if bench.get("outcome") not in ("passed", None)]
    for nodeid in broken:
        failures.append(f"{nodeid}: outcome "
                        f"{fresh['benches'][nodeid]['outcome']!r}")

    if failures:
        print("TREND CHECK FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        if args.triage:
            for line in triage(args.triage[0], args.triage[1],
                               json_out=args.triage_json):
                print(f"  {line}")
        return 1
    print("trend check passed")
    if args.triage:
        print("(no regression; span-level triage skipped)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
