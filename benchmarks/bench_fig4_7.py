"""Regenerates paper Figures 4-7 (per-level MG breakdowns) and asserts:

* MG is 80-90% of total time, RBGS alone > 50% (all four figures);
* distributed ALP spends a larger share in restrict/refine than
  distributed Ref; distributed Ref a larger share in RBGS (Section V-C).
"""

from repro.experiments import fig4_7
from repro.perf import collect_op_stream


def bench_fig4_shared_alp(benchmark, problem16):
    stream = collect_op_stream(problem16, mg_levels=4, iterations=3)
    result = benchmark.pedantic(
        fig4_7.run_fig4, kwargs={"stream": stream}, rounds=1, iterations=1
    )
    assert all(result.shape_claims().values())
    print()
    print(fig4_7.render(result))


def bench_fig5_shared_ref(benchmark, problem16):
    stream = collect_op_stream(problem16, mg_levels=4, iterations=3)
    result = benchmark.pedantic(
        fig4_7.run_fig5, kwargs={"stream": stream}, rounds=1, iterations=1
    )
    assert all(result.shape_claims().values())
    print()
    print(fig4_7.render(result))


def bench_fig6_fig7_distributed(benchmark):
    def both():
        f6 = fig4_7.run_fig6(local_nx=8, iterations=2, nodes=(2, 4, 6))
        f7 = fig4_7.run_fig7(local_nx=8, iterations=2, nodes=(2, 4, 6))
        return f6, f7

    f6, f7 = benchmark.pedantic(both, rounds=1, iterations=1)
    assert all(f6.shape_claims().values())
    assert all(f7.shape_claims().values())
    cross = fig4_7.cross_figure_claims(f6, f7)
    assert all(cross.values()), cross
    print()
    print(fig4_7.render(f6))
    print(fig4_7.render(f7))
