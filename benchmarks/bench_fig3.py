"""Regenerates paper Figure 3 (weak scaling, 2..7 nodes) and asserts:

* Ref's execution time is flat (the paper reports at-most-5% spread);
* ALP's time grows linearly with node count (the Θ(n) allgather).
"""

import numpy as np

from repro.experiments import fig3


def bench_fig3_regeneration(benchmark):
    result = benchmark.pedantic(
        fig3.run, kwargs={"local_nx": 24, "iterations": 2},
        rounds=1, iterations=1,
    )
    claims = result.shape_claims()
    assert all(claims.values()), claims
    ref = np.array(result.ref_seconds)
    assert ref.max() / ref.min() < 1.05
    print()
    print(fig3.render(result))
