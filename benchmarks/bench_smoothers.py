"""Smoother benchmarks: the RBGS formulations and the sequential SYMGS.

This is the paper's Section III-A in numbers: the masked-mxv RBGS
(GraphBLAS), the direct-slicing RBGS (Ref), the fused extension
([32]), and the inherently sequential SYMGS baseline.
"""

import numpy as np
import pytest

from repro import graphblas as grb
from repro.graphblas.fused import FusedRBGSSmoother
from repro.hpcg.coloring import color_masks, lattice_coloring
from repro.hpcg.smoothers import JacobiSmoother, RBGSSmoother
from repro.ref.sgs import RefRBGS, RefSymGS


@pytest.fixture(scope="module")
def setup(problem16, rhs16):
    colors = lattice_coloring(problem16.grid)
    return {
        "problem": problem16,
        "colors": colors,
        "masks": color_masks(colors),
        "r_g": grb.Vector.from_dense(rhs16),
        "r_n": rhs16,
    }


def bench_rbgs_alp(benchmark, setup):
    p = setup["problem"]
    smoother = RBGSSmoother(p.A, p.A_diag, setup["masks"])
    z = grb.Vector.dense(p.n, 0.0)
    benchmark(smoother.smooth, z, setup["r_g"])


def bench_rbgs_fused(benchmark, setup):
    p = setup["problem"]
    smoother = FusedRBGSSmoother(p.A, p.A_diag, setup["masks"])
    z = grb.Vector.dense(p.n, 0.0)
    benchmark(smoother.smooth, z, setup["r_g"])


def bench_rbgs_ref(benchmark, setup):
    p = setup["problem"]
    smoother = RefRBGS(p.A.to_scipy(copy=False), setup["colors"])
    z = np.zeros(p.n)
    benchmark(smoother.smooth, z, setup["r_n"])


def bench_symgs_sequential(benchmark, setup):
    p = setup["problem"]
    smoother = RefSymGS(p.A.to_scipy(copy=False))
    z = np.zeros(p.n)
    benchmark(smoother.smooth, z, setup["r_n"])


def bench_jacobi(benchmark, setup):
    p = setup["problem"]
    smoother = JacobiSmoother(p.A, p.A_diag)
    z = grb.Vector.dense(p.n, 0.0)
    benchmark(smoother.smooth, z, setup["r_g"])
