#!/usr/bin/env python
"""Why GraphBLAS-HPCG cannot weak-scale: the paper's Figure 3 live.

Runs the simulated ALP hybrid backend (1D block-cyclic + allgather) and
the simulated reference backend (geometric 3D + halos) side by side on
a growing cluster, printing measured communication volumes, superstep
counts and modelled times — Table I and Figure 3 from one script.

Usage::

    python examples/distributed_scaling.py [local_nx] [max_nodes]
"""

import math
import sys

from repro.dist import Hybrid2DRun, HybridALPRun, RefDistRun, factor3
from repro.hpcg.problem import generate_problem


def main() -> None:
    local_nx = int(sys.argv[1]) if len(sys.argv) > 1 else 16
    max_nodes = int(sys.argv[2]) if len(sys.argv) > 2 else 7
    iterations = 3

    print(f"weak scaling: {local_nx}^3 points/node, {iterations} CG "
          f"iterations, 4-level multigrid\n")
    header = (f"{'p':>3} {'grid':>12} {'n':>8} "
              f"{'ALP comm MB':>12} {'2D comm MB':>11} {'Ref comm MB':>12} "
              f"{'ALP time':>10} {'Ref time':>10} {'ALP/Ref':>8}")
    print(header)
    print("-" * len(header))

    for p in range(2, max_nodes + 1):
        px, py, pz = factor3(p)
        problem = generate_problem(local_nx * px, local_nx * py, local_nx * pz)
        alp = HybridALPRun(problem, nprocs=p, mg_levels=4).run_cg(iterations)
        ref = RefDistRun(problem, nprocs=p, mg_levels=4).run_cg(iterations)
        q = int(round(math.sqrt(p)))
        if q * q == p:
            two_d = Hybrid2DRun(problem, nprocs=p, mg_levels=4).run_cg(iterations)
            comm_2d = f"{two_d.comm_bytes / 1e6:>11.2f}"
        else:
            comm_2d = f"{'-':>11}"
        grid = "x".join(str(d) for d in problem.grid.dims)
        print(f"{p:>3} {grid:>12} {problem.n:>8} "
              f"{alp.comm_bytes / 1e6:>12.2f} {comm_2d} "
              f"{ref.comm_bytes / 1e6:>12.2f} "
              f"{alp.modelled_seconds:>9.4f}s {ref.modelled_seconds:>9.4f}s "
              f"{alp.modelled_seconds / ref.modelled_seconds:>8.2f}")

    print("\nwhat to look for (the paper's findings):")
    print(" * Ref time stays flat as p grows — true weak scaling;")
    print(" * ALP time grows linearly — every mxv must replicate the")
    print("   whole input vector because opaque containers hide the")
    print("   geometric structure (Table I / Figure 3 of the paper);")
    print(" * the 2D distribution (paper's solution ii, square p only)")
    print("   trims traffic by a constant factor but stays Θ(n)/node.")


if __name__ == "__main__":
    main()
