#!/usr/bin/env python
"""A tour of the GraphBLAS substrate beyond HPCG.

The paper's premise is that one small set of algebraic primitives
serves many sparse workloads.  This example exercises the same
substrate HPCG runs on for two classic graph algorithms:

* breadth-first search levels via the boolean (lor-land) semiring;
* single-source shortest paths via the tropical (min-plus) semiring —
  the textbook demonstration that changing the semiring changes the
  algorithm while the code shape stays identical.

Usage::

    python examples/graphblas_tour.py
"""

import numpy as np

from repro import graphblas as grb


def build_graph():
    """A small weighted digraph (7 vertices)."""
    #      0 -> 1 (2.0), 0 -> 2 (5.0), 1 -> 2 (1.0), 1 -> 3 (4.0),
    #      2 -> 3 (1.0), 3 -> 4 (3.0), 2 -> 5 (7.0), 4 -> 5 (1.0), 5 -> 6 (1.0)
    rows = [0, 0, 1, 1, 2, 3, 2, 4, 5]
    cols = [1, 2, 2, 3, 3, 4, 5, 5, 6]
    vals = [2.0, 5.0, 1.0, 4.0, 1.0, 3.0, 7.0, 1.0, 1.0]
    return grb.Matrix.from_coo(rows, cols, vals, 7, 7)


def bfs_levels(A: grb.Matrix, source: int) -> np.ndarray:
    """BFS levels with masked vxm over the boolean semiring."""
    n = A.nrows
    levels = np.full(n, -1)
    frontier = grb.Vector.from_coo([source], [True], n, dtype=bool)
    visited = grb.Vector.from_coo([source], [True], n, dtype=bool)
    levels[source] = 0
    depth = 0
    while frontier.nvals:
        depth += 1
        nxt = grb.Vector.sparse(n, dtype=bool)
        # expand the frontier; the complemented visited mask prunes
        # already-seen vertices — all in one masked vxm.
        grb.vxm(nxt, visited, frontier, A, semiring=grb.lor_land,
                desc=grb.descriptors.structural | grb.descriptors.invert_mask)
        idx, _ = nxt.to_coo()
        if idx.size == 0:
            break
        levels[idx] = depth
        for i in idx:
            visited.set_element(int(i), True)
        frontier = nxt
    return levels


def sssp(A: grb.Matrix, source: int) -> np.ndarray:
    """Bellman-Ford-style SSSP: repeated min-plus vxm until fixpoint."""
    n = A.nrows
    dist = grb.Vector.dense(n, np.inf)
    dist.set_element(source, 0.0)
    for _ in range(n):
        prev = dist.to_dense()
        relaxed = grb.Vector.dense(n, np.inf)
        grb.vxm(relaxed, None, dist, A, semiring=grb.min_plus)
        # dist = min(dist, relaxed): ewise union with the min operator
        grb.ewise_add(dist, None, dist.dup(), relaxed, grb.ops.min_)
        if np.array_equal(dist.to_dense(fill=np.inf), prev):
            break
    return dist.to_dense(fill=np.inf)


def main() -> None:
    A = build_graph()
    print(f"graph: {A.nrows} vertices, {A.nvals} edges\n")

    levels = bfs_levels(A, source=0)
    print("BFS levels from vertex 0 (lor-land semiring):")
    for v, lvl in enumerate(levels):
        print(f"  vertex {v}: level {lvl}")
    assert levels.tolist() == [0, 1, 1, 2, 3, 2, 3]

    dist = sssp(A, source=0)
    print("\nshortest-path distances from vertex 0 (min-plus semiring):")
    for v, d in enumerate(dist):
        print(f"  vertex {v}: {d:g}")
    assert dist.tolist() == [0.0, 2.0, 3.0, 4.0, 7.0, 8.0, 9.0]

    print("\nsame containers, same operations, different semiring —")
    print("the separation of concerns the paper builds HPCG on.")


if __name__ == "__main__":
    main()
