#!/usr/bin/env python
"""Smoother study: why HPCG-on-GraphBLAS uses Red-Black Gauss-Seidel.

The paper replaces HPCG's inherently sequential symmetric Gauss-Seidel
with a multi-colour relaxation.  That trade has two sides:

* *cost*: RBGS relaxes dependencies, so CG needs a few extra iterations
  versus exact SYMGS;
* *benefit*: all points of a colour update in parallel (here:
  vectorised), and exactly 8 colours suffice for the 27-point stencil.

This script measures both sides, and verifies the property that makes
the substitution legal per the HPCG spec: the smoother stays symmetric.

Usage::

    python examples/smoother_study.py [nx]
"""

import sys

import numpy as np

from repro import graphblas as grb
from repro.hpcg import (
    MGPreconditioner,
    build_hierarchy,
    generate_problem,
    greedy_coloring,
    num_colors,
    pcg,
    validate,
)
from repro.hpcg.smoothers import JacobiSmoother
from repro.ref.cg import ref_pcg
from repro.ref.multigrid import RefMGPreconditioner, build_ref_hierarchy


def main() -> None:
    nx = int(sys.argv[1]) if len(sys.argv) > 1 else 16
    tol = 1e-8
    levels = 3

    problem = generate_problem(nx)
    colors = greedy_coloring(problem.A)
    counts = np.bincount(colors)
    print(f"greedy colouring on the {nx}^3 stencil: "
          f"{num_colors(colors)} colours "
          f"(sizes {counts.min()}..{counts.max()})")

    rows = []

    # RBGS (the paper's choice)
    hierarchy = build_hierarchy(problem, levels=levels)
    precond = MGPreconditioner(hierarchy)
    report = validate(problem.A, precond)
    x = problem.x0.dup()
    res = pcg(problem.A, problem.b, x, preconditioner=precond,
              max_iters=300, tolerance=tol)
    rows.append(("RBGS (GraphBLAS)", res.iterations,
                 f"symmetry err {report.precond_error:.1e}"))

    # exact sequential SYMGS (reference smoother)
    ref_h = build_ref_hierarchy(problem, levels=levels, smoother="symgs")
    xr = problem.x0.to_dense()
    res_sgs = ref_pcg(problem.A.to_scipy(), problem.b.to_dense(), xr,
                      preconditioner=RefMGPreconditioner(ref_h),
                      max_iters=300, tolerance=tol)
    rows.append(("SYMGS (sequential)", res_sgs.iterations, "exact GS order"))

    # damped Jacobi (fully parallel, weaker)
    jac_h = build_hierarchy(problem, levels=levels,
                            smoother_factory=lambda A, d, c: JacobiSmoother(A, d))
    xj = problem.x0.dup()
    res_j = pcg(problem.A, problem.b, xj,
                preconditioner=MGPreconditioner(jac_h),
                max_iters=300, tolerance=tol)
    rows.append(("damped Jacobi", res_j.iterations, "no colouring needed"))

    print(f"\nCG iterations to {tol:g}:")
    for name, iters, note in rows:
        print(f"  {name:<20} {iters:>4}   ({note})")

    print("\ntakeaway: RBGS sits between exact SYMGS and Jacobi in")
    print("convergence, but unlike SYMGS every colour is data-parallel —")
    print("the trade the paper makes to express HPCG in GraphBLAS.")


if __name__ == "__main__":
    main()
