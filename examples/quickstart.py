#!/usr/bin/env python
"""Quickstart: run the HPCG benchmark on GraphBLAS and read the report.

This is the 30-second tour: generate the HPCG system, validate the
smoother substitution the paper makes (symmetry test), run the
preconditioned CG solver, and print the official-style report with the
per-MG-level kernel breakdown behind the paper's Figures 4-5.

Usage::

    python examples/quickstart.py [nx] [iterations]
"""

import sys

from repro.hpcg import run_hpcg


def main() -> None:
    nx = int(sys.argv[1]) if len(sys.argv) > 1 else 16
    iters = int(sys.argv[2]) if len(sys.argv) > 2 else 25

    print(f"HPCG on GraphBLAS — {nx}^3 grid, {iters} iterations\n")
    result = run_hpcg(nx=nx, max_iters=iters, mg_levels=4)

    print(result.summary())
    print()
    print("Residual history (first 5):",
          [f"{r:.3e}" for r in result.cg.residuals[:5]])
    print()
    print("Kernel timers:")
    print(result.timers.report(min_fraction=0.01))

    if not result.symmetry.passed:
        raise SystemExit("validation FAILED — the smoother is not symmetric")
    print("\nvalidation passed: RBGS is a legal HPCG smoother substitution")


if __name__ == "__main__":
    main()
