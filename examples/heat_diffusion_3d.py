#!/usr/bin/env python
"""Steady-state heat diffusion on a 3D plate — the physics behind HPCG.

HPCG's operator is a discrete heat-diffusion (Poisson) problem.  This
example uses the library as a *solver*, not a benchmark: it builds an
anisotropic domain (a thin, wide plate), imposes an interior heat
source, solves with MG-preconditioned CG to a real tolerance, and
reports the temperature field statistics and the convergence advantage
of the multigrid preconditioner over plain CG.

Usage::

    python examples/heat_diffusion_3d.py
"""

import numpy as np

from repro import graphblas as grb
from repro.grid import Grid3D
from repro.hpcg import (
    MGPreconditioner,
    build_hierarchy,
    generate_problem,
    pcg,
)


def make_heat_source(grid: Grid3D) -> grb.Vector:
    """A Gaussian hot spot in the middle of the plate."""
    ix, iy, iz = grid.all_coords()
    cx, cy, cz = grid.nx / 2, grid.ny / 2, grid.nz / 2
    spread = max(grid.nx, grid.ny) / 6
    q = np.exp(-((ix - cx) ** 2 + (iy - cy) ** 2 + (iz - cz) ** 2)
               / (2 * spread ** 2))
    return grb.Vector.from_dense(100.0 * q)


def main() -> None:
    # a 32 x 32 x 8 plate: wide and thin, still 4 MG levels in x/y... the
    # z dimension supports 3 coarsenings (8 -> 4 -> 2 -> 1), so 3 levels.
    problem = generate_problem(32, 32, 8)
    grid = problem.grid
    b = make_heat_source(grid)
    print(f"domain: {grid.dims} = {grid.npoints} points, "
          f"operator nnz = {problem.A.nvals}")

    tolerance = 1e-9

    # plain CG
    x_plain = grb.Vector.dense(grid.npoints, 0.0)
    plain = pcg(problem.A, b, x_plain, max_iters=500, tolerance=tolerance)

    # MG-preconditioned CG (3 levels: limited by the thin dimension)
    hierarchy = build_hierarchy(problem, levels=3)
    precond = MGPreconditioner(hierarchy)
    x_mg = grb.Vector.dense(grid.npoints, 0.0)
    mg = pcg(problem.A, b, x_mg, preconditioner=precond, max_iters=500,
             tolerance=tolerance)

    print(f"\nplain CG : {plain.iterations:4d} iterations "
          f"(rel. residual {plain.relative_residual:.2e})")
    print(f"MG-CG    : {mg.iterations:4d} iterations "
          f"(rel. residual {mg.relative_residual:.2e})")
    assert mg.iterations < plain.iterations

    temps = x_mg.to_dense()
    agreement = np.abs(temps - x_plain.to_dense()).max()
    hot = int(np.argmax(temps))
    hx, hy, hz = (int(c) for c in grid.coords(hot))
    print(f"\nhottest point: ({hx}, {hy}, {hz}) at {temps.max():.4f}")
    print(f"mean temperature: {temps.mean():.4f}")
    print(f"solver agreement (max |ΔT|): {agreement:.2e}")
    print("\nheat balance check: A x ≈ q")
    print(f"  ||q - A x||/||q|| = "
          f"{problem_residual(problem.A, b, x_mg):.2e}")


def problem_residual(A, b, x) -> float:
    r = grb.Vector.dense(b.size)
    grb.mxv(r, None, A, x)
    grb.waxpby(r, 1.0, b, -1.0, r)
    return grb.norm2(r) / grb.norm2(b)


if __name__ == "__main__":
    main()
