"""Matrix-level operations: elementwise, apply, transpose, reductions,
submatrix extract/assign."""

import numpy as np
import pytest

from repro import graphblas as grb
from repro.graphblas import descriptor as d
from repro.util.errors import DimensionMismatch, InvalidValue


@pytest.fixture()
def A():
    return grb.Matrix.from_dense([[1.0, 0.0, 2.0], [0.0, 3.0, 0.0]])


@pytest.fixture()
def B():
    return grb.Matrix.from_dense([[10.0, 20.0, 0.0], [0.0, 30.0, 40.0]])


class TestEwiseAddMatrix:
    def test_union(self, A, B):
        C = grb.Matrix.identity(2)
        grb.ewise_add_matrix(C, A, B, grb.ops.plus)
        expected = A.to_scipy().toarray() + B.to_scipy().toarray()
        np.testing.assert_array_equal(C.to_scipy().toarray(), expected)
        # union pattern: 5 distinct positions
        assert C.nvals == 5

    def test_copy_where_single(self, A, B):
        C = grb.Matrix.identity(2)
        grb.ewise_add_matrix(C, A, B, grb.ops.times)
        # (0,2) only in A -> copied, not multiplied
        assert C.extract_element(0, 2) == 2.0
        assert C.extract_element(1, 2) == 40.0
        # (0,0) in both -> multiplied
        assert C.extract_element(0, 0) == 10.0

    def test_transpose_descriptor(self, A):
        At = A.transpose()
        C = grb.Matrix.identity(2)
        grb.ewise_add_matrix(C, At, A, grb.ops.plus, desc=d.transpose_matrix)
        expected = 2 * A.to_scipy().toarray()
        np.testing.assert_array_equal(C.to_scipy().toarray(), expected)

    def test_shape_mismatch(self, A):
        with pytest.raises(DimensionMismatch):
            grb.ewise_add_matrix(grb.Matrix.identity(2), A,
                                 grb.Matrix.identity(3), grb.ops.plus)

    def test_empty_intersection(self):
        A = grb.Matrix.from_coo([0], [0], [1.0], 2, 2)
        B = grb.Matrix.from_coo([1], [1], [2.0], 2, 2)
        C = grb.Matrix.identity(2)
        grb.ewise_add_matrix(C, A, B, grb.ops.plus)
        assert C.nvals == 2


class TestEwiseMultMatrix:
    def test_intersection(self, A, B):
        C = grb.Matrix.identity(2)
        grb.ewise_mult_matrix(C, A, B, grb.ops.times)
        # intersection: (0,0) and (1,1)
        assert C.nvals == 2
        assert C.extract_element(0, 0) == 10.0
        assert C.extract_element(1, 1) == 90.0

    def test_no_overlap(self):
        A = grb.Matrix.from_coo([0], [0], [1.0], 2, 2)
        B = grb.Matrix.from_coo([1], [1], [2.0], 2, 2)
        C = grb.Matrix.identity(2)
        grb.ewise_mult_matrix(C, A, B, grb.ops.times)
        assert C.nvals == 0


class TestApplyTranspose:
    def test_apply_matrix(self, A):
        C = grb.Matrix.identity(2)
        grb.apply_matrix(C, grb.ops.ainv, A)
        np.testing.assert_array_equal(
            C.to_scipy().toarray(), -A.to_scipy().toarray()
        )
        assert C.nvals == A.nvals

    def test_transpose_into(self, A):
        C = grb.Matrix.identity(3)
        grb.transpose_into(C, A)
        np.testing.assert_array_equal(
            C.to_scipy().toarray(), A.to_scipy().toarray().T
        )


class TestReductions:
    def test_reduce_rows_plus(self, A):
        w = grb.Vector.sparse(2)
        grb.reduce_rows(w, A, grb.plus_monoid)
        np.testing.assert_array_equal(w.to_dense(), [3.0, 3.0])

    def test_reduce_rows_empty_row_absent(self):
        A = grb.Matrix.from_coo([0], [0], [5.0], 3, 3)
        w = grb.Vector.sparse(3)
        grb.reduce_rows(w, A, grb.plus_monoid)
        assert w.extract_element(0) == 5.0
        assert w.extract_element(1) is None

    def test_reduce_cols(self, A):
        w = grb.Vector.sparse(3)
        grb.reduce_cols(w, A, grb.plus_monoid)
        np.testing.assert_array_equal(w.to_dense(), [1.0, 3.0, 2.0])

    def test_reduce_rows_max(self, B):
        w = grb.Vector.sparse(2)
        grb.reduce_rows(w, B, grb.max_monoid)
        np.testing.assert_array_equal(w.to_dense(), [20.0, 40.0])

    def test_size_check(self, A):
        with pytest.raises(DimensionMismatch):
            grb.reduce_rows(grb.Vector.sparse(5), A, grb.plus_monoid)

    def test_hpcg_row_sums(self, problem8):
        """Interior stencil rows sum to zero — via reduce_rows."""
        w = grb.Vector.sparse(problem8.n)
        grb.reduce_rows(w, problem8.A, grb.plus_monoid)
        centre = problem8.grid.index(4, 4, 4)
        assert w.extract_element(int(centre)) == 0.0


class TestSubmatrix:
    def test_extract(self, A):
        C = grb.Matrix.identity(2)
        grb.extract_submatrix(C, A, [0, 1], [2, 0])
        np.testing.assert_array_equal(
            C.to_scipy().toarray(), [[2.0, 1.0], [0.0, 0.0]]
        )

    def test_extract_rows_only(self, A):
        C = grb.Matrix.identity(1)
        grb.extract_submatrix(C, A, [1])
        np.testing.assert_array_equal(C.to_scipy().toarray(), [[0.0, 3.0, 0.0]])

    def test_extract_out_of_range(self, A):
        with pytest.raises(InvalidValue):
            grb.extract_submatrix(grb.Matrix.identity(1), A, [5])

    def test_assign_block(self):
        C = grb.Matrix.from_dense(np.ones((4, 4)))
        block = grb.Matrix.from_dense([[7.0, 8.0], [9.0, 10.0]])
        grb.assign_submatrix(C, block, [1, 2], [0, 3])
        out = C.to_scipy().toarray()
        assert out[1, 0] == 7.0 and out[1, 3] == 8.0
        assert out[2, 0] == 9.0 and out[2, 3] == 10.0
        # outside the block untouched
        assert out[0, 0] == 1.0 and out[3, 3] == 1.0

    def test_assign_replaces_block_pattern(self):
        C = grb.Matrix.from_dense(np.ones((3, 3)))
        empty = grb.Matrix.from_coo([], [], [], 2, 2)
        grb.assign_submatrix(C, empty, [0, 1], [0, 1])
        # the 2x2 block is now empty; the rest survives
        assert C.nvals == 5
        assert C.extract_element(0, 0) is None
        assert C.extract_element(2, 2) == 1.0

    def test_assign_shape_mismatch(self, A):
        with pytest.raises(DimensionMismatch):
            grb.assign_submatrix(grb.Matrix.identity(4), A, [0], [1])

    def test_assign_out_of_range(self):
        C = grb.Matrix.identity(2)
        block = grb.Matrix.identity(1)
        with pytest.raises(InvalidValue):
            grb.assign_submatrix(C, block, [5], [0])
