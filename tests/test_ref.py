"""The Ref implementation: kernels, exact SYMGS, CG parity with ALP."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.hpcg.driver import run_hpcg
from repro.ref import (
    RefRBGS,
    RefSymGS,
    build_ref_hierarchy,
    compute_dot,
    compute_spmv,
    compute_waxpby,
    ref_mg_vcycle,
    ref_pcg,
    run_ref_hpcg,
)
from repro.ref.kernels import compute_residual_norm
from repro.ref.multigrid import RefMGPreconditioner
from repro.util.errors import DimensionMismatch, InvalidValue


class TestKernels:
    def test_spmv(self, problem4, rng):
        A = problem4.A.to_scipy()
        x = rng.standard_normal(64)
        y = np.zeros(64)
        compute_spmv(y, A, x)
        np.testing.assert_allclose(y, A @ x)

    def test_spmv_size_check(self, problem4):
        with pytest.raises(DimensionMismatch):
            compute_spmv(np.zeros(3), problem4.A.to_scipy(), np.zeros(64))

    def test_waxpby_all_aliases(self, rng):
        xv = rng.standard_normal(20)
        yv = rng.standard_normal(20)
        expected = 2.0 * xv - 3.0 * yv
        w = np.zeros(20)
        compute_waxpby(w, 2.0, xv.copy(), -3.0, yv.copy())
        np.testing.assert_allclose(w, expected)
        x2 = xv.copy()
        compute_waxpby(x2, 2.0, x2, -3.0, yv.copy())
        np.testing.assert_allclose(x2, expected)
        y2 = yv.copy()
        compute_waxpby(y2, 2.0, xv.copy(), -3.0, y2)
        np.testing.assert_allclose(y2, expected)

    def test_waxpby_size_check(self):
        with pytest.raises(DimensionMismatch):
            compute_waxpby(np.zeros(2), 1.0, np.zeros(3), 1.0, np.zeros(2))

    def test_dot(self, rng):
        x = rng.standard_normal(30)
        y = rng.standard_normal(30)
        assert compute_dot(x, y) == pytest.approx(float(x @ y))

    def test_dot_size_check(self):
        with pytest.raises(DimensionMismatch):
            compute_dot(np.zeros(2), np.zeros(3))

    def test_residual_norm(self, problem4):
        b = problem4.b.to_dense()
        x = np.ones(64)
        assert compute_residual_norm(problem4.A.to_scipy(), b, x) == pytest.approx(
            0.0, abs=1e-10
        )


class TestRefSymGS:
    def test_exact_sequential_semantics(self, rng):
        """Compare the triangular-solve sweep against an explicit
        row-by-row Python loop (the textbook definition)."""
        n = 30
        dense = rng.standard_normal((n, n)) * 0.1
        np.fill_diagonal(dense, 5.0)
        A = sp.csr_matrix(dense)
        r = rng.standard_normal(n)
        smoother = RefSymGS(A)
        z_fast = rng.standard_normal(n)
        z_loop = z_fast.copy()
        smoother.forward(z_fast, r)
        for i in range(n):  # textbook Gauss-Seidel
            acc = r[i]
            for j in range(n):
                if j != i:
                    acc -= dense[i, j] * z_loop[j]
            z_loop[i] = acc / dense[i, i]
        np.testing.assert_allclose(z_fast, z_loop, rtol=1e-10)

    def test_backward_is_reverse_order(self, rng):
        n = 20
        dense = rng.standard_normal((n, n)) * 0.1
        np.fill_diagonal(dense, 5.0)
        A = sp.csr_matrix(dense)
        r = rng.standard_normal(n)
        smoother = RefSymGS(A)
        z_fast = np.zeros(n)
        smoother.backward(z_fast, r)
        z_loop = np.zeros(n)
        for i in range(n - 1, -1, -1):
            acc = r[i]
            for j in range(n):
                if j != i:
                    acc -= dense[i, j] * z_loop[j]
            z_loop[i] = acc / dense[i, i]
        np.testing.assert_allclose(z_fast, z_loop, rtol=1e-10)

    def test_reduces_residual(self, problem8, rng):
        A = problem8.A.to_scipy()
        r = rng.standard_normal(problem8.n)
        z = np.zeros(problem8.n)
        RefSymGS(A).smooth(z, r)
        assert np.linalg.norm(r - A @ z) < np.linalg.norm(r)

    def test_rejects_zero_diagonal(self):
        A = sp.csr_matrix(np.array([[0.0, 1.0], [1.0, 2.0]]))
        with pytest.raises(InvalidValue):
            RefSymGS(A)

    def test_rejects_rectangular(self):
        with pytest.raises(InvalidValue):
            RefSymGS(sp.csr_matrix(np.ones((2, 3))))


class TestRefRBGS:
    def test_validates_colors(self, problem4):
        A = problem4.A.to_scipy()
        with pytest.raises(DimensionMismatch):
            RefRBGS(A, np.zeros(3, dtype=np.int64))

    def test_gap_in_color_ids_rejected(self, problem4):
        A = problem4.A.to_scipy()
        colors = np.zeros(64, dtype=np.int64)
        colors[0] = 5  # colours 1..4 empty
        with pytest.raises(InvalidValue):
            RefRBGS(A, colors)

    def test_smooth_reduces_residual(self, problem8, rng):
        from repro.hpcg.coloring import lattice_coloring
        A = problem8.A.to_scipy()
        r = rng.standard_normal(problem8.n)
        z = np.zeros(problem8.n)
        RefRBGS(A, lattice_coloring(problem8.grid)).smooth(z, r)
        assert np.linalg.norm(r - A @ z) < np.linalg.norm(r)


class TestRefMG:
    def test_hierarchy_sizes(self, problem8):
        top = build_ref_hierarchy(problem8, levels=3)
        assert [lvl.n for lvl in top.levels()] == [512, 64, 8]

    def test_symgs_smoother_option(self, problem8):
        top = build_ref_hierarchy(problem8, levels=2, smoother="symgs")
        assert isinstance(top.smoother, RefSymGS)

    def test_unknown_smoother(self, problem8):
        with pytest.raises(InvalidValue):
            build_ref_hierarchy(problem8, levels=2, smoother="sor")

    def test_vcycle_improves(self, problem8):
        top = build_ref_hierarchy(problem8, levels=3)
        A = problem8.A.to_scipy()
        b = problem8.b.to_dense()
        z = np.zeros(problem8.n)
        ref_mg_vcycle(top, z, b)
        assert np.linalg.norm(b - A @ z) < np.linalg.norm(b)


class TestParityWithALP:
    def test_identical_residual_histories(self, problem8):
        """The paper's precondition for comparing times: both
        implementations produce numerically comparable results."""
        alp = run_hpcg(nx=0, problem=problem8, max_iters=15, mg_levels=3,
                       validate_symmetry=False)
        ref = run_ref_hpcg(nx=0, problem=problem8, max_iters=15, mg_levels=3)
        np.testing.assert_allclose(alp.cg.residuals, ref.cg.residuals,
                                   rtol=1e-12)

    def test_ref_cg_plain_matches_alp(self, problem8):
        alp = run_hpcg(nx=0, problem=problem8, max_iters=10, mg_levels=0,
                       validate_symmetry=False)
        ref = run_ref_hpcg(nx=0, problem=problem8, max_iters=10, mg_levels=0)
        np.testing.assert_allclose(alp.cg.residuals, ref.cg.residuals,
                                   rtol=1e-12)

    def test_ref_driver_breakdown(self, problem8):
        ref = run_ref_hpcg(nx=0, problem=problem8, max_iters=10, mg_levels=3)
        rows = ref.mg_level_breakdown()
        assert len(rows) == 3
        assert sum(r["rbgs"] for r in rows) > 0.3

    def test_ref_pcg_converges(self, problem8):
        A = problem8.A.to_scipy()
        precond = RefMGPreconditioner(build_ref_hierarchy(problem8, levels=3))
        x = np.zeros(problem8.n)
        res = ref_pcg(A, problem8.b.to_dense(), x, preconditioner=precond,
                      max_iters=100, tolerance=1e-9)
        assert res.converged
        np.testing.assert_allclose(x, np.ones(problem8.n), rtol=1e-5)
