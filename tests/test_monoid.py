"""Monoids: reductions, segment reductions, identity handling."""

import numpy as np
import pytest

from repro.graphblas import monoid as m
from repro.graphblas import ops
from repro.graphblas.monoid import Monoid
from repro.graphblas.ops import BinaryOp
from repro.util.errors import InvalidValue


class TestConstruction:
    def test_requires_associative(self):
        with pytest.raises(InvalidValue):
            Monoid(ops.minus, 0)

    def test_name(self):
        assert m.plus_monoid.name == "plus_monoid"

    def test_call(self):
        assert m.plus_monoid(2, 3) == 5


class TestReduce:
    def test_plus(self):
        assert m.plus_monoid.reduce(np.array([1.0, 2.0, 3.0])) == 6.0

    def test_times(self):
        assert m.times_monoid.reduce(np.array([2.0, 3.0, 4.0])) == 24.0

    def test_min_max(self):
        x = np.array([3.0, -1.0, 7.0])
        assert m.min_monoid.reduce(x) == -1.0
        assert m.max_monoid.reduce(x) == 7.0

    def test_empty_returns_identity(self):
        assert m.plus_monoid.reduce(np.array([])) == 0
        assert m.min_monoid.reduce(np.array([])) == np.inf
        assert m.max_monoid.reduce(np.array([])) == -np.inf

    def test_logical(self):
        assert m.lor_monoid.reduce(np.array([False, True])) == True  # noqa: E712
        assert m.land_monoid.reduce(np.array([True, False])) == False  # noqa: E712

    def test_non_ufunc_monoid(self):
        gcd = Monoid(BinaryOp("gcd", np.gcd, ufunc=None, associative=True,
                              commutative=True), 0)
        assert gcd.reduce(np.array([12, 18, 24])) == 6


class TestSegmentReduce:
    def test_basic(self):
        vals = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        ptr = np.array([0, 2, 5])
        np.testing.assert_array_equal(
            m.plus_monoid.segment_reduce(vals, ptr), [3.0, 12.0]
        )

    def test_empty_segment_gets_identity(self):
        vals = np.array([1.0, 2.0])
        ptr = np.array([0, 0, 2, 2])
        out = m.plus_monoid.segment_reduce(vals, ptr)
        np.testing.assert_array_equal(out, [0.0, 3.0, 0.0])

    def test_leading_empty_segment(self):
        # this is the reduceat edge case: an empty first segment must not
        # steal the following segment's first value
        vals = np.array([5.0, 7.0])
        ptr = np.array([0, 0, 1, 2])
        out = m.plus_monoid.segment_reduce(vals, ptr)
        np.testing.assert_array_equal(out, [0.0, 5.0, 7.0])

    def test_all_empty(self):
        out = m.plus_monoid.segment_reduce(np.array([]), np.array([0, 0, 0]))
        np.testing.assert_array_equal(out, [0.0, 0.0])

    def test_min_segments(self):
        vals = np.array([3.0, 1.0, 4.0, 1.0, 5.0])
        ptr = np.array([0, 3, 5])
        np.testing.assert_array_equal(
            m.min_monoid.segment_reduce(vals, ptr), [1.0, 1.0]
        )

    def test_single_element_segments(self):
        vals = np.array([9.0, 8.0, 7.0])
        ptr = np.array([0, 1, 2, 3])
        np.testing.assert_array_equal(
            m.max_monoid.segment_reduce(vals, ptr), vals
        )

    def test_python_fallback_matches_ufunc(self):
        vals = np.array([1.0, 2.0, 3.0, 4.0])
        ptr = np.array([0, 1, 1, 4])
        slow = Monoid(BinaryOp("plus2", lambda a, b: a + b, ufunc=None,
                               associative=True, commutative=True), 0)
        np.testing.assert_array_equal(
            slow.segment_reduce(vals, ptr),
            m.plus_monoid.segment_reduce(vals, ptr),
        )
