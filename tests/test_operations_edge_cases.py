"""Edge cases across operation/modifier combinations.

These pin the write-back semantics matrix — (mask x accum x replace)
and mixed dtypes — where GraphBLAS implementations most often disagree.
"""

import numpy as np
import pytest

from repro import graphblas as grb
from repro.graphblas import descriptor as d
from repro.graphblas.matrix import Matrix
from repro.graphblas.vector import Vector


@pytest.fixture()
def A():
    return Matrix.from_dense([[2.0, 1.0], [1.0, 3.0]])


class TestAccumReplaceCombos:
    def test_masked_accum(self, A):
        x = Vector.from_dense([1.0, 1.0])
        mask = Vector.from_coo([0], [True], 2, dtype=bool)
        w = Vector.from_dense([10.0, 20.0])
        grb.mxv(w, mask, A, x, accum=grb.ops.plus, desc=d.structural)
        assert w.extract_element(0) == 13.0   # 10 + (2+1)
        assert w.extract_element(1) == 20.0   # outside mask: untouched

    def test_masked_accum_replace(self, A):
        x = Vector.from_dense([1.0, 1.0])
        mask = Vector.from_coo([0], [True], 2, dtype=bool)
        w = Vector.from_dense([10.0, 20.0])
        grb.mxv(w, mask, A, x, accum=grb.ops.plus,
                desc=d.structural | d.replace)
        # replace clears w first; accum then sees no old value
        assert w.extract_element(0) == 3.0
        assert w.extract_element(1) is None

    def test_apply_with_accum(self):
        u = Vector.from_dense([1.0, 2.0])
        w = Vector.from_dense([10.0, 20.0])
        grb.apply(w, None, grb.ops.ainv, u, accum=grb.ops.plus)
        np.testing.assert_array_equal(w.to_dense(), [9.0, 18.0])

    def test_assign_with_accum(self):
        w = Vector.from_dense([1.0, 2.0])
        grb.assign(w, None, 5.0, accum=grb.ops.plus)
        np.testing.assert_array_equal(w.to_dense(), [6.0, 7.0])

    def test_ewise_add_with_accum(self):
        u = Vector.from_dense([1.0, 1.0])
        v = Vector.from_dense([2.0, 2.0])
        w = Vector.from_dense([100.0, 100.0])
        grb.ewise_add(w, None, u, v, grb.ops.plus, accum=grb.ops.plus)
        np.testing.assert_array_equal(w.to_dense(), [103.0, 103.0])

    def test_ewise_mult_replace_outside_intersection(self):
        u = Vector.from_coo([0], [3.0], 3)
        v = Vector.from_coo([0, 1], [4.0, 5.0], 3)
        w = Vector.dense(3, 9.0)
        grb.ewise_mult(w, None, u, v, grb.ops.times, desc=d.replace)
        assert w.extract_element(0) == 12.0
        assert w.extract_element(1) is None
        assert w.extract_element(2) is None

    def test_accum_into_empty_output(self, A):
        x = Vector.from_dense([1.0, 1.0])
        w = Vector.sparse(2)
        grb.mxv(w, None, A, x, accum=grb.ops.plus)
        np.testing.assert_array_equal(w.to_dense(), [3.0, 4.0])


class TestDtypeMixing:
    def test_int_matrix_float_vector(self):
        A = Matrix.from_coo([0, 1], [0, 1], np.array([2, 3]), 2, 2,
                            dtype=np.int64)
        x = Vector.from_dense([0.5, 2.0])
        y = Vector.dense(2)
        grb.mxv(y, None, A, x)
        np.testing.assert_array_equal(y.to_dense(), [1.0, 6.0])

    def test_float32_preserved(self):
        u = Vector.from_dense(np.array([1.5, 2.5], dtype=np.float32))
        assert u.dtype == np.float32
        w = Vector(2, dtype=np.float32)
        grb.apply(w, None, grb.ops.identity, u)
        assert w.dtype == np.float32

    def test_bool_semiring_over_int_pattern(self):
        A = Matrix.from_coo([0], [1], [7], 2, 2, dtype=np.int32)
        f = Vector.from_coo([0], [True], 2, dtype=bool)
        out = Vector.sparse(2, dtype=bool)
        grb.mxv(out, None, A, f, semiring=grb.lor_land,
                desc=d.transpose_matrix)
        assert out.extract_element(1) == True  # noqa: E712

    def test_int_reduce(self):
        u = Vector.from_dense(np.array([1, 2, 3], dtype=np.int32))
        assert grb.reduce(u, grb.plus_monoid) == 6


class TestDegenerateShapes:
    def test_empty_matrix_mxv(self):
        A = Matrix.from_coo([], [], [], 3, 3)
        x = Vector.from_dense([1.0, 2.0, 3.0])
        y = Vector.dense(3, 9.0)
        grb.mxv(y, None, A, x)
        assert y.nvals == 0  # no rows produced entries

    def test_one_by_one(self):
        A = Matrix.from_coo([0], [0], [4.0], 1, 1)
        x = Vector.from_dense([2.5])
        y = Vector.dense(1)
        grb.mxv(y, None, A, x)
        assert y.extract_element(0) == 10.0

    def test_empty_vector_dot(self):
        assert grb.dot(Vector.sparse(4), Vector.sparse(4)) == 0

    def test_zero_size_vector_ops(self):
        u = Vector.sparse(0)
        v = Vector.sparse(0)
        w = Vector.sparse(0)
        grb.ewise_add(w, None, u, v, grb.ops.plus)
        assert w.size == 0 and w.nvals == 0

    def test_full_mask_equals_no_mask(self, A):
        x = Vector.from_dense([1.0, 1.0])
        full = Vector.from_coo([0, 1], [True, True], 2, dtype=bool)
        y1 = Vector.dense(2)
        y2 = Vector.dense(2)
        grb.mxv(y1, None, A, x)
        grb.mxv(y2, full, A, x, desc=d.structural)
        assert y1 == y2

    def test_empty_mask_touches_nothing(self, A):
        x = Vector.from_dense([1.0, 1.0])
        empty = Vector.sparse(2, dtype=bool)
        y = Vector.dense(2, 7.0)
        grb.mxv(y, empty, A, x, desc=d.structural)
        np.testing.assert_array_equal(y.to_dense(), [7.0, 7.0])


class TestStoredZeros:
    def test_explicit_zero_is_present(self):
        """GraphBLAS distinguishes stored zeros from absence."""
        u = Vector.from_coo([0, 1], [0.0, 5.0], 3)
        assert u.nvals == 2
        assert u.extract_element(0) == 0.0
        assert u.extract_element(2) is None

    def test_zero_value_mask_not_selected(self):
        mask = Vector.from_coo([0, 1], [0.0, 1.0], 2)
        w = Vector.dense(2, 9.0)
        grb.assign(w, mask, 1.0)  # value mask: only index 1
        np.testing.assert_array_equal(w.to_dense(), [9.0, 1.0])

    def test_zero_value_structural_mask_selected(self):
        mask = Vector.from_coo([0, 1], [0.0, 1.0], 2)
        w = Vector.dense(2, 9.0)
        grb.assign(w, mask, 1.0, desc=d.structural)
        np.testing.assert_array_equal(w.to_dense(), [1.0, 1.0])
