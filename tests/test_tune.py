"""The autotuning subsystem: profiles, cache, selection, consumers.

The contracts this file enforces:

* **round-trip** — save → load → re-save is byte-identical, and a
  schema-version mismatch is rejected cleanly;
* **consumers** — ``BSPMachine.from_profile`` prices a trace exactly
  like the equivalent hand-built machine, and profile-priced simulated
  runs keep bit-identical numerics (the pricing source must never
  touch the mathematics);
* **model-driven selection** — on the reference shapes the structure
  heuristic already classifies, ``selection="model"`` with the
  synthetic profile agrees with the heuristic, and with no profile
  cached it falls back silently.
"""

import json
import os
import time

import numpy as np
import pytest
import scipy.sparse as sp

from repro import graphblas as grb
from repro.dist import BSPMachine, CommTracker, RefDistRun, bsp_time
from repro.graphblas import substrate
from repro.graphblas.substrate import registry
from repro.graphblas.substrate.base import MatrixProfile
from repro.grid import Grid3D, stencil_coo
from repro.perf import ALP_PROFILE, MachineSpec, Placement, ScalingModel
from repro.tune import (
    MachineProfile,
    ProfileVersionError,
    cache,
    synthetic_profile,
)
from repro.tune import select as tune_select
from repro.tune.profile import SCHEMA_VERSION
from repro.util.errors import InvalidValue


@pytest.fixture()
def tmp_cache(tmp_path, monkeypatch):
    """An isolated, empty REPRO_TUNE_CACHE for each test."""
    monkeypatch.setenv(cache.ENV_VAR, str(tmp_path))
    monkeypatch.delenv(cache.MAX_AGE_ENV_VAR, raising=False)
    cache.invalidate()
    yield tmp_path
    cache.invalidate()


def stencil_csr(nx: int) -> sp.csr_matrix:
    grid = Grid3D(nx, nx, nx)
    rows, cols, vals = stencil_coo(grid, "27pt")
    csr = sp.csr_matrix((vals, (rows, cols)),
                        shape=(grid.npoints, grid.npoints))
    csr.sort_indices()
    return csr


def highcv_csr(n: int = 2048) -> sp.csr_matrix:
    rng = np.random.default_rng(11)
    row_nnz = np.minimum(1 + rng.geometric(1.0 / 12.0, size=n), n)
    r = np.repeat(np.arange(n, dtype=np.int64), row_nnz)
    c = rng.integers(0, n, size=r.size, dtype=np.int64)
    csr = sp.csr_matrix((np.ones(r.size), (r, c)), shape=(n, n))
    csr.sum_duplicates()
    csr.sort_indices()
    return csr


def dense_csr(n: int = 1024, m: int = 16) -> sp.csr_matrix:
    rng = np.random.default_rng(13)
    csr = sp.csr_matrix((rng.random((n, m)) < 0.4).astype(np.float64))
    csr.sort_indices()
    return csr


# ---------------------------------------------------------------------------
# profile round-trip and schema versioning
# ---------------------------------------------------------------------------

class TestProfileRoundTrip:
    def test_save_load_resave_byte_identical(self, tmp_path):
        prof = synthetic_profile()
        path = str(tmp_path / "p.json")
        prof.save(path)
        first = open(path, "rb").read()
        reloaded = MachineProfile.load(path)
        assert reloaded == prof
        reloaded.save(path)
        assert open(path, "rb").read() == first

    def test_schema_version_mismatch_raises(self):
        data = synthetic_profile().to_dict()
        data["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(ProfileVersionError, match="schema version"):
            MachineProfile.from_dict(data)

    def test_missing_key_raises(self):
        data = synthetic_profile().to_dict()
        del data["triad_bandwidth"]
        with pytest.raises(InvalidValue, match="missing"):
            MachineProfile.from_dict(data)

    def test_unknown_key_raises(self):
        data = synthetic_profile().to_dict()
        data["frobnication_rate"] = 1.0
        with pytest.raises(InvalidValue, match="unknown"):
            MachineProfile.from_dict(data)

    def test_not_json_raises(self):
        with pytest.raises(InvalidValue, match="JSON"):
            MachineProfile.loads("not json {")

    def test_field_validation(self):
        with pytest.raises(InvalidValue):
            synthetic_profile(triad_bandwidth=-1.0)
        with pytest.raises(InvalidValue):
            synthetic_profile(overlap_efficiency=1.5)
        with pytest.raises(InvalidValue):
            synthetic_profile(net_bandwidth=0.0)

    def test_rate_fallbacks(self):
        prof = synthetic_profile()
        # unprobed format: priced at the triad ceiling, not a crash
        assert prof.spmv_rate("exotic") == prof.triad_bandwidth
        assert prof.rbgs_rate("exotic") == prof.triad_bandwidth
        # unprobed shape class: the format's geometric mean
        rate = prof.spmv_rate("csr", "never-probed")
        lo = min(prof.spmv_rates["csr"].values())
        hi = max(prof.spmv_rates["csr"].values())
        assert lo * (1 - 1e-9) <= rate <= hi * (1 + 1e-9)

    def test_summary_mentions_rates(self):
        text = synthetic_profile().summary()
        assert "triad bandwidth" in text
        assert "sellcs" in text


# ---------------------------------------------------------------------------
# cache behaviour
# ---------------------------------------------------------------------------

class TestCache:
    def test_save_and_current(self, tmp_cache):
        assert cache.current_profile() is None
        prof = synthetic_profile()
        path = cache.save_profile(prof)
        assert path == str(tmp_cache / cache.PROFILE_FILENAME)
        assert cache.current_profile() == prof
        # memoised: same object on the second read
        assert cache.current_profile() is cache.current_profile()

    def test_clear(self, tmp_cache):
        cache.save_profile(synthetic_profile())
        assert cache.clear() is True
        assert cache.current_profile() is None
        assert cache.clear() is False

    def test_load_profile_raises_when_missing(self, tmp_cache):
        with pytest.raises(InvalidValue, match="no machine profile"):
            cache.load_profile()

    def test_corrupt_file_soft_none_strict_raise(self, tmp_cache):
        path = cache.profile_path()
        with open(path, "w") as fh:
            fh.write("{ not json")
        assert cache.current_profile() is None
        with pytest.raises(InvalidValue):
            cache.load_profile()

    def test_version_mismatch_soft_none(self, tmp_cache):
        data = synthetic_profile().to_dict()
        data["schema_version"] = SCHEMA_VERSION + 7
        with open(cache.profile_path(), "w") as fh:
            json.dump(data, fh)
        assert cache.current_profile() is None

    def test_staleness(self, tmp_cache, monkeypatch):
        old = synthetic_profile()
        # synthetic profiles are stamped at the epoch: ancient
        cache.save_profile(old)
        assert cache.current_profile(max_age_seconds=60.0) is None
        assert cache.current_profile() == old   # no bound: still served
        monkeypatch.setenv(cache.MAX_AGE_ENV_VAR, "60")
        assert cache.current_profile() is None
        monkeypatch.setenv(cache.MAX_AGE_ENV_VAR, "not-a-number")
        assert cache.current_profile() == old   # malformed bound ignored
        fresh = MachineProfile.from_dict(
            {**old.to_dict(), "created_at": time.time()})
        cache.save_profile(fresh)
        monkeypatch.setenv(cache.MAX_AGE_ENV_VAR, "3600")
        assert cache.current_profile() == fresh

    def test_default_location_under_home(self, monkeypatch):
        monkeypatch.delenv(cache.ENV_VAR, raising=False)
        assert cache.cache_dir().startswith(os.path.expanduser("~"))


# ---------------------------------------------------------------------------
# profile-driven machine constructors
# ---------------------------------------------------------------------------

class TestFromProfile:
    def test_bsp_machine_fields(self):
        prof = synthetic_profile()
        m = BSPMachine.from_profile(prof)
        assert m.name == "profile:synthetic"
        assert m.mem_bandwidth == prof.triad_bandwidth
        assert m.net_bandwidth == prof.net_bandwidth
        assert m.latency == prof.latency
        assert m.overlap_efficiency == prof.overlap_efficiency
        custom = BSPMachine.from_profile(prof, name="n", overlap_efficiency=0.5)
        assert custom.name == "n" and custom.overlap_efficiency == 0.5

    def test_bsp_time_matches_hand_built_machine(self):
        prof = synthetic_profile()
        from_prof = BSPMachine.from_profile(prof)
        by_hand = BSPMachine(
            name="hand",
            mem_bandwidth=prof.triad_bandwidth,
            net_bandwidth=prof.net_bandwidth,
            latency=prof.latency,
            overlap_efficiency=prof.overlap_efficiency,
        )
        tracker = CommTracker(4)
        rng = np.random.default_rng(3)
        for step in range(6):
            for dst in range(1, 4):
                tracker.send(0, dst, int(rng.integers(64, 4096)),
                             label="probe")
            if step % 2:
                handle = tracker.post()
                handle.overlap(float(rng.integers(1024, 1 << 20)))
                tracker.wait(handle)
            else:
                tracker.sync()
        work = [float(rng.integers(1 << 10, 1 << 22)) for _ in range(6)]
        for use_overlap in (True, False):
            assert (bsp_time(from_prof, tracker.supersteps, work,
                             use_overlap)
                    == bsp_time(by_hand, tracker.supersteps, work,
                                use_overlap))

    def test_refdist_run_numerics_unchanged(self, problem8):
        """Profile pricing changes modelled time only — residuals stay
        bit-identical to the Table-II preset run."""
        prof = synthetic_profile()
        preset = RefDistRun(problem8, nprocs=2, mg_levels=2,
                            comm_mode="eager").run_cg(max_iters=3)
        priced = RefDistRun(problem8, nprocs=2, mg_levels=2,
                            machine=BSPMachine.from_profile(prof),
                            comm_mode="eager").run_cg(max_iters=3)
        np.testing.assert_array_equal(preset.residuals, priced.residuals)
        assert priced.machine == "profile:synthetic"
        assert "priced by profile:synthetic" in priced.summary()
        assert priced.modelled_seconds != preset.modelled_seconds

    def test_machine_spec_scaling_model(self):
        prof = synthetic_profile()
        spec = MachineSpec.from_profile(prof)
        assert spec.attained_bandwidth == prof.triad_bandwidth
        assert spec.physical_cores == max(prof.cores, 1)
        model = ScalingModel(spec, ALP_PROFILE)
        t = model.time_for_bytes(1e9, Placement(1, 1))
        assert t > 0


# ---------------------------------------------------------------------------
# model-driven selection
# ---------------------------------------------------------------------------

class TestModelSelection:
    @pytest.fixture()
    def small_gate(self, monkeypatch):
        """Shrink the conversion-amortisation floor so the reference
        shapes stay test-sized."""
        monkeypatch.setattr(registry, "AUTO_MIN_SIZE", 64)

    def reference_shapes(self):
        return {
            "tiny": sp.csr_matrix(np.eye(10)),
            "uniform": stencil_csr(12),     # cv ~= 0.23: blocked
            "highcv": highcv_csr(),         # skewed rows: sellcs
            "dense": dense_csr(),           # density 0.4: blocked
        }

    def test_shape_classes(self):
        shapes = self.reference_shapes()
        got = {name: tune_select.shape_class(MatrixProfile.from_csr(csr))
               for name, csr in shapes.items()}
        assert got["uniform"] == "uniform"
        assert got["highcv"] == "highcv"
        assert got["dense"] == "dense"

    def test_model_agrees_with_heuristic_on_reference_shapes(
            self, small_gate):
        prof = synthetic_profile()
        for name, csr in self.reference_shapes().items():
            heuristic = substrate.choose(csr)
            model = substrate.choose_model(csr, profile=prof)
            assert model == heuristic, (
                f"{name}: heuristic={heuristic} model={model}"
            )
        assert substrate.choose(self.reference_shapes()["tiny"]) == "csr"

    def test_no_profile_falls_back_silently(self, tmp_cache, small_gate,
                                            recwarn):
        for csr in self.reference_shapes().values():
            assert (substrate.resolve(csr, selection="model")
                    == substrate.choose(csr))
        assert len(recwarn) == 0

    def test_env_model_force(self, tmp_cache, small_gate, monkeypatch):
        monkeypatch.setenv(substrate.ENV_VAR, "model")
        assert substrate.forced() == substrate.MODEL
        cache.save_profile(synthetic_profile())
        csr = stencil_csr(12)
        assert substrate.resolve(csr) == substrate.choose_model(csr)
        # an explicit provider pin still beats the env force
        assert substrate.resolve(csr, "csr") == "csr"

    def test_model_pin_on_matrix(self, tmp_cache, small_gate):
        cache.save_profile(synthetic_profile())
        m = grb.Matrix.from_scipy(stencil_csr(12), substrate="model")
        assert m.substrate == "blocked"
        # resolution is concrete: the provider actually runs
        x = grb.Vector.from_dense(np.ones(m.ncols))
        y = grb.Vector.dense(m.nrows)
        grb.mxv(y, None, m, x)
        want = grb.Matrix.from_scipy(stencil_csr(12), substrate="csr")
        yw = grb.Vector.dense(m.nrows)
        grb.mxv(yw, None, want, x)
        assert np.array_equal(y.to_dense(), yw.to_dense())
        # and set_substrate accepts the mode too
        m.set_substrate("csr")
        assert m.substrate == "csr"
        m.set_substrate("model")
        assert m.substrate == "blocked"

    def test_selection_mode_validation(self):
        csr = sp.csr_matrix(np.eye(4))
        with pytest.raises(InvalidValue, match="selection mode"):
            substrate.resolve(csr, selection="typo")

    def test_explicit_heuristic_selection_beats_env_force(
            self, tmp_cache, small_gate, monkeypatch):
        """selection= is a pin for *both* modes: asking for the
        heuristic explicitly bypasses REPRO_SUBSTRATE, just as
        selection='model' does."""
        cache.save_profile(synthetic_profile())
        csr = stencil_csr(12)
        monkeypatch.setenv(substrate.ENV_VAR, "sellcs")
        assert substrate.resolve(csr) == "sellcs"
        assert (substrate.resolve(csr, selection="heuristic")
                == substrate.choose(csr))
        monkeypatch.setenv(substrate.ENV_VAR, "model")
        assert (substrate.resolve(csr, selection="heuristic")
                == substrate.choose(csr))

    def test_model_is_a_reserved_registry_name(self):
        from repro.graphblas.substrate import CsrProvider

        class Impostor(CsrProvider):
            name = "model"

        with pytest.raises(InvalidValue, match="reserved"):
            substrate.register(Impostor)

    def test_profile_rates_steer_the_choice(self, small_gate):
        """The decision is genuinely rate-driven: invert the measured
        rates and the model must abandon the heuristic's pick."""
        csr = stencil_csr(12)
        csr_wins = synthetic_profile(spmv_rates={
            "csr": {"uniform": 9e9, "highcv": 9e9, "dense": 9e9},
            "sellcs": {"uniform": 1e9, "highcv": 1e9, "dense": 1e9},
            "blocked": {"uniform": 1e9, "highcv": 1e9, "dense": 1e9},
        })
        assert substrate.choose_model(csr, profile=csr_wins) == "csr"
        assert substrate.choose(csr) == "blocked"

    def test_guards_override_rates(self):
        """One megarow keeps blocked/sellcs out no matter how fast the
        profile claims they are (padding explosion is structural)."""
        n = 512
        rows = [0] * n + list(range(1, n))
        cols = list(range(n)) + [0] * (n - 1)
        csr = sp.csr_matrix((np.ones(len(rows)), (rows, cols)),
                            shape=(n, n))
        csr.sort_indices()
        p = MatrixProfile.from_csr(csr)
        blocked_fast = synthetic_profile(spmv_rates={
            "csr": {"uniform": 1e9, "highcv": 1e9, "dense": 1e9},
            "sellcs": {"uniform": 9e9, "highcv": 9e9, "dense": 9e9},
            "blocked": {"uniform": 9e10, "highcv": 9e10, "dense": 9e10},
        })
        choice = tune_select.choose_model(
            p, blocked_fast, ("csr", "sellcs", "blocked"))
        assert choice == "csr"

    def test_predict_seconds_shape(self):
        prof = synthetic_profile()
        p = MatrixProfile.from_csr(stencil_csr(8))
        costs = tune_select.predict_seconds(
            p, prof, ("csr", "sellcs", "blocked"))
        assert set(costs) == {"csr", "sellcs", "blocked"}
        assert all(c > 0 for c in costs.values())


# ---------------------------------------------------------------------------
# the micro-benchmark suite (smoke budget) and the CLI
# ---------------------------------------------------------------------------

class TestMicrobench:
    @pytest.fixture(scope="class")
    def measured(self):
        from repro.tune import microbench
        return microbench.measure(microbench.SMOKE)

    def test_profile_valid_and_reloadable(self, measured, tmp_path):
        assert measured.fast is True
        assert measured.triad_bandwidth > 1e8
        assert measured.net_bandwidth > 0
        assert measured.latency >= 0
        assert 0.0 <= measured.overlap_efficiency <= 1.0
        for fmt in substrate.available():
            assert set(measured.spmv_rates[fmt]) == {
                "uniform", "highcv", "dense"}
            assert all(r > 0 for r in measured.spmv_rates[fmt].values())
            assert measured.rbgs_rates[fmt] > 0
        path = str(tmp_path / "measured.json")
        measured.save(path)
        assert MachineProfile.load(path) == measured

    def test_measured_profile_prices_a_run(self, measured, problem8):
        machine = BSPMachine.from_profile(measured)
        res = RefDistRun(problem8, nprocs=2, mg_levels=2,
                         machine=machine).run_cg(max_iters=2)
        assert res.modelled_seconds > 0
        assert res.machine == f"profile:{measured.name}"

    def test_probe_matrices_cover_the_grid(self):
        from repro.tune import microbench
        mats = microbench.probe_matrices(microbench.SMOKE)
        assert set(mats) == {"uniform", "highcv", "dense"}
        dense_p = MatrixProfile.from_csr(mats["dense"])
        assert tune_select.shape_class(dense_p) == "dense"


class TestCli:
    def test_measure_show_clear(self, tmp_cache, capsys):
        from repro.tune.__main__ import main

        assert main(["measure", "--smoke", "--name", "ci-smoke"]) == 0
        out = capsys.readouterr().out
        assert "ci-smoke" in out and "saved to" in out
        assert cache.current_profile() is not None
        assert main(["show"]) == 0
        assert "ci-smoke" in capsys.readouterr().out
        assert main(["clear"]) == 0
        assert "removed" in capsys.readouterr().out
        assert cache.current_profile() is None
        assert main(["show"]) == 1
        assert "error" in capsys.readouterr().err

    def test_measure_out_path(self, tmp_cache, tmp_path, capsys):
        from repro.tune.__main__ import main

        out_path = str(tmp_path / "elsewhere.json")
        assert main(["measure", "--smoke", "--out", out_path]) == 0
        capsys.readouterr()
        assert MachineProfile.load(out_path).schema_version == SCHEMA_VERSION

    def test_scale_without_profile_errors(self, tmp_cache, capsys):
        from repro.tune.__main__ import main

        assert main(["scale"]) == 1
        assert "error" in capsys.readouterr().err

    def test_scale_smoke(self, tmp_cache, capsys):
        from repro.tune.__main__ import main

        cache.save_profile(synthetic_profile())
        rc = main(["scale", "--local-nx", "8", "--iters", "1",
                   "--mg-levels", "2", "--nodes", "2,3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Ref profile/preset" in out
        assert "shape claims (preset):" in out
        assert "shape claims (profile):" in out

    def test_scale_bad_nodes(self, tmp_cache, capsys):
        from repro.tune.__main__ import main

        cache.save_profile(synthetic_profile())
        assert main(["scale", "--nodes", "two,three"]) == 1
        assert "comma-separated" in capsys.readouterr().err


class TestScaleComparison:
    def test_pricing_differs_numerics_do_not(self, tmp_cache):
        """The two sweeps run identical problems; only the machine
        pricing moves the seconds."""
        from repro.tune import scale

        prof = synthetic_profile()
        comp = scale.run_scale(prof, local_nx=8, iterations=1,
                               mg_levels=2, nodes=(2, 3))
        assert comp.preset.ns == comp.measured.ns
        assert comp.measured_machine.mem_bandwidth == prof.triad_bandwidth
        # the synthetic profile is a far slower machine than Table II
        for pre, mea in zip(comp.preset.ref_seconds,
                            comp.measured.ref_seconds):
            assert mea > pre

    def test_unknown_preset_rejected(self):
        from repro.tune import scale

        with pytest.raises(InvalidValue):
            scale.run_scale(synthetic_profile(), preset="riscv")


class TestDistProfilePull:
    """PR-4 follow-up: unpinned simulated runs read the cached
    profile's measured overlap efficiency automatically."""

    def test_unpinned_run_pulls_overlap_efficiency(self, tmp_cache,
                                                   problem8):
        cache.save_profile(synthetic_profile(overlap_efficiency=0.37))
        run = RefDistRun(problem8, nprocs=2, mg_levels=2)
        assert run.machine.overlap_efficiency == 0.37

    def test_no_profile_keeps_preset(self, tmp_cache, problem8):
        run = RefDistRun(problem8, nprocs=2, mg_levels=2)
        assert run.machine.overlap_efficiency == 1.0

    def test_explicit_machine_wins(self, tmp_cache, problem8):
        from repro.dist.bsp import ARM_CLUSTER_NODE

        cache.save_profile(synthetic_profile(overlap_efficiency=0.37))
        run = RefDistRun(problem8, nprocs=2, mg_levels=2,
                         machine=ARM_CLUSTER_NODE)
        assert run.machine.overlap_efficiency == 1.0

    def test_explicit_efficiency_wins(self, tmp_cache, problem8):
        cache.save_profile(synthetic_profile(overlap_efficiency=0.37))
        run = RefDistRun(problem8, nprocs=2, mg_levels=2,
                         overlap_efficiency=0.5)
        assert run.machine.overlap_efficiency == 0.5

    def test_pulled_efficiency_prices_overlap_mode(self, tmp_cache,
                                                   problem8):
        """Residuals stay bit-identical; only the pricing moves."""
        cache.save_profile(synthetic_profile(overlap_efficiency=0.37))
        pulled = RefDistRun(problem8, nprocs=2, mg_levels=2,
                            comm_mode="overlap")
        pinned = RefDistRun(problem8, nprocs=2, mg_levels=2,
                            comm_mode="overlap", overlap_efficiency=1.0)
        res_pulled = pulled.run_cg(max_iters=2)
        res_pinned = pinned.run_cg(max_iters=2)
        assert res_pulled.residuals == res_pinned.residuals
        assert (res_pulled.hidden_comm_seconds
                < res_pinned.hidden_comm_seconds)
