"""select / index-unary operators."""

import numpy as np
import pytest

from repro import graphblas as grb
from repro.graphblas import selectops
from repro.graphblas.select import apply_indexop
from repro.util.errors import InvalidValue


@pytest.fixture()
def A():
    return grb.Matrix.from_dense(
        [[1.0, 2.0, 0.0],
         [3.0, 4.0, 5.0],
         [0.0, 6.0, 7.0]]
    )


class TestSelect:
    def test_tril(self, A):
        C = grb.Matrix.identity(3)
        grb.select(C, selectops.tril, A)
        expected = np.tril(A.to_scipy().toarray())
        np.testing.assert_array_equal(C.to_scipy().toarray(), expected)

    def test_triu_strict(self, A):
        C = grb.Matrix.identity(3)
        grb.select(C, selectops.triu, A, thunk=1)  # strictly above diagonal
        expected = np.triu(A.to_scipy().toarray(), k=1)
        np.testing.assert_array_equal(C.to_scipy().toarray(), expected)

    def test_tril_with_offset(self, A):
        C = grb.Matrix.identity(3)
        grb.select(C, selectops.tril, A, thunk=-1)
        expected = np.tril(A.to_scipy().toarray(), k=-1)
        np.testing.assert_array_equal(C.to_scipy().toarray(), expected)

    def test_diag_predicate(self, A):
        C = grb.Matrix.identity(3)
        grb.select(C, selectops.diag, A)
        assert C.nvals == 3
        np.testing.assert_array_equal(C.diag().to_dense(), [1.0, 4.0, 7.0])

    def test_offdiag(self, A):
        C = grb.Matrix.identity(3)
        grb.select(C, selectops.offdiag, A)
        assert C.diag().nvals == 0
        assert C.nvals == A.nvals - 3

    def test_value_threshold(self, A):
        C = grb.Matrix.identity(3)
        grb.select(C, selectops.valuegt, A, thunk=4.0)
        _, _, vals = C.to_coo()
        assert (vals > 4.0).all()
        assert C.nvals == 3  # 5, 6, 7

    def test_entries_dropped_not_zeroed(self, A):
        C = grb.Matrix.identity(3)
        grb.select(C, selectops.valuelt, A, thunk=2.0)
        assert C.nvals == 1  # only the 1.0 entry survives
        assert C.extract_element(0, 1) is None

    def test_non_boolean_predicate_rejected(self, A):
        C = grb.Matrix.identity(3)
        with pytest.raises(InvalidValue):
            grb.select(C, selectops.rowindex, A)

    def test_tril_triu_partition(self, A):
        """tril(A, -1) + diag(A) + triu(A, 1) recovers A exactly —
        the split the reference SYMGS builds its sweeps from."""
        parts = []
        for op, thunk in ((selectops.tril, -1), (selectops.diag, 0),
                          (selectops.triu, 1)):
            C = grb.Matrix.identity(3)
            grb.select(C, op, A, thunk=thunk)
            parts.append(C.to_scipy().toarray())
        np.testing.assert_array_equal(sum(parts), A.to_scipy().toarray())


class TestSelectVector:
    def test_value_filter(self):
        u = grb.Vector.from_dense([1.0, -2.0, 3.0, -4.0])
        w = grb.Vector.sparse(4)
        grb.select_vector(w, selectops.valuegt, u, thunk=0.0)
        assert w.nvals == 2
        assert w.extract_element(0) == 1.0
        assert w.extract_element(1) is None

    def test_index_filter(self):
        u = grb.Vector.from_dense([5.0, 6.0, 7.0, 8.0])
        w = grb.Vector.sparse(4)
        # tril on vectors: index <= thunk
        grb.select_vector(w, selectops.tril, u, thunk=0)
        # i <= i + 0 always true -> everything kept; use valuelt instead
        assert w.nvals == 4

    def test_non_boolean_rejected(self):
        u = grb.Vector.from_dense([1.0])
        with pytest.raises(InvalidValue):
            grb.select_vector(grb.Vector.sparse(1), selectops.rowindex, u)


class TestApplyIndexOp:
    def test_rowindex_values(self, A):
        C = grb.Matrix.identity(3)
        apply_indexop(C, selectops.rowindex, A, thunk=10)
        rows, _, vals = C.to_coo()
        np.testing.assert_array_equal(vals, rows + 10)

    def test_pattern_preserved(self, A):
        C = grb.Matrix.identity(3)
        apply_indexop(C, selectops.colindex, A)
        assert C.nvals == A.nvals
