"""The convergence-equivalence regenerator."""

import pytest

from repro.experiments import convergence


@pytest.fixture(scope="module")
def result():
    return convergence.run(nx=8, iterations=6, mg_levels=3, nprocs=4)


class TestConvergenceExperiment:
    def test_all_claims(self, result):
        claims = result.shape_claims()
        assert all(claims.values()), claims

    def test_exact_variants_identical(self, result):
        spread = result.max_relative_spread(
            ["alp", "ref", "dist-1d", "dist-ref", "dist-2d"]
        )
        assert spread < 1e-12

    def test_symgs_history_differs_from_rbgs(self, result):
        """Different smoothers: histories must NOT be identical (or the
        substitution study would be vacuous)."""
        assert result.histories["ref-symgs"] != result.histories["alp"]

    def test_render(self, result):
        text = convergence.render(result)
        assert "Convergence equivalence" in text and "FAIL" not in text

    def test_cli(self, capsys):
        from repro.experiments.__main__ import main
        assert main(["convergence", "--iters", "3"]) == 0
        assert "Convergence" in capsys.readouterr().out
