"""HPCG problem generation: operator properties and right-hand sides."""

import numpy as np
import pytest

from repro import graphblas as grb
from repro.hpcg.problem import build_operator, generate_problem
from repro.grid import Grid3D
from repro.util.errors import InvalidValue


class TestOperator:
    def test_shape_and_nnz(self, problem8):
        n = 512
        assert problem8.A.shape == (n, n)
        # nnz equals the sum of stencil degrees
        assert problem8.A.nvals == problem8.grid.row_degree().sum()

    def test_diagonal_is_26(self, problem8):
        np.testing.assert_array_equal(
            problem8.A_diag.to_dense(), np.full(512, 26.0)
        )

    def test_symmetric(self, problem8):
        A = problem8.A.to_scipy()
        assert abs(A - A.T).nnz == 0

    def test_positive_definite_smallest_eig(self, problem4):
        # the HPCG operator is SPD; check via Cholesky-style smallest eig
        dense = problem4.A.to_scipy().toarray()
        eigs = np.linalg.eigvalsh(dense)
        assert eigs.min() > 0

    def test_row_nnz_range(self, problem8):
        A = problem8.A.to_scipy()
        row_nnz = np.diff(A.indptr)
        assert row_nnz.min() == 8 and row_nnz.max() == 27

    def test_build_operator_standalone(self):
        A = build_operator(Grid3D(2, 2, 2))
        assert A.shape == (8, 8)
        assert A.nvals == 64  # every pair within the single octet


class TestRightHandSide:
    def test_reference_b_is_A_times_ones(self, problem8):
        A = problem8.A.to_scipy()
        np.testing.assert_allclose(
            problem8.b.to_dense(), A @ np.ones(512)
        )

    def test_reference_exact_solution_is_ones(self, problem8):
        assert problem8.residual_norm(problem8.exact) == pytest.approx(0.0, abs=1e-10)

    def test_ones_b_style(self):
        p = generate_problem(4, b_style="ones")
        np.testing.assert_array_equal(p.b.to_dense(), np.ones(64))

    def test_unknown_b_style(self):
        with pytest.raises(InvalidValue):
            generate_problem(4, b_style="zeros")

    def test_x0_is_zero(self, problem8):
        np.testing.assert_array_equal(problem8.x0.to_dense(), np.zeros(512))

    def test_anisotropic_grid(self):
        p = generate_problem(4, 6, 2)
        assert p.grid.dims == (4, 6, 2)
        assert p.n == 48

    def test_ny_nz_default_to_nx(self):
        assert generate_problem(4).grid.dims == (4, 4, 4)

    def test_residual_norm_of_x0(self, problem8):
        # ||b - A*0|| = ||b||
        assert problem8.residual_norm(problem8.x0) == pytest.approx(
            float(np.linalg.norm(problem8.b.to_dense()))
        )
