"""Smoothers: RBGS (GraphBLAS), fused RBGS, Jacobi, and Ref equivalence."""

import numpy as np
import pytest

from repro import graphblas as grb
from repro.graphblas.fused import FusedRBGSSmoother
from repro.hpcg.coloring import color_masks, lattice_coloring
from repro.hpcg.smoothers import JacobiSmoother, RBGSSmoother
from repro.ref.sgs import RefRBGS
from repro.util.errors import DimensionMismatch, InvalidValue


@pytest.fixture()
def setup8(problem8, rng):
    colors = color_masks(lattice_coloring(problem8.grid))
    r = grb.Vector.from_dense(rng.standard_normal(problem8.n))
    return problem8, colors, r


class TestRBGS:
    def test_reduces_residual(self, setup8):
        problem, colors, r = setup8
        smoother = RBGSSmoother(problem.A, problem.A_diag, colors)
        z = grb.Vector.dense(problem.n, 0.0)
        smoother.smooth(z, r)
        A = problem.A.to_scipy()
        res = np.linalg.norm(r.to_dense() - A @ z.to_dense())
        assert res < np.linalg.norm(r.to_dense())

    def test_more_sweeps_smaller_residual(self, setup8):
        problem, colors, r = setup8
        smoother = RBGSSmoother(problem.A, problem.A_diag, colors)
        A = problem.A.to_scipy()
        rd = r.to_dense()
        res = []
        z = grb.Vector.dense(problem.n, 0.0)
        for sweeps in range(1, 4):
            smoother.smooth(z, r)
            res.append(np.linalg.norm(rd - A @ z.to_dense()))
        assert res[0] > res[1] > res[2]

    def test_matches_ref_rbgs_exactly(self, setup8):
        problem, colors, r = setup8
        smoother = RBGSSmoother(problem.A, problem.A_diag, colors)
        z = grb.Vector.dense(problem.n, 0.0)
        smoother.smooth(z, r, sweeps=2)

        ref = RefRBGS(problem.A.to_scipy(), lattice_coloring(problem.grid))
        z_ref = np.zeros(problem.n)
        ref.smooth(z_ref, r.to_dense(), sweeps=2)
        np.testing.assert_array_equal(z.to_dense(), z_ref)

    def test_forward_only_differs_from_symmetric(self, setup8):
        problem, colors, r = setup8
        s = RBGSSmoother(problem.A, problem.A_diag, colors)
        z1 = grb.Vector.dense(problem.n, 0.0)
        z2 = grb.Vector.dense(problem.n, 0.0)
        s.forward(z1, r)
        s.smooth(z2, r)
        assert not np.array_equal(z1.to_dense(), z2.to_dense())

    def test_exact_on_diagonal_matrix(self):
        # with a diagonal operator one sweep solves exactly
        D = grb.Matrix.from_dense(np.diag([2.0, 4.0, 8.0]))
        diag = D.diag()
        mask = grb.Vector.from_coo([0, 1, 2], [True] * 3, 3, dtype=bool)
        s = RBGSSmoother(D, diag, [mask])
        r = grb.Vector.from_dense([2.0, 8.0, 32.0])
        z = grb.Vector.dense(3, 0.0)
        s.forward(z, r)
        np.testing.assert_allclose(z.to_dense(), [1.0, 2.0, 4.0])

    def test_dimension_checks(self, setup8):
        problem, colors, r = setup8
        s = RBGSSmoother(problem.A, problem.A_diag, colors)
        with pytest.raises(DimensionMismatch):
            s.smooth(grb.Vector.dense(3), r)

    def test_rejects_empty_colors(self, problem8):
        with pytest.raises(InvalidValue):
            RBGSSmoother(problem8.A, problem8.A_diag, [])

    def test_rejects_bad_diag_size(self, problem8):
        colors = color_masks(lattice_coloring(problem8.grid))
        with pytest.raises(DimensionMismatch):
            RBGSSmoother(problem8.A, grb.Vector.dense(3), colors)

    def test_rejects_rectangular(self):
        R = grb.Matrix.from_coo([0], [1], [1.0], 2, 3)
        with pytest.raises(InvalidValue):
            RBGSSmoother(R, grb.Vector.dense(2), [grb.Vector.sparse(2, dtype=bool)])


class TestFusedRBGS:
    def test_bit_identical_to_unfused(self, setup8):
        problem, colors, r = setup8
        base = RBGSSmoother(problem.A, problem.A_diag, colors)
        fused = FusedRBGSSmoother(problem.A, problem.A_diag, colors)
        z1 = grb.Vector.dense(problem.n, 0.0)
        z2 = grb.Vector.dense(problem.n, 0.0)
        base.smooth(z1, r, sweeps=2)
        fused.smooth(z2, r, sweeps=2)
        np.testing.assert_array_equal(z1.to_dense(), z2.to_dense())

    def test_fused_moves_fewer_bytes(self, setup8):
        # pin the reference transcription: since the fused-sweep PR the
        # default RBGSSmoother takes the fused path (and records the
        # same fused traffic this test wants to see beaten)
        problem, colors, r = setup8
        base = RBGSSmoother(problem.A, problem.A_diag, colors, fused=False)
        fused = FusedRBGSSmoother(problem.A, problem.A_diag, colors)
        logs = []
        for smoother in (base, fused):
            z = grb.Vector.dense(problem.n, 0.0)
            log = grb.backend.EventLog()
            with grb.backend.collect(log):
                smoother.smooth(z, r)
            logs.append(log.total("bytes"))
        assert logs[1] < logs[0]

    def test_rejects_empty_colors(self, problem8):
        with pytest.raises(InvalidValue):
            FusedRBGSSmoother(problem8.A, problem8.A_diag, [])


class TestJacobi:
    def test_reduces_residual(self, setup8):
        problem, colors, r = setup8
        s = JacobiSmoother(problem.A, problem.A_diag)
        z = grb.Vector.dense(problem.n, 0.0)
        s.smooth(z, r, sweeps=3)
        A = problem.A.to_scipy()
        res = np.linalg.norm(r.to_dense() - A @ z.to_dense())
        assert res < np.linalg.norm(r.to_dense())

    def test_weaker_than_rbgs(self, setup8):
        problem, colors, r = setup8
        A = problem.A.to_scipy()
        rd = r.to_dense()
        z_j = grb.Vector.dense(problem.n, 0.0)
        JacobiSmoother(problem.A, problem.A_diag).smooth(z_j, r)
        z_g = grb.Vector.dense(problem.n, 0.0)
        RBGSSmoother(problem.A, problem.A_diag, colors).smooth(z_g, r)
        res_j = np.linalg.norm(rd - A @ z_j.to_dense())
        res_g = np.linalg.norm(rd - A @ z_g.to_dense())
        assert res_g < res_j

    def test_bad_omega(self, problem8):
        with pytest.raises(InvalidValue):
            JacobiSmoother(problem8.A, problem8.A_diag, omega=0.0)
        with pytest.raises(InvalidValue):
            JacobiSmoother(problem8.A, problem8.A_diag, omega=1.5)
