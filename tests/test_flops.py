"""Formula flop accounting."""

import pytest

from repro.hpcg.flops import FlopCounts, cg_iteration_flops


class TestFlopCounts:
    def test_add_and_total(self):
        fc = FlopCounts()
        fc.add("spmv", 100)
        fc.add("spmv", 50)
        fc.add("dot", 10)
        assert fc.counts["spmv"] == 150
        assert fc.total == 160

    def test_merged_sorted(self):
        fc = FlopCounts()
        fc.add("z", 1)
        fc.add("a", 2)
        assert list(fc.merged()) == ["a", "z"]


class TestCgIterationFlops:
    def test_unpreconditioned(self):
        fc = cg_iteration_flops(n=100, nnz=1000, mg_nnz_per_level=[],
                                mg_n_per_level=[])
        assert fc.counts["spmv"] == 2000
        assert fc.counts["dot"] == 8 * 100
        assert fc.counts["waxpby"] == 9 * 100
        assert "rbgs" not in fc.counts

    def test_with_mg_levels(self):
        fc = cg_iteration_flops(
            n=512, nnz=10000,
            mg_nnz_per_level=[10000, 1200, 150],
            mg_n_per_level=[512, 64, 8],
        )
        # pre+post symmetric passes at non-coarsest, one at coarsest
        assert fc.counts["rbgs"] == 2 * 4 * 10000 + 2 * 4 * 1200 + 1 * 4 * 150
        # one residual spmv per non-coarsest level
        assert fc.counts["mg_spmv"] == (2 * 10000 + 2 * 512) + (2 * 1200 + 2 * 64)
        # one restrict+refine pair per transfer
        assert fc.counts["restrict"] == 2 * 64 + 2 * 8
        assert fc.counts["refine"] == fc.counts["restrict"]

    def test_ref_restriction_not_counted(self):
        alp = cg_iteration_flops(8, 10, [10, 5], [8, 1], grb_restriction=True)
        ref = cg_iteration_flops(8, 10, [10, 5], [8, 1], grb_restriction=False)
        assert "restrict" in alp.counts and "restrict" not in ref.counts

    def test_rbgs_dominates(self):
        fc = cg_iteration_flops(
            n=4096, nnz=110000,
            mg_nnz_per_level=[110000, 13000, 1500, 180],
            mg_n_per_level=[4096, 512, 64, 8],
        )
        assert fc.counts["rbgs"] > fc.total / 2
