"""The 7-point stencil option: classic red-black territory."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.grid import Grid3D, stencil_7pt_coo, stencil_coo
from repro.hpcg import run_hpcg
from repro.hpcg.coloring import (
    greedy_coloring,
    lattice_coloring,
    num_colors,
    validate_coloring,
)
from repro.hpcg.problem import generate_problem
from repro.util.errors import InvalidValue


class TestStencil7pt:
    def test_row_degrees(self):
        g = Grid3D(4, 4, 4)
        rows, cols, vals = stencil_7pt_coo(g)
        A = sp.csr_matrix((vals, (rows, cols)), shape=(g.npoints, g.npoints))
        row_nnz = np.diff(A.indptr)
        assert row_nnz.min() == 4  # corner: diag + 3 faces
        assert row_nnz.max() == 7  # interior

    def test_values(self):
        g = Grid3D(3, 3, 3)
        rows, cols, vals = stencil_7pt_coo(g)
        diag = rows == cols
        assert (vals[diag] == 6.0).all()
        assert (vals[~diag] == -1.0).all()

    def test_symmetric_positive_definite(self):
        g = Grid3D(3, 3, 3)
        rows, cols, vals = stencil_7pt_coo(g)
        A = sp.csr_matrix((vals, (rows, cols)), shape=(27, 27)).toarray()
        np.testing.assert_array_equal(A, A.T)
        assert np.linalg.eigvalsh(A).min() > 0

    def test_dispatch(self):
        g = Grid3D(2, 2, 2)
        r27, _, _ = stencil_coo(g, "27pt")
        r7, _, _ = stencil_coo(g, "7pt")
        assert r27.size > r7.size
        with pytest.raises(ValueError):
            stencil_coo(g, "5pt")


class TestRedBlackColoring:
    def test_greedy_finds_two_colors(self):
        problem = generate_problem(6, stencil="7pt")
        colors = greedy_coloring(problem.A)
        assert num_colors(colors) == 2
        assert validate_coloring(problem.A, colors)

    def test_lattice_7pt_matches_greedy(self):
        problem = generate_problem(6, stencil="7pt")
        np.testing.assert_array_equal(
            greedy_coloring(problem.A),
            lattice_coloring(problem.grid, "7pt"),
        )

    def test_lattice_7pt_valid(self):
        problem = generate_problem(4, stencil="7pt")
        assert validate_coloring(
            problem.A, lattice_coloring(problem.grid, "7pt")
        )

    def test_unknown_stencil_rejected(self):
        with pytest.raises(InvalidValue):
            lattice_coloring(Grid3D(2, 2, 2), "5pt")

    def test_27pt_colors_invalid_for_nothing(self):
        """The 8-colouring remains valid (finer partitions stay valid)
        on the 7-point operator, just suboptimal."""
        problem = generate_problem(4, stencil="7pt")
        assert validate_coloring(
            problem.A, lattice_coloring(problem.grid, "27pt")
        )


class TestEndToEnd7pt:
    def test_full_benchmark_runs(self):
        result = run_hpcg(nx=8, max_iters=10, mg_levels=3)
        result7 = run_hpcg(nx=8, max_iters=10, mg_levels=3,
                           validate_symmetry=True, b_style="reference",
                           problem=generate_problem(8, stencil="7pt"))
        assert result7.symmetry.passed
        assert result7.cg.relative_residual < 1e-6
        # the 7-point operator is better conditioned per nnz; both solve
        assert result.cg.relative_residual < 1e-6

    def test_alp_ref_parity_on_7pt(self):
        from repro.ref import run_ref_hpcg
        problem = generate_problem(8, stencil="7pt")
        alp = run_hpcg(nx=0, problem=problem, max_iters=8, mg_levels=3,
                       validate_symmetry=False)
        ref = run_ref_hpcg(nx=0, problem=problem, max_iters=8, mg_levels=3)
        np.testing.assert_allclose(alp.cg.residuals, ref.cg.residuals,
                                   rtol=1e-12)
