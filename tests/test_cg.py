"""The CG solver: convergence, fixed-iteration mode, preconditioning."""

import numpy as np
import pytest

from repro import graphblas as grb
from repro.hpcg.cg import pcg
from repro.hpcg.multigrid import MGPreconditioner, build_hierarchy
from repro.util.errors import DimensionMismatch
from repro.util.timer import TimerRegistry


class TestPlainCG:
    def test_converges_to_exact(self, problem8):
        x = problem8.x0.dup()
        res = pcg(problem8.A, problem8.b, x, max_iters=200, tolerance=1e-10)
        assert res.converged
        np.testing.assert_allclose(x.to_dense(), np.ones(problem8.n),
                                   rtol=1e-6)

    def test_matches_scipy_solution(self, problem4, rng):
        import scipy.sparse.linalg as spla
        b = rng.standard_normal(problem4.n)
        bx = grb.Vector.from_dense(b)
        x = grb.Vector.dense(problem4.n, 0.0)
        pcg(problem4.A, bx, x, max_iters=300, tolerance=1e-12)
        expected = spla.spsolve(problem4.A.to_scipy().tocsc(), b)
        np.testing.assert_allclose(x.to_dense(), expected, rtol=1e-6)

    def test_residual_history_monotone_overall(self, problem8):
        x = problem8.x0.dup()
        res = pcg(problem8.A, problem8.b, x, max_iters=20)
        assert res.residuals[-1] < res.residuals[0]

    def test_fixed_iterations_mode(self, problem8):
        x = problem8.x0.dup()
        res = pcg(problem8.A, problem8.b, x, max_iters=7, tolerance=0.0)
        assert res.iterations == 7
        assert not res.converged  # convergence flag needs a tolerance
        assert len(res.residuals) == 8  # initial + one per iteration

    def test_tolerance_early_exit(self, problem8):
        x = problem8.x0.dup()
        res = pcg(problem8.A, problem8.b, x, max_iters=500, tolerance=1e-6)
        assert res.converged and res.iterations < 500
        assert res.relative_residual <= 1e-6

    def test_size_checks(self, problem4):
        with pytest.raises(DimensionMismatch):
            pcg(problem4.A, grb.Vector.dense(3), problem4.x0.dup())


class TestPreconditionedCG:
    def test_mg_reduces_iterations(self, problem16):
        tol = 1e-8
        x1 = problem16.x0.dup()
        plain = pcg(problem16.A, problem16.b, x1, max_iters=500, tolerance=tol)
        precond = MGPreconditioner(build_hierarchy(problem16, levels=4))
        x2 = problem16.x0.dup()
        mg = pcg(problem16.A, problem16.b, x2, preconditioner=precond,
                 max_iters=500, tolerance=tol)
        assert mg.converged and plain.converged
        assert mg.iterations < plain.iterations

    def test_mg_solution_correct(self, problem8):
        precond = MGPreconditioner(build_hierarchy(problem8, levels=3))
        x = problem8.x0.dup()
        pcg(problem8.A, problem8.b, x, preconditioner=precond,
            max_iters=100, tolerance=1e-10)
        np.testing.assert_allclose(x.to_dense(), np.ones(problem8.n),
                                   rtol=1e-6)

    def test_timers_populated(self, problem8):
        timers = TimerRegistry()
        precond = MGPreconditioner(build_hierarchy(problem8, levels=2),
                                   timers=timers)
        x = problem8.x0.dup()
        pcg(problem8.A, problem8.b, x, preconditioner=precond,
            max_iters=3, timers=timers)
        assert timers.total("cg/spmv") > 0
        assert timers.total("cg/dot") > 0
        assert timers.total("cg/mg") > 0
        assert timers.total("mg/L0/rbgs") > 0

    def test_exact_initial_guess_short_circuits(self, problem8):
        x = problem8.exact.dup()
        res = pcg(problem8.A, problem8.b, x, max_iters=3, tolerance=1e-8)
        assert res.normr0 == pytest.approx(0.0, abs=1e-9)
        assert res.converged and res.iterations == 0


class TestCGResult:
    def test_relative_residual(self, problem8):
        x = problem8.x0.dup()
        res = pcg(problem8.A, problem8.b, x, max_iters=5)
        assert res.relative_residual == pytest.approx(
            res.normr / res.normr0
        )

    def test_x_is_inplace(self, problem8):
        x = problem8.x0.dup()
        res = pcg(problem8.A, problem8.b, x, max_iters=5)
        assert res.x is x
