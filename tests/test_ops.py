"""Unary/binary operators: scalar, vectorised, registry."""

import numpy as np
import pytest

from repro.graphblas import ops
from repro.graphblas.ops import BinaryOp, UnaryOp
from repro.util.errors import InvalidValue


class TestUnaryOps:
    def test_identity(self):
        assert ops.identity(3.5) == 3.5

    def test_ainv(self):
        assert ops.ainv(2.0) == -2.0

    def test_minv(self):
        assert ops.minv(4.0) == 0.25

    def test_abs(self):
        assert ops.abs_(-7) == 7

    def test_lnot(self):
        assert bool(ops.lnot(True)) is False

    def test_sqrt(self):
        assert ops.sqrt(9.0) == 3.0

    def test_vectorized_matches_scalar(self):
        x = np.array([-1.0, 2.0, -3.0])
        np.testing.assert_array_equal(ops.abs_.vectorized(x), np.abs(x))

    def test_vectorized_python_fallback(self):
        op = UnaryOp("double", lambda v: 2 * v)
        x = np.array([1.0, 2.0])
        np.testing.assert_array_equal(op.vectorized(x), [2.0, 4.0])

    def test_one_returns_one(self):
        assert ops.one(17.5) == 1.0


class TestBinaryOps:
    def test_plus(self):
        assert ops.plus(2, 3) == 5

    def test_minus_not_commutative_flag(self):
        assert not ops.minus.commutative

    def test_times_flags(self):
        assert ops.times.commutative and ops.times.associative

    def test_min_max(self):
        assert ops.min_(2, 5) == 2
        assert ops.max_(2, 5) == 5

    def test_first_second(self):
        assert ops.first(1, 9) == 1
        assert ops.second(1, 9) == 9

    def test_logical(self):
        assert bool(ops.land(True, False)) is False
        assert bool(ops.lor(True, False)) is True
        assert bool(ops.lxor(True, True)) is False

    def test_eq_ne(self):
        assert bool(ops.eq(3, 3)) and bool(ops.ne(3, 4))

    def test_div_pow(self):
        assert ops.div(6.0, 3.0) == 2.0
        assert ops.pow_(2.0, 10) == 1024.0

    def test_vectorized_matches_scalar(self):
        x = np.array([1.0, 5.0])
        y = np.array([4.0, 2.0])
        np.testing.assert_array_equal(ops.min_.vectorized(x, y), [1.0, 2.0])

    def test_vectorized_python_fallback(self):
        x = np.array([1.0, 5.0])
        y = np.array([4.0, 2.0])
        np.testing.assert_array_equal(ops.first.vectorized(x, y), x)
        np.testing.assert_array_equal(ops.second.vectorized(x, y), y)

    def test_fallback_result_dtype(self):
        x = np.array([1, 5], dtype=np.int32)
        y = np.array([4.0, 2.0])
        out = ops.second.vectorized(x, y)
        assert out.dtype == np.float64


class TestLookup:
    def test_lookup_plus(self):
        assert ops.lookup("plus") is ops.plus

    def test_lookup_unary(self):
        assert ops.lookup("abs") is ops.abs_

    def test_lookup_unknown(self):
        with pytest.raises(InvalidValue):
            ops.lookup("frobnicate")
