"""Container resize and package doctests."""

import doctest

import numpy as np
import pytest

from repro import graphblas as grb
from repro.util.errors import InvalidValue


class TestVectorResize:
    def test_grow_keeps_entries(self):
        v = grb.Vector.from_coo([0, 2], [1.0, 3.0], 3)
        v.resize(6)
        assert v.size == 6
        assert v.extract_element(2) == 3.0
        assert v.extract_element(5) is None

    def test_shrink_drops_tail(self):
        v = grb.Vector.from_dense([1.0, 2.0, 3.0, 4.0])
        v.resize(2)
        assert v.size == 2 and v.nvals == 2
        np.testing.assert_array_equal(v.to_dense(), [1.0, 2.0])

    def test_same_size_noop_keeps_version(self):
        v = grb.Vector.dense(3, 1.0)
        before = v.version
        v.resize(3)
        assert v.version == before

    def test_negative_rejected(self):
        with pytest.raises(InvalidValue):
            grb.Vector.dense(2, 0.0).resize(-1)

    def test_resize_bumps_version(self):
        v = grb.Vector.dense(2, 0.0)
        before = v.version
        v.resize(5)
        assert v.version > before


class TestMatrixResize:
    def test_grow(self):
        A = grb.Matrix.from_dense([[1.0, 2.0], [3.0, 4.0]])
        A.resize(3, 4)
        assert A.shape == (3, 4) and A.nvals == 4
        assert A.extract_element(1, 1) == 4.0

    def test_shrink_drops_outside(self):
        A = grb.Matrix.from_dense([[1.0, 2.0], [3.0, 4.0]])
        A.resize(1, 2)
        assert A.shape == (1, 2) and A.nvals == 2
        assert A.extract_element(0, 1) == 2.0

    def test_caches_invalidated(self):
        A = grb.Matrix.from_dense([[1.0, 2.0], [3.0, 4.0]])
        t1 = A._transposed_csr()
        A.resize(2, 3)
        assert A._transposed_csr().shape == (3, 2)

    def test_negative_rejected(self):
        with pytest.raises(InvalidValue):
            grb.Matrix.identity(2).resize(-1, 2)


class TestDoctests:
    def test_graphblas_package_doctest(self):
        import repro.graphblas
        failures, _tested = doctest.testmod(repro.graphblas, verbose=False)
        assert failures == 0
