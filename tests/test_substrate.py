"""The substrate subsystem: providers, registry, selection, bit-exactness.

The load-bearing guarantee is the one the paper's architecture rests
on: the storage format / kernel provider behind a ``Matrix`` is
invisible to algorithm code.  Every provider must match the scipy CSR
reference **bit for bit** — same values, same signed zeros — on mxv,
masked mxv, the transpose descriptor, the fused RBGS path, and whole
CG+MG solves.
"""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import graphblas as grb
from repro.graphblas import substrate
from repro.graphblas.matrix import _MASK_CACHE_LIMIT
from repro.graphblas.substrate import (
    BlockedDenseProvider,
    CsrProvider,
    KernelProvider,
    MatrixProfile,
    SellCSigmaProvider,
)
from repro.hpcg.cg import pcg
from repro.hpcg.coloring import color_masks, lattice_coloring
from repro.hpcg.multigrid import MGPreconditioner, build_hierarchy
from repro.hpcg.problem import generate_problem
from repro.hpcg.smoothers import RBGSSmoother
from repro.util.errors import InvalidValue

common = settings(max_examples=25,
                  suppress_health_check=[HealthCheck.too_slow], deadline=None)

ALL_PROVIDERS = [
    CsrProvider,
    SellCSigmaProvider,
    BlockedDenseProvider,
]
NON_REF = [p for p in ALL_PROVIDERS if p is not CsrProvider]


def random_csr(rng, n, m, density=0.2):
    mat = sp.random(n, m, density=density, random_state=rng, format="csr")
    mat.sort_indices()
    return mat


# ---------------------------------------------------------------------------
# hypothesis strategies
# ---------------------------------------------------------------------------

@st.composite
def csr_and_x(draw, max_n=24):
    """A random CSR (possibly with empty rows, negative values, zeros)
    plus a conforming dense vector."""
    n = draw(st.integers(1, max_n))
    m = draw(st.integers(1, max_n))
    nnz = draw(st.integers(0, min(n * m, 4 * max_n)))
    cells = draw(st.lists(
        st.tuples(st.integers(0, n - 1), st.integers(0, m - 1)),
        min_size=nnz, max_size=nnz, unique=True,
    ))
    vals = draw(st.lists(
        st.floats(-1e6, 1e6, allow_nan=False), min_size=len(cells),
        max_size=len(cells),
    ))
    rows = np.array([c[0] for c in cells], dtype=np.int64)
    cols = np.array([c[1] for c in cells], dtype=np.int64)
    csr = sp.csr_matrix((np.array(vals, dtype=np.float64), (rows, cols)),
                        shape=(n, m))
    csr.sort_indices()
    x = np.array(
        draw(st.lists(st.floats(-1e3, 1e3, allow_nan=False),
                      min_size=m, max_size=m)),
        dtype=np.float64,
    )
    return csr, x


# ---------------------------------------------------------------------------
# provider-level bit-exact equivalence (the tentpole contract)
# ---------------------------------------------------------------------------

class TestProviderEquivalence:
    @pytest.mark.parametrize("cls", NON_REF)
    @common
    @given(data=csr_and_x())
    def test_mxv_bit_identical_random(self, cls, data):
        csr, x = data
        want = CsrProvider(csr).mxv(x)
        got = cls(csr).mxv(x)
        assert got.dtype == want.dtype
        assert np.array_equal(got, want)
        # signed zeros too: padding must be masked, not added
        assert np.array_equal(np.signbit(got), np.signbit(want))

    @pytest.mark.parametrize("cls", NON_REF)
    @common
    @given(data=csr_and_x())
    def test_extract_rows_bit_identical(self, cls, data):
        csr, x = data
        rows = np.arange(0, csr.shape[0], 2, dtype=np.int64)
        want = CsrProvider(csr).extract_rows(rows).mxv(x)
        got = cls(csr).extract_rows(rows).mxv(x)
        assert np.array_equal(got, want)

    @pytest.mark.parametrize("cls", NON_REF)
    def test_mxv_bit_identical_stencil(self, cls, problem8, rng):
        csr = problem8.A.to_scipy()
        x = rng.standard_normal(problem8.n)
        assert np.array_equal(cls(csr).mxv(x), CsrProvider(csr).mxv(x))

    @pytest.mark.parametrize("cls", NON_REF)
    def test_transpose_bit_identical(self, cls, problem8, rng):
        csr_t = problem8.A.to_scipy().T.tocsr()
        csr_t.sort_indices()
        x = rng.standard_normal(problem8.n)
        assert np.array_equal(cls(csr_t).mxv(x), CsrProvider(csr_t).mxv(x))

    @pytest.mark.parametrize("cls", NON_REF)
    @pytest.mark.parametrize("kwargs", [{}, None])
    def test_awkward_shapes(self, cls, kwargs, rng):
        """Sizes that straddle chunk/block boundaries, plus empties."""
        if kwargs is None:
            kwargs = ({"chunk": 3, "sigma": 5}
                      if cls is SellCSigmaProvider else {"block_rows": 3})
        for n, m in [(1, 1), (2, 37), (33, 5), (63, 64), (65, 1)]:
            csr = random_csr(rng, n, m, density=0.3)
            x = rng.standard_normal(m)
            got = cls(csr, **kwargs).mxv(x)
            assert np.array_equal(got, CsrProvider(csr).mxv(x)), (n, m)

    @pytest.mark.parametrize("cls", ALL_PROVIDERS)
    def test_empty_matrix(self, cls):
        csr = sp.csr_matrix((5, 7))
        prov = cls(csr)
        assert np.array_equal(prov.mxv(np.ones(7)), np.zeros(5))
        assert prov.nnz == 0 and prov.stored_entries() == 0

    @pytest.mark.parametrize("cls", ALL_PROVIDERS)
    def test_duplicate_entries_canonicalised(self, cls):
        """Raw CSRs may carry duplicate coordinates; every provider must
        merge them (a dense block cannot represent duplicates)."""
        dup = sp.csr_matrix(
            (np.array([1.0, 2.0]), np.array([0, 0]), np.array([0, 2])),
            shape=(1, 1))
        prov = cls(dup)
        assert prov.nnz == 1
        assert prov.mxv(np.array([1.0]))[0] == 3.0
        m = grb.Matrix.from_scipy(dup, substrate=cls.name)
        assert m.nvals == 1 and m.extract_element(0, 0) == 3.0
        # canonicalisation must not mutate the caller's matrix in place
        assert dup.nnz == 2

    @pytest.mark.parametrize("cls", NON_REF)
    def test_extract_rows_keeps_format_parameters(self, cls):
        kwargs = ({"chunk": 8, "sigma": 8} if cls is SellCSigmaProvider
                  else {"block_rows": 7})
        csr = sp.random(40, 30, density=0.3,
                        random_state=np.random.default_rng(7), format="csr")
        sub = cls(csr, **kwargs).extract_rows(np.arange(0, 40, 2))
        for attr, val in kwargs.items():
            assert getattr(sub, attr) == val

    @pytest.mark.parametrize("cls", NON_REF)
    def test_bool_falls_back_to_scipy_semantics(self, cls):
        csr = sp.csr_matrix(np.array([[True, False], [True, True]]))
        x = np.array([True, True])
        assert np.array_equal(cls(csr).mxv(x), CsrProvider(csr).mxv(x))


class TestProviderInterface:
    @pytest.mark.parametrize("cls", ALL_PROVIDERS)
    def test_surface(self, cls, problem4):
        prov = cls(problem4.A.to_scipy())
        assert isinstance(prov, KernelProvider)
        assert prov.shape == (problem4.n, problem4.n)
        assert prov.row_nnz.sum() == prov.nnz
        assert prov.stored_entries() >= prov.nnz
        flops, nbytes = prov.mxv_traffic()
        assert flops == 2 * prov.nnz and nbytes > 0
        f2, b2 = prov.fused_mxv_traffic(3)
        assert f2 > flops
        # the reduce/ewise cold paths read the canonical storage
        assert prov.reduce_values().size == prov.nnz
        assert prov.csr.nnz == prov.nnz
        assert isinstance(prov.profile(), MatrixProfile)

    def test_padded_formats_price_their_padding(self, rng):
        """A skewed matrix must cost more in padded formats than CSR."""
        rows = np.concatenate([np.zeros(50, dtype=np.int64),
                               np.arange(1, 40, dtype=np.int64)])
        cols = np.concatenate([np.arange(50, dtype=np.int64),
                               np.zeros(39, dtype=np.int64)])
        csr = sp.csr_matrix(
            (np.ones(89), (rows, cols)), shape=(40, 50))
        sell = SellCSigmaProvider(csr, chunk=8, sigma=8)
        assert sell.stored_entries() > sell.nnz
        assert sell.mxv_traffic()[1] > CsrProvider(csr).mxv_traffic()[1]


# ---------------------------------------------------------------------------
# registry + selection heuristic
# ---------------------------------------------------------------------------

class TestRegistry:
    def test_builtins_registered(self):
        assert set(substrate.available()) >= {"csr", "sellcs", "blocked"}

    def test_get_unknown_raises(self):
        with pytest.raises(InvalidValue, match="unknown substrate"):
            substrate.get("hyperspeed")

    def test_register_custom_provider(self, monkeypatch):
        class EchoProvider(CsrProvider):
            name = "Echo-Test"  # mixed case: env forcing must still work

        substrate.register(EchoProvider)
        try:
            assert substrate.get("Echo-Test") is EchoProvider
            m = grb.Matrix.from_dense([[1.0, 2.0]], substrate="Echo-Test")
            assert m.substrate == "Echo-Test"
            monkeypatch.setenv(substrate.ENV_VAR, "Echo-Test")
            assert substrate.forced() == "Echo-Test"
        finally:
            substrate.registry._REGISTRY.pop("Echo-Test")

    def test_register_refuses_to_shadow_builtin(self):
        class Impostor(CsrProvider):
            name = "csr"

        with pytest.raises(InvalidValue, match="already registered"):
            substrate.register(Impostor)
        assert substrate.get("csr") is CsrProvider
        # re-registering the same class is a no-op, not an error
        substrate.register(CsrProvider)
        # and explicit replacement is possible, then restorable
        substrate.register(Impostor, replace=True)
        try:
            assert substrate.get("csr") is Impostor
        finally:
            substrate.register(CsrProvider, replace=True)

    def test_env_force_and_validation(self, monkeypatch):
        monkeypatch.setenv(substrate.ENV_VAR, "sellcs")
        assert substrate.forced() == "sellcs"
        m = grb.Matrix.from_dense(np.eye(3))
        assert m.substrate == "sellcs"
        monkeypatch.setenv(substrate.ENV_VAR, "auto")
        assert substrate.forced() is None
        monkeypatch.setenv(substrate.ENV_VAR, "tyop")
        with pytest.raises(InvalidValue):
            substrate.forced()

    def test_explicit_pin_beats_env_force(self, monkeypatch):
        monkeypatch.setenv(substrate.ENV_VAR, "sellcs")
        m = grb.Matrix.from_dense(np.eye(3), substrate="blocked")
        assert m.substrate == "blocked"

    def test_set_substrate_roundtrip(self, problem4, rng, monkeypatch):
        monkeypatch.delenv(substrate.ENV_VAR, raising=False)
        m = grb.Matrix.from_scipy(problem4.A.to_scipy())
        x = grb.Vector.from_dense(rng.standard_normal(problem4.n))
        y0, y1 = grb.Vector.dense(problem4.n), grb.Vector.dense(problem4.n)
        grb.mxv(y0, None, m, x)
        m.set_substrate("blocked")
        assert m.substrate == "blocked"
        grb.mxv(y1, None, m, x)
        assert np.array_equal(y0.to_dense(), y1.to_dense())
        m.set_substrate(None)
        assert m.substrate == "csr"  # small matrix -> heuristic stays CSR


class TestHeuristic:
    def test_small_matrices_stay_csr(self, problem8):
        assert substrate.choose(problem8.A.to_scipy()) == "csr"

    def test_stencil_rows_pick_blocked(self):
        # a large fixed-row-length stencil-like band matrix
        n = substrate.AUTO_MIN_SIZE
        csr = sp.diags([1.0] * 9, offsets=range(-4, 5), shape=(n, n),
                       format="csr")
        prof = MatrixProfile.from_csr(csr.tocsr())
        assert prof.cv_row_nnz < 0.25
        assert substrate.choose(csr.tocsr()) == "blocked"

    def test_moderate_variance_picks_sellcs(self, rng):
        n = substrate.AUTO_MIN_SIZE
        row_nnz = rng.integers(1, 12, size=n)
        rows = np.repeat(np.arange(n), row_nnz)
        cols = rng.integers(0, n, size=rows.size)
        csr = sp.csr_matrix((np.ones(rows.size), (rows, cols)), shape=(n, n))
        csr.sum_duplicates()
        assert substrate.choose(csr) == "sellcs"

    def test_single_megarow_rejects_padded_formats(self):
        """One outlier row barely moves the cv of a big matrix, but it
        poisons both padded formats (global-max block width; one lane
        pass per megarow entry) — the max/mean gates must catch it."""
        n = substrate.AUTO_MIN_SIZE
        band = sp.diags([1.0] * 9, offsets=range(-4, 5), shape=(n, n),
                        format="lil")
        band[0, :1000] = 1.0
        csr = band.tocsr()
        prof = MatrixProfile.from_csr(csr)
        assert prof.cv_row_nnz <= 2.0  # would pass the variance gates...
        assert substrate.choose(csr) == "csr"  # ...but not the max gates

    def test_heavy_skew_falls_back_to_csr(self, rng):
        n = substrate.AUTO_MIN_SIZE
        # one megarow + singleton rows: cv blows past the sellcs gate
        rows = np.concatenate([np.zeros(n // 2, dtype=np.int64),
                               np.arange(1, n, 50, dtype=np.int64)])
        cols = np.concatenate([np.arange(n // 2, dtype=np.int64),
                               np.zeros(rows.size - n // 2, dtype=np.int64)])
        csr = sp.csr_matrix((np.ones(rows.size), (rows, cols)), shape=(n, n))
        assert substrate.choose(csr) == "csr"

    def test_resolution_order(self, monkeypatch):
        monkeypatch.delenv(substrate.ENV_VAR, raising=False)
        csr = sp.identity(4, format="csr")
        assert substrate.resolve(csr) == "csr"
        assert substrate.resolve(csr, "sellcs") == "sellcs"
        monkeypatch.setenv(substrate.ENV_VAR, "blocked")
        assert substrate.resolve(csr) == "blocked"
        assert substrate.resolve(csr, "sellcs") == "sellcs"


# ---------------------------------------------------------------------------
# Matrix integration: operations, caches, perf events
# ---------------------------------------------------------------------------

@pytest.fixture(params=["csr", "sellcs", "blocked"])
def pinned_problem8(request):
    return generate_problem(8, substrate=request.param), request.param


class TestMatrixIntegration:
    def test_masked_mxv_and_transpose_match_reference(self, pinned_problem8, rng):
        problem, name = pinned_problem8
        ref = generate_problem(8)
        assert problem.A.substrate == name
        x = grb.Vector.from_dense(rng.standard_normal(problem.n))
        mask = grb.Vector.from_coo(
            np.arange(0, problem.n, 3), np.ones(len(range(0, problem.n, 3)), bool),
            problem.n, dtype=bool)
        for desc in (grb.descriptors.structural,
                     grb.descriptors.structural | grb.descriptors.transpose_matrix):
            y1 = grb.Vector.dense(problem.n)
            y2 = grb.Vector.dense(problem.n)
            grb.mxv(y1, mask, problem.A, x, desc=desc)
            grb.mxv(y2, mask, ref.A, x, desc=desc)
            assert np.array_equal(y1.to_dense(), y2.to_dense())

    def test_rbgs_bit_identical_across_substrates(self, pinned_problem8, rng):
        problem, _ = pinned_problem8
        ref = generate_problem(8)
        colors = color_masks(lattice_coloring(problem.grid))
        r = grb.Vector.from_dense(rng.standard_normal(problem.n))
        z1 = grb.Vector.dense(problem.n)
        z2 = grb.Vector.dense(problem.n)
        RBGSSmoother(problem.A, problem.A_diag, colors).smooth(z1, r, sweeps=2)
        RBGSSmoother(ref.A, ref.A_diag, colors).smooth(z2, r, sweeps=2)
        assert np.array_equal(z1.to_dense(), z2.to_dense())

    def test_cg_mg_residual_history_bit_identical(self, pinned_problem8):
        """The acceptance criterion: full CG+MG, same residuals, bitwise."""
        problem, _ = pinned_problem8
        ref = generate_problem(8)

        def solve(p):
            hierarchy = build_hierarchy(p, levels=2)
            x = p.x0.dup()
            res = pcg(p.A, p.b, x, preconditioner=MGPreconditioner(hierarchy),
                      max_iters=8)
            return res

        got, want = solve(problem), solve(ref)
        assert got.residuals == want.residuals  # bit-exact float equality
        assert got.iterations == want.iterations

    def test_perf_events_carry_format(self, rng):
        m = grb.Matrix.from_scipy(
            generate_problem(4).A.to_scipy(), substrate="sellcs")
        x = grb.Vector.from_dense(rng.standard_normal(m.nrows))
        y = grb.Vector.dense(m.nrows)
        log = grb.backend.EventLog()
        with grb.backend.collect(log):
            grb.mxv(y, None, m, x)
        (event,) = log.events
        assert event.fmt == "sellcs"
        assert log.total("bytes", fmt="sellcs") == event.bytes
        assert log.by_format()["sellcs"] == event.bytes

    def test_formats_price_differently(self, problem8, rng):
        """Same op stream, different byte totals per substrate."""
        x = grb.Vector.from_dense(rng.standard_normal(problem8.n))
        totals = {}
        for name in ("csr", "sellcs", "blocked"):
            m = grb.Matrix.from_scipy(problem8.A.to_scipy(), substrate=name)
            y = grb.Vector.dense(problem8.n)
            log = grb.backend.EventLog()
            with grb.backend.collect(log):
                grb.mxv(y, None, m, x)
            totals[name] = log.total("bytes", fmt=name)
        assert totals["sellcs"] != totals["csr"]
        assert totals["blocked"] != totals["csr"]

    def test_mutation_invalidates_provider(self):
        m = grb.Matrix.from_dense([[1.0, 2.0], [0.0, 3.0]],
                                  substrate="sellcs")
        y = grb.Vector.dense(2)
        grb.mxv(y, None, m, grb.Vector.from_dense([1.0, 1.0]))
        m.set_element(0, 0, 5.0)
        grb.mxv(y, None, m, grb.Vector.from_dense([1.0, 1.0]))
        assert y.to_dense().tolist() == [7.0, 3.0]

    def test_dup_preserves_pin(self):
        m = grb.Matrix.from_dense(np.eye(3), substrate="blocked")
        assert m.dup().substrate == "blocked"
        assert m.transpose().substrate == "blocked"


class TestMaskCacheLRU:
    def test_cache_bounded(self, problem4):
        A = problem4.A
        A.provider()  # realise the provider first
        for i in range(3 * _MASK_CACHE_LIMIT):
            A._rows_substructure((i, 0), np.array([i % problem4.n]))
        assert len(A._mask_cache) <= _MASK_CACHE_LIMIT

    def test_lru_evicts_least_recently_used(self, problem4):
        A = problem4.A
        A._mask_cache.clear()
        rows = np.array([0, 1])
        first = A._rows_substructure(("first", 0), rows)
        for i in range(_MASK_CACHE_LIMIT - 1):
            A._rows_substructure((i, 0), rows)
        # touch "first" again: it becomes most-recent and must survive
        assert A._rows_substructure(("first", 0), rows) is first
        A._rows_substructure(("overflow", 0), rows)
        assert A._rows_substructure(("first", 0), rows) is first

    def test_fifo_would_have_evicted(self, problem4):
        """The distinguishing case vs the old FIFO eviction."""
        A = problem4.A
        A._mask_cache.clear()
        rows = np.array([2, 3])
        keep = A._rows_substructure(("keep", 0), rows)
        for i in range(_MASK_CACHE_LIMIT):  # > limit-1 inserts
            A._rows_substructure((i, 0), rows)
            A._rows_substructure(("keep", 0), rows)  # keep it hot
        assert A._rows_substructure(("keep", 0), rows) is keep


# ---------------------------------------------------------------------------
# distributed executors are substrate-agnostic
# ---------------------------------------------------------------------------

class TestDistSubstrate:
    @pytest.mark.parametrize("name", ["sellcs", "blocked"])
    def test_halo_spmv_bit_identical(self, name, problem8, rng):
        from repro.dist import Grid3DPartition, LocalSpmvExecutor
        A = problem8.A.to_scipy()
        part = Grid3DPartition(problem8.grid, 4)
        owners = part.owner(np.arange(problem8.n))
        x = rng.standard_normal(problem8.n)
        ref = LocalSpmvExecutor(A, owners, 4, substrate="csr").spmv(x)
        got = LocalSpmvExecutor(A, owners, 4, substrate=name).spmv(x)
        assert np.array_equal(got, ref)

    @pytest.mark.parametrize("name", ["sellcs", "blocked"])
    def test_halo_rbgs_bit_identical(self, name, problem8, rng):
        from repro.dist import Grid3DPartition, LocalRBGSExecutor
        from repro.hpcg.coloring import lattice_coloring
        A = problem8.A.to_scipy()
        part = Grid3DPartition(problem8.grid, 4)
        owners = part.owner(np.arange(problem8.n))
        colors = lattice_coloring(problem8.grid)
        r = rng.standard_normal(problem8.n)
        z_ref = np.zeros(problem8.n)
        z_got = np.zeros(problem8.n)
        LocalRBGSExecutor(A, owners, 4, colors,
                          substrate="csr").smooth(z_ref, r, sweeps=2)
        ex = LocalRBGSExecutor(A, owners, 4, colors, substrate=name)
        ex.smooth(z_got, r, sweeps=2)
        assert np.array_equal(z_got, z_ref)
        # RBGS computes with per-colour blocks only: the whole-matrix
        # node providers must not have been built along the way
        assert all(node._provider is None for node in ex.base.nodes)
