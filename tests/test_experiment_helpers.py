"""Experiment-layer helpers: table/chart rendering, DistRunResult."""

import numpy as np
import pytest

from repro.dist.comm import CommTracker
from repro.dist.result import DistRunResult
from repro.experiments.common import ascii_series, format_table
from repro.util.timer import TimerRegistry


class TestFormatTable:
    def test_alignment_and_separator(self):
        text = format_table(["a", "long header"], [(1, 2.5), (300, 4.0)])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert set(lines[1]) <= {"-", " "}
        assert "300" in lines[3]

    def test_float_formats(self):
        text = format_table(["x"], [(0.0,), (1.23456789,), (1e-7,), (1e9,)])
        assert "0" in text
        assert "1.235" in text
        assert "1.000e-07" in text
        assert "1.000e+09" in text

    def test_strings_pass_through(self):
        text = format_table(["name"], [("hello",)])
        assert "hello" in text


class TestAsciiSeries:
    def test_bars_scale(self):
        chart = ascii_series({"a": [1.0, 2.0]}, ["x1", "x2"], width=10)
        lines = [ln for ln in chart.splitlines() if "#" in ln]
        assert len(lines) == 2
        assert lines[1].count("#") == 10       # max value gets full width
        assert lines[0].count("#") == 5

    def test_empty_series(self):
        assert ascii_series({}, []) == ""


class TestDistRunResult:
    def _make(self):
        tracker = CommTracker(2)
        tracker.send(0, 1, 100)
        tracker.sync()
        timers = TimerRegistry()
        timers.tick("mg/L0/rbgs", 0.6)
        timers.tick("mg/L0/restrict", 0.1)
        timers.tick("mg/L1/rbgs", 0.2)
        timers.tick("cg/dot", 0.1)
        return DistRunResult(
            backend="test", nprocs=2, n=64, iterations=3,
            residuals=[1.0, 0.1], modelled_seconds=1.0,
            timers=timers, tracker=tracker, mg_levels=2,
        )

    def test_properties(self):
        res = self._make()
        assert res.final_residual == 0.1
        assert res.comm_bytes == 100
        assert res.syncs == 1

    def test_breakdown_shares(self):
        res = self._make()
        rows = res.mg_level_breakdown()
        assert rows[0]["rbgs"] == pytest.approx(0.6)
        assert rows[0]["restrict_refine"] == pytest.approx(0.1)
        assert rows[1]["rbgs"] == pytest.approx(0.2)

    def test_summary(self):
        assert "test: p=2" in self._make().summary()

    def test_empty_residuals_nan(self):
        res = self._make()
        res.residuals = []
        assert np.isnan(res.final_residual)
