"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis import HealthCheck

from repro import graphblas as grb
from repro.dist.partition import Block1D, BlockCyclic1D, factor3
from repro.graphblas.monoid import plus_monoid, min_monoid
from repro.graphblas.vector import Vector
from repro.grid import Grid3D
from repro.hpcg.coloring import greedy_coloring, num_colors, validate_coloring

common = settings(max_examples=25,
                  suppress_health_check=[HealthCheck.too_slow], deadline=None)


# --- strategies -------------------------------------------------------------

@st.composite
def coo_matrix(draw, max_n=12):
    n = draw(st.integers(1, max_n))
    m = draw(st.integers(1, max_n))
    nnz = draw(st.integers(0, n * m))
    cells = draw(st.lists(
        st.tuples(st.integers(0, n - 1), st.integers(0, m - 1)),
        min_size=nnz, max_size=nnz, unique=True,
    ))
    vals = draw(st.lists(
        st.floats(-100, 100, allow_nan=False), min_size=len(cells),
        max_size=len(cells),
    ))
    rows = np.array([c[0] for c in cells], dtype=np.int64)
    cols = np.array([c[1] for c in cells], dtype=np.int64)
    return grb.Matrix.from_coo(rows, cols, np.array(vals), n, m)


@st.composite
def dense_vector(draw, size):
    vals = draw(st.lists(st.floats(-100, 100, allow_nan=False),
                         min_size=size, max_size=size))
    return Vector.from_dense(np.array(vals))


# --- GraphBLAS algebra -------------------------------------------------------

class TestMxvProperties:
    @common
    @given(coo_matrix())
    def test_mxv_matches_scipy(self, A):
        x = Vector.dense(A.ncols, 1.5)
        y = Vector.dense(A.nrows)
        grb.mxv(y, None, A, x)
        expected = A.to_scipy() @ x.to_dense()
        np.testing.assert_allclose(y.to_dense(), expected, rtol=1e-12,
                                   atol=1e-9)

    @common
    @given(coo_matrix())
    def test_transpose_twice_identity(self, A):
        x = Vector.dense(A.ncols, 2.0)
        y1 = Vector.dense(A.nrows)
        grb.mxv(y1, None, A, x)
        y2 = Vector.dense(A.nrows)
        grb.mxv(y2, None, A.transpose(), x,
                desc=grb.descriptors.transpose_matrix)
        np.testing.assert_allclose(y1.to_dense(), y2.to_dense(), rtol=1e-12)

    @common
    @given(coo_matrix(), st.integers(0, 2 ** 31))
    def test_mask_complement_partition(self, A, seed):
        """Masked + complement-masked results reassemble the full mxv."""
        rng = np.random.default_rng(seed)
        x = Vector.from_dense(rng.standard_normal(A.ncols))
        mask_idx = np.flatnonzero(rng.random(A.nrows) < 0.5)
        mask = Vector.from_coo(mask_idx, np.ones(mask_idx.size, dtype=bool),
                               A.nrows, dtype=bool)
        full = Vector.dense(A.nrows)
        grb.mxv(full, None, A, x)
        part = Vector.dense(A.nrows, 0.0)
        grb.mxv(part, mask, A, x, desc=grb.descriptors.structural)
        grb.mxv(part, mask, A, x,
                desc=grb.descriptors.structural | grb.descriptors.invert_mask)
        # present entries must agree wherever full has entries
        fi, fv = full.to_coo()
        pv = part.to_dense()
        np.testing.assert_allclose(pv[fi], fv, rtol=1e-12, atol=1e-9)

    @common
    @given(coo_matrix(max_n=8))
    def test_min_plus_vs_bruteforce(self, A):
        x = Vector.dense(A.ncols, 3.0)
        y = Vector.dense(A.nrows, 0.0)
        grb.mxv(y, None, A, x, semiring=grb.min_plus)
        rows, cols, vals = A.to_coo()
        for i in range(A.nrows):
            entries = vals[rows == i]
            if entries.size:
                assert y.to_dense()[i] == pytest.approx(entries.min() + 3.0)


class TestVectorProperties:
    @common
    @given(st.integers(1, 50), st.floats(-10, 10, allow_nan=False),
           st.floats(-10, 10, allow_nan=False), st.integers(0, 2 ** 31))
    def test_waxpby_matches_numpy(self, n, alpha, beta, seed):
        rng = np.random.default_rng(seed)
        xv, yv = rng.standard_normal(n), rng.standard_normal(n)
        w = Vector.dense(n)
        grb.waxpby(w, alpha, Vector.from_dense(xv), beta, Vector.from_dense(yv))
        np.testing.assert_allclose(w.to_dense(), alpha * xv + beta * yv,
                                   rtol=1e-12, atol=1e-12)

    @common
    @given(st.integers(1, 40), st.integers(0, 2 ** 31))
    def test_dot_symmetry(self, n, seed):
        rng = np.random.default_rng(seed)
        u = Vector.from_dense(rng.standard_normal(n))
        v = Vector.from_dense(rng.standard_normal(n))
        assert grb.dot(u, v) == pytest.approx(grb.dot(v, u))

    @common
    @given(st.lists(st.floats(-50, 50, allow_nan=False), min_size=1,
                    max_size=30))
    def test_reduce_matches_sum(self, values):
        v = Vector.from_dense(np.array(values))
        assert grb.reduce(v, plus_monoid) == pytest.approx(sum(values))

    @common
    @given(st.lists(st.floats(-50, 50, allow_nan=False), min_size=1,
                    max_size=30))
    def test_reduce_min(self, values):
        v = Vector.from_dense(np.array(values))
        assert grb.reduce(v, min_monoid) == pytest.approx(min(values))

    @common
    @given(st.integers(1, 30), st.integers(0, 2 ** 31))
    def test_dup_roundtrip(self, n, seed):
        rng = np.random.default_rng(seed)
        idx = np.flatnonzero(rng.random(n) < 0.6)
        v = Vector.from_coo(idx, rng.standard_normal(idx.size), n)
        assert v.dup() == v


class TestSegmentReduce:
    @common
    @given(st.lists(st.integers(0, 5), min_size=1, max_size=15),
           st.integers(0, 2 ** 31))
    def test_matches_python_loop(self, seg_sizes, seed):
        rng = np.random.default_rng(seed)
        ptr = np.concatenate(([0], np.cumsum(seg_sizes)))
        vals = rng.standard_normal(int(ptr[-1]))
        out = plus_monoid.segment_reduce(vals, ptr)
        for i, size in enumerate(seg_sizes):
            expected = vals[ptr[i]:ptr[i + 1]].sum() if size else 0.0
            assert out[i] == pytest.approx(expected)


class TestColoringProperties:
    @common
    @given(st.integers(2, 5), st.integers(2, 5), st.integers(2, 5))
    def test_greedy_valid_on_any_grid(self, nx, ny, nz):
        from repro.hpcg.problem import generate_problem
        p = generate_problem(nx, ny, nz)
        colors = greedy_coloring(p.A)
        assert validate_coloring(p.A, colors)
        assert num_colors(colors) <= 8

    @common
    @given(st.integers(0, 2 ** 31))
    def test_greedy_valid_on_random_symmetric(self, seed):
        rng = np.random.default_rng(seed)
        from repro.graphblas.io import random_matrix
        M = random_matrix(15, 15, 0.2, rng=rng)
        S = grb.Matrix.from_scipy(M.to_scipy() + M.to_scipy().T)
        assert validate_coloring(S, greedy_coloring(S))


class TestPartitionProperties:
    @common
    @given(st.integers(1, 100), st.integers(1, 8))
    def test_block1d_covers_exactly(self, n, p):
        part = Block1D(n, p)
        all_idx = np.concatenate([part.local_indices(k) for k in range(p)])
        assert np.array_equal(np.sort(all_idx), np.arange(n))

    @common
    @given(st.integers(1, 100), st.integers(1, 8), st.integers(1, 16))
    def test_blockcyclic_covers_exactly(self, n, p, block):
        part = BlockCyclic1D(n, p, block=block)
        all_idx = np.concatenate([part.local_indices(k) for k in range(p)])
        assert np.array_equal(np.sort(all_idx), np.arange(n))
        owners = part.owner(np.arange(n))
        for k in range(p):
            assert (owners[part.local_indices(k)] == k).all()

    @common
    @given(st.integers(1, 64))
    def test_factor3_product(self, p):
        px, py, pz = factor3(p)
        assert px * py * pz == p
        assert px <= py <= pz


class TestGridProperties:
    @common
    @given(st.integers(1, 6), st.integers(1, 6), st.integers(1, 6))
    def test_index_coords_bijection(self, nx, ny, nz):
        g = Grid3D(nx, ny, nz)
        i = np.arange(g.npoints)
        assert np.array_equal(g.index(*g.coords(i)), i)

    @common
    @given(st.integers(1, 4), st.integers(1, 4), st.integers(1, 4))
    def test_degree_bounds(self, nx, ny, nz):
        g = Grid3D(nx, ny, nz)
        deg = g.row_degree()
        assert deg.min() >= 1 and deg.max() <= 27
