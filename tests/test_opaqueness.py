"""Architecture tests: the paper's central constraint, enforced.

The HPCG-on-GraphBLAS layer must treat containers as opaque — no access
to backend storage — while the Ref layer intentionally reaches inside.
These tests read the source files and fail if the boundary erodes.
"""

import re
from pathlib import Path

import repro

SRC = Path(repro.__file__).parent

# Backend-storage access patterns forbidden in the GraphBLAS-client layer.
FORBIDDEN = [
    r"\._values", r"\._present", r"\._csr", r"\.to_scipy\(",
    r"_rows_submatrix", r"_transposed_csr",
    # the substrate layer's storage surface: a provider exposes the raw
    # CSR (cold-path escape), so reaching it from algorithm code is the
    # same boundary breach as touching ._csr directly
    r"_rows_substructure", r"\.provider\(",
]


def _violations(package: str, allowed_files=()):
    found = []
    for path in sorted((SRC / package).rglob("*.py")):
        if path.name in allowed_files:
            continue
        text = path.read_text()
        for pattern in FORBIDDEN:
            for match in re.finditer(pattern, text):
                line = text[: match.start()].count("\n") + 1
                found.append(f"{path.name}:{line}: {pattern}")
    return found


class TestOpaqueness:
    def test_hpcg_layer_never_touches_storage(self):
        violations = _violations("hpcg")
        assert not violations, (
            "HPCG-on-GraphBLAS must use only the public API:\n"
            + "\n".join(violations)
        )

    def test_ref_layer_does_touch_storage(self):
        """The contrast the paper studies: Ref is allowed inside."""
        text = (SRC / "ref" / "multigrid.py").read_text()
        assert "to_scipy" in text

    def test_experiments_layer_clean_of_vector_internals(self):
        # experiments may export matrices for the dist sims (to_scipy is
        # the documented I/O escape) but never poke Vector storage.
        violations = [
            v for v in _violations("experiments")
            if "._values" in v or "._present" in v
        ]
        assert not violations, violations


class TestPublicApi:
    def test_graphblas_all_exports_resolve(self):
        from repro import graphblas as grb
        for name in grb.__all__:
            assert hasattr(grb, name), name

    def test_hpcg_all_exports_resolve(self):
        import repro.hpcg as hpcg
        for name in hpcg.__all__:
            assert hasattr(hpcg, name), name

    def test_dist_all_exports_resolve(self):
        import repro.dist as dist
        for name in dist.__all__:
            assert hasattr(dist, name), name

    def test_version_string(self):
        assert re.match(r"^\d+\.\d+\.\d+$", repro.__version__)
