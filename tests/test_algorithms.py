"""Graph algorithms on the GraphBLAS substrate, validated vs networkx."""

import networkx as nx
import numpy as np
import pytest

from repro import graphblas as grb
from repro.graphblas.algorithms import (
    bfs_levels,
    connected_components,
    pagerank,
    sssp,
    triangle_count,
)
from repro.util.errors import InvalidValue


def digraph_matrix(edges, n, weights=None):
    rows = [e[0] for e in edges]
    cols = [e[1] for e in edges]
    vals = weights if weights is not None else [1.0] * len(edges)
    return grb.Matrix.from_coo(rows, cols, vals, n, n)


def undirected_matrix(edges, n):
    rows = [e[0] for e in edges] + [e[1] for e in edges]
    cols = [e[1] for e in edges] + [e[0] for e in edges]
    vals = [1.0] * (2 * len(edges))
    return grb.Matrix.from_coo(rows, cols, vals, n, n)


@pytest.fixture(scope="module")
def random_digraph():
    g = nx.gnp_random_graph(30, 0.12, seed=5, directed=True)
    edges = list(g.edges())
    return g, digraph_matrix(edges, 30)


@pytest.fixture(scope="module")
def random_undirected():
    g = nx.gnp_random_graph(25, 0.2, seed=9)
    return g, undirected_matrix(list(g.edges()), 25)


class TestBfs:
    def test_chain(self):
        A = digraph_matrix([(0, 1), (1, 2), (2, 3)], 5)
        np.testing.assert_array_equal(bfs_levels(A, 0), [0, 1, 2, 3, -1])

    def test_matches_networkx(self, random_digraph):
        g, A = random_digraph
        got = bfs_levels(A, 0)
        expected = nx.single_source_shortest_path_length(g, 0)
        for v in range(30):
            assert got[v] == expected.get(v, -1)

    def test_source_out_of_range(self):
        with pytest.raises(InvalidValue):
            bfs_levels(grb.Matrix.identity(3), 5)

    def test_requires_square(self):
        with pytest.raises(InvalidValue):
            bfs_levels(grb.Matrix.from_coo([0], [1], [1.0], 1, 2), 0)


class TestSssp:
    def test_weighted_chain(self):
        A = digraph_matrix([(0, 1), (1, 2)], 3, weights=[2.5, 4.0])
        np.testing.assert_allclose(sssp(A, 0), [0.0, 2.5, 6.5])

    def test_matches_networkx(self, random_digraph):
        g, _ = random_digraph
        rng = np.random.default_rng(3)
        edges = list(g.edges())
        weights = rng.uniform(0.1, 5.0, len(edges)).tolist()
        A = digraph_matrix(edges, 30, weights)
        wg = nx.DiGraph()
        wg.add_nodes_from(range(30))
        wg.add_weighted_edges_from(
            (u, v, w) for (u, v), w in zip(edges, weights)
        )
        expected = nx.single_source_dijkstra_path_length(wg, 0)
        got = sssp(A, 0)
        for v in range(30):
            if v in expected:
                assert got[v] == pytest.approx(expected[v])
            else:
                assert got[v] == np.inf

    def test_unreachable_is_inf(self):
        A = digraph_matrix([(0, 1)], 3, weights=[1.0])
        assert sssp(A, 0)[2] == np.inf


class TestPagerank:
    def test_sums_to_one(self, random_digraph):
        _, A = random_digraph
        ranks, iters = pagerank(A)
        assert ranks.sum() == pytest.approx(1.0, abs=1e-6)
        assert 0 < iters <= 100

    def test_matches_networkx(self, random_digraph):
        g, A = random_digraph
        ranks, _ = pagerank(A, damping=0.85, tolerance=1e-12)
        expected = nx.pagerank(g, alpha=0.85, tol=1e-12)
        for v in range(30):
            assert ranks[v] == pytest.approx(expected[v], abs=1e-6)

    def test_bad_damping(self):
        with pytest.raises(InvalidValue):
            pagerank(grb.Matrix.identity(3), damping=1.5)

    def test_star_graph_center_wins(self):
        # spokes all link to the hub
        A = digraph_matrix([(1, 0), (2, 0), (3, 0), (4, 0)], 5)
        ranks, _ = pagerank(A)
        assert ranks[0] == ranks.max()


class TestTriangles:
    def test_triangle(self):
        A = undirected_matrix([(0, 1), (1, 2), (0, 2)], 3)
        assert triangle_count(A) == 1

    def test_square_no_triangle(self):
        A = undirected_matrix([(0, 1), (1, 2), (2, 3), (3, 0)], 4)
        assert triangle_count(A) == 0

    def test_matches_networkx(self, random_undirected):
        g, A = random_undirected
        expected = sum(nx.triangles(g).values()) // 3
        assert triangle_count(A) == expected


class TestConnectedComponents:
    def test_two_components(self):
        A = undirected_matrix([(0, 1), (2, 3)], 5)
        labels = connected_components(A)
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert labels[0] != labels[2]
        assert labels[4] == 4  # isolated keeps its own id

    def test_matches_networkx(self, random_undirected):
        g, A = random_undirected
        labels = connected_components(A)
        for comp in nx.connected_components(g):
            comp = sorted(comp)
            assert len({labels[v] for v in comp}) == 1
            assert labels[comp[0]] == max(comp)
