"""The shared-memory parallel lane: policy, kernels, fusion, hybrid dist.

Four contracts under test:

1. **Policy** — ``REPRO_THREADS`` parsing (kill switch / explicit count
   / auto), profile-driven resolution, the small-operator demotion, and
   per-call re-reads (no reimport needed).
2. **Bit-exactness** — the parallel row-partitioned kernels
   (:class:`~repro.graphblas.substrate.threads.ChunkedSpmv` everywhere,
   the prange lane where numba exists) produce byte-identical results
   to their serial twins for any thread count, signed zeros included;
   and the full solver's residual history is invariant under the
   toggle.
3. **The SpMV→waxpby fusion** — ``fused_spmv_waxpby`` is bit-identical
   to the unfused pair and declines (returns False) on every
   configuration it cannot serve.
4. **Hybrid dist execution** — ``execute_local=True`` measures a real
   node-local speedup, folds it into pricing only, and leaves residual
   histories untouched.

Plus the PR-8 schema bump: a v1 profile file fails with
:class:`~repro.tune.profile.ProfileVersionError`, never ``KeyError``.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import graphblas as grb
from repro.dist.refdist import RefDistRun
from repro.graphblas import fused as fused_mod
from repro.graphblas.substrate import jit
from repro.graphblas.substrate import threads
from repro.tune import cache as tune_cache
from repro.tune import microbench
from repro.tune.profile import (
    MachineProfile,
    ProfileVersionError,
    synthetic_profile,
)
from repro.util.errors import InvalidValue

common = settings(max_examples=25,
                  suppress_health_check=[HealthCheck.too_slow],
                  deadline=None)

needs_numba = pytest.mark.skipif(
    not jit.available(), reason="numba not installed (compiled lane off)")


# --- strategies --------------------------------------------------------------

@st.composite
def csr_and_vector(draw, max_n=24):
    """A random square CSR (possibly with empty rows, signed zeros) and
    a matching dense vector."""
    n = draw(st.integers(1, max_n))
    density = draw(st.floats(0.0, 0.6))
    rng = np.random.default_rng(draw(st.integers(0, 2 ** 31)))
    mask = rng.random((n, n)) < density
    vals = rng.standard_normal((n, n)) * mask
    # sprinkle signed zeros among the stored entries
    if mask.any() and draw(st.booleans()):
        r, c = np.nonzero(mask)
        k = draw(st.integers(0, r.size - 1))
        vals[r[k], c[k]] = -0.0
    csr = sp.csr_matrix(vals)
    csr.sort_indices()
    x = rng.standard_normal(n)
    if draw(st.booleans()):
        x[rng.integers(0, n)] = -0.0
    return csr, x


# --- REPRO_THREADS policy ----------------------------------------------------

class TestThreadPolicy:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(threads.ENV_VAR, raising=False)
        assert threads.requested() is None      # auto
        assert threads.resolve() == 1           # no profile cached
        assert threads.effective() == 1
        assert threads.enabled()

    @pytest.mark.parametrize("value", ["0", "off", "no", "false", "OFF"])
    def test_kill_switch(self, monkeypatch, value):
        monkeypatch.setenv(threads.ENV_VAR, value)
        assert not threads.enabled()
        assert threads.requested() == 1
        assert threads.resolve() == 1
        assert threads.effective(1 << 30) == 1

    def test_explicit_count_honoured_verbatim(self, monkeypatch):
        monkeypatch.setenv(threads.ENV_VAR, "7")
        assert threads.requested() == 7
        assert threads.resolve() == 7
        # explicit counts ignore the small-operator demotion
        assert threads.effective(16) == 7

    @pytest.mark.parametrize("value", ["bogus", "-2", "1.5", "2 4"])
    def test_malformed_values_raise(self, monkeypatch, value):
        monkeypatch.setenv(threads.ENV_VAR, value)
        with pytest.raises(InvalidValue):
            threads.requested()

    def test_read_per_call(self, monkeypatch):
        monkeypatch.setenv(threads.ENV_VAR, "3")
        assert threads.resolve() == 3
        monkeypatch.setenv(threads.ENV_VAR, "0")
        assert threads.resolve() == 1

    def _install_profile(self, tmp_path, monkeypatch, **kwargs):
        monkeypatch.setenv(tune_cache.ENV_VAR, str(tmp_path))
        tune_cache.invalidate()
        tune_cache.save_profile(synthetic_profile(**kwargs))
        tune_cache.invalidate()

    def test_auto_resolves_from_profile(self, tmp_path, monkeypatch):
        self._install_profile(
            tmp_path, monkeypatch, half_sat_threads=4,
            thread_rates={"spmv": {"1": 1e9, "2": 1.7e9, "4": 2.5e9}})
        monkeypatch.setenv(threads.ENV_VAR, "auto")
        expected = max(1, min(4, os.cpu_count() or 1))
        assert threads.resolve() == expected
        tune_cache.invalidate()

    def test_auto_demotes_when_sweep_shows_no_gain(self, tmp_path,
                                                   monkeypatch):
        self._install_profile(
            tmp_path, monkeypatch, half_sat_threads=4,
            thread_rates={"spmv": {"1": 2e9, "4": 1.5e9}})
        monkeypatch.setenv(threads.ENV_VAR, "auto")
        assert threads.resolve() == 1
        tune_cache.invalidate()

    def test_auto_demotes_small_operators(self, tmp_path, monkeypatch):
        self._install_profile(
            tmp_path, monkeypatch, half_sat_threads=2,
            thread_rates={"spmv": {"1": 1e9, "2": 1.9e9}})
        monkeypatch.setenv(threads.ENV_VAR, "auto")
        if threads.resolve() > 1:   # needs a multi-core host
            assert threads.effective(threads.AUTO_MIN_BYTES - 1) == 1
            assert threads.effective(threads.AUTO_MIN_BYTES) > 1
        tune_cache.invalidate()

    def test_lane_name_matches_availability(self, monkeypatch):
        monkeypatch.setenv(threads.ENV_VAR, "0")
        assert threads.lane_name() in ("numpy", "jit")
        monkeypatch.setenv(threads.ENV_VAR, "4")
        expected = ("jit-parallel" if jit.parallel_available() else
                    "jit" if jit.available() else "numpy")
        assert threads.lane_name() == expected


# --- bit-exactness of the chunked parallel kernel ----------------------------

class TestChunkedSpmv:
    @common
    @given(csr_and_vector())
    def test_bit_identical_to_serial_for_any_chunking(self, case):
        csr, x = case
        with threads.ChunkedSpmv(csr, 1) as serial:
            expect = serial(x)
        for nthreads in (2, 3, 5, 8):
            with threads.ChunkedSpmv(csr, nthreads) as kernel:
                got = kernel(x)
            assert got.tobytes() == expect.tobytes()

    def test_matches_scipy_matvec(self, rng):
        csr = sp.random(97, 97, density=0.2, format="csr",
                        random_state=np.random.RandomState(3))
        csr.sort_indices()
        x = rng.standard_normal(97)
        with threads.ChunkedSpmv(csr, 4) as kernel:
            assert kernel(x).tobytes() == (csr @ x).tobytes()

    def test_signed_zero_rows_preserved(self):
        # a row of exact cancellations must keep csr_matvec's +0.0,
        # and an all-(-0.0) row its -0.0, in parallel too
        csr = sp.csr_matrix(np.array([
            [1.0, -1.0, 0.0],
            [0.0, 0.0, -0.0],
            [2.0, 0.0, 3.0],
        ]))
        x = np.ones(3)
        with threads.ChunkedSpmv(csr, 1) as serial, \
                threads.ChunkedSpmv(csr, 3) as par:
            assert serial(x).tobytes() == par(x).tobytes()

    def test_rejects_mismatched_operands(self):
        from repro.util.errors import DimensionMismatch

        csr = sp.csr_matrix(np.eye(8))
        with threads.ChunkedSpmv(csr, 2) as kernel:
            with pytest.raises(DimensionMismatch):
                kernel(np.ones(5))                    # short input
            with pytest.raises(DimensionMismatch):
                kernel(np.ones(8), out=np.empty(3))   # short output

    def test_worker_exceptions_propagate(self, monkeypatch):
        csr = sp.csr_matrix(np.eye(8))
        with threads.ChunkedSpmv(csr, 2) as kernel:
            def boom(block, x, out):
                raise RuntimeError("worker failed")

            monkeypatch.setattr(kernel, "_run_block", boom)
            with pytest.raises(RuntimeError):
                kernel(np.ones(8))

    def test_rejects_bad_thread_count(self):
        with pytest.raises(InvalidValue):
            threads.ChunkedSpmv(sp.csr_matrix(np.eye(2)), 0)


# --- the toggle across providers and the full solver -------------------------

class TestSolverToggleInvariance:
    @pytest.mark.parametrize("fmt", ["csr", "sellcs", "blocked"])
    def test_provider_mxv_invariant_under_toggle(self, problem8,
                                                 monkeypatch, fmt):
        A = grb.Matrix.from_coo(*problem8.A.to_coo(),
                                problem8.n, problem8.n, substrate=fmt)
        x = grb.Vector.from_dense(
            np.random.default_rng(5).standard_normal(problem8.n))
        y = grb.Vector.dense(problem8.n)
        results = {}
        for value in ("0", "1", "2", "4"):
            monkeypatch.setenv(threads.ENV_VAR, value)
            grb.mxv(y, None, A, x)
            results[value] = y.to_dense().tobytes()
        assert len(set(results.values())) == 1

    def test_residual_history_invariant_under_toggle(self, monkeypatch):
        from repro.hpcg.driver import run_hpcg

        histories = {}
        for value in ("0", "2"):
            monkeypatch.setenv(threads.ENV_VAR, value)
            histories[value] = run_hpcg(8, max_iters=6,
                                        mg_levels=2).cg.residuals
        assert histories["0"] == histories["2"]


# --- the prange lane (compiled, numba hosts only) ----------------------------

@needs_numba
class TestPrangeKernels:   # pragma: no cover - exercised on numba hosts
    def test_parallel_csr_mxv_bit_identical(self, problem8):
        csr = problem8.A.to_scipy(copy=False).tocsr()
        csr.sort_indices()
        x = np.random.default_rng(9).standard_normal(problem8.n)
        serial = jit.csr_mxv(csr, x, nthreads=1)
        parallel = jit.csr_mxv(csr, x, nthreads=2)
        assert serial.tobytes() == parallel.tobytes()

    def test_parallel_fused_waxpby_bit_identical(self, problem8):
        csr = problem8.A.to_scipy(copy=False).tocsr()
        csr.sort_indices()
        rng = np.random.default_rng(10)
        z = rng.standard_normal(problem8.n)
        v = rng.standard_normal(problem8.n)
        outs = []
        for nthreads in (1, 2):
            out = np.empty(problem8.n)
            jit.csr_mxv_waxpby(csr, z, 1.5, v, -0.5, out,
                               nthreads=nthreads)
            outs.append(out.tobytes())
        assert outs[0] == outs[1]


# --- the SpMV→waxpby fusion --------------------------------------------------

class TestFusedSpmvWaxpby:
    def _unfused(self, alpha, x, beta, A, z):
        w = grb.Vector.dense(A.nrows)
        grb.mxv(w, None, A, z)
        grb.waxpby(w, alpha, x, beta, w)
        return w.to_dense()

    def test_bit_identical_to_unfused_pair(self, problem8):
        rng = np.random.default_rng(21)
        x = grb.Vector.from_dense(rng.standard_normal(problem8.n))
        z = grb.Vector.from_dense(rng.standard_normal(problem8.n))
        w = grb.Vector.dense(problem8.n)
        assert fused_mod.fused_spmv_waxpby(w, 1.0, x, -1.0, problem8.A, z)
        expect = self._unfused(1.0, x, -1.0, problem8.A, z)
        assert w.to_dense().tobytes() == expect.tobytes()

    def test_bit_identical_under_parallel_lane(self, problem8,
                                               monkeypatch):
        rng = np.random.default_rng(22)
        x = grb.Vector.from_dense(rng.standard_normal(problem8.n))
        z = grb.Vector.from_dense(rng.standard_normal(problem8.n))
        outs = {}
        for value in ("1", "4"):
            monkeypatch.setenv(threads.ENV_VAR, value)
            w = grb.Vector.dense(problem8.n)
            assert fused_mod.fused_spmv_waxpby(
                w, 2.0, x, 0.5, problem8.A, z)
            outs[value] = w.to_dense().tobytes()
        assert outs["1"] == outs["4"]

    def test_declines_on_kill_switch(self, problem8, monkeypatch):
        monkeypatch.setenv(fused_mod.ENV_FUSED, "0")
        w = grb.Vector.dense(problem8.n)
        z = grb.Vector.dense(problem8.n, 1.0)
        assert not fused_mod.fused_spmv_waxpby(
            w, 1.0, w, -1.0, problem8.A, z)

    def test_declines_on_aliased_product_input(self, problem8):
        w = grb.Vector.dense(problem8.n, 1.0)
        assert not fused_mod.fused_spmv_waxpby(
            w, 1.0, w, -1.0, problem8.A, w)   # w is z

    def test_declines_on_sparse_vector(self, problem8):
        w = grb.Vector.dense(problem8.n)
        z = grb.Vector.sparse(problem8.n)
        assert not fused_mod.fused_spmv_waxpby(
            w, 1.0, problem8.b, -1.0, problem8.A, z)

    def test_declines_on_size_mismatch(self, problem8):
        w = grb.Vector.dense(problem8.n + 1)
        z = grb.Vector.dense(problem8.n, 1.0)
        assert not fused_mod.fused_spmv_waxpby(
            w, 1.0, w, -1.0, problem8.A, z)

    def test_declines_on_empty_rows(self):
        # an empty operator row would change output presence semantics
        A = grb.Matrix.from_coo(np.array([0]), np.array([0]),
                                np.array([2.0]), 3, 3)
        w = grb.Vector.dense(3)
        x = grb.Vector.dense(3, 1.0)
        z = grb.Vector.dense(3, 1.0)
        assert not fused_mod.fused_spmv_waxpby(w, 1.0, x, -1.0, A, z)

    def test_cg_history_invariant_under_fusion_switch(self, monkeypatch):
        from repro.hpcg.driver import run_hpcg

        histories = {}
        for tag, value in (("fused", "1"), ("unfused", "0")):
            monkeypatch.setenv(fused_mod.ENV_FUSED, value)
            histories[tag] = run_hpcg(8, max_iters=6,
                                      mg_levels=2).cg.residuals
        assert histories["fused"] == histories["unfused"]


# --- the thread-sweep probe --------------------------------------------------

class TestThreadProbe:
    def test_sweep_counts_shape(self):
        counts = microbench._sweep_counts(microbench.SMOKE)
        assert counts[0] == 1
        assert counts == sorted(set(counts))
        assert counts[-1] <= max(os.cpu_count() or 1,
                                 microbench.SMOKE.thread_max)

    def test_probe_fits_profile_fields(self):
        half_sat, rates = microbench.measure_thread_scaling(
            microbench.SMOKE)
        assert half_sat >= 1
        assert "spmv" in rates
        assert "1" in rates["spmv"]
        assert all(rate > 0 for rate in rates["spmv"].values())

    def test_measure_populates_thread_fields(self, tmp_path, monkeypatch):
        monkeypatch.setenv(tune_cache.ENV_VAR, str(tmp_path))
        tune_cache.invalidate()
        profile = microbench.measure(microbench.SMOKE)
        assert profile.half_sat_threads >= 1
        assert profile.thread_rate("spmv", 1) is not None
        assert profile.thread_speedup() > 0
        assert "half-saturation threads" in profile.summary()
        tune_cache.invalidate()


# --- schema v2 ---------------------------------------------------------------

class TestProfileSchemaV2:
    def test_v1_profile_rejected_with_version_error(self):
        data = synthetic_profile().to_dict()
        del data["half_sat_threads"]
        del data["thread_rates"]
        data["schema_version"] = 1
        with pytest.raises(ProfileVersionError):
            MachineProfile.from_dict(data)

    def test_v1_file_rejected_cleanly(self, tmp_path):
        data = synthetic_profile().to_dict()
        del data["half_sat_threads"]
        del data["thread_rates"]
        data["schema_version"] = 1
        path = tmp_path / "profile.json"
        path.write_text(json.dumps(data))
        with pytest.raises(ProfileVersionError):
            MachineProfile.load(str(path))

    def test_roundtrip_keeps_thread_fields(self):
        profile = synthetic_profile(
            half_sat_threads=2,
            thread_rates={"spmv": {"1": 1e9, "2": 1.8e9}})
        clone = MachineProfile.loads(profile.dumps())
        assert clone.dumps() == profile.dumps()
        assert clone.half_sat_threads == 2
        assert clone.thread_speedup() == pytest.approx(1.8)


# --- hybrid dist execution ---------------------------------------------------

class TestHybridDistExecution:
    def test_residuals_invariant_and_speedup_surfaced(self, problem8):
        priced = RefDistRun(problem8, nprocs=4,
                            mg_levels=2).run_cg(max_iters=6)
        hybrid = RefDistRun(problem8, nprocs=4, mg_levels=2,
                            execute_local=True,
                            node_threads=2).run_cg(max_iters=6)
        assert hybrid.residuals == priced.residuals
        assert hybrid.executed_local
        assert hybrid.node_threads == 2
        assert hybrid.node_speedup > 0.0
        assert not priced.executed_local
        assert priced.node_speedup == 1.0
        assert "hybrid: 2 node threads" in hybrid.summary()

    def test_speedup_scales_pricing_not_comm(self, problem8):
        runs = {}
        for speedup in (1.0, 2.0):
            run = RefDistRun(problem8, nprocs=4, mg_levels=2)
            run.node_speedup = speedup
            runs[speedup] = run.run_cg(max_iters=4)
        fast, slow = runs[2.0], runs[1.0]
        assert fast.residuals == slow.residuals
        assert fast.modelled_seconds < slow.modelled_seconds
        # wire time is *not* scaled: threads share the NIC
        assert fast.comm_seconds == pytest.approx(slow.comm_seconds)

    def test_auto_threads_without_profile_stays_serial(self, problem8,
                                                       monkeypatch):
        monkeypatch.delenv(threads.ENV_VAR, raising=False)
        result = RefDistRun(problem8, nprocs=2, mg_levels=2,
                            execute_local=True).run_cg(max_iters=3)
        assert result.executed_local
        assert result.node_threads == 1
        assert result.node_speedup == 1.0

    def test_rejects_bad_node_threads(self, problem8):
        with pytest.raises(InvalidValue):
            RefDistRun(problem8, nprocs=2, execute_local=True,
                       node_threads=0)

    def test_metrics_and_manifest_record_hybrid(self, problem8):
        from repro import obs

        with obs.run(name="hybrid-test") as ctx:
            result = RefDistRun(problem8, nprocs=2, mg_levels=2,
                                execute_local=True,
                                node_threads=2).run_cg(max_iters=3)
        assert result.metrics["node_speedup"] == result.node_speedup
        dist_cfg = result.manifest["config"]["dist"]
        assert dist_cfg["execute_local"] is True
        assert dist_cfg["node_threads"] == 2
        assert dist_cfg["node_speedup"] == result.node_speedup
        assert any(s.name == "dist/hybrid_calibrate"
                   for s in ctx.tracer.spans)


# --- manifests and the driver flag -------------------------------------------

class TestThreadProvenance:
    def test_manifest_toggles_record_resolution(self, monkeypatch):
        from repro.obs import manifest

        monkeypatch.setenv(threads.ENV_VAR, "3")
        toggles = manifest.capture_toggles()
        assert toggles["threads_requested"] == 3
        assert toggles["threads_effective"] == 3
        monkeypatch.setenv(threads.ENV_VAR, "garbage")
        assert manifest.capture_toggles()["threads_requested"] == "invalid"

    def test_driver_threads_flag_sets_env(self, monkeypatch, capsys):
        from repro.hpcg import driver

        monkeypatch.delenv(threads.ENV_VAR, raising=False)
        assert driver.main(["--nx", "8", "--iters", "2",
                            "--mg-levels", "2", "--threads", "2"]) == 0
        assert os.environ[threads.ENV_VAR] == "2"
        monkeypatch.delenv(threads.ENV_VAR, raising=False)

    def test_driver_rejects_malformed_threads_flag(self, monkeypatch):
        from repro.hpcg import driver

        with pytest.raises(InvalidValue):
            driver.main(["--nx", "8", "--iters", "1", "--threads", "zap"])
        monkeypatch.delenv(threads.ENV_VAR, raising=False)
