"""HPCG validation phase: symmetry tests."""

import numpy as np
import pytest

from repro import graphblas as grb
from repro.hpcg.multigrid import MGPreconditioner, build_hierarchy
from repro.hpcg.symmetry import (
    precond_symmetry_error,
    spmv_symmetry_error,
    validate,
)


class TestSpmvSymmetry:
    def test_hpcg_operator_symmetric(self, problem8):
        assert spmv_symmetry_error(problem8.A) < 1e-12

    def test_asymmetric_matrix_detected(self):
        A = grb.Matrix.from_dense([[1.0, 5.0], [0.0, 1.0]])
        assert spmv_symmetry_error(A) > 1e-3

    def test_seed_changes_probe(self, problem4):
        # different probes, both tiny for a symmetric operator
        e1 = spmv_symmetry_error(problem4.A, seed=1)
        e2 = spmv_symmetry_error(problem4.A, seed=2)
        assert e1 < 1e-12 and e2 < 1e-12


class TestPrecondSymmetry:
    def test_mg_preconditioner_symmetric(self, problem8):
        precond = MGPreconditioner(build_hierarchy(problem8, levels=3))
        err = precond_symmetry_error(precond, problem8.n)
        assert err < 1e-12

    def test_forward_only_smoother_is_asymmetric(self, problem8):
        """A forward-only sweep is NOT a symmetric operator — the reason
        HPCG requires the backward sweep (Section II-E)."""
        from repro.hpcg.coloring import color_masks, lattice_coloring
        from repro.hpcg.smoothers import RBGSSmoother
        colors = color_masks(lattice_coloring(problem8.grid))
        smoother = RBGSSmoother(problem8.A, problem8.A_diag, colors)

        def forward_only(z, r):
            z.fill(0.0)
            return smoother.forward(z, r)

        err = precond_symmetry_error(forward_only, problem8.n)
        assert err > 1e-8


class TestValidate:
    def test_full_validation_passes(self, problem8):
        precond = MGPreconditioner(build_hierarchy(problem8, levels=3))
        report = validate(problem8.A, precond)
        assert report.passed
        assert report.spmv_ok and report.precond_ok

    def test_without_preconditioner(self, problem4):
        report = validate(problem4.A)
        assert report.passed
        assert report.precond_error == 0.0

    def test_asymmetric_fails(self):
        A = grb.Matrix.from_dense([[1.0, 3.0], [0.0, 2.0]])
        report = validate(A)
        assert not report.passed
